"""Comparator systems the paper argues against.

* :mod:`repro.baselines.kung_fixed` — S.-Y. Kung's fixed-size transitive-
  closure array (ref. [23]), with its load-then-reuse control;
* :mod:`repro.baselines.nunez_torralba` — block-decomposition partitioning
  of transitive closure into matrix-multiplication sub-algorithms
  (ref. [22]).

Both are behavioural models built from the descriptions quoted in the
paper (the original systems were never released); both compute correct
transitive closures and expose the control/overhead terms the paper's
comparison turns on.
"""
