"""Comparator systems the paper argues against, plus speed baselines.

* :mod:`repro.baselines.kung_fixed` — S.-Y. Kung's fixed-size transitive-
  closure array (ref. [23]), with its load-then-reuse control;
* :mod:`repro.baselines.nunez_torralba` — block-decomposition partitioning
  of transitive closure into matrix-multiplication sub-algorithms
  (ref. [22]);
* :mod:`repro.baselines.ssc` — the SSC1/SSC2/SSC12 single-source-closure
  algorithms (Yang & Zaniolo 2014), the oracle + speed baselines the
  sparse-dataset engines of :mod:`repro.datasets.closure` compare
  against.

The first two are behavioural models built from the descriptions quoted
in the paper (the original systems were never released); all compute
correct transitive closures and expose the control/overhead terms the
comparisons turn on.
"""

from .ssc import SSC_ALPHA, SSC_BETA, SSC_BASELINES, ssc1, ssc2, ssc12

__all__ = [
    "SSC_ALPHA",
    "SSC_BETA",
    "SSC_BASELINES",
    "ssc1",
    "ssc2",
    "ssc12",
]
