"""SSC1 / SSC2 / SSC12 single-source-closure baselines.

Behavioural ports of the three transitive-closure algorithms from Yang &
Zaniolo, *Main Memory Evaluation of Recursive Queries on Multicore
Machines* (IEEE Big Data 2014), after the reference implementations by
Thom Hurks (``single-source-closure``: SSC1.py / SSC2.py / SSC12.py),
which benchmark them on SNAP Kronecker graphs — exactly the datasets
:mod:`repro.datasets` loads and generates.  They serve two roles here:

* **oracle** — an independent implementation family (per-source search,
  no Warshall structure at all) to check the bit-packed closure engines
  against;
* **speed baseline** — what a tuned software closure costs on the same
  graphs the partitioned-array simulation runs, for the benchmark
  tables.

The three variants differ only in the reach-set representation:

``ssc1``
    Hash-set BFS per source (the paper's dictionary variant).
``ssc2``
    Bit-packed BFS per source: the frontier's adjacency rows are OR-ed
    word-parallel (the "boolean array" trick, ``bitarray`` in the
    original, ``uint64`` NumPy words here — see
    :mod:`repro.core.bitmatrix`).
``ssc12``
    The hybrid: each source starts in set mode and promotes itself to
    bit-packed mode once its reach set passes ``alpha * n`` vertices or
    a frontier passes ``beta * n`` (the original exposes the same two
    cutoff knobs; ``alpha=1/8``, ``beta=1/128`` are its suggested
    defaults).

All three return the same canonical artefact: one bit-packed reach row
per requested source (:mod:`repro.core.bitmatrix` layout), *reflexive*
(a vertex reaches itself), so rows compare bit-for-bit against the
dataset closure engines and the simulated arrays.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..core.bitmatrix import WORD_BITS, words_per_row

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datasets.core import GraphDataset

__all__ = ["SSC_ALPHA", "SSC_BETA", "ssc1", "ssc2", "ssc12", "SSC_BASELINES"]

#: Default set->bitset promotion cutoffs of the SSC12 hybrid.
SSC_ALPHA = 1 / 8
SSC_BETA = 1 / 128


def _resolve_sources(n: int, sources: Sequence[int] | None) -> np.ndarray:
    if sources is None:
        return np.arange(n, dtype=np.int64)
    idx = np.asarray(sources, dtype=np.int64)
    if idx.size and (idx.min() < 0 or idx.max() >= n):
        raise ValueError(f"source ids out of range [0, {n})")
    return idx


def _adjacency_sets(ds: "GraphDataset") -> list[set[int]]:
    adj: list[set[int]] = [set() for _ in range(ds.n)]
    for src, dst in ds.edges.tolist():
        adj[src].add(dst)
    return adj


def _set_to_row(visited: set[int], nw: int) -> np.ndarray:
    row = np.zeros(nw, dtype=np.uint64)
    if visited:
        idx = np.fromiter(visited, dtype=np.int64, count=len(visited))
        np.bitwise_or.at(
            row,
            idx >> 6,
            np.uint64(1) << (idx & 63).astype(np.uint64),
        )
    return row


def _bits_to_indices(row: np.ndarray) -> np.ndarray:
    return np.flatnonzero(
        np.unpackbits(row.view(np.uint8), bitorder="little")
    ).astype(np.int64)


def ssc1(
    ds: "GraphDataset", sources: Sequence[int] | None = None
) -> np.ndarray:
    """Set-based per-source closure (SSC1): hash-set BFS per source."""
    src_ids = _resolve_sources(ds.n, sources)
    adj = _adjacency_sets(ds)
    nw = words_per_row(ds.n)
    rows = np.zeros((src_ids.size, nw), dtype=np.uint64)
    for out, s in enumerate(src_ids.tolist()):
        visited = {s}
        frontier = [s]
        while frontier:
            nxt: list[int] = []
            for u in frontier:
                for v in adj[u]:
                    if v not in visited:
                        visited.add(v)
                        nxt.append(v)
            frontier = nxt
        rows[out] = _set_to_row(visited, nw)
    return rows


def ssc2(
    ds: "GraphDataset", sources: Sequence[int] | None = None
) -> np.ndarray:
    """Bit-packed per-source closure (SSC2): word-parallel frontier BFS."""
    src_ids = _resolve_sources(ds.n, sources)
    nw = words_per_row(ds.n)
    adjw = ds.packed_adjacency()
    rows = np.zeros((src_ids.size, nw), dtype=np.uint64)
    for out, s in enumerate(src_ids.tolist()):
        reach = np.zeros(nw, dtype=np.uint64)
        reach[s >> 6] |= np.uint64(1) << np.uint64(s & (WORD_BITS - 1))
        frontier = np.asarray([s], dtype=np.int64)
        while frontier.size:
            grown = np.bitwise_or.reduce(adjw[frontier], axis=0)
            fresh = grown & ~reach
            if not fresh.any():
                break
            reach |= fresh
            frontier = _bits_to_indices(fresh)
        rows[out] = reach
    return rows


def ssc12(
    ds: "GraphDataset",
    sources: Sequence[int] | None = None,
    *,
    alpha: float = SSC_ALPHA,
    beta: float = SSC_BETA,
) -> np.ndarray:
    """Hybrid closure (SSC12): set mode, promoted to bit-packed mode.

    A source's search runs SSC1-style until its reach set exceeds
    ``alpha * n`` vertices or one frontier exceeds ``beta * n``; it then
    packs the state and finishes SSC2-style.  Sparse reach sets never
    pay the packed-row cost; dense ones never pay per-edge set inserts.
    """
    src_ids = _resolve_sources(ds.n, sources)
    adj = _adjacency_sets(ds)
    adjw = ds.packed_adjacency()
    nw = words_per_row(ds.n)
    visit_cutoff = alpha * ds.n
    frontier_cutoff = beta * ds.n
    rows = np.zeros((src_ids.size, nw), dtype=np.uint64)
    for out, s in enumerate(src_ids.tolist()):
        visited = {s}
        frontier = [s]
        while frontier and (
            len(visited) <= visit_cutoff and len(frontier) <= frontier_cutoff
        ):
            nxt: list[int] = []
            for u in frontier:
                for v in adj[u]:
                    if v not in visited:
                        visited.add(v)
                        nxt.append(v)
            frontier = nxt
        reach = _set_to_row(visited, nw)
        if frontier:  # promoted: finish word-parallel
            front = np.asarray(frontier, dtype=np.int64)
            while front.size:
                grown = np.bitwise_or.reduce(adjw[front], axis=0)
                fresh = grown & ~reach
                if not fresh.any():
                    break
                reach |= fresh
                front = _bits_to_indices(fresh)
        rows[out] = reach
    return rows


#: Baseline name -> callable, for CLI/benchmark dispatch.
SSC_BASELINES = {"ssc1": ssc1, "ssc2": ssc2, "ssc12": ssc12}
