"""Núñez & Torralba's block partitioning of transitive closure (ref. [22]).

Their scheme (ICPP 1987) partitions the closure "through decomposition
into a block-algorithm": the adjacency matrix is tiled into ``s x s``
blocks (``s = sqrt(m)``, the array side) and the computation becomes a
sequence of *sub-algorithms* — block closures and boolean matrix
multiplications — chained on the array.  The paper's criticisms, which
this model quantifies:

* the decomposition "is dependent on the algorithm" (class of Fig. 3
  schemes);
* "their algorithm requires rather complex control to chain the
  different sub-problems" — every kernel switch (closure vs multiply,
  new operand blocks) is a control step, and each kernel pays systolic
  fill/drain because consecutive kernels are data-dependent and cannot
  be overlapped in general.

The functional core is the standard blocked Floyd-Warshall over the
boolean semiring (verified against the oracle); the cost model charges,
per ``s x s`` kernel, the classic ``3s - 2`` systolic matmul latency plus
a configurable control gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from ..core.semiring import BOOLEAN, Semiring, closure_reference

__all__ = ["BlockPartitionModel", "run_nunez_torralba"]


@dataclass(frozen=True)
class BlockPartitionModel:
    """Cost/control census of the block-decomposed closure."""

    n: int
    block: int
    result: np.ndarray
    closure_kernels: int
    multiply_kernels: int
    control_steps: int
    total_cycles: int
    memory_words: int

    @property
    def kernels(self) -> int:
        """Total sub-algorithm invocations chained on the array."""
        return self.closure_kernels + self.multiply_kernels

    @property
    def throughput(self) -> Fraction:
        """Problem instances per cycle."""
        return Fraction(1, self.total_cycles)


def run_nunez_torralba(
    a: np.ndarray,
    block: int,
    semiring: Semiring = BOOLEAN,
    control_gap: int = 2,
) -> BlockPartitionModel:
    """Blocked transitive closure on ``ceil(n/block)^2`` tiles.

    Per pivot block ``K``: close the diagonal tile, extend pivot row and
    column tiles, then update every remaining tile — all as ``block x
    block`` kernels on a ``block x block`` array.  ``control_gap`` is the
    per-kernel reconfiguration cost (mode switch + operand steering); the
    kernel itself costs the systolic ``3*block - 2`` fill-compute-drain
    latency.
    """
    x = semiring.matrix(a)
    n = x.shape[0]
    if not (1 <= block <= n):
        raise ValueError(f"block must be in [1, {n}], got {block}")
    q = -(-n // block)

    def tile(idx: int) -> slice:
        return slice(idx * block, min((idx + 1) * block, n))

    closure_kernels = multiply_kernels = 0
    memory_words = 0
    for K in range(q):
        kk = tile(K)
        x[kk, kk] = closure_reference(x[kk, kk], semiring)
        closure_kernels += 1
        memory_words += 2 * (kk.stop - kk.start) ** 2
        for J in range(q):
            if J == K:
                continue
            jj = tile(J)
            x[kk, jj] = semiring.add(x[kk, jj], semiring.matmul(x[kk, kk], x[kk, jj]))
            multiply_kernels += 1
            memory_words += 3 * block * block
        for I in range(q):
            if I == K:
                continue
            ii = tile(I)
            x[ii, kk] = semiring.add(x[ii, kk], semiring.matmul(x[ii, kk], x[kk, kk]))
            multiply_kernels += 1
            memory_words += 3 * block * block
        for I in range(q):
            if I == K:
                continue
            ii = tile(I)
            for J in range(q):
                if J == K:
                    continue
                jj = tile(J)
                x[ii, jj] = semiring.add(
                    x[ii, jj], semiring.matmul(x[ii, kk], x[kk, jj])
                )
                multiply_kernels += 1
                memory_words += 3 * block * block
    kernels = closure_kernels + multiply_kernels
    # Closure kernels serialize over the pivot (no single-pass systolic
    # schedule): ~ 3 passes of the 3s-2 pipeline; multiplies take one.
    kernel_time = 3 * block - 2
    total = multiply_kernels * (kernel_time + control_gap) + closure_kernels * (
        3 * kernel_time + control_gap
    )
    return BlockPartitionModel(
        n=n,
        block=block,
        result=x,
        closure_kernels=closure_kernels,
        multiply_kernels=multiply_kernels,
        control_steps=kernels,
        total_cycles=total,
        memory_words=memory_words,
    )
