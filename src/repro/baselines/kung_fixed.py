"""Behavioural model of S.-Y. Kung's fixed-size transitive-closure array.

Reference [23] (S.-Y. Kung, *VLSI Array Processors*, pp. 248-266) derives
a two-dimensional systolic array for transitive closure by a mathematical
(spiral re-indexing) approach.  The paper contrasts its own Fig. 17 array
with it on three counts, all quoted from [23]:

* Kung's array "requires that data be first loaded in the nodes and then
  reused for a period of n cycles", so computation and data transfer do
  **not** overlap: each pivot level costs a load phase plus a compute
  phase;
* "certain control is required in the systolic array" to switch between
  those phases (extra control states per cell);
* it uses more than one communication path between cells.

This model executes the same pivot-level recurrence (so it computes the
correct closure — verified against the oracle) while charging the
load/reuse timing and control the quotes describe.  It exposes the same
measures as :class:`repro.core.metrics.PerformanceReport` where they are
comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from ..core.semiring import BOOLEAN, Semiring

__all__ = ["KungArrayModel", "run_kung_fixed"]


@dataclass(frozen=True)
class KungArrayModel:
    """Timing/control model of the load-then-reuse fixed array."""

    n: int
    result: np.ndarray
    cells: int
    load_cycles: int
    compute_cycles: int
    control_states: int
    comm_paths: int

    @property
    def total_cycles(self) -> int:
        """Load + compute, phases not overlapped (the quoted restriction)."""
        return self.load_cycles + self.compute_cycles

    @property
    def throughput(self) -> Fraction:
        """Problem instances per cycle.

        Successive instances cannot overlap the load of the next with the
        compute of the previous (same registers), so the initiation
        interval is the full load + compute period per pivot level:
        ``2n`` cycles against the Fig. 17 array's ``n``.
        """
        return Fraction(1, 2 * self.n)

    @property
    def overhead(self) -> int:
        """Cycles that are pure data transfer (the ``d_i`` of Sec. 4.1)."""
        return self.load_cycles

    def utilization(self) -> Fraction:
        """Useful work over capacity at the pipelined initiation interval.

        Even with level-pipelined instances, the 2n-cycle load+reuse
        period bounds utilization near 1/2 — the cost of not overlapping
        data transfer with computation (contrast: the Fig. 17 array's
        ``(n-1)(n-2)/(n(n+1)) -> 1``).
        """
        useful = self.n * (self.n - 1) * (self.n - 2)
        initiation = 2 * self.n
        return Fraction(useful, self.cells * initiation)


def run_kung_fixed(a: np.ndarray, semiring: Semiring = BOOLEAN) -> KungArrayModel:
    """Run the behavioural model on adjacency matrix ``a``.

    Per pivot level ``k``: ``n`` cycles to (re)load the pivot row/column
    into the ``n x n`` cells, then ``n`` cycles of reuse while the level's
    updates are computed.  The functional result is the exact Warshall
    recurrence.
    """
    x = semiring.matrix(a)
    n = x.shape[0]
    load = compute = 0
    for k in range(n):
        load += n  # broadcast row k / column k into cell registers
        col = x[:, k].copy()
        row = x[k, :].copy()
        x = semiring.add(x, semiring.mul(col[:, None], row[None, :]))
        compute += n  # reuse period
    return KungArrayModel(
        n=n,
        result=x,
        cells=n * n,
        load_cycles=load,
        compute_cycles=compute,
        control_states=2,  # load phase vs compute phase
        comm_paths=2,  # row and column broadcast paths
    )
