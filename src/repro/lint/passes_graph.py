"""RL1xx — structural passes over the dependence graph.

These passes prove (or refute, with located diagnostics) the Section 2
preconditions the transformation pipeline claims to establish: no data
broadcasting (Fig. 12), uni-directional flow (Figs. 13-14), regular
nearest-neighbour communication (Figs. 15-16), complete port wiring,
and acyclicity.  They read the same censuses the benchmarks print
(:mod:`repro.core.analysis`) but turn them into pass/fail findings.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import networkx as nx

from ..core.analysis import find_broadcasts, flow_directions
from ..core.graph import DependenceGraph, NodeKind, OP_ROLES
from .diagnostics import Diagnostic, Severity
from .registry import LintTarget, lint_pass

__all__ = ["MAX_REPORTED"]

#: Cap the findings one pass emits per code; the design is equally
#: broken whether 3 or 3000 instances are listed, and reports stay
#: readable.  The capping diagnostic says how many were suppressed.
MAX_REPORTED = 16


def _capped(diags: list[Diagnostic], code: str, total: int) -> Iterator[Diagnostic]:
    yield from diags[:MAX_REPORTED]
    if total > MAX_REPORTED:
        first = diags[0]
        yield Diagnostic(
            code=code,
            severity=first.severity,
            message=f"... {total - MAX_REPORTED} further {code} finding(s) "
            "suppressed",
        )


@lint_pass("graph.broadcast", codes=("RL101",), requires=("dg",))
def check_broadcasts(target: LintTarget) -> Iterable[Diagnostic]:
    """RL101: residual broadcasts above the fan-out threshold.

    The Fig. 4a / Fig. 12 transformation replaces every fan-out by a
    pipeline chain through the consumers; a transformed graph must have
    none left (:func:`repro.core.analysis.is_pipelined`).
    """
    dg = target.dg
    assert dg is not None
    report = find_broadcasts(dg, fanout_threshold=target.fanout_threshold)
    diags = [
        Diagnostic(
            code="RL101",
            severity=Severity.ERROR,
            message=(
                f"value {src!r} port {port!r} is broadcast to {fanout} "
                f"consumers (threshold {target.fanout_threshold})"
            ),
            hint="serialize the fan-out into a chain over the consumers' "
            "forwarding ports (Fig. 12)",
            nodes=(src,),
        )
        for (src, port), fanout in report.sources
    ]
    return _capped(diags, "RL101", len(diags))


def _flow_pos_attr(dg: DependenceGraph) -> str:
    """The embedding the flow-direction claim is stated in.

    The paper's uni-directionality (Figs. 13-16) holds in the *drawing*
    embedding (strips shifted right per level); algorithm front-ends
    attach it as the ``draw`` node attribute.  Fall back to logical
    positions when no drawing exists.
    """
    for _, d in dg.g.nodes(data=True):
        if d.get("draw") is not None:
            return "draw"
    return "pos"


@lint_pass("graph.flow", codes=("RL102",), requires=("dg",))
def check_flow_directions(target: LintTarget) -> Iterable[Diagnostic]:
    """RL102: bi-directional data flow along a position dimension."""
    dg = target.dg
    assert dg is not None
    attr = _flow_pos_attr(dg)
    report = flow_directions(dg, pos_attr=attr)
    diags = []
    for dim in report.bidirectional_dims():
        hist = report.displacements[dim]
        diags.append(
            Diagnostic(
                code="RL102",
                severity=Severity.ERROR,
                message=(
                    f"dimension {dim} of the {attr!r} embedding carries "
                    f"flow in both directions "
                    f"(+1: {hist.get(1, 0)} edges, -1: {hist.get(-1, 0)})"
                ),
                hint="apply the flip transformation (Fig. 13): re-index "
                "node positions so all chains run one way",
            )
        )
    return diags


@lint_pass("graph.regularity", codes=("RL103",), requires=("gg",))
def check_gedge_regularity(target: LintTarget) -> Iterable[Diagnostic]:
    """RL103: irregular (non-nearest-neighbour) communication edges.

    The Fig. 15 irregularity materializes at the G-graph level: a
    G-edge spanning more than one G-space hop needs a wire crossing
    several cells.  The Fig. 15c regularization (delay column) makes
    the winning grouping nearest-neighbour — Fig. 17's G-graph has
    exactly the deltas ``{(0, 1), (1, -1)}`` — while the unregularized
    graph's strip boundary surfaces here as long G-edges.  (The
    primitive graph legitimately keeps one long corner wire per level
    transition even after regularization; the invariant the array
    needs is adjacency of the *grouped* communication.)
    """
    gg = target.gg
    assert gg is not None
    diags = []
    for (r1, c1), (r2, c2) in gg.g.edges:
        dr, dc = r2 - r1, c2 - c1
        if abs(dr) > 1 or abs(dc) > 1:
            weight = gg.g.edges[(r1, c1), (r2, c2)].get("weight", 1)
            diags.append(
                Diagnostic(
                    code="RL103",
                    severity=Severity.ERROR,
                    message=(
                        f"G-edge spans G-space delta ({dr}, {dc}) "
                        f"({weight} value(s)); cells are not neighbours"
                    ),
                    hint="regularize the dependence graph (delay column, "
                    "Fig. 15c) or regroup so communication is "
                    "nearest-neighbour",
                    gsets=((r1, c1), (r2, c2)),
                )
            )
    return _capped(diags, "RL103", len(diags))


@lint_pass("graph.ports", codes=("RL104",), requires=("dg",))
def check_ports(target: LintTarget) -> Iterable[Diagnostic]:
    """RL104: dangling operand references and malformed port sets.

    Re-checks (without raising) what :meth:`DependenceGraph.validate`
    enforces at construction time — mutations applied after
    construction (node deletion, hand-edited wiring) land here.
    """
    dg = target.dg
    assert dg is not None
    diags: list[Diagnostic] = []
    for nid, d in dg.g.nodes(data=True):
        kind = d["kind"]
        operands = d["operands"]
        for role, (src, src_port) in operands.items():
            if src not in dg.g:
                diags.append(
                    Diagnostic(
                        code="RL104",
                        severity=Severity.ERROR,
                        message=(
                            f"operand {role!r} references missing node "
                            f"{src!r}"
                        ),
                        hint="the producer was removed without rewiring "
                        "its consumers",
                        nodes=(nid,),
                    )
                )
            elif src_port != "out" and src_port not in dg.output_ports(src):
                diags.append(
                    Diagnostic(
                        code="RL104",
                        severity=Severity.ERROR,
                        message=(
                            f"operand {role!r} reads port {src_port!r} "
                            f"which producer {src!r} does not expose"
                        ),
                        nodes=(nid,),
                    )
                )
        if kind is NodeKind.OP:
            opcode = d.get("opcode")
            roles = OP_ROLES.get(opcode or "")
            if roles is None:
                diags.append(
                    Diagnostic(
                        code="RL104",
                        severity=Severity.ERROR,
                        message=f"op node has unknown opcode {opcode!r}",
                        nodes=(nid,),
                    )
                )
            elif set(operands) != set(roles):
                diags.append(
                    Diagnostic(
                        code="RL104",
                        severity=Severity.ERROR,
                        message=(
                            f"op node ({opcode}) has roles "
                            f"{sorted(map(str, operands))}, needs "
                            f"{sorted(roles)}"
                        ),
                        nodes=(nid,),
                    )
                )
        elif kind in (NodeKind.PASS, NodeKind.DELAY, NodeKind.OUTPUT):
            if len(operands) != 1:
                diags.append(
                    Diagnostic(
                        code="RL104",
                        severity=Severity.ERROR,
                        message=(
                            f"{kind.value} node has {len(operands)} "
                            "operands (needs exactly 1)"
                        ),
                        nodes=(nid,),
                    )
                )
        elif kind in (NodeKind.INPUT, NodeKind.CONST):
            if operands:
                diags.append(
                    Diagnostic(
                        code="RL104",
                        severity=Severity.ERROR,
                        message=f"source node has {len(operands)} operands",
                        nodes=(nid,),
                    )
                )
        if (
            kind.occupies_slot
            and dg.g.out_degree(nid) == 0
        ):
            diags.append(
                Diagnostic(
                    code="RL104",
                    severity=Severity.WARNING,
                    message="produced value is never consumed (dead node)",
                    hint="prune the node or wire a consumer/output to it",
                    nodes=(nid,),
                )
            )
    return _capped(diags, "RL104", len(diags))


@lint_pass("graph.acyclic", codes=("RL105",), requires=("dg",))
def check_acyclic(target: LintTarget) -> Iterable[Diagnostic]:
    """RL105: cycles in the dependence graph."""
    dg = target.dg
    assert dg is not None
    if nx.is_directed_acyclic_graph(dg.g):
        return []
    cycle = nx.find_cycle(dg.g)
    return [
        Diagnostic(
            code="RL105",
            severity=Severity.ERROR,
            message=(
                f"dependence graph contains a cycle of {len(cycle)} edges"
            ),
            hint="the FPDG must have all loops unfolded; no pipeline "
            "stage may introduce a back edge",
            edges=tuple((u, v) for u, v in cycle[:4]),
        )
    ]
