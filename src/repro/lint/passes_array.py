"""RL3xx — array-level passes over the cycle-accurate execution plan.

These passes re-derive, without running the simulator, the physical
feasibility facts of the target structure: every fire lands on a real
cell and intra-set operands travel over existing links (RL301), the
external-memory taps never take two writes in one cycle (RL302), the
traffic fits the paper's connection count — ``m+1`` for the linear
array, ``2 sqrt(m)`` for the mesh (RL303) — and the host can feed the
schedule within the Fig. 21 ``m/n`` bandwidth (RL304).

The memory-routing model mirrors :mod:`repro.arrays.memory` exactly:
a reference round-trips through memory when producer and consumer are
in different execution regions (G-sets) or on unlinked cells; the word
is written through the producer-side tap one cycle after the producer
fires.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable, Iterable

from ..core.graph import NodeKind
from ..core.metrics import schedule_io_profile, schedule_total_time
from ..arrays.memory import _port_of
from .diagnostics import Diagnostic, Severity
from .passes_graph import _capped
from .registry import LintTarget, lint_pass

__all__: list[str] = []


@lint_pass("array.ports", codes=("RL301",), requires=("dg", "exec_plan"))
def check_array_ports(target: LintTarget) -> Iterable[Diagnostic]:
    """RL301: program/topology mismatches.

    Errors: a node fired on a cell the topology does not have, or a
    slot-occupying node the plan never fires.  Warnings: an operand
    between two cells of the *same* execution region that are not
    linked — the value silently detours through external memory, which
    the paper's intra-set chaining never needs.
    """
    dg, ep = target.dg, target.exec_plan
    assert dg is not None and ep is not None
    topo = ep.topology
    diags: list[Diagnostic] = []
    for nid, (cell, _) in ep.fires.items():
        if not topo.has_cell(cell):
            diags.append(
                Diagnostic(
                    code="RL301",
                    severity=Severity.ERROR,
                    message=(
                        f"node fired on cell {cell!r}, which {topo.name} "
                        "does not have"
                    ),
                    nodes=(nid,),
                    cells=(cell,),
                )
            )
    unfired = [
        nid
        for nid in dg.g.nodes
        if dg.kind(nid).occupies_slot and nid not in ep.fires
    ]
    if unfired:
        diags.append(
            Diagnostic(
                code="RL301",
                severity=Severity.ERROR,
                message=(
                    f"{len(unfired)} slot node(s) are never fired by the "
                    f"plan (first: {unfired[:4]})"
                ),
                nodes=tuple(unfired[:4]),
            )
        )
    region_of = ep.region_of
    for nid in dg.g.nodes:
        fire = ep.fires.get(nid)
        if fire is None:
            continue
        cell = fire[0]
        for ref in dg.operands(nid).values():
            src = ref[0]
            if dg.kind(src) in (NodeKind.INPUT, NodeKind.CONST):
                continue
            pfire = ep.fires.get(src)
            if pfire is None:
                continue  # already reported above
            pcell = pfire[0]
            same_region = (
                not region_of
                or region_of.get(src) == region_of.get(nid)
            )
            if same_region and not (
                cell == pcell or topo.is_neighbor(pcell, cell)
            ):
                diags.append(
                    Diagnostic(
                        code="RL301",
                        severity=Severity.WARNING,
                        message=(
                            f"intra-set operand travels {pcell!r} -> "
                            f"{cell!r}, cells {topo.name} does not link; "
                            "the value detours through external memory"
                        ),
                        hint="re-map the G-set so chained members sit on "
                        "linked cells",
                        nodes=(src, nid),
                        cells=(pcell, cell),
                    )
                )
    return _capped(diags, "RL301", len(diags))


def _memory_events(
    target: LintTarget,
) -> tuple[list[tuple[tuple, Hashable, int, Hashable]], set[Hashable]]:
    """Memory-routed traffic of the plan: write events and read ports.

    Returns ``(writes, read_ports)`` with one
    ``(ref, port, cycle, producing_cell)`` entry per distinct parked
    value.  Same routing rule as
    :func:`repro.arrays.memory.analyze_memory`.
    """
    dg, ep = target.dg, target.exec_plan
    assert dg is not None and ep is not None
    region_of = ep.region_of
    writes: list[tuple[tuple, Hashable, int, Hashable]] = []
    seen: set[tuple] = set()
    read_ports: set[Hashable] = set()
    for nid in dg.g.nodes:
        fire = ep.fires.get(nid)
        if fire is None:
            continue
        cell, _ = fire
        for ref in dg.operands(nid).values():
            src = ref[0]
            if dg.kind(src) in (NodeKind.INPUT, NodeKind.CONST):
                continue
            pfire = ep.fires.get(src)
            if pfire is None:
                continue
            pcell, pt = pfire
            same_region = (
                not region_of
                or region_of.get(src) == region_of.get(nid)
            )
            local = cell == pcell or ep.topology.is_neighbor(pcell, cell)
            if same_region and local:
                continue
            if ref not in seen:
                seen.add(ref)
                writes.append((ref, _port_of(ep, pcell), pt + 1, pcell))
            read_ports.add(_port_of(ep, cell))
    return writes, read_ports


@lint_pass(
    "array.memconflict", codes=("RL302",), requires=("dg", "exec_plan")
)
def check_memory_conflicts(target: LintTarget) -> Iterable[Diagnostic]:
    """RL302: two cells writing through one memory tap in one cycle.

    A single-word-per-cycle tap must serialize such writes (one extra
    buffer stage).  One cell parking several of its output ports in the
    same cycle is a single bundled transfer (the cell's whole output
    register crosses the tap once), so only writes from *distinct*
    producing cells conflict.  Severity *warning*: the shared row taps
    of the mesh (``2 sqrt(m)`` connections for ``m`` cells) make
    occasional collisions inherent to the Fig. 19 wiring, not a broken
    design.
    """
    writes, _ = _memory_events(target)
    by_slot: dict[tuple[Hashable, int], dict[Hashable, tuple]] = {}
    for ref, port, cycle, pcell in writes:
        by_slot.setdefault((port, cycle), {})[pcell] = ref
    diags = [
        Diagnostic(
            code="RL302",
            severity=Severity.WARNING,
            message=(
                f"memory tap {port!r} takes writes from "
                f"{len(cells)} cells in cycle {cycle} "
                f"(cells: {sorted(map(repr, cells))[:3]})"
            ),
            hint="add a one-stage write buffer at the tap or re-map the "
            "colliding producers",
            nodes=tuple(ref[0] for ref in cells.values())[:4],
            cells=tuple(cells)[:4],
        )
        for (port, cycle), cells in sorted(
            by_slot.items(), key=lambda kv: kv[0][1]
        )
        if len(cells) > 1
    ]
    return _capped(diags, "RL302", len(diags))


@lint_pass(
    "array.memports", codes=("RL303",), requires=("dg", "exec_plan")
)
def check_memory_port_bound(target: LintTarget) -> Iterable[Diagnostic]:
    """RL303: traffic uses more memory taps than the array provides.

    The paper's bound: ``m+1`` connections for the linear array
    (Fig. 18), ``2 sqrt(m)`` for the mesh (Fig. 19), carried by
    ``topology.memory_ports``.
    """
    ep = target.exec_plan
    assert ep is not None
    writes, read_ports = _memory_events(target)
    used = {port for _, port, _, _ in writes} | read_ports
    if len(used) <= ep.topology.memory_ports:
        return []
    sample = sorted(map(repr, used))[:6]
    return [
        Diagnostic(
            code="RL303",
            severity=Severity.ERROR,
            message=(
                f"plan routes traffic through {len(used)} memory taps "
                f"but {ep.topology.name} provides only "
                f"{ep.topology.memory_ports} connections "
                f"(taps: {sample}...)"
            ),
            hint="the connection count is the paper's m+1 (linear) / "
            "2*sqrt(m) (mesh) bound; reduce distinct taps or widen "
            "the array",
        )
    ]


@lint_pass(
    "array.iobandwidth",
    codes=("RL304",),
    requires=("plan", "order", "io_bound"),
)
def check_io_bandwidth(target: LintTarget) -> Iterable[Diagnostic]:
    """RL304: host input demand exceeds the declared bandwidth bound.

    The Fig. 21 host interface sustains ``m/n`` words/cycle through the
    R-block chain.  Two static checks: the *aggregate* rate — all
    primary inputs over the whole schedule — must stay within the
    declared bound, and no inter-event window may demand more than the
    chain's physical 1 word/cycle (a bunched schedule forces the host
    to run ahead and park the surplus in R-block memories, which the
    non-aligned and horizontal-policy ablations do by construction).
    Severity *warning*: exceeding the bound needs a faster host or
    deeper R memories than the paper's design point, but the design
    still computes.
    """
    plan, order, bound = target.plan, target.order, target.io_bound
    assert plan is not None and order is not None and bound is not None
    events, total_inputs = schedule_io_profile(plan, order)
    total, _ = schedule_total_time(plan.gg, order)
    diags: list[Diagnostic] = []
    if total > 0 and Fraction(total_inputs, total) > bound:
        diags.append(
            Diagnostic(
                code="RL304",
                severity=Severity.WARNING,
                message=(
                    f"aggregate host demand {total_inputs}/{total} = "
                    f"{Fraction(total_inputs, total)} words/cycle exceeds "
                    f"the declared bound {bound} (Fig. 21: m/n)"
                ),
                hint="use the aligned G-set selection / vertical-path "
                "schedule to space input-consuming G-sets n sets apart",
            )
        )
    worst: tuple[Fraction, int, int] | None = None
    for idx, (t0, _) in enumerate(events[:-1]):
        t1, w_next = events[idx + 1]
        if t1 <= t0:
            continue
        # The next event's words must cross the chain during this window.
        rate = Fraction(w_next, t1 - t0)
        if rate > 1 and (worst is None or rate > worst[0]):
            worst = (rate, t1, w_next)
    if worst is not None:
        rate, t0, w = worst
        diags.append(
            Diagnostic(
                code="RL304",
                severity=Severity.WARNING,
                message=(
                    f"input-consuming G-sets bunch: {w} words for the "
                    f"G-set starting at cycle {t0} arrive over a window "
                    f"sustaining only {float(1 / rate):.2f} of the demand "
                    "at the chain's 1 word/cycle limit"
                ),
                hint="schedule input-consuming G-sets further apart "
                "(vertical-path policy over aligned blocks, Fig. 20a), "
                "or size the R-block preload memories for the surplus",
            )
        )
    return diags
