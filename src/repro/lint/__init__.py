"""Static design checker for the partitioning methodology (``repro.lint``).

The paper's transformation chain *claims* invariants — no broadcasting,
uni-directional flow, regular communication (Sec. 2), causal cut-and-pile
ordering and bounded memory connections (Sec. 3), ``m/n`` host bandwidth
(Fig. 21).  This package proves or refutes each claim statically, in
milliseconds, on the FPDG -> G-graph -> G-set plan -> execution plan
chain, with located diagnostics and stable ``RLxxx`` codes.

Entry points:

* :func:`lint_graph` / :func:`lint_implementation` — turnkey checks;
* :func:`run_lint` over a hand-built :class:`LintTarget` — any subset of
  the chain;
* :func:`preflight` — raise :class:`LintError` on error findings (the
  ``preflight=True`` option of the partitioner and verifier);
* ``python -m repro lint`` — CLI with text/JSON/SARIF output;
* :data:`SHIPPED_CONFIGS` — the designs CI proves clean.

See ``docs/static-analysis.md`` for the diagnostic-code catalogue.
"""

from .diagnostics import (
    Diagnostic,
    LintError,
    LintReport,
    RULE_CATALOG,
    RuleInfo,
    SCHEMA_VERSION,
    Severity,
)
from .registry import LintPass, LintTarget, all_passes, run_lint
from .configs import (
    LintConfig,
    SHIPPED_CONFIGS,
    lint_config,
    lint_graph,
    lint_implementation,
    lint_shipped_configs,
    preflight,
)

__all__ = [
    "Diagnostic",
    "Severity",
    "RuleInfo",
    "RULE_CATALOG",
    "SCHEMA_VERSION",
    "LintError",
    "LintReport",
    "LintPass",
    "LintTarget",
    "all_passes",
    "run_lint",
    "LintConfig",
    "SHIPPED_CONFIGS",
    "lint_config",
    "lint_graph",
    "lint_implementation",
    "lint_shipped_configs",
    "preflight",
]
