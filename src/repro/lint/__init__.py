"""Static design checker for the partitioning methodology (``repro.lint``).

The paper's transformation chain *claims* invariants — no broadcasting,
uni-directional flow, regular communication (Sec. 2), causal cut-and-pile
ordering and bounded memory connections (Sec. 3), ``m/n`` host bandwidth
(Fig. 21).  This package proves or refutes each claim statically, in
milliseconds, on the FPDG -> G-graph -> G-set plan -> execution plan
chain, with located diagnostics and stable ``RLxxx`` codes.

Entry points:

* :func:`lint_graph` / :func:`lint_implementation` — turnkey checks;
* :func:`run_lint` over a hand-built :class:`LintTarget` — any subset of
  the chain;
* :func:`preflight` — raise :class:`LintError` on error findings (the
  ``preflight=True`` option of the partitioner and verifier);
* ``python -m repro lint`` — CLI with text/JSON/SARIF output;
* :data:`SHIPPED_CONFIGS` — the designs CI proves clean.

See ``docs/static-analysis.md`` for the diagnostic-code catalogue.
"""

from .diagnostics import (
    Diagnostic,
    LintError,
    LintReport,
    RULE_CATALOG,
    RuleInfo,
    SCHEMA_VERSION,
    Severity,
)
from .registry import (
    LintPass,
    LintTarget,
    PLANNER_STAGES,
    all_passes,
    run_lint,
)
from .configs import (
    LintConfig,
    SHIPPED_CONFIGS,
    lint_config,
    lint_graph,
    lint_implementation,
    lint_shipped_configs,
    lint_target,
    preflight,
)
from .planner import (
    attach_compiled,
    clear_lint_cache,
    lint_cache_info,
    lint_compiled,
    lint_from_run,
    planner_pass_names,
)
from .baseline import (
    BaselineDiff,
    build_baseline,
    diff_baseline,
    apply_baseline,
    finding_key,
    load_baseline,
    save_baseline,
)

__all__ = [
    "PLANNER_STAGES",
    "lint_target",
    "attach_compiled",
    "clear_lint_cache",
    "lint_cache_info",
    "lint_compiled",
    "lint_from_run",
    "planner_pass_names",
    "BaselineDiff",
    "build_baseline",
    "diff_baseline",
    "apply_baseline",
    "finding_key",
    "load_baseline",
    "save_baseline",
    "Diagnostic",
    "Severity",
    "RuleInfo",
    "RULE_CATALOG",
    "SCHEMA_VERSION",
    "LintError",
    "LintReport",
    "LintPass",
    "LintTarget",
    "all_passes",
    "run_lint",
    "LintConfig",
    "SHIPPED_CONFIGS",
    "lint_config",
    "lint_graph",
    "lint_implementation",
    "lint_shipped_configs",
    "preflight",
]
