"""RL2xx — cut-and-pile passes over the G-set plan and pile order.

Section 3's claim is that once the G-graph is partitioned into G-sets,
"scheduling needs to consider only the dependences between G-sets";
these passes verify that the shipped plan and pile order actually keep
that contract: causal ordering (RL201), balanced G-node computation
times inside each set (RL202), well-formed slot assignment (RL203),
and a pile order that covers every G-set exactly once (RL204).
"""

from __future__ import annotations

from typing import Iterable

from ..core.gsets import GSet
from .diagnostics import Diagnostic, Severity
from .passes_graph import _capped
from .registry import LintTarget, lint_pass

__all__: list[str] = []


def _positions(order: Iterable[GSet]) -> dict[tuple, int]:
    return {s.sid: idx for idx, s in enumerate(order)}


@lint_pass(
    "schedule.causality", codes=("RL201",), requires=("plan", "order")
)
def check_causality(target: LintTarget) -> Iterable[Diagnostic]:
    """RL201: a G-set consumes a value produced by a later G-set.

    Derived directly from the G-edges (not from
    :func:`repro.core.gsets.gset_dependences`, which raises on cyclic
    plans — a lint pass must *report* those, and RL201 on both
    directions of a cycle is exactly that report).
    """
    plan, order = target.plan, target.order
    assert plan is not None and order is not None
    position = _positions(order)
    set_of = plan.set_of
    bad: dict[tuple[tuple, tuple], int] = {}
    for gu, gv in plan.gg.g.edges:
        su, sv = set_of.get(gu), set_of.get(gv)
        if su is None or sv is None or su == sv:
            continue  # uncovered G-nodes are RL203's finding
        pu, pv = position.get(su), position.get(sv)
        if pu is None or pv is None:
            continue  # incomplete orders are RL204's finding
        if pu >= pv:
            bad[(su, sv)] = bad.get((su, sv), 0) + 1
    diags = [
        Diagnostic(
            code="RL201",
            severity=Severity.ERROR,
            message=(
                f"G-set {sv} (pile slot {position[sv]}) consumes "
                f"{count} value(s) produced by G-set {su} "
                f"(pile slot {position[su]})"
            ),
            hint="reorder the pile so every producer set is issued "
            "before its consumers (Sec. 3 cut-and-pile causality)",
            gsets=(su, sv),
        )
        for (su, sv), count in bad.items()
    ]
    return _capped(diags, "RL201", len(diags))


@lint_pass("schedule.balance", codes=("RL202",), requires=("plan",))
def check_balance(target: LintTarget) -> Iterable[Diagnostic]:
    """RL202: G-nodes of one set with unequal computation times.

    The set executes for as long as its slowest member (Sec. 4.1's
    ``t_i = max``), so faster members idle — utilization loss, not an
    illegal design: severity *warning*.
    """
    plan = target.plan
    assert plan is not None
    gg = plan.gg
    diags = []
    for s in plan.gsets:
        times = {gid: gg.gnodes[gid].comp_time for gid in s.gids if gid in gg.gnodes}
        if len(set(times.values())) > 1:
            lo, hi = min(times.values()), max(times.values())
            diags.append(
                Diagnostic(
                    code="RL202",
                    severity=Severity.WARNING,
                    message=(
                        f"G-set {s.sid} mixes computation times "
                        f"{lo}..{hi}; cells idle for "
                        f"{sum(hi - t for t in times.values())} slot(s)"
                    ),
                    hint="regroup so each G-set has equal-time members "
                    "(Fig. 8 requirement b)",
                    gsets=(s.sid,),
                )
            )
    return _capped(diags, "RL202", len(diags))


@lint_pass("schedule.slots", codes=("RL203",), requires=("plan",))
def check_slots(target: LintTarget) -> Iterable[Diagnostic]:
    """RL203: slot conflicts in the G-set plan.

    Four shapes of conflict: two members of one set mapped to the same
    cell, one G-node claimed by several sets, a slot-occupying G-node
    left out of every set, and a cell id outside the array shape.
    """
    plan = target.plan
    assert plan is not None
    diags: list[Diagnostic] = []
    owner: dict[tuple, tuple] = {}
    sr, sc = plan.shape
    for s in plan.gsets:
        seen_cells: dict[object, object] = {}
        for gid, cell in zip(s.gids, s.cells):
            if cell in seen_cells:
                diags.append(
                    Diagnostic(
                        code="RL203",
                        severity=Severity.ERROR,
                        message=(
                            f"G-set {s.sid} maps both {seen_cells[cell]} "
                            f"and {gid} to cell {cell}"
                        ),
                        hint="each cell executes exactly one G-node per "
                        "G-set (Sec. 3)",
                        gsets=(s.sid,),
                        cells=(cell,),
                    )
                )
            seen_cells[cell] = gid
            if gid in owner and owner[gid] != s.sid:
                diags.append(
                    Diagnostic(
                        code="RL203",
                        severity=Severity.ERROR,
                        message=(
                            f"G-node {gid} belongs to G-sets "
                            f"{owner[gid]} and {s.sid}"
                        ),
                        gsets=(owner[gid], s.sid),
                    )
                )
            owner[gid] = s.sid
            if plan.geometry == "mesh":
                ok = (
                    isinstance(cell, tuple)
                    and len(cell) == 2
                    and 0 <= cell[0] < sr
                    and 0 <= cell[1] < sc
                )
            else:
                ok = isinstance(cell, int) and 0 <= cell < plan.m
            if not ok:
                diags.append(
                    Diagnostic(
                        code="RL203",
                        severity=Severity.ERROR,
                        message=(
                            f"G-set {s.sid} assigns cell id {cell!r}, "
                            f"outside the {plan.geometry} array shape "
                            f"{plan.shape}"
                        ),
                        gsets=(s.sid,),
                        cells=(cell,),
                    )
                )
    uncovered = [g for g in plan.gg.gnodes if g not in owner]
    if uncovered:
        diags.append(
            Diagnostic(
                code="RL203",
                severity=Severity.ERROR,
                message=(
                    f"{len(uncovered)} G-node(s) belong to no G-set "
                    f"(first: {uncovered[:4]})"
                ),
                hint="every G-node must be piled onto the array exactly "
                "once",
            )
        )
    return _capped(diags, "RL203", len(diags))


@lint_pass(
    "schedule.coverage", codes=("RL204",), requires=("plan", "order")
)
def check_order_coverage(target: LintTarget) -> Iterable[Diagnostic]:
    """RL204: pile order does not cover the plan's G-sets exactly once."""
    plan, order = target.plan, target.order
    assert plan is not None and order is not None
    planned = {s.sid for s in plan.gsets}
    seen: set[tuple] = set()
    diags: list[Diagnostic] = []
    for s in order:
        if s.sid in seen:
            diags.append(
                Diagnostic(
                    code="RL204",
                    severity=Severity.ERROR,
                    message=f"G-set {s.sid} appears twice in the pile order",
                    gsets=(s.sid,),
                )
            )
        seen.add(s.sid)
        if s.sid not in planned:
            diags.append(
                Diagnostic(
                    code="RL204",
                    severity=Severity.ERROR,
                    message=(
                        f"pile order contains G-set {s.sid} that is not "
                        "in the plan"
                    ),
                    gsets=(s.sid,),
                )
            )
    missing = sorted(planned - seen)
    if missing:
        diags.append(
            Diagnostic(
                code="RL204",
                severity=Severity.ERROR,
                message=(
                    f"{len(missing)} planned G-set(s) missing from the "
                    f"pile order (first: {missing[:4]})"
                ),
                gsets=tuple(missing[:4]),
            )
        )
    return _capped(diags, "RL204", len(diags))
