"""Lint target model and the pass registry/runner.

A :class:`LintTarget` bundles whatever artefacts of the
FPDG -> G-graph -> G-set plan -> execution plan chain exist for one
design.  Passes declare, via ``requires``, which artefacts they read;
the runner executes every registered pass whose requirements the target
satisfies and skips the rest (a graph-only target runs only the RL1xx
passes, a full partitioned implementation runs everything).

Passes never raise on bad designs — that is the whole point: they
*report*.  If a pass does raise (a checker bug), the runner converts
the exception into an ``RL001`` error so one broken pass cannot hide
the findings of the others.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from ..obs import runlog
from ..obs.metrics import get_registry
from .diagnostics import Diagnostic, LintReport, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from ..arrays.plan import ExecutionPlan
    from ..arrays.vector_compile import CompiledPlan
    from ..core.ggraph import GGraph
    from ..core.graph import DependenceGraph
    from ..core.gsets import GSet, GSetPlan
    from ..core.partitioner import PartitionedImplementation
    from ..core.semiring import Semiring
    from ..resilience.checkpoint import RecoveryPlan
    from ..resilience.runtime import RecoveryPolicy

__all__ = [
    "LintTarget",
    "LintPass",
    "lint_pass",
    "all_passes",
    "run_lint",
    "PLANNER_STAGES",
    "stage_of",
]


@dataclass
class LintTarget:
    """The artefacts of one design, any subset of the chain.

    Attributes
    ----------
    dg:
        The (transformed) dependence graph.
    gg:
        The G-graph derived from ``dg``.
    plan:
        The G-set selection.
    order:
        The pile (schedule) order of the G-sets.
    exec_plan:
        The cycle-level execution plan (cells, fire cycles, topology).
    io_bound:
        Host bandwidth bound in words/cycle for RL304 (the paper's
        ``m/n`` for transitive closure); ``None`` disables the check
        against the paper bound (the physical <= 1 word/cycle chain
        limit is still enforced).
    fanout_threshold:
        Fan-out above which RL101 reports a broadcast (2 matches
        :func:`repro.core.analysis.is_pipelined`).
    recovery:
        A mid-run :class:`repro.resilience.checkpoint.RecoveryPlan` for
        the RL4xx resilience passes; the resilience runtime lints one
        before resuming on a degraded array.
    policy:
        A :class:`repro.resilience.runtime.RecoveryPolicy` for RL402
        (policy soundness); the resilience runtime lints the policy as
        a preflight before the first G-set executes.
    compiled:
        The compiled NumPy value program
        (:class:`repro.arrays.vector_compile.CompiledPlan`) for the
        RL5xx plan-verification and RL6xx static-cost passes; attach it
        via :func:`repro.lint.planner.attach_compiled` or pass one
        corrupted by the miscompile corpus.
    semiring:
        The algebra the value program was compiled against (defaults to
        the compiled plan's own when ``None``).
    """

    description: str = "design"
    dg: "DependenceGraph | None" = None
    gg: "GGraph | None" = None
    plan: "GSetPlan | None" = None
    order: "Sequence[GSet] | None" = None
    exec_plan: "ExecutionPlan | None" = None
    io_bound: Fraction | None = None
    fanout_threshold: int = 2
    recovery: "RecoveryPlan | None" = None
    policy: "RecoveryPolicy | None" = None
    compiled: "CompiledPlan | None" = None
    semiring: "Semiring | None" = None

    @classmethod
    def from_graph(
        cls, dg: "DependenceGraph", description: str | None = None
    ) -> "LintTarget":
        """Target exposing only the dependence graph (RL1xx passes)."""
        return cls(description=description or dg.name, dg=dg)

    @classmethod
    def from_implementation(
        cls,
        impl: "PartitionedImplementation",
        description: str | None = None,
        io_bound: Fraction | None = None,
        build_exec_plan: bool = True,
    ) -> "LintTarget":
        """Target covering the full chain of a partitioned implementation.

        ``build_exec_plan=False`` skips the (lazily built, relatively
        expensive) cycle-level plan, disabling the RL3xx array passes.
        """
        return cls(
            description=description
            or f"{impl.dg.name} -> {impl.plan.geometry}(m={impl.plan.m})",
            dg=impl.dg,
            gg=impl.gg,
            plan=impl.plan,
            order=list(impl.order),
            exec_plan=impl.exec_plan if build_exec_plan else None,
            io_bound=io_bound,
        )


PassFn = Callable[[LintTarget], Iterable[Diagnostic]]


@dataclass(frozen=True)
class LintPass:
    """One registered analysis pass."""

    name: str
    codes: tuple[str, ...]
    requires: tuple[str, ...]
    fn: PassFn = field(repr=False)

    def applicable(self, target: LintTarget) -> bool:
        """True when the target supplies every required artefact."""
        return all(getattr(target, req) is not None for req in self.requires)


#: Passes execute stage by stage (graph -> schedule -> array); within a
#: stage, registration order.  The stage sort makes execution order
#: independent of which pass module happens to be imported first.
_REGISTRY: dict[str, LintPass] = {}

_STAGE_ORDER = {
    "graph": 0,
    "schedule": 1,
    "array": 2,
    "recovery": 3,
    "plan": 4,
    "cost": 5,
}

#: Stages that read the compiled value program (the ``--planner`` tiers).
PLANNER_STAGES = frozenset({"plan", "cost"})


def stage_of(pass_name: str) -> str:
    """The stage prefix of a pass name (``"plan.coverage"`` -> ``"plan"``)."""
    return pass_name.split(".", 1)[0]


def _ordered(passes: Iterable[LintPass]) -> list[LintPass]:
    return sorted(
        passes,
        key=lambda lp: _STAGE_ORDER.get(lp.name.split(".", 1)[0], len(_STAGE_ORDER)),
    )


def lint_pass(
    name: str, codes: Sequence[str], requires: Sequence[str]
) -> Callable[[PassFn], PassFn]:
    """Decorator registering a pass under ``name``.

    ``codes`` documents which diagnostic codes the pass may emit;
    ``requires`` names the :class:`LintTarget` attributes it reads.
    """

    def register(fn: PassFn) -> PassFn:
        if name in _REGISTRY:
            raise ValueError(f"lint pass {name!r} registered twice")
        _REGISTRY[name] = LintPass(
            name=name, codes=tuple(codes), requires=tuple(requires), fn=fn
        )
        return fn

    return register


def all_passes() -> tuple[LintPass, ...]:
    """Every registered pass, in execution order."""
    _ensure_loaded()
    return tuple(_ordered(_REGISTRY.values()))


def _ensure_loaded() -> None:
    """Import the pass modules so their registrations run.

    Import order is registration order is execution order:
    graph -> schedule -> array -> recovery -> plan -> cost.
    """
    from . import passes_graph  # noqa: F401
    from . import passes_schedule  # noqa: F401
    from . import passes_array  # noqa: F401
    from . import passes_recovery  # noqa: F401
    from . import passes_plan  # noqa: F401
    from . import passes_cost  # noqa: F401


def run_lint(
    target: LintTarget,
    passes: Sequence[str] | None = None,
    record_metrics: bool = True,
) -> LintReport:
    """Run every applicable pass over ``target`` and collect the findings.

    Parameters
    ----------
    passes:
        Optional subset of pass names to run (unknown names raise).
    record_metrics:
        When true (default), lint summary counters are incremented on
        the process-wide metrics registry
        (``repro_lint_runs_total`` / ``repro_lint_findings_total``).
    """
    _ensure_loaded()
    if passes is not None:
        unknown = [p for p in passes if p not in _REGISTRY]
        if unknown:
            raise KeyError(
                f"unknown lint pass(es): {unknown}; "
                f"available: {sorted(_REGISTRY)}"
            )
        want = set(passes)
        selected = [lp for lp in _ordered(_REGISTRY.values()) if lp.name in want]
    else:
        selected = _ordered(_REGISTRY.values())

    report = LintReport(target=target.description)
    ran: list[str] = []
    skipped: list[str] = []
    for lp in selected:
        if not lp.applicable(target):
            skipped.append(lp.name)
            continue
        try:
            report.extend(lp.fn(target))
        except Exception as exc:  # checker bug, never a design property
            report.extend(
                [
                    Diagnostic(
                        code="RL001",
                        severity=Severity.ERROR,
                        message=(
                            f"pass {lp.name!r} crashed: "
                            f"{type(exc).__name__}: {exc}"
                        ),
                        hint="this is a checker bug, not a design finding",
                    )
                ]
            )
        ran.append(lp.name)
    report.passes_run = tuple(ran)
    report.passes_skipped = tuple(skipped)
    runlog.emit(
        "lint", target=target.description, ok=report.ok,
        errors=len(report.errors), warnings=len(report.warnings),
        passes=len(ran),
    )

    if record_metrics:
        reg = get_registry()
        reg.counter(
            "repro_lint_runs_total", "static design checker invocations"
        ).inc()
        findings = reg.counter(
            "repro_lint_findings_total", "lint findings by code and severity"
        )
        for d in report.diagnostics:
            findings.inc(code=d.code, severity=d.severity.value)
    return report
