"""The shared diagnostic model of the static design checker.

Every lint pass reports findings through one vocabulary: a
:class:`Diagnostic` carries a stable code (``RL101``), a severity, a
location expressed in the IR's own coordinates (node / edge / G-set /
cell ids — there are no files and line numbers in a dependence graph),
a human message, and a fix hint.  :class:`LintReport` aggregates the
findings of one run and renders them as terminal text, as a
versioned-JSON artefact (matching the benchmark-artefact convention),
or as SARIF 2.1.0 for code-scanning UIs.

Severity semantics
------------------
``error``
    The design violates an invariant the paper's method *requires*
    (causality, acyclicity, port feasibility).  Simulating it would
    fail or silently compute the wrong thing; CI gates on these.
``warning``
    The design works but pays for it (time mixing, port contention,
    residual irregularity) — the paper's "might not use all cells"
    class of findings.
``info``
    Census facts useful in review but not actionable by themselves.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Iterator

__all__ = [
    "Severity",
    "Diagnostic",
    "LintReport",
    "LintError",
    "RuleInfo",
    "RULE_CATALOG",
    "SCHEMA_VERSION",
    "SARIF_VERSION",
    "HELP_URI_BASE",
]

#: Schema version stamped into the ``--format json`` artefact (the PR 2
#: convention: every machine-readable artefact is versioned).
#: v2: findings are deduplicated (preflight + explicit CLI runs in one
#: process used to repeat identical diagnostics), and each finding
#: carries a ``suggestion`` field (machine-actionable fix).
SCHEMA_VERSION = 2

#: Stable anchor base for SARIF ``helpUri`` rule links.
HELP_URI_BASE = (
    "https://example.invalid/repro/docs/static-analysis.md"
)

#: SARIF spec version emitted by :meth:`LintReport.to_sarif`.
SARIF_VERSION = "2.1.0"


class Severity(enum.Enum):
    """Finding severity, ordered ``info < warning < error``."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        """Numeric rank for comparisons (error is highest)."""
        return {"info": 0, "warning": 1, "error": 2}[self.value]

    @property
    def sarif_level(self) -> str:
        """The SARIF ``level`` string for this severity."""
        return {"info": "note", "warning": "warning", "error": "error"}[self.value]


def _fmt_id(x: Hashable) -> str:
    """Render an IR id (often a tuple) as a compact stable string."""
    if isinstance(x, tuple):
        return "(" + ",".join(_fmt_id(e) for e in x) + ")"
    return str(x)


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one lint pass.

    Location fields name IR entities, not files: ``nodes`` are
    dependence-graph node ids, ``edges`` are ``(producer, consumer)``
    pairs, ``gsets`` are G-set (or G-node) ids, ``cells`` are array
    cell ids.  Any subset may be empty.

    ``hint`` explains the finding; ``suggestion`` is the concrete fix
    action (rendered as a SARIF ``fixes`` entry so code-scanning UIs
    can offer it), e.g. "recompile the plan with compile_plan()".
    """

    code: str
    severity: Severity
    message: str
    hint: str = ""
    suggestion: str = ""
    nodes: tuple[Hashable, ...] = ()
    edges: tuple[tuple[Hashable, Hashable], ...] = ()
    gsets: tuple[Hashable, ...] = ()
    cells: tuple[Hashable, ...] = ()

    def location(self) -> str:
        """Human-readable one-line location string (may be empty)."""
        parts = []
        if self.nodes:
            parts.append("node " + ", ".join(_fmt_id(n) for n in self.nodes[:4]))
        if self.edges:
            parts.append(
                "edge "
                + ", ".join(
                    f"{_fmt_id(u)}->{_fmt_id(v)}" for u, v in self.edges[:4]
                )
            )
        if self.gsets:
            parts.append("G-set " + ", ".join(_fmt_id(s) for s in self.gsets[:4]))
        if self.cells:
            parts.append("cell " + ", ".join(_fmt_id(c) for c in self.cells[:4]))
        return "; ".join(parts)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe rendering (ids stringified)."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "hint": self.hint,
            "suggestion": self.suggestion,
            "nodes": [_fmt_id(n) for n in self.nodes],
            "edges": [[_fmt_id(u), _fmt_id(v)] for u, v in self.edges],
            "gsets": [_fmt_id(s) for s in self.gsets],
            "cells": [_fmt_id(c) for c in self.cells],
        }


@dataclass(frozen=True)
class RuleInfo:
    """Catalogue entry for one diagnostic code (see docs/static-analysis.md)."""

    code: str
    summary: str
    invariant: str
    paper_ref: str
    hint: str


#: The diagnostic-code catalogue.  ``docs/static-analysis.md`` mirrors this
#: table; SARIF output embeds it as the tool's rule metadata.
RULE_CATALOG: dict[str, RuleInfo] = {
    r.code: r
    for r in (
        RuleInfo(
            "RL001",
            "lint pass crashed",
            "every lint pass must complete on any input design",
            "-",
            "this is a checker bug; report it with the design that triggered it",
        ),
        RuleInfo(
            "RL101",
            "residual data broadcast",
            "no value fans out to more consumers than the pipelining "
            "threshold allows",
            "Sec. 2 / Figs. 4a, 12",
            "serialize the broadcast into a pipeline chain through the "
            "consumers (forwarding ports)",
        ),
        RuleInfo(
            "RL102",
            "bi-directional data flow",
            "in the drawing embedding, every communication axis carries "
            "flow in one direction only",
            "Sec. 2 / Figs. 4c, 13-14",
            "flip node positions across the broadcast sources (cyclic "
            "re-indexing) until all edges agree in sign",
        ),
        RuleInfo(
            "RL103",
            "long / irregular communication edge",
            "every G-edge connects nearest neighbours in G-space (one "
            "physical link between the executing cells)",
            "Sec. 2 / Figs. 4b, 15-17",
            "regularize the graph with delay (transmission) nodes "
            "(Fig. 15c) so the grouping yields unit-hop G-edges",
        ),
        RuleInfo(
            "RL104",
            "dangling or malformed port",
            "every operand role is wired to an existing producer; every "
            "produced value that must be read is read",
            "Sec. 1 (the FPDG is a complete wiring)",
            "rewire the consumer at an existing producer port, or remove "
            "the dead producer",
        ),
        RuleInfo(
            "RL105",
            "dependence cycle",
            "the fully-parallel dependence graph is acyclic (all loops "
            "unfolded)",
            "Sec. 1",
            "unfold the loop the cycle came from; a combinational array "
            "cannot evaluate a cyclic dependence",
        ),
        RuleInfo(
            "RL201",
            "cut-and-pile causality violation",
            "no G-set consumes a value produced by a later G-set in the "
            "pile order",
            "Sec. 2-3 / Figs. 7, 20",
            "re-schedule with a legal policy (list scheduling over the "
            "G-set dependence DAG)",
        ),
        RuleInfo(
            "RL202",
            "unbalanced G-set computation times",
            "all G-nodes of one G-set share one computation time "
            "(maximal utilization)",
            "Sec. 2 / Figs. 8, 22",
            "regroup along uniform-time paths, or accept the reported "
            "time-mixing loss",
        ),
        RuleInfo(
            "RL203",
            "G-set slot conflict",
            "every G-node is executed by exactly one cell of exactly one "
            "G-set, and every cell index exists",
            "Sec. 2 step 3",
            "fix the G-set selection so sets partition the G-graph and "
            "cells are assigned injectively",
        ),
        RuleInfo(
            "RL204",
            "pile order malformed",
            "the schedule issues every G-set exactly once",
            "Sec. 3",
            "rebuild the order from the scheduler instead of editing it "
            "by hand",
        ),
        RuleInfo(
            "RL301",
            "program/topology port mismatch",
            "every firing sits on an existing cell, and same-region "
            "operands travel over links the topology provides",
            "Sec. 3 / Figs. 17-19",
            "match the execution plan's geometry to the topology (or add "
            "the missing link/delay hop)",
        ),
        RuleInfo(
            "RL302",
            "memory port write-write conflict",
            "no external-memory tap takes same-cycle writes from two "
            "different cells",
            "Sec. 3 / Figs. 18-19",
            "widen the port, stagger the producers, or re-block so "
            "simultaneous writers use different taps",
        ),
        RuleInfo(
            "RL303",
            "external-memory connection bound exceeded",
            "the design uses at most the paper's memory connections "
            "(m+1 linear, 2*sqrt(m) mesh)",
            "Sec. 3 / Figs. 18-19",
            "route parked values through the boundary taps; do not add "
            "per-cell memories",
        ),
        RuleInfo(
            "RL304",
            "host I/O demand exceeds bandwidth bound",
            "steady-state host demand stays within the m/n words/cycle "
            "the R-block chain provides",
            "Sec. 4.2 / Fig. 21",
            "use the aligned (skew-blocked) G-set selection and the "
            "vertical-path schedule so input G-sets are spaced apart",
        ),
        RuleInfo(
            "RL401",
            "recovery plan unsound",
            "a mid-run resume fires only uncommitted nodes, maps every "
            "logical cell onto a surviving physical cell, and (with the "
            "checkpointed nodes) still covers the whole computation",
            "Sec. 5 (degraded linear/mesh operation)",
            "rebuild the resume from the checkpoint store and the "
            "re-partitioned G-set plan; never edit a recovery plan by hand",
        ),
        RuleInfo(
            "RL402",
            "recovery policy unsound",
            "a recovery policy bounds its backoff growth, keeps the "
            "quarantine threshold reachable within one G-set's attempt "
            "budget, and prices the degradation tier at a positive "
            "host cost",
            "Sec. 5 (degraded linear/mesh operation)",
            "fix the offending knob; quarantine_strikes=0 disables the "
            "escalation ladder and degrade=False the degradation tier",
        ),
        RuleInfo(
            "RL501",
            "value-program slot coverage broken",
            "every scheduled OP firing appears in exactly one depth-batch "
            "of the compiled value program, every slot has exactly one "
            "producer, and the program's inputs/outputs match the graph's",
            "Sec. 3 (the plan executes every node once)",
            "recompile with compile_plan(); never edit a CompiledPlan's "
            "slot or step arrays by hand",
        ),
        RuleInfo(
            "RL502",
            "depth-batch causality violation",
            "no batch reads a slot produced by the same or a later batch "
            "in replay order (batches execute in dependence-depth order)",
            "Sec. 1-3 (dataflow order is preserved by the compile)",
            "recompile with compile_plan(); depth batching derives the "
            "batch order from the dependence graph, not from the editor",
        ),
        RuleInfo(
            "RL503",
            "semiring-step typing mismatch",
            "every batch opcode has batched semantics, carries the "
            "operand roles its semantics function expects, is legal on "
            "the semiring's dtype, and the program's opcode census "
            "matches the graph's",
            "Sec. 1 (algorithm algebra) / PR 5 (VECTOR_OPCODES)",
            "recompile against the intended semiring; field opcodes "
            "(div/recip/...) need a float or complex dtype",
        ),
        RuleInfo(
            "RL504",
            "scatter/gather index out of bounds",
            "every slot index the program scatters or gathers (inputs, "
            "constants, batch operands/outputs, graph outputs) lies in "
            "[0, n_slots) and index arrays are integral and consistent",
            "- (memory-safety of the replay)",
            "recompile with compile_plan(); an out-of-range index would "
            "read or write outside the value array",
        ),
        RuleInfo(
            "RL505",
            "unexpected vector-fallback reason",
            "every repro_vector_fallback_total reason recorded this "
            "process is one the backend documents (probe, inject, "
            "unvectorizable)",
            "- (PR 5 fallback contract)",
            "an unknown reason means a new fallback path shipped without "
            "being audited; add it to ALLOWED_FALLBACK_REASONS after "
            "review or fix the caller",
        ),
        RuleInfo(
            "RL601",
            "makespan disagrees with the critical-path bound",
            "the recorded makespan never undercuts the constraint DAG's "
            "critical-path lower bound, and the compiled plan's recorded "
            "makespan equals the execution plan's",
            "Sec. 3-4 (cycle-accurate timing model)",
            "recompile the plan; a makespan below the critical path is "
            "unexecutable, and slack above it means the schedule idles",
        ),
        RuleInfo(
            "RL602",
            "recorded static measure mismatch",
            "the compiled plan's recorded busy/useful counts and memory "
            "traffic equal an independent recount over the schedule "
            "(same timing rules as the reference interpreter)",
            "Sec. 3 / Figs. 18-19 (memory traffic model)",
            "recompile with compile_plan(); downstream perf gates and "
            "dashboards trust these recorded measures",
        ),
        RuleInfo(
            "RL603",
            "host I/O demand exceeds the Fig. 21 bound (static)",
            "the compiled plan's aggregate input demand (words per "
            "cycle over the whole run) stays within the m/n words/cycle "
            "the R-block chain provides",
            "Sec. 4.2 / Fig. 21",
            "use the aligned G-set selection and the vertical-path "
            "schedule so input G-sets are spaced apart",
        ),
        RuleInfo(
            "RL604",
            "value program fragments into narrow batches",
            "the batched replay pays per-step dispatch overhead; many "
            "narrow depth-batches forfeit the vector backend's advantage",
            "- (PR 5 performance model)",
            "regroup the computation (wider G-sets, fewer depth levels) "
            "or run this design on the reference interpreter",
        ),
        RuleInfo(
            "RL605",
            "chronic cell underutilization",
            "cells spend most cycles idle (busy well below cells x "
            "makespan) - the paper's 'might not use all cells' loss",
            "Sec. 2 / Figs. 8, 22",
            "choose m closer to a divisor of the G-graph width, or "
            "regroup along uniform-time paths",
        ),
        RuleInfo(
            "RL606",
            "host-bandwidth headroom exhausted",
            "aggregate input demand approaches the Fig. 21 bound so "
            "closely that any schedule perturbation would starve cells",
            "Sec. 4.2 / Fig. 21",
            "increase the spacing of input G-sets in the pile order or "
            "provision the next m (more R-blocks) before growing n",
        ),
    )
}


class LintError(RuntimeError):
    """Raised by ``preflight=True`` entry points when lint finds errors.

    Carries the full :class:`LintReport` on ``.report`` so callers can
    render or serialize the findings.
    """

    def __init__(self, report: "LintReport") -> None:
        self.report = report
        errs = report.errors
        head = "; ".join(
            f"{d.code}: {d.message}" for d in errs[:3]
        )
        more = f" (+{len(errs) - 3} more)" if len(errs) > 3 else ""
        super().__init__(
            f"static design check failed with {len(errs)} error(s): {head}{more}"
        )


@dataclass
class LintReport:
    """All findings of one checker run over one design."""

    target: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    passes_run: tuple[str, ...] = ()
    passes_skipped: tuple[str, ...] = ()

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        """Error-severity findings (these gate CI)."""
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        """Warning-severity findings."""
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def infos(self) -> list[Diagnostic]:
        """Info-severity findings."""
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    @property
    def ok(self) -> bool:
        """True when no error-severity finding exists."""
        return not self.errors

    def codes(self) -> set[str]:
        """Distinct diagnostic codes present in this report."""
        return {d.code for d in self.diagnostics}

    def by_code(self, code: str) -> list[Diagnostic]:
        """All findings with the given code."""
        return [d for d in self.diagnostics if d.code == code]

    def counts(self) -> dict[str, int]:
        """``{severity: count}`` summary."""
        return {
            "error": len(self.errors),
            "warning": len(self.warnings),
            "info": len(self.infos),
        }

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        """Append findings (used by the pass runner)."""
        self.diagnostics.extend(diags)

    def unique_diagnostics(self) -> list[Diagnostic]:
        """Findings with exact duplicates removed, first occurrence wins.

        A preflight hook and an explicit CLI run in the same process can
        both report the same finding over the same design; the JSON and
        SARIF artefacts deduplicate so consumers do not double-count
        (schema v2 behaviour).
        """
        return list(dict.fromkeys(self.diagnostics))

    # ------------------------------------------------------------------
    # Renderers
    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """Terminal rendering: one line per finding plus a summary."""
        lines = [f"lint: {self.target}"]
        order = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}
        for d in sorted(
            self.diagnostics, key=lambda d: (order[d.severity], d.code)
        ):
            loc = d.location()
            lines.append(
                f"  {d.severity.value:>7} {d.code} {d.message}"
                + (f" [{loc}]" if loc else "")
            )
            if d.hint:
                lines.append(f"          hint: {d.hint}")
            if d.suggestion:
                lines.append(f"           fix: {d.suggestion}")
        c = self.counts()
        lines.append(
            f"  {c['error']} error(s), {c['warning']} warning(s), "
            f"{c['info']} info(s); passes run: {len(self.passes_run)}"
            + (f", skipped: {len(self.passes_skipped)}" if self.passes_skipped else "")
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """Versioned JSON-safe document (the ``--format json`` artefact).

        Findings are deduplicated (:meth:`unique_diagnostics`) and the
        summary counts the deduplicated findings, so the artefact is
        stable no matter how many times the same pass reported over the
        same design in this process.
        """
        uniq = self.unique_diagnostics()
        return {
            "version": SCHEMA_VERSION,
            "target": self.target,
            "summary": {
                "error": sum(
                    1 for d in uniq if d.severity is Severity.ERROR
                ),
                "warning": sum(
                    1 for d in uniq if d.severity is Severity.WARNING
                ),
                "info": sum(1 for d in uniq if d.severity is Severity.INFO),
            },
            "ok": self.ok,
            "passes_run": list(self.passes_run),
            "passes_skipped": list(self.passes_skipped),
            "findings": [d.to_dict() for d in uniq],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """``json.dumps`` of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_sarif(self) -> dict[str, Any]:
        """SARIF 2.1.0 document (one run, logical locations only).

        Rules carry ``name``/``helpUri``/full descriptions and results
        carry ``fixes`` (from :attr:`Diagnostic.suggestion`) so the
        artefact is consumable by GitHub code scanning.  Results are
        deduplicated like the JSON artefact.
        """
        rules = [
            {
                "id": info.code,
                "name": info.summary.title().replace(" ", "").replace(
                    "-", ""
                ).replace("/", ""),
                "shortDescription": {"text": info.summary},
                "fullDescription": {
                    "text": f"{info.invariant} (paper: {info.paper_ref})"
                },
                "help": {"text": info.hint},
                "helpUri": f"{HELP_URI_BASE}#{info.code.lower()}",
            }
            for info in sorted(RULE_CATALOG.values(), key=lambda r: r.code)
        ]
        results = []
        for d in self.unique_diagnostics():
            logical = []
            for n in d.nodes:
                logical.append({"name": _fmt_id(n), "kind": "member"})
            for u, v in d.edges:
                logical.append(
                    {"name": f"{_fmt_id(u)}->{_fmt_id(v)}", "kind": "member"}
                )
            for s in d.gsets:
                logical.append({"name": _fmt_id(s), "kind": "module"})
            for c in d.cells:
                logical.append({"name": _fmt_id(c), "kind": "module"})
            result: dict[str, Any] = {
                "ruleId": d.code,
                "level": d.severity.sarif_level,
                "message": {
                    "text": d.message + (f" Hint: {d.hint}" if d.hint else "")
                },
            }
            if logical:
                result["locations"] = [{"logicalLocations": logical}]
            if d.suggestion:
                result["fixes"] = [
                    {"description": {"text": d.suggestion}}
                ]
            results.append(result)
        return {
            "version": SARIF_VERSION,
            "$schema": (
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json"
            ),
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-lint",
                            "version": f"{SCHEMA_VERSION}.0.0",
                            "informationUri": (
                                "https://example.invalid/repro/docs/"
                                "static-analysis.md"
                            ),
                            "rules": rules,
                        }
                    },
                    "properties": {"target": self.target},
                    "results": results,
                }
            ],
        }

    def to_sarif_json(self, indent: int | None = 2) -> str:
        """``json.dumps`` of :meth:`to_sarif`."""
        return json.dumps(self.to_sarif(), indent=indent, sort_keys=True)
