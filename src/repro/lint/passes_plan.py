"""RL5xx — plan-verification passes over the compiled value program.

The vector backend (:mod:`repro.arrays.vector_compile`) compiles an
execution plan into a dense NumPy value program: slots for every
produced value and OP firings batched by ``(depth, opcode)``.  These
passes abstractly interpret that program against the schedule/graph IR
without replaying a single value:

* ``plan.coverage`` (RL501) — every scheduled OP firing lands in
  exactly one depth-batch, every slot has exactly one producer, and the
  program's inputs/outputs are the graph's.
* ``plan.causality`` (RL502) — replaying the batches in order never
  reads a slot that has not been produced yet (depth-batch causality).
* ``plan.typing`` (RL503) — every batch opcode has batched semantics,
  carries the roles its semantics function expects, is legal on the
  semiring dtype, and the opcode census matches the graph.
* ``plan.bounds`` (RL504) — every scatter/gather index is integral and
  in ``[0, n_slots)``; index arrays are mutually consistent.
* ``plan.fallbacks`` (RL505) — every ``repro_vector_fallback_total``
  reason recorded this process is a documented one.

Together with the RL6xx cost passes this is the static half of the
backend-equivalence guarantee: the dynamic half (CI's ``backend`` job)
replays values, this half proves the program *shape* faithful.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Iterable

import numpy as np

from ..arrays.vector_compile import VECTOR_OPCODES, _FIELD_DTYPE_KINDS
from ..arrays.vector_sim import ALLOWED_FALLBACK_REASONS
from ..core.evaluate import OPCODE_SEMANTICS
from ..core.graph import NodeKind
from ..obs.metrics import get_registry
from .diagnostics import Diagnostic, Severity
from .passes_graph import _capped
from .registry import LintTarget, lint_pass

__all__: list[str] = []

#: The fix every structural RL5xx finding suggests: the program is
#: derived state, so the remedy is always to re-derive it.
_RECOMPILE = (
    "recompile with compile_plan(plan, dg, semiring); do not edit the "
    "compiled program"
)

#: Operand roles each batched opcode's semantics function expects
#: (mirrors the lambdas in :data:`repro.core.evaluate.OPCODE_SEMANTICS`).
OPCODE_ROLES: dict[str, frozenset[str]] = {
    "mac": frozenset({"a", "b", "c"}),
    "add": frozenset({"a", "b"}),
    "sub": frozenset({"a", "b"}),
    "mul": frozenset({"a", "b"}),
    "div": frozenset({"a", "b"}),
    "msub": frozenset({"a", "b", "c"}),
    "neg": frozenset({"a"}),
    "recip": frozenset({"a"}),
}


def _op_nodes(target: LintTarget) -> list[Hashable]:
    """The graph's OP node ids (the firings the program must batch)."""
    assert target.dg is not None
    node_data = target.dg.g.nodes
    return [
        nid
        for nid in target.dg.g.nodes
        if node_data[nid]["kind"] is NodeKind.OP
    ]


@lint_pass(
    "plan.coverage", codes=("RL501",), requires=("dg", "exec_plan", "compiled")
)
def check_slot_coverage(target: LintTarget) -> Iterable[Diagnostic]:
    """RL501: slot coverage of the compiled value program.

    The slot array must partition exactly into input slots, constant
    slots and one batch output per OP node; a dropped or doubled slot
    means a firing the schedule ordered would never (or twice) be
    evaluated.
    """
    dg, cp = target.dg, target.compiled
    assert dg is not None and cp is not None
    diags: list[Diagnostic] = []

    def err(message: str, nodes: tuple[Hashable, ...] = ()) -> None:
        diags.append(
            Diagnostic(
                code="RL501",
                severity=Severity.ERROR,
                message=message,
                suggestion=_RECOMPILE,
                nodes=nodes,
            )
        )

    op_count = len(_op_nodes(target))
    step_out = [int(i) for step in cp.steps for i in step.out_idx]
    if len(step_out) != op_count:
        err(
            f"{op_count} scheduled OP firing(s) but the program batches "
            f"{len(step_out)} output(s)"
        )
    dup = [slot for slot, c in Counter(step_out).items() if c > 1]
    if dup:
        err(
            f"{len(dup)} slot(s) produced by more than one batch entry "
            f"(first: {sorted(dup)[:4]})"
        )
    produced = (
        set(step_out)
        | {int(i) for i in cp.input_slots}
        | {int(i) for i in cp.const_slots}
    )
    expected = set(range(cp.n_slots))
    missing = expected - produced
    if missing:
        err(
            f"{len(missing)} slot(s) have no producer "
            f"(first: {sorted(missing)[:4]})"
        )
    extra = produced - expected
    if extra:
        err(
            f"{len(extra)} producer slot(s) outside [0, {cp.n_slots}) "
            f"(first: {sorted(extra)[:4]})"
        )
    if set(cp.input_ids) != set(dg.inputs):
        err(
            "program input ids disagree with the graph's INPUT nodes",
            nodes=tuple(
                sorted(
                    set(cp.input_ids) ^ set(dg.inputs), key=repr
                )[:4]
            ),
        )
    if tuple(cp.output_ids) != tuple(dg.outputs):
        err("program output ids disagree with the graph's OUTPUT nodes")
    return _capped(diags, "RL501", len(diags))


@lint_pass(
    "plan.causality",
    codes=("RL502",),
    requires=("dg", "exec_plan", "compiled"),
)
def check_batch_causality(target: LintTarget) -> Iterable[Diagnostic]:
    """RL502: no batch reads a slot produced in the same or a later batch.

    An abstract replay: inputs and constants are defined up front, then
    each batch must gather only defined slots before its outputs become
    defined.  Also checks that batch depths are non-decreasing in
    replay order (the compile sorts by depth).
    """
    cp = target.compiled
    assert cp is not None
    diags: list[Diagnostic] = []
    defined = np.zeros(max(cp.n_slots, 1), dtype=bool)
    for arr in (cp.input_slots, cp.const_slots):
        ok = arr[(arr >= 0) & (arr < cp.n_slots)]
        defined[ok] = True
    prev_depth = 0
    for pos, step in enumerate(cp.steps):
        if step.depth < prev_depth:
            diags.append(
                Diagnostic(
                    code="RL502",
                    severity=Severity.ERROR,
                    message=(
                        f"batch {pos} ({step.opcode}, depth {step.depth}) "
                        f"replays after depth {prev_depth}; batches must "
                        "be depth-sorted"
                    ),
                    suggestion=_RECOMPILE,
                )
            )
        prev_depth = max(prev_depth, step.depth)
        for role, idx in zip(step.role_names, step.role_idx):
            sound = idx[(idx >= 0) & (idx < cp.n_slots)]
            undef = sound[~defined[sound]]
            if undef.size:
                diags.append(
                    Diagnostic(
                        code="RL502",
                        severity=Severity.ERROR,
                        message=(
                            f"batch {pos} ({step.opcode}, depth "
                            f"{step.depth}) reads {undef.size} slot(s) "
                            f"for role {role!r} that no earlier batch, "
                            "input or constant produced (first: "
                            f"{sorted(int(i) for i in undef[:4])})"
                        ),
                        suggestion=_RECOMPILE,
                    )
                )
        ok_out = step.out_idx[
            (step.out_idx >= 0) & (step.out_idx < cp.n_slots)
        ]
        defined[ok_out] = True
    return _capped(diags, "RL502", len(diags))


@lint_pass(
    "plan.typing", codes=("RL503",), requires=("dg", "exec_plan", "compiled")
)
def check_semiring_typing(target: LintTarget) -> Iterable[Diagnostic]:
    """RL503: opcode <-> semiring-step compatibility.

    Every batch opcode must have batched semantics, be called with the
    roles its semantics lambda binds, and be legal on the compiled
    dtype; the multiset of batched opcodes (weighted by width) must be
    the graph's OP-node opcode census — a swapped semiring step changes
    the census even when shapes stay consistent.
    """
    dg, cp = target.dg, target.compiled
    assert dg is not None and cp is not None
    diags: list[Diagnostic] = []
    node_data = dg.g.nodes
    for pos, step in enumerate(cp.steps):
        if step.opcode not in VECTOR_OPCODES or (
            step.opcode not in OPCODE_SEMANTICS
        ):
            diags.append(
                Diagnostic(
                    code="RL503",
                    severity=Severity.ERROR,
                    message=(
                        f"batch {pos} uses opcode {step.opcode!r}, which "
                        "has no batched semantics"
                    ),
                    suggestion=_RECOMPILE,
                )
            )
            continue
        want = OPCODE_ROLES[step.opcode]
        got = frozenset(step.role_names)
        if got != want:
            diags.append(
                Diagnostic(
                    code="RL503",
                    severity=Severity.ERROR,
                    message=(
                        f"batch {pos} ({step.opcode}) binds roles "
                        f"{sorted(got)} but its semantics expect "
                        f"{sorted(want)}"
                    ),
                    suggestion=_RECOMPILE,
                )
            )
        if step.opcode != "mac" and cp.dtype.kind not in _FIELD_DTYPE_KINDS:
            diags.append(
                Diagnostic(
                    code="RL503",
                    severity=Severity.ERROR,
                    message=(
                        f"batch {pos} applies field opcode "
                        f"{step.opcode!r} on non-field dtype {cp.dtype!r}"
                    ),
                    suggestion=(
                        "compile against a float/complex semiring, or "
                        "keep this graph on the reference interpreter"
                    ),
                )
            )
    want_census = Counter(
        node_data[nid]["opcode"] for nid in _op_nodes(target)
    )
    got_census: Counter[str] = Counter()
    for step in cp.steps:
        got_census[step.opcode] += step.width
    if want_census != got_census:
        drift = {
            op: (want_census.get(op, 0), got_census.get(op, 0))
            for op in set(want_census) | set(got_census)
            if want_census.get(op, 0) != got_census.get(op, 0)
        }
        diags.append(
            Diagnostic(
                code="RL503",
                severity=Severity.ERROR,
                message=(
                    "batched opcode census disagrees with the graph "
                    f"(opcode: graph-count vs program-count): {drift}"
                ),
                suggestion=_RECOMPILE,
            )
        )
    return _capped(diags, "RL503", len(diags))


@lint_pass(
    "plan.bounds", codes=("RL504",), requires=("dg", "exec_plan", "compiled")
)
def check_index_bounds(target: LintTarget) -> Iterable[Diagnostic]:
    """RL504: scatter/gather index-bounds soundness.

    The replay writes ``vals[out_idx]`` and reads ``vals[role_idx]``
    with fancy indexing; one out-of-range (or negative) index silently
    wraps or raises mid-replay.  This pass proves every index array
    sound before any replay runs.
    """
    cp = target.compiled
    assert cp is not None
    diags: list[Diagnostic] = []

    def err(message: str, suggestion: str = _RECOMPILE) -> None:
        diags.append(
            Diagnostic(
                code="RL504",
                severity=Severity.ERROR,
                message=message,
                suggestion=suggestion,
            )
        )

    def check_idx(name: str, arr: np.ndarray) -> None:
        if arr.size == 0:
            return
        if arr.dtype.kind not in "iu":
            err(f"{name} has non-integral dtype {arr.dtype!r}")
            return
        lo, hi = int(arr.min()), int(arr.max())
        if lo < 0 or hi >= cp.n_slots:
            err(
                f"{name} indexes outside [0, {cp.n_slots}): "
                f"min={lo} max={hi}"
            )

    check_idx("input_slots", cp.input_slots)
    check_idx("const_slots", cp.const_slots)
    for pos, step in enumerate(cp.steps):
        check_idx(f"batch {pos} ({step.opcode}) out_idx", step.out_idx)
        if len(step.role_idx) != len(step.role_names):
            err(
                f"batch {pos} ({step.opcode}) has {len(step.role_idx)} "
                f"index array(s) for {len(step.role_names)} role(s)"
            )
        for role, idx in zip(step.role_names, step.role_idx):
            check_idx(f"batch {pos} ({step.opcode}) role {role!r}", idx)
            if idx.shape != step.out_idx.shape:
                err(
                    f"batch {pos} ({step.opcode}) role {role!r} gathers "
                    f"{idx.size} operand(s) for {step.out_idx.size} "
                    "output(s)"
                )
    for pos, slot in enumerate(cp.output_slots):
        if not 0 <= int(slot) < cp.n_slots:
            err(
                f"output {cp.output_ids[pos]!r} reads slot {slot}, "
                f"outside [0, {cp.n_slots})"
            )
    if cp.const_values.shape != cp.const_slots.shape:
        err(
            f"{cp.const_values.size} constant value(s) scattered into "
            f"{cp.const_slots.size} slot(s)"
        )
    if not (
        len(cp.input_ids) == len(cp.input_pos) == cp.input_slots.size
    ):
        err(
            "input ids/positions/slots disagree in length: "
            f"{len(cp.input_ids)}/{len(cp.input_pos)}/"
            f"{cp.input_slots.size}"
        )
    return _capped(diags, "RL504", len(diags))


@lint_pass("plan.fallbacks", codes=("RL505",), requires=("compiled",))
def check_fallback_audit(target: LintTarget) -> Iterable[Diagnostic]:
    """RL505: every vector-backend fallback reason is a documented one.

    Reads the process-wide ``repro_vector_fallback_total`` counter; a
    reason outside :data:`~repro.arrays.vector_sim.ALLOWED_FALLBACK_REASONS`
    means a new reference-interpreter escape hatch shipped without being
    audited for result equivalence.
    """
    series = get_registry().counter(
        "repro_vector_fallback_total",
        "Runs the vector backend handed to the reference interpreter",
    ).to_json()["series"]
    diags: list[Diagnostic] = []
    for entry in series:
        reason = entry["labels"].get("reason", "")
        if reason not in ALLOWED_FALLBACK_REASONS:
            diags.append(
                Diagnostic(
                    code="RL505",
                    severity=Severity.ERROR,
                    message=(
                        f"vector backend fell back {entry['value']} "
                        f"time(s) for undocumented reason {reason!r} "
                        f"(allowed: {sorted(ALLOWED_FALLBACK_REASONS)})"
                    ),
                    suggestion=(
                        "audit the new fallback path for reference "
                        "equivalence, then add the reason to "
                        "ALLOWED_FALLBACK_REASONS"
                    ),
                )
            )
    return _capped(diags, "RL505", len(diags))
