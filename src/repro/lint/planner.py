"""Planner-tier lint orchestration: compile, cache, preflight, from-run.

The RL5xx/RL6xx passes read the compiled value program, so running them
means compiling the design first (one cached compile per
``(plan, graph, semiring)``, see :func:`repro.arrays.vector_compile.
get_compiled`).  This module owns the glue:

* :func:`lint_compiled` — run the planner tiers over one design, with
  an **incremental lint cache** keyed by the compile's SHA-256
  ``plan_fingerprint``: linting an unchanged plan twice is near-free
  and observable via ``repro_lint_cache_hits_total``.
* :func:`planner_preflight` — the env-gated (``REPRO_LINT_PLANNER=1``)
  post-compile hook ``get_compiled`` invokes; raises
  :class:`~repro.lint.diagnostics.LintError` on any error finding so a
  miscompiled program is rejected before its first replay.
* :func:`lint_from_run` — rebuild the design a run ledger records and
  lint the plan it fingerprinted (``repro lint --from-run <run-id>``),
  reporting drift when today's fingerprint no longer matches the
  ledger's.
"""

from __future__ import annotations

from fractions import Fraction
from typing import TYPE_CHECKING, Any

from ..obs import runlog
from ..obs.metrics import get_registry
from .diagnostics import LintError, LintReport
from .registry import (
    LintTarget,
    PLANNER_STAGES,
    all_passes,
    run_lint,
    stage_of,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from ..arrays.plan import ExecutionPlan
    from ..arrays.vector_compile import CompiledPlan
    from ..core.graph import DependenceGraph
    from ..core.semiring import Semiring

__all__ = [
    "planner_pass_names",
    "design_pass_names",
    "attach_compiled",
    "lint_compiled",
    "planner_preflight",
    "lint_from_run",
    "clear_lint_cache",
    "lint_cache_info",
]


def planner_pass_names() -> tuple[str, ...]:
    """Names of the plan/cost passes (the ``--planner`` tiers)."""
    return tuple(
        lp.name for lp in all_passes() if stage_of(lp.name) in PLANNER_STAGES
    )


def design_pass_names() -> tuple[str, ...]:
    """Names of the IR-level passes (everything but plan/cost)."""
    return tuple(
        lp.name
        for lp in all_passes()
        if stage_of(lp.name) not in PLANNER_STAGES
    )


def attach_compiled(
    target: LintTarget, semiring: "Semiring | None" = None
) -> "CompiledPlan":
    """Compile the target's plan and attach the program to the target.

    Uses the default boolean semiring (every shipped design is a
    transitive closure) unless one is given.  Raises the compile's own
    :class:`~repro.core.graph.GraphError` subclasses on designs the
    vector backend cannot express — callers decide whether that is a
    finding or a skip.
    """
    from ..arrays.vector_compile import get_compiled
    from ..core.semiring import BOOLEAN

    if target.exec_plan is None or target.dg is None:
        raise ValueError(
            "planner lint needs both exec_plan and dg on the target"
        )
    sr = semiring or target.semiring or BOOLEAN
    compiled = get_compiled(target.exec_plan, target.dg, sr)
    target.compiled = compiled
    target.semiring = sr
    return compiled


# -- the incremental lint cache -------------------------------------------

#: ``(plan_fingerprint, io_bound)`` -> planner-tier report.  Keyed on the
#: io_bound too because RL603/RL606 read it; everything else the planner
#: tiers consume is covered by the fingerprint.
_LINT_CACHE: dict[tuple[str, str], LintReport] = {}
_LINT_CACHE_MAX = 64


def _cache_key(fingerprint: str, io_bound: Fraction | None) -> tuple[str, str]:
    return (fingerprint, "" if io_bound is None else str(io_bound))


def _copy_report(report: LintReport) -> LintReport:
    """A mutable copy so callers can merge without poisoning the cache."""
    return LintReport(
        target=report.target,
        diagnostics=list(report.diagnostics),
        passes_run=report.passes_run,
        passes_skipped=report.passes_skipped,
    )


def clear_lint_cache() -> None:
    """Drop every cached planner-tier report (tests)."""
    _LINT_CACHE.clear()


def lint_cache_info() -> dict[str, int]:
    """Hit/miss/size counters for reports and tests."""
    reg = get_registry()
    counter = reg.counter(
        "repro_lint_cache_hits_total",
        "Planner-tier lint reports served from the fingerprint cache",
    )
    misses = reg.counter(
        "repro_lint_cache_misses_total",
        "Planner-tier lint runs that executed the passes",
    )
    return {
        "hits": int(counter.value()),
        "misses": int(misses.value()),
        "size": len(_LINT_CACHE),
    }


def lint_compiled(
    plan: "ExecutionPlan",
    dg: "DependenceGraph",
    semiring: "Semiring | None" = None,
    description: str | None = None,
    io_bound: Fraction | None = None,
    use_cache: bool = True,
) -> LintReport:
    """Run the RL5xx/RL6xx tiers over one design's compiled program.

    Repeated calls with an unchanged ``plan_fingerprint`` (and the same
    ``io_bound``) return a copy of the cached report —
    ``repro_lint_cache_hits_total`` counts the saves.
    """
    from ..core.semiring import BOOLEAN

    sr = semiring or BOOLEAN
    target = LintTarget(
        description=description or f"{dg.name} planner",
        dg=dg,
        exec_plan=plan,
        io_bound=io_bound,
        semiring=sr,
    )
    compiled = attach_compiled(target, sr)
    reg = get_registry()
    key = _cache_key(compiled.fingerprint, io_bound)
    if use_cache:
        hit = _LINT_CACHE.get(key)
        if hit is not None:
            reg.counter(
                "repro_lint_cache_hits_total",
                "Planner-tier lint reports served from the fingerprint "
                "cache",
            ).inc()
            runlog.emit(
                "lint_cache", outcome="hit",
                plan_fingerprint=compiled.fingerprint,
                target=hit.target,
            )
            return _copy_report(hit)
    reg.counter(
        "repro_lint_cache_misses_total",
        "Planner-tier lint runs that executed the passes",
    ).inc()
    report = run_lint(target, passes=list(planner_pass_names()))
    runlog.emit(
        "lint_cache", outcome="miss",
        plan_fingerprint=compiled.fingerprint, target=report.target,
    )
    if use_cache:
        if len(_LINT_CACHE) >= _LINT_CACHE_MAX:
            _LINT_CACHE.pop(next(iter(_LINT_CACHE)))
        _LINT_CACHE[key] = _copy_report(report)
    return report


# -- the env-gated post-compile preflight ---------------------------------

_IN_PREFLIGHT = False


def planner_preflight(
    compiled: "CompiledPlan",
    plan: "ExecutionPlan",
    dg: "DependenceGraph",
    semiring: "Semiring",
) -> None:
    """Verify a freshly compiled program; raise ``LintError`` on errors.

    Called by :func:`repro.arrays.vector_compile.get_compiled` after
    every compile when ``REPRO_LINT_PLANNER`` is set.  Reuses the
    already-compiled program (no recursive compile) and seeds the
    incremental lint cache so an explicit ``repro lint --planner`` of
    the same plan is a cache hit.
    """
    global _IN_PREFLIGHT
    if _IN_PREFLIGHT:  # pragma: no cover - defensive reentrancy guard
        return
    _IN_PREFLIGHT = True
    try:
        target = LintTarget(
            description=f"{dg.name} planner preflight",
            dg=dg,
            exec_plan=plan,
            compiled=compiled,
            semiring=semiring,
        )
        report = run_lint(target, passes=list(planner_pass_names()))
        get_registry().counter(
            "repro_lint_cache_misses_total",
            "Planner-tier lint runs that executed the passes",
        ).inc()
        key = _cache_key(compiled.fingerprint, None)
        if len(_LINT_CACHE) >= _LINT_CACHE_MAX:
            _LINT_CACHE.pop(next(iter(_LINT_CACHE)))
        _LINT_CACHE[key] = _copy_report(report)
        if not report.ok:
            raise LintError(report)
    finally:
        _IN_PREFLIGHT = False


# -- repro lint --from-run ------------------------------------------------


def lint_from_run(
    run_id: str, dir: "str | None" = None
) -> dict[str, Any]:
    """Lint the plan a run ledger fingerprinted.

    Reads the ledger, rebuilds the design from the ``run_start``
    parameters (``n``/``m``/``geometry``/``policy``/``packed`` entry
    points, or a shipped ``config`` name), lints it through the planner
    tiers, and compares today's ``plan_fingerprint`` against the ones
    the ledger recorded in its ``plan_cache`` events.

    Returns ``{"report": LintReport, "fingerprint": str,
    "recorded": [str, ...], "matches": bool | None, "entry": str}``
    (``matches`` is ``None`` when the ledger recorded no compile).
    Raises ``FileNotFoundError`` for a missing ledger and
    ``ValueError`` for runs whose parameters cannot rebuild one design.
    """
    path = runlog.ledger_path(run_id, dir)
    if not path.exists():
        raise FileNotFoundError(f"no run ledger at {path}")
    events, _problems = runlog.read_ledger(path)
    start = next(
        (ev for ev in events if ev.get("event") == "run_start"), None
    )
    if start is None:
        raise ValueError(f"run {run_id} has no run_start event")
    entry = str(start.get("entry", ""))
    params: dict[str, Any] = dict(start.get("params") or {})
    recorded = [
        str(ev["plan_fingerprint"])
        for ev in events
        if ev.get("event") == "plan_cache" and "plan_fingerprint" in ev
    ]

    if params.get("n") is not None and params.get("m") is not None:
        from ..core.metrics import tc_io_bandwidth
        from ..core.partitioner import partition_transitive_closure

        n, m = int(params["n"]), int(params["m"])
        impl = partition_transitive_closure(
            n=n,
            m=m,
            geometry=str(params.get("geometry") or "linear"),
            policy=str(params.get("policy") or "vertical"),
            aligned=not bool(params.get("packed")),
        )
        plan, dg = impl.exec_plan, impl.dg
        io_bound = tc_io_bandwidth(n, m)
        description = f"run {run_id} ({entry} n={n} m={m})"
    elif params.get("config"):
        from .configs import SHIPPED_CONFIGS

        by_name = {c.name: c for c in SHIPPED_CONFIGS}
        name = str(params["config"])
        if name not in by_name:
            raise ValueError(
                f"run {run_id} names config {name!r}, which is not a "
                f"shipped lint config ({sorted(by_name)})"
            )
        built = by_name[name].build()
        if built.exec_plan is None or built.dg is None:
            raise ValueError(
                f"config {name!r} has no execution plan to lint"
            )
        plan, dg = built.exec_plan, built.dg
        io_bound = built.io_bound
        description = f"run {run_id} ({entry} config={name})"
    else:
        raise ValueError(
            f"run {run_id} ({entry}) records neither n/m nor a config; "
            "cannot rebuild its plan"
        )

    report = lint_compiled(
        plan, dg, description=description, io_bound=io_bound
    )
    from ..arrays.vector_compile import plan_fingerprint
    from ..core.semiring import BOOLEAN

    fp = plan_fingerprint(plan, dg, BOOLEAN)
    matches: bool | None = None
    if recorded:
        matches = fp in recorded
    return {
        "report": report,
        "fingerprint": fp,
        "recorded": recorded,
        "matches": matches,
        "entry": entry,
    }
