"""Shipped design configurations and turnkey lint entry points.

``SHIPPED_CONFIGS`` names one representative design per shipped
experiment family (linear/mesh partitioned arrays, schedule-policy and
alignment variants, the memory-aware scheduler, and the Fig. 17 fixed
array).  The CI lint gate and ``repro lint --experiments`` run every
one of them and require zero error-severity findings — the checker's
standing zero-false-positive contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING, Callable

from ..core.metrics import tc_io_bandwidth
from .diagnostics import LintError, LintReport
from .registry import LintTarget, run_lint

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from ..core.graph import DependenceGraph
    from ..core.partitioner import PartitionedImplementation

__all__ = [
    "LintConfig",
    "SHIPPED_CONFIGS",
    "lint_graph",
    "lint_implementation",
    "lint_target",
    "lint_config",
    "lint_shipped_configs",
    "preflight",
]


@dataclass(frozen=True)
class LintConfig:
    """One named design configuration the lint gate covers."""

    name: str
    description: str
    build: Callable[[], LintTarget]


def _partitioned(
    n: int,
    m: int,
    geometry: str = "linear",
    policy: str = "vertical",
    aligned: bool = True,
) -> LintTarget:
    from ..core.partitioner import partition_transitive_closure

    impl = partition_transitive_closure(
        n=n, m=m, geometry=geometry, policy=policy, aligned=aligned
    )
    return LintTarget.from_implementation(
        impl,
        description=f"tc n={n} {geometry} m={m} {policy}"
        + ("" if aligned else " packed"),
        io_bound=tc_io_bandwidth(n, m),
    )


def _memory_aware(n: int, m: int) -> LintTarget:
    from ..core.ggraph import GGraph, group_by_columns
    from ..core.gsets import make_linear_gsets
    from ..core.schedopt import schedule_gsets_memory_aware
    from ..algorithms import transitive_closure as tc
    from ..arrays.plan import partitioned_plan

    dg = tc.tc_regular(n)
    gg = GGraph(dg, group_by_columns)
    plan = make_linear_gsets(gg, m)
    order = schedule_gsets_memory_aware(plan)
    return LintTarget(
        description=f"tc n={n} linear m={m} memory-aware",
        dg=dg,
        gg=gg,
        plan=plan,
        order=order,
        exec_plan=partitioned_plan(plan, order),
        io_bound=tc_io_bandwidth(n, m),
    )


def _fixed_array(n: int) -> LintTarget:
    from ..core.ggraph import GGraph, group_by_columns
    from ..algorithms import transitive_closure as tc
    from ..arrays.plan import fixed_array_plan

    dg = tc.tc_regular(n)
    gg = GGraph(dg, group_by_columns)
    return LintTarget(
        description=f"tc n={n} fixed array (Fig. 17)",
        dg=dg,
        gg=gg,
        exec_plan=fixed_array_plan(gg),
    )


#: The designs the lint gate proves clean (CI: zero error findings).
SHIPPED_CONFIGS: tuple[LintConfig, ...] = (
    LintConfig(
        "linear-n12-m4",
        "F18 reference point: linear array, aligned, vertical policy",
        lambda: _partitioned(12, 4),
    ),
    LintConfig(
        "linear-n9-m3",
        "F21 host-bandwidth point: linear array with m | n",
        lambda: _partitioned(9, 3),
    ),
    LintConfig(
        "mesh-n8-m4",
        "F19 reference point: 2x2 mesh",
        lambda: _partitioned(8, 4, geometry="mesh"),
    ),
    LintConfig(
        "linear-horizontal-n12-m4",
        "F20/A-POL variant: horizontal-path schedule policy",
        lambda: _partitioned(12, 4, policy="horizontal"),
    ),
    LintConfig(
        "linear-packed-n12-m4",
        "A-ALN ablation: packed (non-aligned) linear blocks",
        lambda: _partitioned(12, 4, aligned=False),
    ),
    LintConfig(
        "linear-memaware-n12-m4",
        "A-POL optimization: memory-aware greedy schedule",
        lambda: _memory_aware(12, 4),
    ),
    LintConfig(
        "fixed-n9",
        "F17 fixed-size array: one cell per G-node",
        lambda: _fixed_array(9),
    ),
)


def lint_graph(
    dg: "DependenceGraph", description: str | None = None
) -> LintReport:
    """Run the graph passes (RL1xx) over one dependence graph."""
    return run_lint(LintTarget.from_graph(dg, description=description))


def lint_implementation(
    impl: "PartitionedImplementation",
    description: str | None = None,
    io_bound: Fraction | None = None,
    build_exec_plan: bool = True,
    planner: bool = False,
) -> LintReport:
    """Run every applicable pass over a partitioned implementation.

    ``planner=True`` also compiles the value program and runs the
    RL5xx/RL6xx tiers over it (requires ``build_exec_plan=True``).
    """
    return lint_target(
        LintTarget.from_implementation(
            impl,
            description=description,
            io_bound=io_bound,
            build_exec_plan=build_exec_plan,
        ),
        planner=planner,
    )


def _with_planner(target: LintTarget, report: LintReport) -> LintReport:
    """Append the planner tiers (RL5xx/RL6xx) to a design-tier report.

    The planner tiers run through :func:`repro.lint.planner.lint_compiled`
    so unchanged plans are served from the fingerprint-keyed lint cache;
    pass lists are disjoint, so merging never duplicates a finding.
    """
    from .planner import lint_compiled, planner_pass_names

    if target.exec_plan is None or target.dg is None:
        return report
    planner_rep = lint_compiled(
        target.exec_plan,
        target.dg,
        semiring=target.semiring,
        description=target.description,
        io_bound=target.io_bound,
    )
    report.extend(planner_rep.diagnostics)
    report.passes_run = report.passes_run + planner_rep.passes_run
    drop = set(planner_pass_names())
    report.passes_skipped = (
        tuple(p for p in report.passes_skipped if p not in drop)
        + planner_rep.passes_skipped
    )
    return report


def lint_target(target: LintTarget, planner: bool = False) -> LintReport:
    """Lint one target; ``planner=True`` adds the compiled-program tiers."""
    if not planner:
        return run_lint(target)
    from .planner import design_pass_names

    report = run_lint(target, passes=list(design_pass_names()))
    return _with_planner(target, report)


def lint_config(
    config: "LintConfig | str", planner: bool = False
) -> LintReport:
    """Build one shipped configuration and lint it."""
    if isinstance(config, str):
        by_name = {c.name: c for c in SHIPPED_CONFIGS}
        if config not in by_name:
            raise KeyError(
                f"unknown lint config {config!r}; "
                f"available: {sorted(by_name)}"
            )
        config = by_name[config]
    return lint_target(config.build(), planner=planner)


def lint_shipped_configs(planner: bool = False) -> dict[str, LintReport]:
    """Lint every shipped configuration (the CI gate's workload)."""
    return {c.name: lint_config(c, planner=planner) for c in SHIPPED_CONFIGS}


def preflight(target: LintTarget) -> LintReport:
    """Run the checker and raise :class:`LintError` on any error finding.

    The ``preflight=True`` hook of the partitioner entry points and of
    :func:`repro.core.verify.verify_implementation` funnels through
    here, so simulation never starts on a statically broken design.
    """
    report = run_lint(target)
    if not report.ok:
        raise LintError(report)
    return report
