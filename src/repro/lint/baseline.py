"""Lint baselines: ratchet warn-tier findings without blocking CI.

A baseline file (conventionally ``lint-baseline.json`` at the repo
root) records the warn/info findings a team has reviewed and accepted.
Linting against it splits findings three ways:

* **suppressed** — in the baseline: accepted debt, hidden from the
  rendered report (CI stays green);
* **new** — not in the baseline: surfaced loudly so a regression never
  hides behind accepted debt.  Error-severity findings are *never*
  baselineable — they always count as new and always gate;
* **stale** — baseline entries no finding matches anymore: the debt
  was paid, so the entry should be deleted (``--update-baseline``
  rewrites the file and ratchets it down automatically).

A finding's identity is a digest of its target and every stable field
(code, severity, message, locations), so editing a message or moving a
finding invalidates the suppression — the conservative choice.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from .diagnostics import Diagnostic, LintReport, Severity

__all__ = [
    "BASELINE_VERSION",
    "BaselineDiff",
    "finding_key",
    "build_baseline",
    "load_baseline",
    "save_baseline",
    "diff_baseline",
    "apply_baseline",
]

#: Schema version of the baseline file.
BASELINE_VERSION = 1


def finding_key(target: str, diag: Diagnostic) -> str:
    """Stable identity of one finding within one target's report."""
    payload = json.dumps(
        {"target": target, **diag.to_dict()}, sort_keys=True
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def build_baseline(reports: Mapping[str, LintReport]) -> dict[str, Any]:
    """A baseline document accepting every current warn/info finding."""
    findings: dict[str, Any] = {}
    for name, report in sorted(reports.items()):
        for diag in report.unique_diagnostics():
            if diag.severity is Severity.ERROR:
                continue  # errors are never accepted debt
            findings[finding_key(name, diag)] = {
                "target": name,
                "code": diag.code,
                "severity": diag.severity.value,
                "message": diag.message,
            }
    return {
        "version": BASELINE_VERSION,
        "tool": "repro-lint",
        "findings": findings,
    }


def load_baseline(path: "str | Path") -> dict[str, Any]:
    """Load and validate a baseline file."""
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or doc.get("tool") != "repro-lint":
        raise ValueError(f"{path} is not a repro-lint baseline file")
    if doc.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path} has baseline version {doc.get('version')!r}; "
            f"this tool reads version {BASELINE_VERSION}"
        )
    if not isinstance(doc.get("findings"), dict):
        raise ValueError(f"{path} has no findings table")
    return doc


def save_baseline(path: "str | Path", doc: Mapping[str, Any]) -> None:
    """Write a baseline document (stable key order, trailing newline)."""
    p = Path(path)
    if p.parent and not p.parent.exists():
        p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


@dataclass
class BaselineDiff:
    """The three-way split of current findings against a baseline."""

    #: ``(target, diagnostic)`` pairs the baseline does not cover —
    #: includes every error-severity finding unconditionally.
    new: list[tuple[str, Diagnostic]] = field(default_factory=list)
    #: ``(target, diagnostic)`` pairs the baseline accepts.
    suppressed: list[tuple[str, Diagnostic]] = field(default_factory=list)
    #: Baseline entries (key -> recorded metadata) nothing matched.
    stale: dict[str, Any] = field(default_factory=dict)

    @property
    def new_errors(self) -> list[tuple[str, Diagnostic]]:
        """The subset of ``new`` that gates (error severity)."""
        return [
            (t, d) for t, d in self.new if d.severity is Severity.ERROR
        ]

    def summary(self) -> str:
        """One-line terminal summary."""
        return (
            f"baseline: {len(self.suppressed)} suppressed, "
            f"{len(self.new)} new ({len(self.new_errors)} error(s)), "
            f"{len(self.stale)} stale entr"
            + ("y" if len(self.stale) == 1 else "ies")
        )

    def to_dict(self) -> dict[str, Any]:
        """Versioned JSON artefact (the CI baseline-diff upload)."""
        return {
            "version": BASELINE_VERSION,
            "tool": "repro-lint",
            "new": [
                {"target": t, **d.to_dict()} for t, d in self.new
            ],
            "suppressed": [
                {"target": t, "code": d.code, "key": finding_key(t, d)}
                for t, d in self.suppressed
            ],
            "stale": dict(sorted(self.stale.items())),
        }


def diff_baseline(
    reports: Mapping[str, LintReport], baseline: Mapping[str, Any]
) -> BaselineDiff:
    """Split the reports' findings against a loaded baseline."""
    accepted: dict[str, Any] = dict(baseline.get("findings", {}))
    diff = BaselineDiff()
    seen: set[str] = set()
    for name, report in sorted(reports.items()):
        for diag in report.unique_diagnostics():
            key = finding_key(name, diag)
            if diag.severity is not Severity.ERROR and key in accepted:
                diff.suppressed.append((name, diag))
                seen.add(key)
            else:
                diff.new.append((name, diag))
    diff.stale = {k: v for k, v in accepted.items() if k not in seen}
    return diff


def apply_baseline(
    reports: Mapping[str, LintReport], baseline: Mapping[str, Any]
) -> BaselineDiff:
    """Diff and then strip suppressed findings from the reports in place.

    The rendered report (text/JSON/SARIF) then shows only new findings;
    the returned diff still lists what was suppressed.
    """
    diff = diff_baseline(reports, baseline)
    suppressed_keys = {
        finding_key(t, d) for t, d in diff.suppressed
    }
    for name, report in reports.items():
        report.diagnostics = [
            d
            for d in report.diagnostics
            if finding_key(name, d) not in suppressed_keys
        ]
    return diff
