"""RL4xx — resilience passes over mid-run recovery plans and policies.

After diagnosing a permanent fault the resilience runtime re-partitions
the uncommitted remainder of the G-graph for the surviving cells and
builds a :class:`~repro.resilience.checkpoint.RecoveryPlan`.  RL401
proves, *before* a single cycle executes on the degraded array, that the
resume is sound:

* no committed node is fired again (a re-fire would double-write its
  parked words and waste degraded-array cycles);
* every logical cell the resumed schedule uses maps onto a surviving
  physical cell — none retired, none unmapped;
* the resumed fires plus the checkpointed nodes cover every
  slot-occupying node, so the run can actually complete.

RL402 lints the :class:`~repro.resilience.runtime.RecoveryPolicy`
itself, before the first G-set executes:

* the quarantine threshold must be reachable within one G-set's retry
  budget (``quarantine_strikes <= max_retries + 1``) — a higher
  threshold means the budget always exhausts first and the escalation
  ladder is dead code;
* backoff growth must be bounded (a known discipline; exponential
  growth capped at a value no smaller than the base);
* the graceful-degradation tier, when enabled, must be reachable with
  a sane host cost model (``degrade_cycles_per_node >= 1``);
* the plain numeric knobs must be non-negative and the permanent
  diagnosis must require at least one consecutive implication.

The runtime invokes RL401 as a preflight on every re-partition and
RL402 once per resilient run; both are also reachable through the
ordinary :func:`repro.lint.run_lint` surface for tests and tooling.
"""

from __future__ import annotations

from typing import Iterable

from .diagnostics import Diagnostic, Severity
from .registry import LintTarget, lint_pass

__all__: list[str] = []

#: Cap on ids echoed into one diagnostic (mirrors passes_graph._capped).
_MAX_IDS = 4


@lint_pass("recovery.sound", codes=("RL401",), requires=("recovery",))
def check_recovery_sound(target: LintTarget) -> Iterable[Diagnostic]:
    """RL401: the resume re-fires committed work, uses dead cells, or
    leaves part of the computation unreachable."""
    rp = target.recovery
    assert rp is not None
    diags: list[Diagnostic] = []

    refired = sorted(rp.to_fire & rp.committed, key=repr)
    if refired:
        diags.append(
            Diagnostic(
                code="RL401",
                severity=Severity.ERROR,
                message=(
                    f"{len(refired)} committed node(s) scheduled to fire "
                    f"again (first: {refired[:_MAX_IDS]})"
                ),
                hint="resume from the checkpoint store; committed G-sets "
                "must be skipped, not re-executed",
                nodes=tuple(refired[:_MAX_IDS]),
            )
        )

    bad_cells = []
    for nid in sorted(rp.to_fire, key=repr):
        logical = rp.cell_of.get(nid)
        if logical is None:
            bad_cells.append((nid, None, "no cell assignment"))
            continue
        phys = rp.cell_map.get(logical)
        if phys is None:
            bad_cells.append((nid, logical, "logical cell unmapped"))
        elif phys in rp.retired:
            bad_cells.append((nid, phys, "mapped to retired cell"))
    if bad_cells:
        diags.append(
            Diagnostic(
                code="RL401",
                severity=Severity.ERROR,
                message=(
                    f"{len(bad_cells)} node(s) land on dead or unmapped "
                    "cells (first: "
                    + ", ".join(
                        f"{nid!r}: {why} ({cell!r})"
                        for nid, cell, why in bad_cells[:_MAX_IDS]
                    )
                    + ")"
                ),
                hint="rebuild the logical-to-physical cell map from the "
                "surviving cells only",
                nodes=tuple(nid for nid, _, _ in bad_cells[:_MAX_IDS]),
                cells=tuple(
                    cell
                    for _, cell, _ in bad_cells[:_MAX_IDS]
                    if cell is not None
                ),
            )
        )

    uncovered = sorted(
        rp.slot_nodes - rp.to_fire - rp.committed, key=repr
    )
    if uncovered:
        diags.append(
            Diagnostic(
                code="RL401",
                severity=Severity.ERROR,
                message=(
                    f"{len(uncovered)} slot node(s) neither committed nor "
                    f"scheduled to fire (first: {uncovered[:_MAX_IDS]}) — "
                    "the resumed run can never complete"
                ),
                hint="re-partition the *whole* uncommitted remainder of "
                "the G-graph, not a subset",
                nodes=tuple(uncovered[:_MAX_IDS]),
            )
        )
    return diags


@lint_pass("recovery.policy-sound", codes=("RL402",), requires=("policy",))
def check_policy_sound(target: LintTarget) -> Iterable[Diagnostic]:
    """RL402: the recovery policy has unbounded backoff, an unreachable
    quarantine threshold or degradation tier, or nonsense knobs."""
    pol = target.policy
    assert pol is not None
    diags: list[Diagnostic] = []

    def err(message: str, hint: str) -> None:
        diags.append(
            Diagnostic(
                code="RL402", severity=Severity.ERROR,
                message=message, hint=hint,
            )
        )

    for knob in (
        "max_retries", "backoff_cycles", "backoff_cap_cycles",
        "jitter_cycles", "repartition_cycles", "quarantine_strikes",
    ):
        v = getattr(pol, knob)
        if v < 0:
            err(
                f"{knob}={v} is negative",
                "every cycle/count knob of a RecoveryPolicy is "
                "non-negative",
            )

    if pol.backoff not in ("linear", "exponential"):
        err(
            f"unknown backoff discipline {pol.backoff!r}",
            'use "linear" or "exponential"',
        )
    elif pol.backoff == "exponential" and (
        pol.backoff_cap_cycles < pol.backoff_cycles
    ):
        err(
            f"exponential backoff cap ({pol.backoff_cap_cycles}) is below "
            f"the base ({pol.backoff_cycles}) — growth is not bounded by "
            "a meaningful cap",
            "set backoff_cap_cycles >= backoff_cycles so every wait is "
            "bounded and the first retry is not already clipped",
        )

    if pol.permanent_threshold < 1:
        err(
            f"permanent_threshold={pol.permanent_threshold} — diagnosis "
            "needs at least one consecutive implication",
            "use permanent_threshold >= 1",
        )

    if pol.quarantine_strikes > pol.max_retries + 1:
        err(
            f"quarantine_strikes={pol.quarantine_strikes} exceeds the "
            f"per-set attempt budget ({pol.max_retries + 1}) — a cell "
            "hammered within one G-set exhausts the budget before the "
            "escalation ladder can quarantine it",
            "keep quarantine_strikes <= max_retries + 1 (0 disables "
            "the ladder)",
        )

    if pol.degrade and pol.degrade_cycles_per_node < 1:
        err(
            f"degrade_cycles_per_node={pol.degrade_cycles_per_node} with "
            "the degradation tier enabled — host-computed G-sets would "
            "be free or negative on the run clock",
            "charge at least one cycle per host-computed node",
        )

    if not 0.0 < pol.signature_sample_rate <= 1.0:
        err(
            f"signature_sample_rate={pol.signature_sample_rate} is "
            "outside (0, 1]",
            "a zero sample rate never detects anything; above 1 is "
            "meaningless",
        )
    return diags
