"""RL4xx — resilience passes over mid-run recovery plans.

After diagnosing a permanent fault the resilience runtime re-partitions
the uncommitted remainder of the G-graph for the surviving cells and
builds a :class:`~repro.resilience.checkpoint.RecoveryPlan`.  RL401
proves, *before* a single cycle executes on the degraded array, that the
resume is sound:

* no committed node is fired again (a re-fire would double-write its
  parked words and waste degraded-array cycles);
* every logical cell the resumed schedule uses maps onto a surviving
  physical cell — none retired, none unmapped;
* the resumed fires plus the checkpointed nodes cover every
  slot-occupying node, so the run can actually complete.

The runtime invokes this pass as a preflight on every re-partition; it
is also reachable through the ordinary :func:`repro.lint.run_lint`
surface for tests and tooling.
"""

from __future__ import annotations

from typing import Iterable

from .diagnostics import Diagnostic, Severity
from .registry import LintTarget, lint_pass

__all__: list[str] = []

#: Cap on ids echoed into one diagnostic (mirrors passes_graph._capped).
_MAX_IDS = 4


@lint_pass("recovery.sound", codes=("RL401",), requires=("recovery",))
def check_recovery_sound(target: LintTarget) -> Iterable[Diagnostic]:
    """RL401: the resume re-fires committed work, uses dead cells, or
    leaves part of the computation unreachable."""
    rp = target.recovery
    assert rp is not None
    diags: list[Diagnostic] = []

    refired = sorted(rp.to_fire & rp.committed, key=repr)
    if refired:
        diags.append(
            Diagnostic(
                code="RL401",
                severity=Severity.ERROR,
                message=(
                    f"{len(refired)} committed node(s) scheduled to fire "
                    f"again (first: {refired[:_MAX_IDS]})"
                ),
                hint="resume from the checkpoint store; committed G-sets "
                "must be skipped, not re-executed",
                nodes=tuple(refired[:_MAX_IDS]),
            )
        )

    bad_cells = []
    for nid in sorted(rp.to_fire, key=repr):
        logical = rp.cell_of.get(nid)
        if logical is None:
            bad_cells.append((nid, None, "no cell assignment"))
            continue
        phys = rp.cell_map.get(logical)
        if phys is None:
            bad_cells.append((nid, logical, "logical cell unmapped"))
        elif phys in rp.retired:
            bad_cells.append((nid, phys, "mapped to retired cell"))
    if bad_cells:
        diags.append(
            Diagnostic(
                code="RL401",
                severity=Severity.ERROR,
                message=(
                    f"{len(bad_cells)} node(s) land on dead or unmapped "
                    "cells (first: "
                    + ", ".join(
                        f"{nid!r}: {why} ({cell!r})"
                        for nid, cell, why in bad_cells[:_MAX_IDS]
                    )
                    + ")"
                ),
                hint="rebuild the logical-to-physical cell map from the "
                "surviving cells only",
                nodes=tuple(nid for nid, _, _ in bad_cells[:_MAX_IDS]),
                cells=tuple(
                    cell
                    for _, cell, _ in bad_cells[:_MAX_IDS]
                    if cell is not None
                ),
            )
        )

    uncovered = sorted(
        rp.slot_nodes - rp.to_fire - rp.committed, key=repr
    )
    if uncovered:
        diags.append(
            Diagnostic(
                code="RL401",
                severity=Severity.ERROR,
                message=(
                    f"{len(uncovered)} slot node(s) neither committed nor "
                    f"scheduled to fire (first: {uncovered[:_MAX_IDS]}) — "
                    "the resumed run can never complete"
                ),
                hint="re-partition the *whole* uncommitted remainder of "
                "the G-graph, not a subset",
                nodes=tuple(uncovered[:_MAX_IDS]),
            )
        )
    return diags
