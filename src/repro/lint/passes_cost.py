"""RL6xx — static cost passes over the compiled value program.

Closed-form bounds and cross-checks, computed without simulating one
cycle:

* ``cost.makespan`` (RL601) — the critical path over the plan's
  constraint DAG (PR 7's :func:`repro.obs.profile.critical_path`) is a
  lower bound on any executable makespan; the recorded makespan must
  meet it, and the compiled plan must agree with the execution plan.
  On every shipped configuration the bound is *tight* (the
  ``matches_makespan`` cross-check); slack is reported as info.
* ``cost.traffic`` (RL602) — an independent recount of busy/useful
  firings and external-memory words/reads (the exact timing rules of
  the reference interpreter) must equal the compiled plan's recorded
  static measures.
* ``cost.iobandwidth`` (RL603) — the Fig. 21 check at the plan level:
  aggregate input demand (host words per cycle over the run) must stay
  within the ``m/n`` bound the R-block chain provides.

Warn-severity anti-pattern passes:

* ``cost.fragmentation`` (RL604) — many narrow depth-batches forfeit
  the vector backend's advantage to per-step dispatch overhead.
* ``cost.utilization`` (RL605) — cells idle most of the run (the
  paper's "might not use all cells" loss, Fig. 22).
* ``cost.headroom`` (RL606) — demand within the Fig. 21 bound but so
  close that any schedule perturbation would starve cells.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable, Iterable

from ..core.graph import NodeKind
from ..obs.profile import critical_path
from .diagnostics import Diagnostic, Severity
from .registry import LintTarget, lint_pass

__all__ = [
    "FRAGMENTATION_MIN_STEPS",
    "FRAGMENTATION_MEAN_WIDTH",
    "UTILIZATION_FLOOR",
    "HEADROOM_RATIO",
]

#: RL604 fires when the program has more than this many batches *and*
#: their mean width is below :data:`FRAGMENTATION_MEAN_WIDTH`.
FRAGMENTATION_MIN_STEPS = 8
FRAGMENTATION_MEAN_WIDTH = 4.0

#: RL605 fires when busy / (cells * makespan) drops below this.
UTILIZATION_FLOOR = 0.25

#: RL606 fires when demand/bound exceeds this while still <= 1.
HEADROOM_RATIO = Fraction(9, 10)


def _recount_measures(target: LintTarget) -> dict[str, int]:
    """Recount busy/useful/memory measures straight from the IR.

    Mirrors the timing rules of the reference interpreter (and of
    ``compile_plan``'s walk): a reference round-trips external memory
    when producer and consumer sit in different execution regions or on
    unlinked cells; each distinct round-tripping ``(node, port)`` is
    one stored word, each consumption one read.
    """
    dg, ep = target.dg, target.exec_plan
    assert dg is not None and ep is not None
    node_data = dg.g.nodes
    fires = ep.fires
    region_of = ep.region_of
    topology = ep.topology
    busy = 0
    useful = 0
    memory_refs: set[tuple[Hashable, str]] = set()
    memory_reads = 0
    for nid, (cell, _t) in fires.items():
        d = node_data[nid]
        busy += 1
        if d.get("tag") == "compute":
            useful += 1
        for ref in d.get("operands", {}).values():
            src = ref[0]
            src_kind = node_data[src]["kind"]
            if src_kind in (NodeKind.INPUT, NodeKind.CONST):
                continue
            pcell, _pt = fires[src]
            same_region = (
                not region_of or region_of.get(src) == region_of.get(nid)
            )
            local = cell == pcell or topology.is_neighbor(pcell, cell)
            if not (same_region and local):
                memory_refs.add(ref)
                memory_reads += 1
    return {
        "busy": busy,
        "useful": useful,
        "memory_words": len(memory_refs),
        "memory_reads": memory_reads,
    }


@lint_pass(
    "cost.makespan", codes=("RL601",), requires=("dg", "exec_plan", "compiled")
)
def check_makespan_bound(target: LintTarget) -> Iterable[Diagnostic]:
    """RL601: recorded makespan vs. the critical-path lower bound."""
    dg, ep, cp = target.dg, target.exec_plan, target.compiled
    assert dg is not None and ep is not None and cp is not None
    diags: list[Diagnostic] = []
    if cp.makespan != ep.makespan:
        diags.append(
            Diagnostic(
                code="RL601",
                severity=Severity.ERROR,
                message=(
                    f"compiled plan records makespan {cp.makespan} but "
                    f"the execution plan's is {ep.makespan}"
                ),
                suggestion=(
                    "recompile with compile_plan(); recorded measures "
                    "are derived state"
                ),
            )
        )
    path = critical_path(ep, dg)
    bound = path.length
    if ep.makespan < bound:
        diags.append(
            Diagnostic(
                code="RL601",
                severity=Severity.ERROR,
                message=(
                    f"makespan {ep.makespan} undercuts the critical-path "
                    f"lower bound of {bound} cycle(s); the schedule is "
                    "unexecutable under the timing model"
                ),
                suggestion=(
                    "rebuild the schedule; a chain of dependent firings "
                    "cannot finish faster than its critical path"
                ),
            )
        )
    elif ep.makespan > bound:
        diags.append(
            Diagnostic(
                code="RL601",
                severity=Severity.INFO,
                message=(
                    f"schedule idles {ep.makespan - bound} cycle(s) above "
                    f"the critical-path bound ({bound} of {ep.makespan} "
                    "explained)"
                ),
                hint=(
                    "the critical path does not account for the whole "
                    "run; see repro profile's hotspot attribution"
                ),
            )
        )
    return diags


@lint_pass(
    "cost.traffic", codes=("RL602",), requires=("dg", "exec_plan", "compiled")
)
def check_static_measures(target: LintTarget) -> Iterable[Diagnostic]:
    """RL602: recorded static measures vs. an independent recount."""
    cp = target.compiled
    assert cp is not None
    want = _recount_measures(target)
    got = {
        "busy": cp.busy,
        "useful": cp.useful,
        "memory_words": cp.memory_words,
        "memory_reads": cp.memory_reads,
    }
    diags: list[Diagnostic] = []
    for key in want:
        if want[key] != got[key]:
            diags.append(
                Diagnostic(
                    code="RL602",
                    severity=Severity.ERROR,
                    message=(
                        f"compiled plan records {key}={got[key]} but the "
                        f"schedule recount gives {want[key]}"
                    ),
                    suggestion=(
                        "recompile with compile_plan(); perf gates and "
                        "dashboards trust these recorded measures"
                    ),
                )
            )
    assert target.exec_plan is not None
    if cp.cells != target.exec_plan.topology.m:
        diags.append(
            Diagnostic(
                code="RL602",
                severity=Severity.ERROR,
                message=(
                    f"compiled plan records {cp.cells} cell(s) but the "
                    f"topology has {target.exec_plan.topology.m}"
                ),
                suggestion="recompile with compile_plan()",
            )
        )
    return diags


def _aggregate_demand(target: LintTarget) -> Fraction | None:
    """Host words per cycle over the whole run, or None (no inputs)."""
    cp = target.compiled
    assert cp is not None
    if not cp.input_ids or cp.makespan <= 0:
        return None
    return Fraction(len(cp.input_ids), cp.makespan)


@lint_pass(
    "cost.iobandwidth",
    codes=("RL603",),
    requires=("compiled", "io_bound"),
)
def check_io_bandwidth(target: LintTarget) -> Iterable[Diagnostic]:
    """RL603: aggregate input demand vs. the Fig. 21 bound."""
    demand = _aggregate_demand(target)
    bound = target.io_bound
    assert bound is not None
    if demand is None or demand <= bound:
        return []
    return [
        Diagnostic(
            code="RL603",
            severity=Severity.WARNING,
            message=(
                f"aggregate host demand {demand} words/cycle exceeds the "
                f"Fig. 21 bound {bound} "
                f"({float(demand):.3f} > {float(bound):.3f})"
            ),
            hint=(
                "the R-block chain cannot sustain this input rate; "
                "cells will starve"
            ),
            suggestion=(
                "use the aligned G-set selection and the vertical-path "
                "schedule so input G-sets are spaced apart"
            ),
        )
    ]


@lint_pass("cost.fragmentation", codes=("RL604",), requires=("compiled",))
def check_batch_fragmentation(target: LintTarget) -> Iterable[Diagnostic]:
    """RL604 (warn): the program fragments into many narrow batches."""
    cp = target.compiled
    assert cp is not None
    if len(cp.steps) <= FRAGMENTATION_MIN_STEPS:
        return []
    mean_width = sum(s.width for s in cp.steps) / len(cp.steps)
    if mean_width >= FRAGMENTATION_MEAN_WIDTH:
        return []
    return [
        Diagnostic(
            code="RL604",
            severity=Severity.WARNING,
            message=(
                f"value program fragments into {len(cp.steps)} batches "
                f"of mean width {mean_width:.1f} "
                f"(threshold {FRAGMENTATION_MEAN_WIDTH:.1f})"
            ),
            hint=(
                "per-batch dispatch overhead dominates; the vector "
                "backend will not beat the interpreter here"
            ),
            suggestion=(
                "regroup the computation into wider depth levels, or "
                "run this design on the reference backend"
            ),
        )
    ]


@lint_pass("cost.utilization", codes=("RL605",), requires=("compiled",))
def check_cell_utilization(target: LintTarget) -> Iterable[Diagnostic]:
    """RL605 (warn): cells idle most of the run."""
    cp = target.compiled
    assert cp is not None
    if cp.cells <= 0 or cp.makespan <= 0:
        return []
    util = Fraction(cp.busy, cp.cells * cp.makespan)
    if float(util) >= UTILIZATION_FLOOR:
        return []
    return [
        Diagnostic(
            code="RL605",
            severity=Severity.WARNING,
            message=(
                f"cells are busy only {float(util):.1%} of "
                f"{cp.cells} cell(s) x {cp.makespan} cycle(s) "
                f"(floor {UTILIZATION_FLOOR:.0%})"
            ),
            hint=(
                "the paper's 'might not use all cells' loss (Fig. 22): "
                "most of the array idles"
            ),
            suggestion=(
                "choose m closer to a divisor of the G-graph width, or "
                "regroup along uniform-time paths"
            ),
        )
    ]


@lint_pass(
    "cost.headroom", codes=("RL606",), requires=("compiled", "io_bound")
)
def check_bandwidth_headroom(target: LintTarget) -> Iterable[Diagnostic]:
    """RL606 (warn): demand within the Fig. 21 bound but nearly at it."""
    demand = _aggregate_demand(target)
    bound = target.io_bound
    assert bound is not None
    if demand is None or bound <= 0:
        return []
    ratio = demand / bound
    if not (HEADROOM_RATIO < ratio <= 1):
        return []
    return [
        Diagnostic(
            code="RL606",
            severity=Severity.WARNING,
            message=(
                f"host demand uses {float(ratio):.1%} of the Fig. 21 "
                f"bound ({demand} of {bound} words/cycle); headroom "
                "is exhausted"
            ),
            hint=(
                "any pile-order perturbation or larger n at this m "
                "tips the design over the bandwidth envelope"
            ),
            suggestion=(
                "space input G-sets further apart in the pile order, "
                "or provision the next m before growing n"
            ),
        )
    ]
