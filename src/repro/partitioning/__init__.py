"""The three partitioning approaches of Section 2.

* :mod:`repro.partitioning.coalescing` — LSGP / coalescing (Fig. 1);
* :mod:`repro.partitioning.cut_and_pile` — LPGS / cut-and-pile (Fig. 2),
  the scheme the paper adopts;
* :mod:`repro.partitioning.decomposition` — decomposition into
  sub-algorithms (Fig. 3, Navarro et al.);
* :mod:`repro.partitioning.hybrid` — the combined scheme the paper
  conjectures (cut-and-pile first, then coalescing within each pile).
"""
