"""Coalescing / LSGP partitioning (Fig. 1).

The dependence graph is cut into exactly ``m`` components whose mutual
communication matches the array's interconnection; each component is
mapped onto *one* cell, which executes its nodes sequentially.  The
scheme is attractive for its simplicity, "but requires local storage
within each cell [which] might be large (O(n) or O(n^2))" — the property
this module measures.

We coalesce a G-graph by vertical strips (cell ``p`` owns G-columns
``[p*W, (p+1)*W)``), schedule all G-nodes in one legal global order, and
account, per cell, the high-water mark of *live* values: a value is live
from the end of its producer G-node's execution until its last consumer
finishes.  Values produced and consumed by the same cell must sit in that
cell's local memory — the O(n)/O(n^2) cost; values crossing cells use the
array links.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction


from ..core.ggraph import GGraph, GNodeId

__all__ = ["CoalescingResult", "coalesce_by_strips"]


@dataclass(frozen=True)
class CoalescingResult:
    """Measured properties of a coalesced (LSGP) mapping."""

    m: int
    total_time: int
    throughput: Fraction
    occupancy: Fraction
    cell_of: dict[GNodeId, int]
    local_storage: dict[int, int]  # cell -> live-value high-water mark
    link_words: int  # values crossing cells

    @property
    def max_local_storage(self) -> int:
        """Worst-case per-cell local memory (words)."""
        return max(self.local_storage.values(), default=0)


def coalesce_by_strips(gg: GGraph, m: int) -> CoalescingResult:
    """Coalesce a G-graph onto ``m`` cells by vertical strips.

    Cell ``p`` owns an equal share of the G-columns; every cell executes
    its G-nodes in the global ASAP-legal order (one G-node at a time per
    cell, cells proceeding concurrently).  The returned report carries the
    local-storage census that motivates the paper's preference for
    cut-and-pile.
    """
    if m < 1:
        raise ValueError(f"need at least one cell, got m={m}")
    cols = gg.cols
    width = max(1, -(-len(cols) // m))
    col_rank = {c: idx for idx, c in enumerate(cols)}
    cell_of = {gid: min(col_rank[gid[1]] // width, m - 1) for gid in gg.gnodes}

    # Sequential schedule per cell, globally legal: list-schedule the
    # G-node DAG; each cell is a unary resource.
    ready_time: dict[GNodeId, int] = {}
    finish: dict[GNodeId, int] = {}
    cell_free = [0] * m
    indeg = {g: gg.g.in_degree(g) for g in gg.gnodes}
    import heapq

    heap = [(0, str(g), g) for g, d in indeg.items() if d == 0]
    heapq.heapify(heap)
    order: list[GNodeId] = []
    while heap:
        t_ready, _, gid = heapq.heappop(heap)
        p = cell_of[gid]
        start = max(t_ready, cell_free[p])
        end = start + gg.gnodes[gid].comp_time
        finish[gid] = end
        cell_free[p] = end
        order.append(gid)
        for succ in gg.g.successors(gid):
            ready_time[succ] = max(ready_time.get(succ, 0), end)
            indeg[succ] -= 1
            if indeg[succ] == 0:
                heapq.heappush(heap, (ready_time.get(succ, 0), str(succ), succ))
    total = max(finish.values(), default=0)

    # Liveness: the words a G-node sends to consumer c (the G-edge
    # weight, i.e. the number of primitive values crossing) are live in
    # the producer's cell from the producer's finish until c finishes.
    events: dict[int, list[tuple[int, int]]] = {p: [] for p in range(m)}
    link_words = 0
    for gid in gg.gnodes:
        p = cell_of[gid]
        for succ in gg.g.successors(gid):
            words = gg.g.edges[gid, succ]["weight"]
            if cell_of[succ] != p:
                link_words += words
            events[p].append((finish[gid], +words))
            events[p].append((finish[succ], -words))
    storage: dict[int, int] = {}
    for p, evs in events.items():
        evs.sort()
        live = peak = 0
        for _, delta in evs:
            live += delta
            peak = max(peak, live)
        storage[p] = peak

    busy = sum(gg.gnodes[g].comp_time for g in gg.gnodes)
    return CoalescingResult(
        m=m,
        total_time=total,
        throughput=Fraction(1, total) if total else Fraction(0),
        occupancy=Fraction(busy, m * total) if total else Fraction(0),
        cell_of=cell_of,
        local_storage=storage,
        link_words=link_words,
    )
