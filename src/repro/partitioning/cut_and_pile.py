"""Cut-and-pile / LPGS partitioning (Fig. 2) — the paper's scheme.

Components sized to the whole array are mapped onto it sequentially;
intermediate data is parked in external memories and fed back when
needed.  This module is the one-call orchestration of the machinery in
:mod:`repro.core`: grouping -> G-set selection -> scheduling -> execution
plan -> Sec. 4.1 report, for either target geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

from ..core.ggraph import GGraph
from ..core.gsets import (
    GSet,
    GSetPlan,
    make_linear_gsets,
    make_mesh_gsets,
    schedule_gsets,
    verify_schedule,
)
from ..core.metrics import PerformanceReport, evaluate_schedule
from ..core.semiring import BOOLEAN, Semiring
from ..arrays.plan import ExecutionPlan, partitioned_plan
from ..obs.tracing import stage_span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..arrays.cycle_sim import SimResult
    from ..core.graph import NodeId

__all__ = ["CutAndPile", "cut_and_pile"]


@dataclass
class CutAndPile:
    """A complete cut-and-pile mapping of one G-graph onto one array."""

    gg: GGraph
    plan: GSetPlan
    order: list[GSet]
    exec_plan: ExecutionPlan
    report: PerformanceReport

    def simulate(
        self,
        inputs: "Mapping[NodeId, Any]",
        semiring: Semiring = BOOLEAN,
        strict: bool = False,
        backend: str | None = None,
    ) -> "SimResult":
        """Cycle-simulate the mapping on explicit input values.

        ``backend`` selects the simulator engine (``"reference"`` /
        ``"vector"``; ``None`` uses the process default).  The vector
        backend compiles this mapping once and replays it from the
        process-wide cache on subsequent calls.
        """
        from ..arrays.vector_sim import dispatch_simulate

        return dispatch_simulate(
            self.exec_plan, self.gg.dg, inputs, semiring,
            strict=strict, backend=backend,
        )


def cut_and_pile(
    gg: GGraph,
    m: int,
    geometry: str = "linear",
    policy: str = "vertical",
    aligned: bool = True,
    mesh_shape: tuple[int, int] | None = None,
) -> CutAndPile:
    """Partition ``gg`` onto an ``m``-cell array by cut-and-pile.

    Parameters
    ----------
    geometry:
        ``"linear"`` (Fig. 18) or ``"mesh"`` (Fig. 19).
    policy:
        G-set schedule policy (see
        :data:`repro.core.gsets.SCHEDULE_POLICIES`); the paper uses
        ``"vertical"``.
    aligned:
        Linear only — skew-align block boundaries (the paper's scheme;
        see :func:`repro.core.gsets.make_linear_gsets`).
    """
    with stage_span(
        "cut_and_pile.select_gsets", geometry=geometry, m=m,
        gnodes=len(gg.gnodes), gedges=gg.g.number_of_edges(),
    ) as sp:
        if geometry == "linear":
            plan = make_linear_gsets(gg, m, aligned=aligned)
        elif geometry == "mesh":
            plan = make_mesh_gsets(gg, m, shape=mesh_shape)
        else:
            raise ValueError(f"unknown geometry {geometry!r}")
        sp.tag("gsets", len(plan.gsets))
        sp.tag("boundary_gsets", plan.boundary_sets())
    with stage_span("cut_and_pile.schedule", policy=policy, gsets=len(plan.gsets)):
        order = schedule_gsets(plan, policy)
        verify_schedule(plan, order)
    with stage_span("cut_and_pile.exec_plan", gsets=len(order)) as sp:
        exec_plan = partitioned_plan(plan, order)
        sp.tag("fires", len(exec_plan.fires))
        sp.tag("makespan", exec_plan.makespan)
    with stage_span("cut_and_pile.evaluate", gsets=len(order)) as sp:
        report = evaluate_schedule(plan, order)
        sp.tag("total_time", report.total_time)
        sp.tag("memory_words", report.memory_words)
    return CutAndPile(gg=gg, plan=plan, order=order, exec_plan=exec_plan, report=report)
