"""Hybrid cut-and-pile + coalescing partitioning (Sec. 2).

The paper: "these basic approaches can be combined ... one could conceive
a scheme where cut-and-pile is performed first to obtain partitions
larger than the target array size and then coalescing is applied over the
partitions.  Such scheme would help reducing the memory requirements of
applying coalescing alone."

This module builds exactly that scheme and measures the claim: the
G-graph is cut into ``piles`` vertical super-blocks executed sequentially
(cut-and-pile at coarse granularity, intermediate data through external
memory); each super-block is then coalesced onto the ``m`` cells (every
cell sequentially executes a strip of the block).  Per-cell local storage
shrinks roughly by the number of piles, while the external traffic stays
far below pure cut-and-pile at G-node granularity — the knob between the
Fig. 1 and Fig. 2 extremes.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..core.ggraph import GGraph, GNodeId
from .coalescing import CoalescingResult, coalesce_by_strips

__all__ = ["HybridResult", "hybrid_partition"]


@dataclass(frozen=True)
class HybridResult:
    """Measured properties of the combined scheme."""

    m: int
    piles: int
    total_time: int
    throughput: Fraction
    max_local_storage: int  # worst per-cell storage over all piles
    external_words: int  # values crossing pile boundaries
    pile_results: tuple[CoalescingResult, ...]

    @property
    def occupancy(self) -> Fraction:
        """Busy cell-cycles over capacity, aggregated across piles."""
        busy = sum(
            float(r.occupancy) * r.m * r.total_time for r in self.pile_results
        )
        return Fraction(round(busy), self.m * self.total_time)


class _SubGGraph(GGraph):
    """A restriction of a G-graph to a subset of its G-nodes.

    Reuses the parent's derived structure; dependences entering from
    outside the subset are treated as external (memory) inputs.
    """

    def __init__(self, parent: GGraph, keep: set[GNodeId]) -> None:  # noqa: D107
        # Deliberately not calling super().__init__: we restrict a parent.
        self.dg = parent.dg
        self.gnodes = {gid: parent.gnodes[gid] for gid in keep}
        self.node_of = {
            nid: gid for nid, gid in parent.node_of.items() if gid in keep
        }
        self.g = parent.g.subgraph(keep).copy()


def hybrid_partition(gg: GGraph, m: int, piles: int) -> HybridResult:
    """Cut the G-graph into ``piles`` column bands, coalesce each onto
    ``m`` cells, and execute the bands sequentially."""
    if piles < 1:
        raise ValueError(f"need at least one pile, got {piles}")
    cols = gg.cols
    if piles > len(cols):
        raise ValueError(f"cannot cut {len(cols)} G-columns into {piles} piles")
    band = -(-len(cols) // piles)
    col_rank = {c: i for i, c in enumerate(cols)}

    results: list[CoalescingResult] = []
    total_time = 0
    for p in range(piles):
        keep = {
            gid for gid in gg.gnodes if p * band <= col_rank[gid[1]] < (p + 1) * band
        }
        if not keep:
            continue
        sub = _SubGGraph(gg, keep)
        res = coalesce_by_strips(sub, m)
        results.append(res)
        total_time += res.total_time

    # External traffic: G-edge words crossing pile boundaries.
    external = 0
    for (r1, c1), (r2, c2), d in gg.g.edges(data=True):
        if col_rank[c1] // band != col_rank[c2] // band:
            external += d["weight"]

    return HybridResult(
        m=m,
        piles=piles,
        total_time=total_time,
        throughput=Fraction(1, total_time) if total_time else Fraction(0),
        max_local_storage=max((r.max_local_storage for r in results), default=0),
        external_words=external,
        pile_results=tuple(results),
    )
