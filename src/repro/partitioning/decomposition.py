"""Decomposition into sub-algorithms (Fig. 3, Navarro et al. [7]).

The third basic approach transforms the *algorithm* rather than its
graph: a computation on large dense matrices becomes a chain of
band-matrix sub-problems, each sized to the target array.  Following the
paper's Fig. 3 we decompose dense matrix multiplication into rank-``w``
(band) updates::

    C = A @ B  =  sum_s  A[:, s*w:(s+1)*w] @ B[s*w:(s+1)*w, :]

Each term is a band multiplication that fits an array tailored to band
width ``w``; the partial ``C`` is piled through external memory between
passes.  The scheme's signature costs — per-pass result traffic and an
algorithm-specific decomposition — are what this module measures, for
contrast with cut-and-pile (which needs neither).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

__all__ = ["BandDecomposition", "band_matmul_decomposition"]


@dataclass(frozen=True)
class BandDecomposition:
    """Measured properties of a band-decomposed matrix product."""

    n: int
    band: int
    passes: int
    result: np.ndarray
    # Words moved to/from external memory for the accumulating C matrix:
    # each pass reads and writes the full n x n partial result (except the
    # first, which only writes).
    c_traffic: int
    # Input words streamed per pass (one band of A and one of B).
    input_words: int
    # Cycles on a w x n band array, one MAC column per cycle per band lane.
    est_time: int

    @property
    def traffic_per_pass(self) -> Fraction:
        """Average external words moved per pass."""
        return Fraction(self.c_traffic + self.input_words, self.passes)


def band_matmul_decomposition(
    a: np.ndarray, b: np.ndarray, band: int
) -> BandDecomposition:
    """Compute ``A @ B`` as a chain of band (rank-``band``) updates.

    The returned object carries both the (verified) numerical result and
    the external-traffic accounting the Fig. 3 comparison needs.
    """
    n, p = a.shape
    p2, q = b.shape
    if p != p2:
        raise ValueError(f"shape mismatch {a.shape} @ {b.shape}")
    if not (1 <= band <= p):
        raise ValueError(f"band width must be in [1, {p}], got {band}")
    passes = -(-p // band)
    c = np.zeros((n, q))
    c_traffic = 0
    input_words = 0
    for s in range(passes):
        lo, hi = s * band, min((s + 1) * band, p)
        c += a[:, lo:hi] @ b[lo:hi, :]
        input_words += n * (hi - lo) + (hi - lo) * q
        # read + write the partial result (first pass: write only).
        c_traffic += n * q if s == 0 else 2 * n * q
    # A w-wide band array streams the n x q result in ~ n + q + w cycles
    # per pass (systolic fill + drain), one pass per band.
    est_time = passes * (n + q + band)
    return BandDecomposition(
        n=n,
        band=band,
        passes=passes,
        result=c,
        c_traffic=c_traffic,
        input_words=input_words,
        est_time=est_time,
    )
