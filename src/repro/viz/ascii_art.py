"""Terminal renderings of the paper's figures.

These helpers regenerate the *shape* of the figures as text: G-graph
computation-time grids (Figs. 17/22), G-set schedules (Fig. 20), the
stage-by-stage property table (Figs. 10-16), and one level of the
transitive-closure grid with its node roles (Fig. 16).  The benchmark
harness prints them so a reader can eyeball the reproduction against the
paper without a plotting stack.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..core.analysis import communication_patterns, find_broadcasts, flow_directions
from ..core.ggraph import GGraph
from ..core.graph import DependenceGraph
from ..core.gsets import GSet

__all__ = [
    "format_table",
    "render_ggraph_times",
    "render_schedule",
    "render_stage_table",
    "render_level_grid",
    "render_gantt",
]


def format_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None) -> str:
    """Plain-text table from dict rows (the benchmark harness's printer)."""
    if not rows:
        return "(empty)"
    cols = list(columns) if columns else list(rows[0].keys())
    cells = [[_fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)
    ]
    header = "  ".join(c.rjust(w) for c, w in zip(cols, widths))
    rule = "-" * len(header)
    body = "\n".join("  ".join(v.rjust(w) for v, w in zip(row, widths)) for row in cells)
    return f"{header}\n{rule}\n{body}"


def _fmt(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.4f}"
    return str(v)


def render_ggraph_times(gg: GGraph) -> str:
    """Computation-time grid of a G-graph (Figs. 17 / 22a).

    Rows are horizontal G-paths; each entry is one G-node's computation
    time.  Uniform grids (transitive closure) print a constant field;
    LU-like graphs show the monotone decrease of Sec. 4.3.
    """
    lines = []
    col_list = gg.cols
    width = max(
        2, max((len(str(gn.comp_time)) for gn in gg.gnodes.values()), default=2)
    )
    for r in gg.rows:
        entries = []
        for c in col_list:
            gn = gg.gnodes.get((r, c))
            entries.append(str(gn.comp_time).rjust(width) if gn else " " * width)
        lines.append(f"k={str(r):>3} | " + " ".join(entries))
    return "\n".join(lines)


def render_schedule(order: Iterable[GSet], per_line: int = 8) -> str:
    """G-set issue order (the Fig. 20 tags), wrapped for the terminal."""
    sids = [str(s.sid) for s in order]
    lines = []
    for i in range(0, len(sids), per_line):
        chunk = sids[i : i + per_line]
        lines.append(f"t{i:>4}: " + " -> ".join(chunk))
    return "\n".join(lines)


def render_stage_table(stages: Mapping[str, DependenceGraph]) -> str:
    """Property census across pipeline stages (the Figs. 10-16 story)."""
    rows = []
    for name, dg in stages.items():
        bc = find_broadcasts(dg)
        fl = flow_directions(dg, pos_attr="draw")
        st = communication_patterns(dg)
        rows.append(
            {
                "stage": name,
                "nodes": len(dg),
                "broadcasts": bc.count,
                "max_fanout": bc.max_fanout if bc.sources else 1,
                "unidirectional": fl.is_unidirectional,
                "stencils": st.distinct,
                "dominant": float(st.dominant_fraction),
            }
        )
    return format_table(rows)


def render_gantt(plan, dg: DependenceGraph, start: int = 0, width: int = 72) -> str:
    """Cell-occupancy timeline of an execution plan (one row per cell).

    Legend: ``#`` compute slot, ``+`` transmit/pass, ``-`` delay,
    ``.`` idle.  Shows cycles ``[start, start+width)``; wide plans are
    meant to be windowed (e.g. one G-set period).
    """
    symbol = {"compute": "#", "delay": "-"}
    rows: dict = {}
    for nid, (cell, t) in plan.fires.items():
        if not (start <= t < start + width):
            continue
        tag = dg.g.nodes[nid].get("tag")
        ch = symbol.get(tag, "+")
        rows.setdefault(cell, {})[t - start] = ch
    lines = [f"cycles {start}..{start + width - 1}  (# compute, + transmit, - delay)"]
    for cell in sorted(rows, key=str):
        cells = rows[cell]
        line = "".join(cells.get(i, ".") for i in range(width))
        lines.append(f"{str(cell):>8} |{line}|")
    return "\n".join(lines)


def render_level_grid(dg: DependenceGraph, level: int, n: int) -> str:
    """One level of the flipped transitive-closure grid (Fig. 16).

    Legend: ``*`` compute, ``r`` row-k transmitter, ``c`` column-k
    transmitter, ``s`` superfluous (diagonal), ``D`` delay column.
    """
    legend = {
        "compute": "*",
        "transmit-row": "r",
        "transmit-col": "c",
        "superfluous": "s",
        "delay": "D",
    }
    grid: dict[tuple[int, int], str] = {}
    for nid, d in dg.g.nodes(data=True):
        p = d.get("pos")
        if p is None or len(p) != 3 or p[0] != level:
            continue
        tag = d.get("tag")
        if tag in legend:
            grid[(p[1], p[2])] = legend[tag]
    if not grid:
        return f"(no nodes at level {level})"
    max_r = max(r for r, _ in grid)
    max_c = max(c for _, c in grid)
    lines = [f"level k={level}  (rows i=(k+r) mod n, cols j=(k+c) mod n)"]
    for r in range(max_r + 1):
        lines.append(" ".join(grid.get((r, c), ".") for c in range(max_c + 1)))
    return "\n".join(lines)
