"""ASCII rendering of graphs, G-graphs, and schedules."""

from .ascii_art import (  # noqa: F401
    render_ggraph_times,
    render_schedule,
    render_stage_table,
    render_level_grid,
    render_gantt,
    format_table,
)
