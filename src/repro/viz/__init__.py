"""Rendering: ASCII figures for the terminal, inline SVG for HTML.

:mod:`repro.viz.ascii_art` regenerates the paper's figures as text;
:mod:`repro.viz.svg` provides the stdlib-only chart primitives
(heatmap, line chart, occupancy lanes) the performance dashboard
(:mod:`repro.obs.dashboard`) embeds.
"""

from .ascii_art import (  # noqa: F401
    render_ggraph_times,
    render_schedule,
    render_stage_table,
    render_level_grid,
    render_gantt,
    format_table,
)
from .svg import (  # noqa: F401
    svg_flamegraph,
    svg_heatmap,
    svg_lanes,
    svg_line_chart,
)
