"""Inline-SVG chart primitives for the HTML dashboard (stdlib only).

Three chart forms, each returning an ``<svg>`` string ready to embed in
an HTML page (:mod:`repro.obs.dashboard`):

* :func:`svg_heatmap` — magnitude on a cell grid (per-cell fire counts /
  utilization), one sequential blue ramp, light-to-dark;
* :func:`svg_line_chart` — measured-vs-closed-form curves across problem
  size and the perf trajectory, categorical hues in fixed slot order
  with a legend and direct end labels;
* :func:`svg_lanes` — per-cell occupancy timelines (cycle × cell), one
  categorical hue per activity class.

Design rules (shared with the palette the dashboard stylesheet defines):
marks carry the series color, text wears ink tokens; gridlines are
solid hairlines; markers are >= 8px with a 2px surface ring; every mark
carries a native ``<title>`` tooltip so the charts are hoverable without
any scripting.  Chrome colors are referenced as CSS custom properties
with hex fallbacks, so the SVGs render standalone *and* theme with the
embedding page.
"""

from __future__ import annotations

import math
from html import escape
from typing import Mapping, Sequence

__all__ = [
    "CATEGORICAL",
    "SEQ_RAMP",
    "seq_color",
    "ink_on",
    "nice_ticks",
    "svg_heatmap",
    "svg_line_chart",
    "svg_lanes",
    "svg_flamegraph",
]

#: Categorical slots 1-3 (validated fixed order; never cycled).  The
#: dashboard's chart forms never seat more than three series.
CATEGORICAL = ("#2a78d6", "#eb6834", "#1baf7a")

#: Sequential blue ramp, steps 100 -> 700 (light = near zero).
SEQ_RAMP = (
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
    "#0d366b",
)

_INK = "var(--text-primary, #0b0b0b)"
_INK2 = "var(--text-secondary, #52514e)"
_MUTED = "var(--muted, #898781)"
_GRID = "var(--gridline, #e1e0d9)"
_AXIS = "var(--baseline, #c3c2b7)"
_SURFACE = "var(--surface-1, #fcfcfb)"
_FONT = 'font-family="system-ui, -apple-system, \'Segoe UI\', sans-serif"'


def _hex_rgb(color: str) -> tuple[int, int, int]:
    color = color.lstrip("#")
    return int(color[0:2], 16), int(color[2:4], 16), int(color[4:6], 16)


def seq_color(t: float) -> str:
    """Sequential ramp lookup: ``t`` in [0, 1] -> interpolated hex."""
    t = min(1.0, max(0.0, t))
    x = t * (len(SEQ_RAMP) - 1)
    i = min(int(x), len(SEQ_RAMP) - 2)
    f = x - i
    a, b = _hex_rgb(SEQ_RAMP[i]), _hex_rgb(SEQ_RAMP[i + 1])
    return "#%02x%02x%02x" % tuple(
        round(a[c] + (b[c] - a[c]) * f) for c in range(3)
    )


def ink_on(fill: str) -> str:
    """White or dark ink for a label *inside* ``fill``, by luminance."""
    r, g, b = _hex_rgb(fill)
    lum = 0.2126 * r + 0.7152 * g + 0.0722 * b
    return "#ffffff" if lum < 140 else "#0b0b0b"


def nice_ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """~n round-number ticks covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / max(n, 1)
    mag = 10.0 ** math.floor(math.log10(raw))
    step = next(s * mag for s in (1, 2, 2.5, 5, 10) if s * mag >= raw)
    start = math.floor(lo / step) * step
    ticks = []
    t = start
    while t <= hi + step * 1e-9:
        if t >= lo - step * 1e-9:
            ticks.append(round(t, 10))
        t += step
    return ticks


def _fmt_num(v: float) -> str:
    if v == int(v) and abs(v) < 1e15:
        return f"{int(v):,}"
    return f"{v:.4g}"


def _legend(names: Sequence[str], colors: Sequence[str], x: int, y: int) -> str:
    """One horizontal legend row: colored key + ink label per series."""
    parts, cx = [], x
    for name, color in zip(names, colors):
        parts.append(
            f'<rect x="{cx}" y="{y - 8}" width="14" height="4" rx="2" '
            f'fill="{color}"/>'
        )
        label = escape(str(name))
        parts.append(
            f'<text x="{cx + 18}" y="{y}" font-size="11" fill="{_INK2}">'
            f"{label}</text>"
        )
        cx += 18 + 7 * len(label) + 18
    return "".join(parts)


def svg_heatmap(
    values: Mapping[tuple[int, int], float],
    title: str = "",
    value_label: str = "value",
    cell_px: int = 44,
    max_value: float | None = None,
) -> str:
    """Grid heatmap from ``{(row, col): value}`` — one sequential hue.

    Each cell is a ``<rect>`` carrying ``data-cell``/``data-count``
    attributes (the tests match them against probe fire counts) and a
    ``<title>`` tooltip; the in-cell value label flips between white and
    ink by the fill's luminance.
    """
    if not values:
        return "<svg " + _FONT + ' width="80" height="24"><text x="0" y="16" ' \
            f'font-size="12" fill="{_MUTED}">(no data)</text></svg>'
    rows = sorted({r for r, _ in values})
    cols = sorted({c for _, c in values})
    vmax = max_value if max_value is not None else max(values.values())
    vmax = vmax or 1
    left, top, gap = 46, 28, 2
    w = left + len(cols) * (cell_px + gap) + 8
    h = top + len(rows) * (cell_px + gap) + 22
    out = [
        f"<svg {_FONT} viewBox=\"0 0 {w} {h}\" width=\"{w}\" height=\"{h}\" "
        f'role="img" aria-label="{escape(title)}">'
    ]
    if title:
        out.append(
            f'<text x="0" y="14" font-size="12" font-weight="600" '
            f'fill="{_INK}">{escape(title)}</text>'
        )
    for j, c in enumerate(cols):
        out.append(
            f'<text x="{left + j * (cell_px + gap) + cell_px / 2}" '
            f'y="{top - 6}" font-size="10" text-anchor="middle" '
            f'fill="{_MUTED}">{escape(str(c))}</text>'
        )
    for i, r in enumerate(rows):
        y = top + i * (cell_px + gap)
        out.append(
            f'<text x="{left - 8}" y="{y + cell_px / 2 + 4}" font-size="10" '
            f'text-anchor="end" fill="{_MUTED}">{escape(str(r))}</text>'
        )
        for j, c in enumerate(cols):
            x = left + j * (cell_px + gap)
            if (r, c) not in values:
                continue
            v = values[(r, c)]
            fill = seq_color(v / vmax)
            label = _fmt_num(v)
            out.append(
                f'<rect x="{x}" y="{y}" width="{cell_px}" height="{cell_px}" '
                f'rx="4" fill="{fill}" data-cell="{r},{c}" data-count="{v:g}">'
                f"<title>cell ({r}, {c}): {label} {escape(value_label)}"
                f"</title></rect>"
            )
            if len(label) * 7 <= cell_px - 6:
                out.append(
                    f'<text x="{x + cell_px / 2}" y="{y + cell_px / 2 + 4}" '
                    f'font-size="11" text-anchor="middle" '
                    f'fill="{ink_on(fill)}" pointer-events="none">{label}</text>'
                )
    out.append("</svg>")
    return "".join(out)


def svg_line_chart(
    series: Sequence[tuple[str, Sequence[tuple[float, float]]]],
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    width: int = 460,
    height: int = 260,
    step: bool = False,
) -> str:
    """Multi-series line chart; categorical slots in fixed order.

    At most ``len(CATEGORICAL)`` series (the all-pairs-safe cap) — callers
    with more must facet.  Every point gets a >= 8px marker with a 2px
    surface ring and a ``<title>`` tooltip; series are direct-labeled at
    their endpoints and a legend row is present whenever there are two
    or more.
    """
    series = [(name, list(pts)) for name, pts in series if pts]
    if not series:
        return "<svg " + _FONT + ' width="80" height="24"><text x="0" y="16" ' \
            f'font-size="12" fill="{_MUTED}">(no data)</text></svg>'
    if len(series) > len(CATEGORICAL):
        raise ValueError(
            f"at most {len(CATEGORICAL)} series per chart (got {len(series)}); "
            "facet into small multiples instead"
        )
    xs = [x for _, pts in series for x, _ in pts]
    ys = [y for _, pts in series for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_ticks = nice_ticks(min(0.0, min(ys)), max(ys) or 1.0)
    y_lo, y_hi = y_ticks[0], y_ticks[-1]
    left, right, top, bottom = 58, 96, 30, 40
    pw, ph = width - left - right, height - top - bottom

    def sx(x: float) -> float:
        return left + (x - x_lo) / ((x_hi - x_lo) or 1) * pw

    def sy(y: float) -> float:
        return top + ph - (y - y_lo) / ((y_hi - y_lo) or 1) * ph

    out = [
        f"<svg {_FONT} viewBox=\"0 0 {width} {height}\" width=\"{width}\" "
        f'height="{height}" role="img" aria-label="{escape(title)}">'
    ]
    if title:
        out.append(
            f'<text x="0" y="14" font-size="12" font-weight="600" '
            f'fill="{_INK}">{escape(title)}</text>'
        )
    for t in y_ticks:
        y = sy(t)
        out.append(
            f'<line x1="{left}" y1="{y:.1f}" x2="{left + pw}" y2="{y:.1f}" '
            f'stroke="{_GRID}" stroke-width="1"/>'
        )
        out.append(
            f'<text x="{left - 8}" y="{y + 4:.1f}" font-size="10" '
            f'text-anchor="end" fill="{_MUTED}" '
            f'style="font-variant-numeric: tabular-nums">{_fmt_num(t)}</text>'
        )
    out.append(
        f'<line x1="{left}" y1="{top + ph}" x2="{left + pw}" y2="{top + ph}" '
        f'stroke="{_AXIS}" stroke-width="1"/>'
    )
    for t in nice_ticks(x_lo, x_hi, 6):
        if t < x_lo or t > x_hi:
            continue
        out.append(
            f'<text x="{sx(t):.1f}" y="{top + ph + 16}" font-size="10" '
            f'text-anchor="middle" fill="{_MUTED}" '
            f'style="font-variant-numeric: tabular-nums">{_fmt_num(t)}</text>'
        )
    if x_label:
        out.append(
            f'<text x="{left + pw / 2}" y="{height - 6}" font-size="10" '
            f'text-anchor="middle" fill="{_INK2}">{escape(x_label)}</text>'
        )
    if y_label:
        out.append(
            f'<text x="12" y="{top + ph / 2}" font-size="10" '
            f'text-anchor="middle" fill="{_INK2}" '
            f'transform="rotate(-90 12 {top + ph / 2})">{escape(y_label)}'
            f"</text>"
        )
    for k, (name, pts) in enumerate(series):
        color = CATEGORICAL[k]
        pts = sorted(pts)
        path = []
        for idx, (x, y) in enumerate(pts):
            if step and idx:
                path.append(f"H {sx(x):.1f}")
                path.append(f"V {sy(y):.1f}")
            else:
                path.append(
                    f"{'M' if not idx else 'L'} {sx(x):.1f} {sy(y):.1f}"
                )
        out.append(
            f'<path d="{" ".join(path)}" fill="none" stroke="{color}" '
            f'stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>'
        )
        for x, y in pts:
            out.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="4" '
                f'fill="{color}" stroke="{_SURFACE}" stroke-width="2">'
                f"<title>{escape(str(name))}: x={_fmt_num(x)}, "
                f"y={_fmt_num(y)}</title></circle>"
            )
        ex, ey = pts[-1]
        out.append(
            f'<text x="{sx(ex) + 8:.1f}" y="{sy(ey) + 4:.1f}" font-size="10" '
            f'fill="{_INK2}">{escape(str(name))}</text>'
        )
    if len(series) >= 2:
        out.append(_legend([s[0] for s in series], CATEGORICAL, left, 24))
    out.append("</svg>")
    return "".join(out)


def svg_lanes(
    lanes: Mapping[str, Sequence[tuple[int, str]]],
    makespan: int,
    classes: Sequence[str],
    title: str = "",
    lane_px: int = 14,
    width: int = 640,
) -> str:
    """Occupancy timeline: one lane per cell, one tick per busy cycle.

    ``lanes`` maps a lane label to ``(cycle, activity-class)`` pairs
    (idle cycles are simply absent — the surface shows through);
    ``classes`` fixes the activity -> categorical-slot order.  A legend
    row names the classes.
    """
    if len(classes) > len(CATEGORICAL):
        raise ValueError(
            f"at most {len(CATEGORICAL)} activity classes (got {len(classes)})"
        )
    color_of = dict(zip(classes, CATEGORICAL))
    left, top = 70, 34
    labels = list(lanes)
    span = max(1, makespan)
    pw = width - left - 14
    tick = pw / span
    h = top + len(labels) * (lane_px + 2) + 26
    out = [
        f"<svg {_FONT} viewBox=\"0 0 {width} {h}\" width=\"{width}\" "
        f'height="{h}" role="img" aria-label="{escape(title)}">'
    ]
    if title:
        out.append(
            f'<text x="0" y="14" font-size="12" font-weight="600" '
            f'fill="{_INK}">{escape(title)}</text>'
        )
    out.append(_legend(list(classes), CATEGORICAL, left, 28))
    for i, label in enumerate(labels):
        y = top + i * (lane_px + 2)
        out.append(
            f'<text x="{left - 8}" y="{y + lane_px - 3}" font-size="10" '
            f'text-anchor="end" fill="{_MUTED}">{escape(str(label))}</text>'
        )
        for cycle, cls in lanes[label]:
            x = left + cycle * tick
            color = color_of.get(cls, CATEGORICAL[0])
            out.append(
                f'<rect x="{x:.2f}" y="{y}" width="{max(tick - 0.4, 0.8):.2f}" '
                f'height="{lane_px}" fill="{color}">'
                f"<title>{escape(str(label))} @ cycle {cycle}: "
                f"{escape(str(cls))}</title></rect>"
            )
    axis_y = top + len(labels) * (lane_px + 2) + 4
    out.append(
        f'<line x1="{left}" y1="{axis_y}" x2="{left + pw}" y2="{axis_y}" '
        f'stroke="{_AXIS}" stroke-width="1"/>'
    )
    for t in nice_ticks(0, span, 8):
        if 0 <= t <= span:
            out.append(
                f'<text x="{left + t * tick:.1f}" y="{axis_y + 14}" '
                f'font-size="10" text-anchor="middle" fill="{_MUTED}" '
                f'style="font-variant-numeric: tabular-nums">{_fmt_num(t)}'
                f"</text>"
            )
    out.append("</svg>")
    return "".join(out)


def svg_flamegraph(
    root: Mapping[str, object],
    title: str = "",
    width: int = 960,
    row_px: int = 22,
) -> str:
    """Icicle-layout flamegraph of a profile phase tree.

    ``root`` is the plain-dict form of a profile node —
    ``{"name", "total_s", "self_s", "children": [...]}`` (what
    ``ProfileNode.to_dict`` / the ``repro profile`` JSON's ``phases``
    field holds; this module stays independent of :mod:`repro.obs`).
    Root on top, each child's width proportional to its share of the
    parent's cumulative time, depth growing downward.  Frames carry
    ``<title>`` tooltips and luminance-picked in-frame labels; frames
    narrower than a pixel are dropped.  Unlike the dashboard charts this
    SVG declares ``xmlns``, so ``--flame-out`` files open standalone.
    """
    total = float(root.get("total_s") or 0.0)  # type: ignore[arg-type]

    def max_depth(node: Mapping[str, object], d: int) -> int:
        deepest = d
        for c in node.get("children") or ():  # type: ignore[union-attr]
            deepest = max(deepest, max_depth(c, d + 1))
        return deepest

    rows = max_depth(root, 0) + 1
    top = 26 if title else 4
    height = top + rows * (row_px + 2) + 4
    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" {_FONT} '
        f'viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" aria-label="{escape(title)}">'
    ]
    if title:
        out.append(
            f'<text x="0" y="14" font-size="12" font-weight="600" '
            f'fill="{_INK}">{escape(title)}</text>'
        )

    def emit(node: Mapping[str, object], x: float, w: float, d: int) -> None:
        if w < 1.0:
            return
        node_total = float(node.get("total_s") or 0.0)  # type: ignore[arg-type]
        node_self = float(node.get("self_s") or 0.0)  # type: ignore[arg-type]
        name = str(node.get("name"))
        share = node_total / total if total else 0.0
        # Darker = hotter (bigger share of the run), same ramp as the
        # heatmaps so the dashboard reads as one family.
        fill = seq_color(0.15 + 0.85 * share)
        y = top + d * (row_px + 2)
        pct = f"{share:.1%}"
        out.append(
            f'<rect x="{x:.1f}" y="{y}" width="{max(w - 1, 0.8):.1f}" '
            f'height="{row_px}" rx="2" fill="{fill}" data-frame="{escape(name)}">'
            f"<title>{escape(name)}: {node_total:.4f}s total "
            f"({pct} of run), {node_self:.4f}s self</title></rect>"
        )
        label = name
        if len(label) * 7 > w - 8 and w > 22:
            label = label[: max(int((w - 15) / 7), 1)] + "…"
        if len(label) * 7 <= w - 6:
            out.append(
                f'<text x="{x + 4:.1f}" y="{y + row_px - 7}" font-size="11" '
                f'fill="{ink_on(fill)}" pointer-events="none">'
                f"{escape(label)}</text>"
            )
        cx = x
        for c in node.get("children") or ():  # type: ignore[union-attr]
            c_total = float(c.get("total_s") or 0.0)
            cw = w * (c_total / node_total) if node_total else 0.0
            emit(c, cx, cw, d + 1)
            cx += cw

    emit(root, 0.0, float(width), 0)
    out.append("</svg>")
    return "".join(out)
