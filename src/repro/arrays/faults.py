"""Fault tolerance of partitioned arrays (Sec. 5 claim).

The paper concludes that linear arrays "are better suited to incorporate
fault-tolerant capabilities" than two-dimensional ones.  The standard
argument, which this module quantifies by re-partitioning and
re-simulating:

* a **linear** array survives a failed cell with a bypass link — the
  remaining ``m - f`` cells still form a chain, so the same cut-and-pile
  machinery simply re-partitions for ``m - f`` cells; throughput degrades
  gracefully by about ``(m - f)/m``;
* a **mesh** has no such cheap reconfiguration: the usual scheme retires
  the failed cell's entire row (or column), leaving a
  ``(s - 1) x s`` array — ``s`` cells lost to one fault — and the block
  partitioning must be rebuilt for the new shape.

:func:`degraded_throughput` returns the measured throughput before and
after ``f`` cell failures for both geometries, using the real pipeline
(G-sets, schedule, execution plan), not a formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..core.ggraph import GGraph
from ..core.gsets import make_linear_gsets, make_mesh_gsets, schedule_gsets
from ..core.metrics import evaluate_schedule

__all__ = ["FaultReport", "degraded_linear", "degraded_mesh", "degraded_throughput"]


@dataclass(frozen=True)
class FaultReport:
    """Throughput retention of one geometry under cell failures."""

    geometry: str
    m: int
    failures: int
    cells_used: int
    healthy_time: int
    degraded_time: int

    @property
    def retention(self) -> Fraction:
        """Fraction of healthy throughput the degraded array retains.

        Throughput is problems per cycle, i.e. ``1 / total_time``, so
        retention is ``T_healthy / T_degraded`` — at most 1, and exactly
        1 for zero failures.  The resilience runtime cross-validates
        this static prediction against the *measured* degraded clock of
        a fault-driven run (``RecoveryResult.degraded_throughput``);
        the two agree because both execute the same re-partitioned
        schedule.
        """
        return Fraction(self.healthy_time, self.degraded_time)

    @property
    def slowdown(self) -> Fraction:
        """``T_degraded / T_healthy`` — at least 1; the inverse lens on
        :attr:`retention` for reports quoting runtime growth."""
        return Fraction(self.degraded_time, self.healthy_time)

    @property
    def cells_lost(self) -> int:
        """Cells retired per failure scenario (bypass vs row retirement)."""
        return self.m - self.cells_used

    @property
    def availability(self) -> Fraction:
        """Fraction of the array's cells still in service (<= 1).

        The static steady-state view of
        :attr:`repro.resilience.runtime.RecoveryResult.availability`:
        that measured number integrates each cell's live cycles over
        one faulty run, while this one assumes the failures happened
        before the run — the limit the measured availability approaches
        as onsets move toward cycle 0.
        """
        return Fraction(self.cells_used, self.m)


def degraded_linear(gg: GGraph, m: int, failures: int = 1) -> FaultReport:
    """Linear array with ``failures`` bypassed cells: chain of ``m-f``."""
    if not (0 <= failures < m):
        raise ValueError(f"failures must be in [0, {m}), got {failures}")
    healthy = _linear_time(gg, m)
    degraded = _linear_time(gg, m - failures) if failures else healthy
    return FaultReport(
        geometry="linear",
        m=m,
        failures=failures,
        cells_used=m - failures,
        healthy_time=healthy,
        degraded_time=degraded,
    )


def degraded_mesh(gg: GGraph, m: int, failures: int = 1) -> FaultReport:
    """Mesh with ``failures`` faults, each retiring one full row of cells."""
    import math

    side = math.isqrt(m)
    if side * side != m:
        raise ValueError(f"mesh needs square m, got {m}")
    if not (0 <= failures < side):
        raise ValueError(f"failures must be in [0, {side}), got {failures}")
    healthy = _mesh_time(gg, (side, side))
    shape = (side - failures, side)
    degraded = _mesh_time(gg, shape) if failures else healthy
    return FaultReport(
        geometry="mesh",
        m=m,
        failures=failures,
        cells_used=shape[0] * shape[1],
        healthy_time=healthy,
        degraded_time=degraded,
    )


def _linear_time(gg: GGraph, m: int) -> int:
    plan = make_linear_gsets(gg, m)
    order = schedule_gsets(plan, "vertical")
    return evaluate_schedule(plan, order).total_time


def _mesh_time(gg: GGraph, shape: tuple[int, int]) -> int:
    plan = make_mesh_gsets(gg, shape[0] * shape[1], shape=shape)
    order = schedule_gsets(plan, "vertical")
    return evaluate_schedule(plan, order).total_time


def degraded_throughput(gg: GGraph, m: int, failures: int = 1) -> dict[str, FaultReport]:
    """Side-by-side fault report for both geometries (Sec. 5)."""
    return {
        "linear": degraded_linear(gg, m, failures),
        "mesh": degraded_mesh(gg, m, failures),
    }
