"""Cycle-level simulation of an execution plan.

This is the substrate substituting for the paper's (paper-and-pencil) VLSI
arrays: it executes every primitive node of a dependence graph at the cell
and cycle its :class:`~repro.arrays.plan.ExecutionPlan` assigns, while
enforcing the physical constraints a systolic implementation imposes:

* one node per cell per cycle (checked at plan construction);
* an operand produced at cycle ``t`` in a cell is usable from ``t+1`` in
  the same cell or a linked neighbour;
* any other transfer must round-trip through external memory (available
  from ``t+2``) and is charged to the cut-and-pile memory traffic;
* primary inputs arrive from the host; the simulator records each word's
  *deadline* (one cycle before first use) and derives the host-bandwidth
  demand curve of Fig. 21.

The simulation also *computes* — the semiring values flow through the
schedule — so the result matrix is checked against the software oracle,
proving that the partitioned arrays really execute Warshall's algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from time import perf_counter
from typing import TYPE_CHECKING, Any, Hashable, Mapping

import numpy as np

from ..core.evaluate import OPCODE_SEMANTICS
from ..core.graph import DependenceGraph, GraphError, NodeId, NodeKind
from ..core.semiring import BOOLEAN, Semiring
from ..obs.profile import kernel_profiler
from ..obs.tracing import stage_span
from .plan import ExecutionPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.probe import Probe
    from ..resilience.faults import Injector

__all__ = [
    "SimResult",
    "SimulationError",
    "Violation",
    "simulate",
    "cell_fire_counts",
    "cell_utilization",
]


@dataclass(frozen=True)
class Violation:
    """One timing/locality violation found during simulation."""

    node: NodeId
    role: str
    producer: NodeId
    kind: str  # "timing" | "memory-timing"
    slack: int

    def __str__(self) -> str:  # noqa: D105
        return (
            f"{self.kind} violation at {self.node!r}.{self.role}: "
            f"producer {self.producer!r} late by {-self.slack} cycle(s)"
        )


class SimulationError(GraphError):
    """A strict-mode simulation stop, carrying the structured violation.

    ``strict=True`` used to raise a bare :class:`GraphError` whose
    message was the only record of what went wrong; callers (and the
    tracer) now get the :class:`Violation` object on ``.violation``.
    """

    def __init__(self, violation: Violation) -> None:
        super().__init__(str(violation))
        self.violation = violation


@dataclass
class SimResult:
    """Everything measured during one simulated execution."""

    outputs: dict[NodeId, Any]
    makespan: int
    cells: int
    busy: int
    useful: int
    memory_words: int
    memory_reads: int
    input_deadlines: dict[NodeId, int]
    input_cells: set[Hashable]
    #: input node -> cell of its earliest use (where the host must deliver)
    input_cell_of: dict[NodeId, Hashable] = field(default_factory=dict)
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the plan met every timing/locality constraint."""
        return not self.violations

    @property
    def utilization(self) -> Fraction:
        """Useful (compute) cell-cycles over total capacity.

        ``Fraction(0)`` for degenerate runs (no cells or empty makespan),
        matching :meth:`average_host_bandwidth`.
        """
        capacity = self.cells * self.makespan
        if capacity <= 0:
            return Fraction(0)
        return Fraction(self.useful, capacity)

    @property
    def occupancy(self) -> Fraction:
        """Busy cell-cycles (incl. transmit/delay slots) over capacity.

        ``Fraction(0)`` for degenerate runs, like :attr:`utilization`.
        """
        capacity = self.cells * self.makespan
        if capacity <= 0:
            return Fraction(0)
        return Fraction(self.busy, capacity)

    def io_demand_curve(self) -> list[tuple[int, int]]:
        """Cumulative host words needed by each deadline cycle.

        Returns sorted ``(cycle, cumulative words)`` pairs; the host must
        have delivered that many words by that cycle.
        """
        if not self.input_deadlines:
            return []
        counts: dict[int, int] = {}
        for t in self.input_deadlines.values():
            counts[t] = counts.get(t, 0) + 1
        curve = []
        total = 0
        for t in sorted(counts):
            total += counts[t]
            curve.append((t, total))
        return curve

    def required_host_bandwidth(self, preload: int = 0) -> Fraction:
        """Minimal constant host rate (words/cycle) meeting all deadlines.

        ``max_t (cumulative(t) - preload) / t`` over the demand curve —
        what the R-block chain of Fig. 21 must sustain, given that the
        first ``preload`` words are loaded into the R memories before the
        run starts (the paper loads the first vertical path's inputs while
        the previous problem instance drains).
        """
        best = Fraction(0)
        for t, cum in self.io_demand_curve():
            if t > 0 and cum > preload:
                best = max(best, Fraction(cum - preload, t))
        return best

    def average_host_bandwidth(self) -> Fraction:
        """Total host words over the whole run (the aggregate D_IO)."""
        if self.makespan <= 0:
            return Fraction(0)
        return Fraction(len(self.input_deadlines), self.makespan)

    def output_matrix(self, n: int, semiring: Semiring = BOOLEAN) -> np.ndarray:
        """Assemble ``("out", i, j)`` outputs into a matrix."""
        m = np.empty((n, n), dtype=semiring.dtype)
        for i in range(n):
            for j in range(n):
                m[i, j] = self.outputs[("out", i, j)]
        return m


def cell_fire_counts(probe: "Probe") -> dict[Hashable, int]:
    """Fires per cell from a recording probe's event stream.

    ``probe`` duck-types :class:`~repro.obs.probe.RecordingProbe` (needs
    ``.fires``).  The dashboard's per-cell heatmap is this dict on a
    grid; the totals tie back to :attr:`SimResult.busy`.
    """
    counts: dict[Hashable, int] = {}
    for f in probe.fires:
        counts[f.cell] = counts.get(f.cell, 0) + 1
    return counts


def cell_utilization(
    probe: "Probe", makespan: int
) -> dict[Hashable, Fraction]:
    """Per-cell busy fraction: fires in the cell over the run's makespan.

    ``Fraction(0)`` per cell on a degenerate (zero-makespan) run, the
    same convention as :attr:`SimResult.utilization`.
    """
    if makespan <= 0:
        return {cell: Fraction(0) for cell in cell_fire_counts(probe)}
    return {
        cell: Fraction(fires, makespan)
        for cell, fires in cell_fire_counts(probe).items()
    }


def simulate(
    plan: ExecutionPlan,
    dg: DependenceGraph,
    inputs: Mapping[NodeId, Any],
    semiring: Semiring = BOOLEAN,
    strict: bool = False,
    probe: "Probe | None" = None,
    inject: "Injector | None" = None,
) -> SimResult:
    """Execute ``dg`` under ``plan`` and measure everything.

    Parameters
    ----------
    strict:
        Raise :class:`SimulationError` on the first violation instead of
        collecting them.
    probe:
        Optional :class:`repro.obs.probe.Probe` receiving per-cycle
        events (fires, operand reads classified by source, input
        deadlines, violations).  ``None`` (the default) costs one
        ``is not None`` check per event site — nothing else.
    inject:
        Optional :class:`repro.resilience.faults.Injector` that may
        corrupt the value a firing produces on its ``out`` port or
        drop/substitute a host input word.  Same zero-overhead contract
        as ``probe``: ``None`` costs one ``is not None`` check per fire
        and per input load.

    Notes
    -----
    Every slot-occupying node of ``dg`` must be covered by the plan.
    Output nodes are not fired (reading a result is free); constants are
    resident in every cell (they are wired control, not data).
    """
    fires = plan.fires
    topo_order = dg.topological_order()
    node_data = dg.g.nodes  # one attribute-dict fetch per node, not many
    values: dict[NodeId, dict[str, Any]] = {}
    violations: list[Violation] = []
    memory_refs: set[tuple] = set()
    memory_reads = 0
    input_deadlines: dict[NodeId, int] = {}
    input_cells: set[Hashable] = set()
    input_cell_of: dict[NodeId, Hashable] = {}
    busy = 0
    useful = 0

    region_of = plan.region_of
    # Kernel profiling follows the probe/inject zero-overhead contract:
    # one ``is not None`` check per OP firing when disabled.
    kprof = kernel_profiler()

    def check_operand(nid: NodeId, role: str, ref: tuple, cell, t: int) -> None:
        nonlocal memory_reads
        src, _ = ref
        src_kind = node_data[src]["kind"]
        if src_kind is NodeKind.CONST:
            if probe is not None:
                probe.on_operand(t, cell, nid, role, "const", src)
            return
        if src_kind is NodeKind.INPUT:
            deadline = t - 1
            prev = input_deadlines.get(src)
            if prev is None or deadline < prev:
                input_deadlines[src] = deadline
                input_cell_of[src] = cell
                if probe is not None:
                    probe.on_input(src, deadline, cell)
            input_cells.add(cell)
            if probe is not None:
                probe.on_operand(t, cell, nid, role, "input", src)
            return
        pcell, pt = fires[src]
        same_region = (
            not region_of or region_of.get(src) == region_of.get(nid)
        )
        local = cell == pcell or plan.topology.is_neighbor(pcell, cell)
        if same_region and local:
            slack = t - (pt + 1)
            kind = "timing"
            source = "local" if cell == pcell else "neighbor"
        else:
            # Cut-and-pile: the value is parked in external memory between
            # G-sets (or the cells are not linked) -- one write, one read.
            memory_refs.add(ref)
            memory_reads += 1
            slack = t - (pt + 2)
            kind = "memory-timing"
            source = "memory"
        if probe is not None:
            probe.on_operand(t, cell, nid, role, source, src)
        if slack < 0:
            v = Violation(node=nid, role=role, producer=src, kind=kind, slack=slack)
            if probe is not None:
                probe.on_violation(v)
            if strict:
                raise SimulationError(v)
            violations.append(v)

    with stage_span(
        "sim.simulate", graph=dg.name, nodes=len(topo_order),
        cells=plan.topology.m, probed=probe is not None,
    ) as sp:
        for nid in topo_order:
            d = node_data[nid]
            kind = d["kind"]
            if kind is NodeKind.INPUT:
                if nid not in inputs:
                    raise GraphError(f"no value supplied for input {nid!r}")
                value = inputs[nid]
                if inject is not None:
                    value = inject.on_host_word(nid, value)
                values[nid] = {"out": value}
                continue
            if kind is NodeKind.CONST:
                values[nid] = {"out": d["value"]}
                continue
            operands = d["operands"]
            if kind is NodeKind.OUTPUT:
                (ref,) = operands.values()
                values[nid] = {"out": values[ref[0]][ref[1]]}
                continue
            # Slot-occupying node: must be planned.
            if nid not in fires:
                raise GraphError(f"plan does not cover slot node {nid!r}")
            cell, t = fires[nid]
            busy += 1
            if d.get("tag") == "compute":
                useful += 1
            if probe is not None:
                probe.on_fire(t, cell, nid, kind.name, d.get("tag"))
            for role, ref in operands.items():
                check_operand(nid, role, ref, cell, t)
            if kind is NodeKind.OP:
                fn = OPCODE_SEMANTICS[d["opcode"]]
                roles = {r: values[ref[0]][ref[1]] for r, ref in operands.items()}
                table = dict(roles)
                if kprof is None:
                    table["out"] = fn(semiring, **roles)
                else:
                    t0 = perf_counter()
                    table["out"] = fn(semiring, **roles)
                    kprof.record(
                        d["opcode"], 1, perf_counter() - t0,
                        backend="reference",
                    )
                values[nid] = table
            else:  # PASS / DELAY
                (ref,) = operands.values()
                values[nid] = {"out": values[ref[0]][ref[1]]}
            if inject is not None:
                values[nid]["out"] = inject.on_fire_value(
                    t, cell, nid, values[nid]["out"]
                )

        outputs = {nid: values[nid]["out"] for nid in dg.outputs}
        sp.tag("makespan", plan.makespan)
        sp.tag("violations", len(violations))
        sp.tag("memory_words", len(memory_refs))
    return SimResult(
        outputs=outputs,
        makespan=plan.makespan,
        cells=plan.topology.m,
        busy=busy,
        useful=useful,
        memory_words=len(memory_refs),
        memory_reads=memory_reads,
        input_deadlines=input_deadlines,
        input_cells=input_cells,
        input_cell_of=input_cell_of,
        violations=violations,
    )
