"""Host interface: the R-block chain of Fig. 21.

When top-of-graph G-sets are not scheduled consecutively, the host can
feed the array at a rate far below one word per cell per cycle — but only
if computation is *decoupled* from data transfer.  The paper's structure
(from refs. [18, 19]) is a chain of ``R`` blocks, one per array cell/
column, each holding a register (the chain stage) and a small memory:
words stream from the host through the registers, drop into the memory of
their destination column, and wait there until the consuming G-set reads
them.

:func:`simulate_rblock_chain` plays that structure against the exact
delivery deadlines measured by the cycle simulator: words are issued by
the host in deadline order at a constant ``host_rate``; a word issued at
``t`` reaches column ``d`` at ``t + d + 1`` (one register hop per
column); it must arrive by its deadline.  The report says whether the
rate suffices, how early the host must start (the preload the paper hides
in the previous instance's drain), and the high-water mark of each R
memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import ceil, floor
from typing import Hashable

from .cycle_sim import SimResult

__all__ = ["RBlockReport", "simulate_rblock_chain", "column_of_cell"]


@dataclass(frozen=True)
class RBlockReport:
    """Outcome of streaming one run's inputs through the R-block chain."""

    host_rate: Fraction
    feasible: bool
    start_time: int  # when the host must issue the first word (may be < 0)
    words: int
    max_r_memory: int  # high-water mark over all R memories
    last_issue: int

    @property
    def preload_words(self) -> int:
        """Words the host must issue before cycle 0."""
        if self.start_time >= 0:
            return 0
        return min(self.words, ceil(-self.start_time * float(self.host_rate)))


def column_of_cell(cell: Hashable) -> int:
    """Chain column of a cell: its linear index or mesh column."""
    if isinstance(cell, tuple):
        return int(cell[-1])
    return int(cell)


def simulate_rblock_chain(
    result: SimResult,
    host_rate: Fraction | float = Fraction(1),
    start_time: int | None = None,
) -> RBlockReport:
    """Stream the run's input words through the register chain.

    Parameters
    ----------
    result:
        A cycle-simulation result carrying per-word deadlines and
        destination cells.
    host_rate:
        Words per cycle the host sustains (``<= 1``; the chain has one
        register per stage).
    start_time:
        When the host begins issuing; default: the latest start that still
        meets every deadline (reported, so callers can see the preload).
    """
    rate = Fraction(host_rate).limit_denominator(10**6)
    if rate <= 0:
        raise ValueError(f"host rate must be positive, got {rate}")
    if rate > 1:
        raise ValueError("the chain moves at most one word per cycle")
    words = sorted(
        (deadline, column_of_cell(result.input_cell_of[nid]), nid)
        for nid, deadline in result.input_deadlines.items()
    )
    n_words = len(words)
    if n_words == 0:
        return RBlockReport(
            host_rate=rate, feasible=True, start_time=0, words=0,
            max_r_memory=0, last_issue=0,
        )
    # Issue k-th word (deadline order) at start + ceil(k / rate); it
    # arrives at its column d at issue + d + 1.
    if start_time is None:
        start_time = min(
            floor(deadline - (col + 1) - Fraction(k, 1) / rate)
            for k, (deadline, col, _) in enumerate(words)
        )
    feasible = True
    arrivals: list[tuple[int, int, int]] = []  # (arrive, deadline, col)
    last_issue = start_time
    for k, (deadline, col, _) in enumerate(words):
        issue = start_time + ceil(Fraction(k) / rate)
        arrive = issue + col + 1
        last_issue = issue
        if arrive > deadline:
            feasible = False
        arrivals.append((arrive, deadline, col))
    # R-memory occupancy: a word sits in its column memory from arrival
    # until its deadline (when the cell reads it).
    events: dict[int, list[tuple[int, int]]] = {}
    for arrive, deadline, col in arrivals:
        evs = events.setdefault(col, [])
        evs.append((arrive, +1))
        evs.append((max(deadline, arrive) + 1, -1))
    peak = 0
    for evs in events.values():
        evs.sort()
        live = 0
        for _, delta in evs:
            live += delta
            peak = max(peak, live)
    return RBlockReport(
        host_rate=rate,
        feasible=feasible,
        start_time=start_time,
        words=n_words,
        max_r_memory=peak,
        last_issue=last_issue,
    )
