"""Vectorized simulator backend: compile once, replay many times.

:func:`simulate_vector` is a drop-in replacement for
:func:`repro.arrays.cycle_sim.simulate` that compiles the
``(plan, graph, semiring)`` triple into a batched NumPy program (see
:mod:`repro.arrays.vector_compile`) and replays it against the inputs.
The :class:`~repro.arrays.cycle_sim.SimResult` it returns is
bit-identical to the reference interpreter's — measures, deadlines,
violations, strict-mode error ordering and all.

The reference interpreter is *forced* (with a metrics breadcrumb)
whenever the replay could not reproduce its observable behaviour:

* ``probe is not None`` — probes receive per-cycle events in interpreter
  order; batching would change the stream.  Falling back also preserves
  the reference's zero-overhead ``probe is None`` contract.
* ``inject is not None`` — fault injectors rewrite individual firings
  mid-run; same contract.
* the graph uses opcodes without batched semantics (``rotg``/``rota``/
  ``rotb``), or field opcodes over a non-float dtype.

Backend selection is threaded through the stack as a string:
``get_backend("vector")`` returns the callable, and the process-wide
default (used when callers pass ``backend=None``) can be set with
:func:`set_default_backend` or the ``REPRO_SIM_BACKEND`` environment
variable.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Callable, Mapping

from ..core.graph import DependenceGraph, NodeId
from ..core.semiring import BOOLEAN, Semiring
from ..obs import runlog
from ..obs.metrics import get_registry
from ..obs.profile import kernel_profiler
from ..obs.tracing import stage_span
from .cycle_sim import SimResult, simulate
from .plan import ExecutionPlan
from .vector_compile import UnvectorizableGraphError, get_compiled

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.probe import Probe
    from ..resilience.faults import Injector

__all__ = [
    "simulate_vector",
    "ALLOWED_FALLBACK_REASONS",
    "BACKENDS",
    "get_backend",
    "default_backend",
    "set_default_backend",
    "resolve_backend",
    "dispatch_simulate",
]

SimulateFn = Callable[..., SimResult]

#: The documented reasons the vector backend's fast paths may fall
#: back.  ``probe``/``inject``/``unvectorizable`` hand the run to the
#: reference interpreter; ``bitpack`` (emitted at compile time) means a
#: boolean graph was not provably closure-shaped and replays on the
#: generic batched path instead of the bit-packed kernel.  The RL505
#: fallback-audit lint pass fails on any ``repro_vector_fallback_total``
#: reason outside this set — a new fallback path must be added here
#: (i.e. audited) before it ships.
ALLOWED_FALLBACK_REASONS: frozenset[str] = frozenset(
    {"probe", "inject", "unvectorizable", "bitpack"}
)


def _count_fallback(reason: str) -> None:
    get_registry().counter(
        "repro_vector_fallback_total",
        "Vector-backend fast-path fallbacks by reason",
    ).inc(reason=reason)
    runlog.emit("fallback", backend="vector", reason=reason)


def simulate_vector(
    plan: ExecutionPlan,
    dg: DependenceGraph,
    inputs: Mapping[NodeId, Any],
    semiring: Semiring = BOOLEAN,
    strict: bool = False,
    probe: "Probe | None" = None,
    inject: "Injector | None" = None,
) -> SimResult:
    """Execute ``dg`` under ``plan`` via the compiled batched program.

    Signature and result match
    :func:`repro.arrays.cycle_sim.simulate` exactly; see the module
    docstring for when the reference interpreter is forced instead.
    """
    if probe is not None:
        _count_fallback("probe")
        return simulate(plan, dg, inputs, semiring, strict, probe, inject)
    if inject is not None:
        _count_fallback("inject")
        return simulate(plan, dg, inputs, semiring, strict, probe, inject)
    try:
        compiled = get_compiled(plan, dg, semiring)
    except UnvectorizableGraphError:
        _count_fallback("unvectorizable")
        return simulate(plan, dg, inputs, semiring, strict, probe, inject)
    with stage_span(
        "sim.vector", graph=dg.name, slots=compiled.n_slots,
        steps=len(compiled.steps), cells=compiled.cells,
    ) as sp:
        result = compiled.replay(
            inputs, strict=strict, kprof=kernel_profiler()
        )
        sp.tag("makespan", result.makespan)
        sp.tag("violations", len(result.violations))
        sp.tag("memory_words", result.memory_words)
    return result


#: name -> simulate-compatible callable.  ``reference`` is the
#: interpreter of :mod:`repro.arrays.cycle_sim`.
BACKENDS: dict[str, SimulateFn] = {
    "reference": simulate,
    "vector": simulate_vector,
}

_DEFAULT_BACKEND = os.environ.get("REPRO_SIM_BACKEND", "reference")


def get_backend(name: str) -> SimulateFn:
    """The simulate-compatible callable registered under ``name``."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown simulator backend {name!r}; "
            f"choose from {sorted(BACKENDS)}"
        ) from None


def default_backend() -> str:
    """The process-wide backend used when callers pass ``backend=None``."""
    return _DEFAULT_BACKEND


def set_default_backend(name: str) -> str:
    """Set the process-wide default backend; returns the previous one."""
    global _DEFAULT_BACKEND
    get_backend(name)  # validate
    previous = _DEFAULT_BACKEND
    _DEFAULT_BACKEND = name
    return previous


def resolve_backend(name: str | None) -> str:
    """Map an optional backend argument to a concrete backend name."""
    resolved = _DEFAULT_BACKEND if name is None else name
    get_backend(resolved)  # validate
    return resolved


def dispatch_simulate(
    plan: ExecutionPlan,
    dg: DependenceGraph,
    inputs: Mapping[NodeId, Any],
    semiring: Semiring = BOOLEAN,
    strict: bool = False,
    probe: "Probe | None" = None,
    inject: "Injector | None" = None,
    backend: str | None = None,
) -> SimResult:
    """``simulate`` with an extra ``backend=`` knob (None -> default)."""
    fn = get_backend(resolve_backend(backend))
    return fn(plan, dg, inputs, semiring, strict, probe, inject)
