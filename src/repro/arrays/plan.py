"""Execution plans: every primitive node gets a cell and a fire cycle.

An :class:`ExecutionPlan` is the bridge between the partitioning
methodology (G-graphs, G-sets, schedules) and the cycle-level simulator:
it fixes *which cell* executes *which primitive node* at *which cycle*.
Builders are provided for the paper's four structures:

* :func:`partitioned_plan` — cut-and-pile execution of a scheduled G-set
  plan on a linear array (Fig. 18) or mesh (Fig. 19).  G-sets run
  back-to-back (each occupies the array for its computation time); within
  a G-set, cells start with the classic systolic *skew* (one cycle per
  hop) so that every chained operand arrives exactly one cycle after it
  is produced.
* :func:`fixed_array_plan` — the Fig. 17 fixed-size array: one cell per
  G-node, start skew ``3k + c`` (two extra cycles per level for the
  down-left link and the operand latency).
* :func:`fixed_linear_plan` — the linear collapse of Fig. 17: one cell
  per horizontal path (level); cell ``k`` executes its ``n(n+1)`` slots
  column-by-column; throughput ``1/(n(n+1))`` with all cells fully
  utilized.

All builders also verify *initiation-interval* feasibility for pipelined
problem instances: :func:`check_initiation_interval` proves that issuing a
new problem every ``delta`` cycles never double-books a cell, which is how
the fixed-size array's throughput ``1/n`` is established by simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from ..core.ggraph import GGraph
from ..core.graph import NodeId
from ..core.gsets import GSet, GSetPlan
from ..obs.tracing import stage_span
from .topology import ArrayTopology, fixed_grid_topology, linear_topology, mesh_topology

__all__ = [
    "ExecutionPlan",
    "PlanError",
    "partitioned_plan",
    "fixed_array_plan",
    "fixed_linear_plan",
    "check_initiation_interval",
    "min_initiation_interval",
]


class PlanError(ValueError):
    """Raised when an execution plan is malformed."""


@dataclass
class ExecutionPlan:
    """Cell/time assignment for every slot-occupying node of a graph.

    ``fires[nid] = (cell, cycle)``.  ``set_starts`` (optional) records the
    start cycle of each G-set for reporting.  ``region_of`` assigns each
    node to an execution region (its G-set): values crossing regions are
    parked in external memory between executions (cut-and-pile), even when
    producer and consumer happen to run on the same cell — a cell's
    registers do not survive into later G-sets.
    """

    topology: ArrayTopology
    fires: dict[NodeId, tuple[Hashable, int]]
    description: str = ""
    set_starts: list[tuple[tuple, int]] = field(default_factory=list)
    region_of: dict[NodeId, tuple] = field(default_factory=dict)
    #: cycles inserted to wait for cross-set dependences -- the measured
    #: partitioning overhead (zero whenever m << n, the paper's claim).
    stall_cycles: int = 0

    @property
    def makespan(self) -> int:
        """Cycles from 0 to the last firing (inclusive of that cycle)."""
        return max((t for _, t in self.fires.values()), default=-1) + 1

    def validate_exclusive(self) -> None:
        """Check that no cell fires two nodes in the same cycle."""
        seen: set[tuple] = set()
        for nid, (cell, t) in self.fires.items():
            if not self.topology.has_cell(cell):
                raise PlanError(f"node {nid!r} assigned to unknown cell {cell!r}")
            key = (cell, t)
            if key in seen:
                raise PlanError(f"cell {cell!r} double-booked at cycle {t}")
            seen.add(key)

    def busy_cycles(self) -> int:
        """Total cell-cycles spent firing nodes."""
        return len(self.fires)


def _mesh_skew(cell: tuple[int, int], unit: int = 1) -> int:
    """Within-set start skew for a mesh cell.

    ``unit + 1`` cycles per block row (the inter-level link latency plus
    the producing slot firing ``unit`` slots later) and ``unit`` cycles
    per block column for the horizontal chains.
    """
    return (unit + 1) * cell[0] + unit * cell[1]


def partitioned_plan(
    plan: GSetPlan,
    order: Sequence[GSet],
    start: int = 0,
    skew_unit: int = 1,
) -> ExecutionPlan:
    """Cut-and-pile execution of a scheduled G-set plan (Figs. 18/19).

    G-set ``q`` normally starts at ``T_q = T_{q-1} + t_{q-1}``
    (back-to-back); the member executed by cell ``p`` fires its ``j``-th
    slot at ``T_q + skew(p) + j``.  ``skew_unit`` is the number of slots
    a G-node spends per chain position — 1 for the single-op grids
    (transitive closure, matmul, LU), 2 for Givens QR whose positions
    hold a rotate-apply pair.  When a dependence from an earlier
    G-set is not yet through its external-memory round trip (only
    possible when the array is *not* much smaller than the problem — the
    paper's ``m << n`` assumption), the set is stalled just long enough;
    the stall total is the measured partitioning overhead and is zero in
    the paper's regime (asserted by the test suite).
    """
    gg = plan.gg
    dg = gg.dg
    if skew_unit < 1:
        raise PlanError(f"skew_unit must be >= 1, got {skew_unit}")
    if plan.geometry == "linear":
        topo = linear_topology(plan.m)
        skew = lambda cell: skew_unit * cell  # noqa: E731
    elif plan.geometry == "mesh":
        topo = mesh_topology(*plan.shape)
        skew = lambda cell: _mesh_skew(cell, skew_unit)  # noqa: E731
    else:
        raise PlanError(f"unknown plan geometry {plan.geometry!r}")
    fires: dict[NodeId, tuple[Hashable, int]] = {}
    region_of: dict[NodeId, tuple] = {}
    set_starts: list[tuple[tuple, int]] = []
    with stage_span(
        "plan.partitioned", geometry=plan.geometry, m=plan.m,
        gsets=len(order),
    ):
        t = start
        stalls = 0
        for s in order:
            # Earliest start honouring cross-set operands (memory round
            # trip: producer fire + 2 <= consumer fire).
            earliest = t
            for gid, cell in zip(s.gids, s.cells):
                offset = skew(cell)
                for j, nid in enumerate(gg.gnodes[gid].members):
                    for ref in dg.operands(nid).values():
                        prior = fires.get(ref[0])
                        if prior is not None and region_of.get(ref[0]) != s.sid:
                            earliest = max(earliest, prior[1] + 2 - offset - j)
            stalls += earliest - t
            t = earliest
            set_starts.append((s.sid, t))
            for gid, cell in zip(s.gids, s.cells):
                base = t + skew(cell)
                for j, nid in enumerate(gg.gnodes[gid].members):
                    fires[nid] = (cell, base + j)
                    region_of[nid] = s.sid
            t += s.comp_time(gg)
        ep = ExecutionPlan(
            topology=topo,
            fires=fires,
            description=(
                f"partitioned {plan.geometry} m={plan.m} "
                f"({len(order)} G-sets)"
            ),
            set_starts=set_starts,
            region_of=region_of,
            stall_cycles=stalls,
        )
        ep.validate_exclusive()
    return ep


def fixed_array_plan(gg: GGraph, instance_offset: int = 0) -> ExecutionPlan:
    """Fig. 17 fixed-size array: one cell per G-node.

    Cell ``(k, c)`` (level, column rank) executes G-node ``(k, c)``; its
    ``j``-th slot fires at ``3*k + c + j + instance_offset``.  The skew
    ``3k + c`` satisfies both G-edge latencies: the right neighbour needs
    one extra cycle, the down-left neighbour two.
    """
    rows = gg.rows
    row_rank = {r: idx for idx, r in enumerate(rows)}
    col_rank = {c: idx for idx, c in enumerate(gg.cols)}
    topo = fixed_grid_topology(len(rows), len(gg.cols))
    fires: dict[NodeId, tuple[Hashable, int]] = {}
    for gid, gn in gg.gnodes.items():
        k, c = row_rank[gid[0]], col_rank[gid[1]]
        base = 3 * k + c + instance_offset
        for j, nid in enumerate(gn.members):
            fires[nid] = ((k, c), base + j)
    ep = ExecutionPlan(
        topology=topo,
        fires=fires,
        description=f"fixed array {len(rows)}x{len(gg.cols)}",
    )
    ep.validate_exclusive()
    return ep


def fixed_linear_plan(gg: GGraph, instance_offset: int = 0) -> ExecutionPlan:
    """Linear collapse of the Fig. 17 G-graph: one cell per level.

    Cell ``k`` executes all G-nodes of horizontal path ``k``, column by
    column; cell ``k+1`` starts ``t_row + 2`` cycles later, where
    ``t_row`` is the per-column time — late enough that every inter-level
    operand (produced by the *next* column of the previous level) is
    ready.  Throughput ``1/(n(n+1))`` with every cell fully busy.
    """
    rows = gg.rows
    row_rank = {r: idx for idx, r in enumerate(rows)}
    col_rank = {c: idx for idx, c in enumerate(gg.cols)}
    times = {gn.comp_time for gn in gg.gnodes.values()}
    if len(times) != 1:
        raise PlanError("fixed_linear_plan requires uniform G-node times")
    t_node = times.pop()
    topo = linear_topology(len(rows))
    fires: dict[NodeId, tuple[Hashable, int]] = {}
    for gid, gn in gg.gnodes.items():
        k, c = row_rank[gid[0]], col_rank[gid[1]]
        # Cell k starts its column c at: k rows of skew + c columns.
        base = k * (t_node + 2) + c * t_node + instance_offset
        for j, nid in enumerate(gn.members):
            fires[nid] = (k, base + j)
    ep = ExecutionPlan(
        topology=topo,
        fires=fires,
        description=f"fixed linear {len(rows)} cells",
    )
    ep.validate_exclusive()
    return ep


def check_initiation_interval(plan: ExecutionPlan, delta: int) -> bool:
    """Can a new problem instance be issued every ``delta`` cycles?

    Instance ``i`` re-fires every node at ``t + i*delta``; this never
    collides iff, per cell, all fire cycles are distinct modulo ``delta``.
    """
    if delta < 1:
        return False
    per_cell: dict[Hashable, set[int]] = {}
    for cell, t in plan.fires.values():
        residues = per_cell.setdefault(cell, set())
        r = t % delta
        if r in residues:
            return False
        residues.add(r)
    return True


def min_initiation_interval(plan: ExecutionPlan, upper: int | None = None) -> int:
    """Smallest legal initiation interval (inverse throughput).

    Lower-bounded by the busiest cell's firing count; searches upward
    until :func:`check_initiation_interval` passes.
    """
    counts: dict[Hashable, int] = {}
    for cell, _ in plan.fires.values():
        counts[cell] = counts.get(cell, 0) + 1
    low = max(counts.values(), default=1)
    hi = upper if upper is not None else plan.makespan + 1
    for delta in range(low, hi + 1):
        if check_initiation_interval(plan, delta):
            return delta
    raise PlanError(f"no feasible initiation interval <= {hi}")
