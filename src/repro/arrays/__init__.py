"""Systolic-array models: topologies, execution plans, cycle simulator."""
