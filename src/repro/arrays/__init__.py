"""Systolic-array models: topologies, execution plans, cycle simulator.

Two simulator backends share one contract (see ``docs/simulator.md``):

* ``repro.arrays.cycle_sim.simulate`` — the reference per-cycle
  interpreter, and the only backend that drives probes and injectors;
* ``repro.arrays.vector_sim.simulate_vector`` — compiles the plan once
  (:mod:`repro.arrays.vector_compile`) and replays it as batched NumPy
  semiring steps, bit-identical to the reference.
"""

from .vector_sim import (
    BACKENDS,
    default_backend,
    dispatch_simulate,
    get_backend,
    resolve_backend,
    set_default_backend,
    simulate_vector,
)

__all__ = [
    "BACKENDS",
    "default_backend",
    "dispatch_simulate",
    "get_backend",
    "resolve_backend",
    "set_default_backend",
    "simulate_vector",
]
