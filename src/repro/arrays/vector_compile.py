"""Compile an execution plan into a replayable vectorized program.

The reference interpreter in :mod:`repro.arrays.cycle_sim` walks the
dependence graph node by node on every run, re-deriving the same timing
checks, memory traffic and host deadlines each time.  For a fixed
``(plan, graph, semiring)`` triple all of that is *static*: only the
input values change between runs.  This module does the walk **once**,
recording

* every measure the reference simulator would report (busy/useful
  counts, memory words and reads, input deadlines and delivery cells,
  the violation list in reference discovery order), and
* a dense NumPy *value program*: one slot per produced value, constants
  and inputs scattered into the slot array, and the OP nodes grouped by
  dependence depth and opcode into batched semiring steps executed with
  fancy indexing.

A :class:`CompiledPlan` then replays the plan against fresh inputs in a
handful of vectorized steps while reproducing the reference
:class:`~repro.arrays.cycle_sim.SimResult` bit for bit — including the
order in which missing-input and strict-mode violation errors surface.

Compiled plans are cached process-wide, keyed by a stable fingerprint of
the graph structure, the plan's fires/regions/topology and the semiring
(see :func:`plan_fingerprint`), so ``repro bench``, ``repro faults`` and
``verify_implementation`` all share one compile per configuration.

Scalar caveat: the reference interpreter computes on whatever scalar
objects the inputs carry (``make_inputs`` yields native Python scalars),
while the replay computes on ``semiring.dtype`` arrays.  Values are
equal under ``==`` and :meth:`SimResult.output_matrix` is bit-identical;
only the Python object types of ``outputs`` values differ.
"""

from __future__ import annotations

import hashlib
import math
import os
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Hashable, Mapping

import numpy as np

from ..core.bitmatrix import bit_column, pack_rows, unpack_rows
from ..core.evaluate import OPCODE_SEMANTICS
from ..core.graph import DependenceGraph, GraphError, NodeId, NodeKind
from ..core.semiring import Semiring
from ..obs import runlog
from ..obs.metrics import get_registry
from ..obs.tracing import stage_span
from .cycle_sim import SimResult, SimulationError, Violation
from .plan import ExecutionPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.profile import KernelProfiler

__all__ = [
    "VECTOR_OPCODES",
    "BitpackProgram",
    "CompiledPlan",
    "UnvectorizableGraphError",
    "compile_plan",
    "plan_fingerprint",
    "get_compiled",
    "clear_compiled_cache",
    "compiled_cache_info",
]

#: Opcodes with numpy-broadcastable semantics.  ``rotg`` returns a tuple
#: and ``rota``/``rotb`` index into it, so Givens graphs stay on the
#: reference interpreter.
VECTOR_OPCODES: frozenset[str] = frozenset(
    {"mac", "add", "sub", "mul", "div", "msub", "neg", "recip"}
)

#: Non-``mac`` opcodes assume field arithmetic; replaying them on an
#: integer/bool dtype would diverge from Python-scalar semantics
#: (e.g. true division), so such graphs also fall back.
_FIELD_DTYPE_KINDS = "fc"


class UnvectorizableGraphError(GraphError):
    """The graph uses semantics the batched replay cannot reproduce."""


@dataclass(frozen=True)
class VectorStep:
    """One batched evaluation: all same-depth nodes of one opcode."""

    opcode: str
    out_idx: np.ndarray
    role_names: tuple[str, ...]
    role_idx: tuple[np.ndarray, ...]
    #: dependence depth of the batch (1 = reads only inputs/constants);
    #: the kernel profiler keys its timings by ``(depth, opcode)``.
    depth: int = 0

    @property
    def width(self) -> int:
        """Number of node firings this step evaluates at once."""
        return int(self.out_idx.size)


@dataclass(frozen=True)
class BitpackProgram:
    """Closure-shaped boolean replay: 64 matrix columns per ``uint64`` word.

    When :func:`_detect_bitpack` proves that a compiled boolean value
    program computes exactly Warshall's per-level recurrence on an
    ``n x n`` input grid, the replay can skip the batched slot steps
    entirely and run the packed kernel of
    :mod:`repro.core.bitmatrix` instead — the SSC2 bitarray trick,
    NumPy-native.  ``input_index``/``output_index`` map the plan's
    input/output node order onto flat ``i*n + j`` matrix positions.
    """

    n: int
    input_index: np.ndarray
    output_index: np.ndarray


def _detect_bitpack(
    n_inputs: int,
    input_ids: tuple[NodeId, ...],
    input_slots: list[int],
    output_ids: tuple[NodeId, ...],
    output_slots: tuple[int, ...],
    op_records: list[tuple[int, int, int, int]],
) -> BitpackProgram | None:
    """Prove (or refuse) that the value program is boolean Warshall.

    The proof is structural, not name-based: op operand slots are first
    collapsed into *value-equivalence classes* — a ``mac`` whose ``b``
    or ``c`` class equals its ``a`` class is absorbed over the boolean
    semiring (``a | (a & c) == a``), so its output joins ``a``'s class
    (this is how the regularized graph's transmit cells and forwarded
    pivot copies unify).  A level walk then checks that every op is
    consumed by exactly the update ``x[i,j] |= x[i,k] & x[k,j]`` of some
    pivot ``k`` (missing pivot-row/column updates are fine — they are
    absorbed — missing diagonal updates are not), and that every output
    reads the final class of its position.  Any mismatch returns
    ``None`` and the replay stays on the generic batched path.
    """
    n = math.isqrt(n_inputs)
    if n < 1 or n * n != n_inputs or len(op_records) != n**3:
        return None
    if len(output_ids) != n_inputs:
        return None

    def grid_index(nid: NodeId, head: str) -> int | None:
        if not (isinstance(nid, tuple) and len(nid) == 3 and nid[0] == head):
            return None
        i, j = nid[1], nid[2]
        if (
            isinstance(i, int)
            and isinstance(j, int)
            and 0 <= i < n
            and 0 <= j < n
        ):
            return i * n + j
        return None

    grid: dict[int, int] = {}
    input_index = np.empty(n_inputs, dtype=np.int64)
    for pos, (nid, slot) in enumerate(zip(input_ids, input_slots)):
        flat = grid_index(nid, "in")
        if flat is None or flat in grid:
            return None
        grid[flat] = slot
        input_index[pos] = flat
    output_index = np.empty(n_inputs, dtype=np.int64)
    out_flat: list[int] = []
    for pos, nid in enumerate(output_ids):
        flat = grid_index(nid, "out")
        if flat is None:
            return None
        output_index[pos] = flat
        out_flat.append(flat)
    if len(set(out_flat)) != n_inputs:
        return None

    # Pass 1 (ops arrive in topological out-slot order): assign value
    # classes and index each op by its canonical operand triple.
    canon: dict[int, int] = {}
    ops_by_key: dict[tuple[int, int, int], int] = {}
    for out, a, b, c in op_records:
        ra = canon.get(a, a)
        rb = canon.get(b, b)
        rc = canon.get(c, c)
        canon[out] = ra if (rb == ra or rc == ra) else out
        key = (ra, rb, rc)
        if key in ops_by_key:
            return None
        ops_by_key[key] = out
    # Pass 2: the level walk.
    cur = [canon.get(grid[f], grid[f]) for f in range(n_inputs)]
    for k in range(n):
        nxt = list(cur)
        for i in range(n):
            base = i * n
            a_row = cur[base + k]
            for j in range(n):
                out2 = ops_by_key.pop(
                    (cur[base + j], a_row, cur[k * n + j]), None
                )
                if out2 is None:
                    if i != k and j != k:
                        return None
                else:
                    nxt[base + j] = canon.get(out2, out2)
        cur = nxt
    if ops_by_key:
        return None
    for flat, slot in zip(out_flat, output_slots):
        if canon.get(slot, slot) != cur[flat]:
            return None
    return BitpackProgram(
        n=n, input_index=input_index, output_index=output_index
    )


@dataclass
class CompiledPlan:
    """A replayable program plus every static measure of the plan."""

    fingerprint: str
    graph_name: str
    semiring: Semiring
    dtype: np.dtype
    # -- static measures (identical to the reference walk) --
    makespan: int
    cells: int
    busy: int
    useful: int
    memory_words: int
    memory_reads: int
    input_deadlines: dict[NodeId, int]
    input_cells: frozenset[Hashable]
    input_cell_of: dict[NodeId, Hashable]
    violations: tuple[Violation, ...]
    #: topological position of the consumer of each violation, aligned
    #: with ``violations`` — used to order strict-mode errors against
    #: missing-input errors exactly as the reference walk would.
    violation_pos: tuple[int, ...]
    # -- value program --
    n_slots: int
    input_ids: tuple[NodeId, ...]
    input_pos: tuple[int, ...]
    input_slots: np.ndarray
    const_slots: np.ndarray
    const_values: np.ndarray
    steps: tuple[VectorStep, ...]
    output_ids: tuple[NodeId, ...]
    output_slots: tuple[int, ...]
    compile_seconds: float = 0.0
    #: non-None when the program is provably boolean Warshall; replay
    #: then runs the bit-packed kernel instead of the batched steps.
    bitpack: BitpackProgram | None = None

    def _raise_entry_errors(
        self, inputs: Mapping[NodeId, Any], strict: bool
    ) -> None:
        """Reproduce the reference error order for a doomed replay.

        The interpreter raises a missing-input :class:`GraphError` when
        the walk *reaches* that input node, and (under ``strict``) a
        :class:`SimulationError` when it reaches the first violating
        consumer — whichever position comes first wins.
        """
        missing: tuple[int, NodeId] | None = None
        for nid, pos in zip(self.input_ids, self.input_pos):
            if nid not in inputs:
                missing = (pos, nid)
                break
        if strict and self.violations:
            vpos = self.violation_pos[0]
            if missing is not None and missing[0] < vpos:
                raise GraphError(
                    f"no value supplied for input {missing[1]!r}"
                )
            raise SimulationError(self.violations[0])
        if missing is not None:
            raise GraphError(f"no value supplied for input {missing[1]!r}")

    def replay(
        self,
        inputs: Mapping[NodeId, Any],
        strict: bool = False,
        kprof: "KernelProfiler | None" = None,
    ) -> SimResult:
        """Run the compiled program against fresh input values.

        ``kprof`` (a :class:`~repro.obs.profile.KernelProfiler`) times
        each batch step; when ``None`` (the default) the hot loop is
        exactly the unprofiled one — zero overhead when off.
        """
        self._raise_entry_errors(inputs, strict)
        if self.bitpack is not None:
            return self._replay_bitpack(inputs, kprof)
        vals = np.empty(self.n_slots, dtype=self.dtype)
        if self.const_slots.size:
            vals[self.const_slots] = self.const_values
        if self.input_slots.size:
            vals[self.input_slots] = np.asarray(
                [inputs[nid] for nid in self.input_ids], dtype=self.dtype
            )
        sr = self.semiring
        if kprof is None:
            for step in self.steps:
                fn = OPCODE_SEMANTICS[step.opcode]
                roles = {
                    r: vals[ix]
                    for r, ix in zip(step.role_names, step.role_idx)
                }
                vals[step.out_idx] = fn(sr, **roles)
        else:
            for step in self.steps:
                fn = OPCODE_SEMANTICS[step.opcode]
                roles = {
                    r: vals[ix]
                    for r, ix in zip(step.role_names, step.role_idx)
                }
                t0 = time.perf_counter()
                vals[step.out_idx] = fn(sr, **roles)
                kprof.record(
                    step.opcode,
                    step.width,
                    time.perf_counter() - t0,
                    depth=step.depth,
                    backend="vector",
                )
        outputs: dict[NodeId, Any] = {
            nid: vals[slot]
            for nid, slot in zip(self.output_ids, self.output_slots)
        }
        return self._result(outputs)

    def _replay_bitpack(
        self,
        inputs: Mapping[NodeId, Any],
        kprof: "KernelProfiler | None" = None,
    ) -> SimResult:
        """Replay via the packed Warshall kernel (64 columns per op).

        Bit-identical to the batched replay: the detector proved the
        value program *is* the per-level recurrence, and the packed
        kernel freezes pivot row/column per level exactly like the
        slot-program batches do.  The raw recurrence is used (no
        diagonal forcing) — whatever diagonal the caller supplied flows
        through, as it would through the graph.
        """
        bp = self.bitpack
        assert bp is not None
        n = bp.n
        flat = np.empty(n * n, dtype=np.bool_)
        flat[bp.input_index] = np.asarray(
            [inputs[nid] for nid in self.input_ids], dtype=np.bool_
        )
        words = pack_rows(flat.reshape(n, n))
        if kprof is None:
            for k in range(n):
                mask = bit_column(words, k)
                row = words[k].copy()
                words[mask] |= row
        else:
            for k in range(n):
                t0 = time.perf_counter()
                mask = bit_column(words, k)
                row = words[k].copy()
                words[mask] |= row
                # One packed pivot sweep per level; still the vector
                # backend for attribution purposes (hotspot tables and
                # the profiler's backend contract key on "vector").
                kprof.record(
                    "mac",
                    n * n,
                    time.perf_counter() - t0,
                    depth=k + 1,
                    backend="vector",
                )
        closed = unpack_rows(words, n).reshape(-1)
        outputs: dict[NodeId, Any] = {
            nid: closed[idx]
            for nid, idx in zip(self.output_ids, bp.output_index.tolist())
        }
        return self._result(outputs)

    def _result(self, outputs: dict[NodeId, Any]) -> SimResult:
        return SimResult(
            outputs=outputs,
            makespan=self.makespan,
            cells=self.cells,
            busy=self.busy,
            useful=self.useful,
            memory_words=self.memory_words,
            memory_reads=self.memory_reads,
            input_deadlines=dict(self.input_deadlines),
            input_cells=set(self.input_cells),
            input_cell_of=dict(self.input_cell_of),
            violations=list(self.violations),
        )


class _StepGroup:
    """Mutable accumulator for one ``(depth, opcode)`` batch."""

    __slots__ = ("opcode", "out", "roles", "role_order")

    def __init__(self, opcode: str, role_order: tuple[str, ...]) -> None:
        self.opcode = opcode
        self.role_order = role_order
        self.out: list[int] = []
        self.roles: dict[str, list[int]] = {r: [] for r in role_order}


def compile_plan(
    plan: ExecutionPlan, dg: DependenceGraph, semiring: Semiring
) -> CompiledPlan:
    """One reference-equivalent walk, producing a replayable program.

    Raises :class:`UnvectorizableGraphError` when the graph uses opcodes
    (or opcode/dtype combinations) the batched replay cannot reproduce;
    callers fall back to the reference interpreter.  Raises the same
    ``plan does not cover slot node`` :class:`GraphError` the reference
    would for an incomplete plan.
    """
    t0 = time.perf_counter()
    fires = plan.fires
    topo = dg.topological_order()
    node_data = dg.g.nodes
    region_of = plan.region_of
    topology = plan.topology
    dtype = np.dtype(semiring.dtype)

    slot_of: dict[NodeId, int] = {}
    slot_depth: list[int] = []
    alias: dict[tuple[NodeId, str], int] = {}

    def resolve(ref: tuple[NodeId, str]) -> int:
        """Slot producing the value behind ``ref``, following forwards."""
        pending: list[tuple[NodeId, str]] = []
        cur = ref
        while True:
            hit = alias.get(cur)
            if hit is not None:
                break
            src, port = cur
            kind = node_data[src]["kind"]
            if kind is NodeKind.OP and port != "out":
                # A forwarded operand: the cell re-emits what it read.
                pending.append(cur)
                cur = node_data[src]["operands"][port]
            elif kind in (NodeKind.PASS, NodeKind.DELAY, NodeKind.OUTPUT):
                pending.append(cur)
                (cur,) = node_data[src]["operands"].values()
            else:
                hit = slot_of[src]
                break
        for p in pending:
            alias[p] = hit
        alias[ref] = hit
        return hit

    n_slots = 0
    input_ids: list[NodeId] = []
    input_pos: list[int] = []
    input_slot_list: list[int] = []
    const_slot_list: list[int] = []
    const_vals: list[Any] = []
    busy = 0
    useful = 0
    memory_refs: set[tuple[NodeId, str]] = set()
    memory_reads = 0
    input_deadlines: dict[NodeId, int] = {}
    input_cells: set[Hashable] = set()
    input_cell_of: dict[NodeId, Hashable] = {}
    violations: list[Violation] = []
    violation_pos: list[int] = []
    groups: dict[tuple[int, str], _StepGroup] = {}
    uses_field_ops = False
    #: (out, a, b, c) resolved slots of every ``mac``, in topo order —
    #: the raw material for the bit-packed closure detection.
    op_records: list[tuple[int, int, int, int]] = []
    mac_abc_only = True

    for pos, nid in enumerate(topo):
        d = node_data[nid]
        kind = d["kind"]
        if kind is NodeKind.INPUT:
            slot_of[nid] = n_slots
            input_ids.append(nid)
            input_pos.append(pos)
            input_slot_list.append(n_slots)
            slot_depth.append(0)
            n_slots += 1
            continue
        if kind is NodeKind.CONST:
            slot_of[nid] = n_slots
            const_slot_list.append(n_slots)
            const_vals.append(d["value"])
            slot_depth.append(0)
            n_slots += 1
            continue
        operands: dict[str, tuple[NodeId, str]] = d["operands"]
        if kind is NodeKind.OUTPUT:
            continue
        if nid not in fires:
            raise GraphError(f"plan does not cover slot node {nid!r}")
        cell, t = fires[nid]
        busy += 1
        if d.get("tag") == "compute":
            useful += 1
        for role, ref in operands.items():
            src = ref[0]
            src_kind = node_data[src]["kind"]
            if src_kind is NodeKind.CONST:
                continue
            if src_kind is NodeKind.INPUT:
                deadline = t - 1
                prev = input_deadlines.get(src)
                if prev is None or deadline < prev:
                    input_deadlines[src] = deadline
                    input_cell_of[src] = cell
                input_cells.add(cell)
                continue
            pcell, pt = fires[src]
            same_region = (
                not region_of or region_of.get(src) == region_of.get(nid)
            )
            local = cell == pcell or topology.is_neighbor(pcell, cell)
            if same_region and local:
                slack = t - (pt + 1)
                vkind = "timing"
            else:
                memory_refs.add(ref)
                memory_reads += 1
                slack = t - (pt + 2)
                vkind = "memory-timing"
            if slack < 0:
                violations.append(
                    Violation(
                        node=nid, role=role, producer=src,
                        kind=vkind, slack=slack,
                    )
                )
                violation_pos.append(pos)
        if kind is NodeKind.OP:
            opcode = d["opcode"]
            if opcode not in VECTOR_OPCODES:
                raise UnvectorizableGraphError(
                    f"opcode {opcode!r} has no batched semantics"
                )
            if opcode != "mac":
                uses_field_ops = True
            op_slots = {role: resolve(ref) for role, ref in operands.items()}
            if opcode == "mac" and op_slots.keys() == {"a", "b", "c"}:
                op_records.append(
                    (n_slots, op_slots["a"], op_slots["b"], op_slots["c"])
                )
            else:
                mac_abc_only = False
            depth = 1 + max(slot_depth[s] for s in op_slots.values())
            key = (depth, opcode)
            group = groups.get(key)
            if group is None:
                group = _StepGroup(opcode, tuple(op_slots))
                groups[key] = group
            group.out.append(n_slots)
            for role, slot in op_slots.items():
                group.roles[role].append(slot)
            slot_of[nid] = n_slots
            slot_depth.append(depth)
            n_slots += 1
        # PASS / DELAY produce aliases; consumers resolve through them.

    if uses_field_ops and dtype.kind not in _FIELD_DTYPE_KINDS:
        raise UnvectorizableGraphError(
            f"field opcodes on non-field dtype {dtype!r}"
        )

    steps = tuple(
        VectorStep(
            opcode=g.opcode,
            out_idx=np.asarray(g.out, dtype=np.int64),
            role_names=g.role_order,
            role_idx=tuple(
                np.asarray(g.roles[r], dtype=np.int64) for r in g.role_order
            ),
            depth=key[0],
        )
        for key, g in sorted(groups.items(), key=lambda kv: kv[0][0])
    )
    output_ids = tuple(dg.outputs)
    output_slots = tuple(resolve((nid, "out")) for nid in output_ids)
    bitpack: BitpackProgram | None = None
    if (
        semiring.name == "boolean"
        and dtype == np.bool_
        and not uses_field_ops
        and mac_abc_only
        and op_records
    ):
        bitpack = _detect_bitpack(
            len(input_ids),
            tuple(input_ids),
            input_slot_list,
            output_ids,
            output_slots,
            op_records,
        )
        if bitpack is not None:
            get_registry().counter(
                "repro_vector_bitpack_plans_total",
                "Compiled plans proven closure-shaped (bit-packed replay)",
            ).inc()
        else:
            # Boolean all-mac graph that is *not* provably Warshall:
            # the fast path falls back to the batched replay and leaves
            # the audited breadcrumb (RL505 checks the reason set).
            get_registry().counter(
                "repro_vector_fallback_total",
                "Vector-backend fast-path fallbacks by reason",
            ).inc(reason="bitpack")
            runlog.emit("fallback", backend="vector", reason="bitpack")
    return CompiledPlan(
        fingerprint="",
        graph_name=dg.name,
        semiring=semiring,
        dtype=dtype,
        makespan=plan.makespan,
        cells=topology.m,
        busy=busy,
        useful=useful,
        memory_words=len(memory_refs),
        memory_reads=memory_reads,
        input_deadlines=input_deadlines,
        input_cells=frozenset(input_cells),
        input_cell_of=input_cell_of,
        violations=tuple(violations),
        violation_pos=tuple(violation_pos),
        n_slots=n_slots,
        input_ids=tuple(input_ids),
        input_pos=tuple(input_pos),
        input_slots=np.asarray(input_slot_list, dtype=np.int64),
        const_slots=np.asarray(const_slot_list, dtype=np.int64),
        const_values=np.asarray(const_vals, dtype=dtype)
        if const_vals
        else np.zeros(0, dtype=dtype),
        steps=steps,
        output_ids=output_ids,
        output_slots=output_slots,
        compile_seconds=time.perf_counter() - t0,
        bitpack=bitpack,
    )


# --------------------------------------------------------------------------
# Fingerprinting and the process-wide compiled-plan cache
# --------------------------------------------------------------------------


def _graph_digest(dg: DependenceGraph) -> str:
    """Stable digest of the graph structure, memoized on the graph.

    The cache assumes graphs are not mutated after their first vector
    simulation (true of every pipeline in this repo — graphs are built
    once by the frontend and then only read).
    """
    cached = getattr(dg, "_vector_digest", None)
    if cached is not None:
        return str(cached)
    h = hashlib.sha256()
    node_data = dg.g.nodes
    for nid in dg.topological_order():
        d = node_data[nid]
        h.update(
            repr(
                (
                    nid,
                    d["kind"].name,
                    d.get("opcode"),
                    d.get("value"),
                    d.get("tag"),
                    tuple(d.get("operands", {}).items()),
                )
            ).encode()
        )
    h.update(repr((tuple(dg.inputs), tuple(dg.outputs))).encode())
    digest = h.hexdigest()
    dg._vector_digest = digest  # type: ignore[attr-defined]
    return digest


def _plan_digest(plan: ExecutionPlan) -> str:
    """Stable digest of the plan, memoized on the plan object."""
    cached = getattr(plan, "_vector_digest", None)
    if cached is not None:
        return str(cached)
    topo = plan.topology
    h = hashlib.sha256()
    h.update(
        repr(
            (
                topo.name,
                topo.geometry,
                topo.cells,
                sorted(topo.links) if topo.links is not None else None,
                topo.memory_ports,
                plan.stall_cycles,
            )
        ).encode()
    )
    for item in sorted(plan.fires.items(), key=repr):
        h.update(repr(item).encode())
    for ritem in sorted(plan.region_of.items(), key=repr):
        h.update(repr(ritem).encode())
    digest = h.hexdigest()
    plan._vector_digest = digest  # type: ignore[attr-defined]
    return digest


def plan_fingerprint(
    plan: ExecutionPlan, dg: DependenceGraph, semiring: Semiring
) -> str:
    """The compiled-plan cache key: graph + plan + algebra.

    Semirings are identified by name and dtype (the shipped registry
    guarantees uniqueness); custom semirings must use distinct names.
    """
    payload = ":".join(
        (
            _graph_digest(dg),
            _plan_digest(plan),
            semiring.name,
            np.dtype(semiring.dtype).str,
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


_CACHE: dict[str, CompiledPlan] = {}
_CACHE_MAX = 64
_HITS = 0
_MISSES = 0


def get_compiled(
    plan: ExecutionPlan, dg: DependenceGraph, semiring: Semiring
) -> CompiledPlan:
    """Fetch (or compile and cache) the program for this configuration."""
    global _HITS, _MISSES
    fp = plan_fingerprint(plan, dg, semiring)
    hit = _CACHE.get(fp)
    reg = get_registry()
    experiment = runlog.current_task()
    if hit is not None:
        _HITS += 1
        reg.counter(
            "repro_vector_cache_hits_total",
            "Compiled-plan cache hits",
        ).inc()
        reg.counter(
            "repro_plan_cache_hits_total",
            "Compiled-plan cache hits by experiment",
        ).inc(experiment=experiment)
        runlog.emit(
            "plan_cache", outcome="hit", plan_fingerprint=fp,
            graph=dg.name,
        )
        return hit
    _MISSES += 1
    reg.counter(
        "repro_vector_cache_misses_total",
        "Compiled-plan cache misses (each is one compile)",
    ).inc()
    reg.counter(
        "repro_plan_cache_misses_total",
        "Compiled-plan cache misses by experiment (each is one compile)",
    ).inc(experiment=experiment)
    with stage_span("sim.compile", graph=dg.name):
        compiled = compile_plan(plan, dg, semiring)
    compiled.fingerprint = fp
    if len(_CACHE) >= _CACHE_MAX:
        _CACHE.pop(next(iter(_CACHE)))
    _CACHE[fp] = compiled
    reg.counter(
        "repro_vector_compile_seconds_total",
        "Wall-clock seconds spent compiling plans",
    ).inc(compiled.compile_seconds)
    runlog.emit(
        "plan_cache", outcome="compile", plan_fingerprint=fp,
        graph=dg.name, compile_s=round(compiled.compile_seconds, 6),
    )
    if os.environ.get("REPRO_LINT_PLANNER", "") not in ("", "0"):
        # Env-gated post-compile preflight: statically verify the value
        # program (RL5xx) and its cost record (RL6xx) before anything
        # replays it.  Raises repro.lint.LintError on error findings.
        from ..lint.planner import planner_preflight

        planner_preflight(compiled, plan, dg, semiring)
    return compiled


def clear_compiled_cache() -> None:
    """Drop every cached program (tests; or after mutating a plan)."""
    global _HITS, _MISSES
    _CACHE.clear()
    _HITS = 0
    _MISSES = 0


def compiled_cache_info() -> dict[str, int]:
    """Hit/miss/size counters for reports and tests."""
    return {"hits": _HITS, "misses": _MISSES, "size": len(_CACHE)}
