"""First-order hardware cost model for the candidate arrays.

The paper's "simpler structure / easier implementation" arguments compare
1988 VLSI designs.  This model counts the resources each design needs, at
the granularity those arguments use:

* **cells** and the **registers per cell** (three operand registers for
  the ``mac`` datapath plus one forwarding register per pass-through
  direction);
* **inter-cell links** (each carries one word per cycle);
* **external connections**: memory taps plus host ports;
* **control store**: distinct per-cell contexts times cells, plus one
  sequencer entry per distinct G-set shape (see
  :mod:`repro.core.control`).

The absolute numbers are not silicon estimates — they are the paper's own
currency (counts of structural elements), so the linear/mesh/fixed
comparisons can be printed side by side in the design-space benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.control import control_complexity
from ..core.gsets import GSet, GSetPlan
from .topology import ArrayTopology, fixed_grid_topology, linear_topology, mesh_topology

__all__ = ["ArrayCost", "partitioned_array_cost", "fixed_array_cost"]

#: Registers in one mac cell: a/b/c operand latches + result.
_CELL_REGISTERS = 4


@dataclass(frozen=True)
class ArrayCost:
    """Structural resource counts for one array design."""

    name: str
    cells: int
    registers: int
    links: int
    memory_ports: int
    host_ports: int
    control_entries: int

    @property
    def total_connections(self) -> int:
        """Everything that crosses a cell boundary (wiring complexity)."""
        return self.links + self.memory_ports + self.host_ports

    def row(self) -> dict:
        """Flat dict for table printing."""
        return {
            "design": self.name,
            "cells": self.cells,
            "registers": self.registers,
            "links": self.links,
            "mem_ports": self.memory_ports,
            "host_ports": self.host_ports,
            "control": self.control_entries,
            "connections": self.total_connections,
        }


def _link_count(topo: ArrayTopology) -> int:
    if topo.geometry == "linear":
        return topo.m - 1
    count = 0
    for cell in topo.cells:
        for delta in topo.links:
            nxt = (cell[0] + delta[0], cell[1] + delta[1])
            if topo.has_cell(nxt):
                count += 1
    # Mesh links are bidirectional pairs in our census; count each wire once.
    if topo.geometry == "mesh":
        count //= 2
    return count


def partitioned_array_cost(plan: GSetPlan, order: Sequence[GSet]) -> ArrayCost:
    """Cost of the linear (Fig. 18) or mesh (Fig. 19) partitioned array."""
    if plan.geometry == "linear":
        topo = linear_topology(plan.m)
        host_ports = 1
    else:
        topo = mesh_topology(*plan.shape)
        host_ports = plan.shape[1]  # the top edge takes host data
    ctrl = control_complexity(plan, order)
    control_entries = ctrl.set_shapes + sum(ctrl.per_cell.values())
    return ArrayCost(
        name=f"partitioned {plan.geometry} m={plan.m}",
        cells=topo.m,
        registers=_CELL_REGISTERS * topo.m,
        links=_link_count(topo),
        memory_ports=topo.memory_ports,
        host_ports=host_ports,
        control_entries=control_entries,
    )


def fixed_array_cost(rows: int, cols: int) -> ArrayCost:
    """Cost of the Fig. 17 fixed-size array (one cell per G-node).

    No external memories and no per-set control: one context per cell
    (the array is a pure pipeline — "no control complexity").
    """
    topo = fixed_grid_topology(rows, cols)
    return ArrayCost(
        name=f"fixed {rows}x{cols}",
        cells=topo.m,
        registers=_CELL_REGISTERS * topo.m,
        links=_link_count(topo),
        memory_ports=0,
        host_ports=cols,
        control_entries=topo.m,
    )
