"""Chaining successive problem instances (Fig. 17's throughput claim).

"Successive instances of the algorithm can be chained without
restrictions" — the fixed-size array accepts a new adjacency matrix every
``n`` cycles while earlier instances are still in flight.  The modular
argument in :func:`repro.arrays.plan.check_initiation_interval` proves no
cell is double-booked; this module goes further and *co-simulates* ``k``
overlapped instances as one big execution: the graphs are replicated,
every firing is offset by ``i * delta``, and the combined plan runs
through the cycle simulator — timing, locality and all ``k`` result
matrices checked at once.

Also provides the throughput measurement used by the benchmarks: the
makespan of ``k`` chained instances grows by exactly ``delta`` per
instance, so measured throughput is ``1/delta``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from ..core.graph import DependenceGraph, NodeId, NodeKind, PortRef
from ..core.semiring import BOOLEAN, Semiring
from ..obs.tracing import stage_span
from .cycle_sim import SimResult, simulate
from .plan import ExecutionPlan, PlanError

__all__ = ["replicate_graph", "chain_plans", "ChainedRun", "run_chained_instances"]


def replicate_graph(dg: DependenceGraph, k: int) -> DependenceGraph:
    """``k`` disjoint copies of ``dg``; copy ``i``'s node ids are
    ``("inst", i, original_id)``."""
    if k < 1:
        raise ValueError(f"need at least one instance, got k={k}")
    out = DependenceGraph(f"{dg.name} x{k}")
    topo = dg.topological_order()
    for i in range(k):
        def rid(nid: NodeId) -> tuple:
            return ("inst", i, nid)

        for nid in topo:
            d = dg.g.nodes[nid]
            kind = d["kind"]
            operands = {
                role: PortRef(rid(src), port)
                for role, (src, port) in d["operands"].items()
            }
            if kind is NodeKind.INPUT:
                out.add_input(rid(nid), pos=d.get("pos"), tag=d.get("tag"))
            elif kind is NodeKind.CONST:
                out.add_const(rid(nid), d["value"], pos=d.get("pos"))
            elif kind is NodeKind.OP:
                out.add_op(
                    rid(nid), d["opcode"], operands, pos=d.get("pos"),
                    comp_time=d.get("comp_time", 1), tag=d.get("tag"),
                )
            elif kind in (NodeKind.PASS, NodeKind.DELAY):
                (ref,) = operands.values()
                out.add_pass(
                    rid(nid), ref, pos=d.get("pos"), kind=kind, tag=d.get("tag")
                )
            else:  # OUTPUT
                (ref,) = operands.values()
                out.add_output(rid(nid), ref, pos=d.get("pos"), tag=d.get("tag"))
    return out


def chain_plans(plan: ExecutionPlan, k: int, delta: int) -> ExecutionPlan:
    """One combined plan firing instance ``i`` at offset ``i * delta``."""
    if delta < 1:
        raise PlanError(f"initiation interval must be positive, got {delta}")
    fires: dict[NodeId, tuple] = {}
    region_of: dict[NodeId, tuple] = {}
    for i in range(k):
        for nid, (cell, t) in plan.fires.items():
            fires[("inst", i, nid)] = (cell, t + i * delta)
        for nid, region in plan.region_of.items():
            region_of[("inst", i, nid)] = ("inst", i, region)
    combined = ExecutionPlan(
        topology=plan.topology,
        fires=fires,
        description=f"{plan.description} x{k} @ {delta}",
        region_of=region_of,
    )
    combined.validate_exclusive()  # the real double-booking proof
    return combined


@dataclass
class ChainedRun:
    """Outcome of co-simulating ``k`` chained instances."""

    k: int
    delta: int
    result: SimResult
    outputs: list[dict[NodeId, Any]]
    #: Makespan of one instance alone — the baseline the measured
    #: initiation interval is derived against.
    base_makespan: int = 0

    @property
    def ok(self) -> bool:
        """All instances met every constraint."""
        return self.result.ok

    def output_matrix(self, instance: int, n: int, semiring: Semiring = BOOLEAN) -> np.ndarray:
        """Result matrix of one instance."""
        m = np.empty((n, n), dtype=semiring.dtype)
        for (i, j), value in self.outputs[instance].items():
            m[i, j] = value
        return m

    @property
    def measured_initiation_interval(self) -> float:
        """Measured makespan growth per added instance.

        ``(combined_makespan - base_makespan) / (k - 1)`` — derived
        from the co-simulation, not echoed from the requested ``delta``.
        A legal chain fires instance ``i`` exactly ``i * delta`` cycles
        after instance 0, so this equals ``delta``; a mis-chained plan
        (stretched offsets, a stalled instance) shows up as a larger
        value.  With ``k == 1`` there is no growth to measure and the
        requested ``delta`` is reported.
        """
        if self.k <= 1:
            return float(self.delta)
        return (self.result.makespan - self.base_makespan) / (self.k - 1)


def run_chained_instances(
    dg: DependenceGraph,
    plan: ExecutionPlan,
    input_envs: Sequence[Mapping[NodeId, Any]],
    delta: int,
    semiring: Semiring = BOOLEAN,
    probe: Any = None,
) -> ChainedRun:
    """Co-simulate ``len(input_envs)`` instances offset by ``delta`` cycles.

    Raises (via plan validation) if any cell would be double-booked;
    returns per-instance outputs plus the combined simulation result.
    ``probe`` (any :class:`repro.obs.probe.Probe`) watches the combined
    run — node ids in its events carry the ``("inst", i, ...)`` prefix.
    """
    k = len(input_envs)
    with stage_span(
        "chain.replicate_graph", graph=dg.name, k=k, nodes=len(dg),
        edges=dg.g.number_of_edges(),
    ) as sp:
        big_dg = replicate_graph(dg, k)
        sp.tag("nodes_out", len(big_dg))
        sp.tag("edges_out", big_dg.g.number_of_edges())
    with stage_span(
        "chain.chain_plans", k=k, delta=delta, fires=len(plan.fires)
    ) as sp:
        big_plan = chain_plans(plan, k, delta)
        sp.tag("fires_out", len(big_plan.fires))
        sp.tag("makespan", big_plan.makespan)
    big_inputs: dict[NodeId, Any] = {}
    for i, env in enumerate(input_envs):
        for nid, value in env.items():
            big_inputs[("inst", i, nid)] = value
    res = simulate(big_plan, big_dg, big_inputs, semiring, probe=probe)
    outputs: list[dict[NodeId, Any]] = [dict() for _ in range(k)]
    for nid, value in res.outputs.items():
        _, i, orig = nid
        outputs[i][orig[1:]] = value  # ("out", i, j) -> (i, j)
    return ChainedRun(
        k=k, delta=delta, result=res, outputs=outputs,
        base_makespan=plan.makespan,
    )
