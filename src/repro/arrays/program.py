"""Cell programs: the microcode an execution plan implies.

A systolic cell is a datapath plus a control store.  This module derives,
from any :class:`~repro.arrays.plan.ExecutionPlan`, the *instruction
stream* each cell executes: for every cycle the cell is busy, which
operation fires and where each operand comes from — a neighbour port
(N/S/E/W for meshes, L/R for chains), the cell's own registers, external
memory, the host, or a wired constant.

Two uses:

* **implementability**: the distinct instruction patterns per cell are
  the true control-store size (finer than the context census of
  :mod:`repro.core.control` — it distinguishes operand steering, which is
  what cell microcode actually encodes);
* **inspection**: :func:`render_program` prints a cell's stream, which
  makes statements like "the Fig. 17 array has no control complexity"
  concrete — every cell there runs one instruction forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from ..core.graph import DependenceGraph, NodeId, NodeKind
from .plan import ExecutionPlan

__all__ = ["Instruction", "CellProgram", "cell_programs", "render_program"]


@dataclass(frozen=True)
class Instruction:
    """One cycle of one cell: operation plus operand steering."""

    cycle: int
    opcode: str  # mac / msub / ... / pass / delay
    sources: tuple[tuple[str, str], ...]  # (role, origin), sorted by role
    tag: str | None = None

    @property
    def pattern(self) -> tuple:
        """The control-store entry (everything but the cycle number)."""
        return (self.opcode, self.sources)


@dataclass
class CellProgram:
    """The full instruction stream of one cell."""

    cell: Hashable
    instructions: list[Instruction]

    @property
    def distinct_patterns(self) -> int:
        """Control-store entries this cell needs."""
        return len({ins.pattern for ins in self.instructions})

    @property
    def busy_cycles(self) -> int:
        """Cycles with an instruction (the rest are idle)."""
        return len(self.instructions)


def _origin(
    plan: ExecutionPlan,
    dg: DependenceGraph,
    consumer: NodeId,
    ref: tuple,
    cell: Hashable,
) -> str:
    src = ref[0]
    kind = dg.kind(src)
    if kind is NodeKind.INPUT:
        return "host"
    if kind is NodeKind.CONST:
        return "const"
    pcell, _ = plan.fires[src]
    same_region = (
        not plan.region_of
        or plan.region_of.get(src) == plan.region_of.get(consumer)
    )
    if not same_region:
        return "mem"
    if pcell == cell:
        return "self"
    if not plan.topology.is_neighbor(pcell, cell):
        return "mem"
    if isinstance(cell, tuple):
        dr, dc = cell[0] - pcell[0], cell[1] - pcell[1]
        return {(1, 0): "N", (-1, 0): "S", (0, 1): "W", (0, -1): "E"}.get(
            (dr, dc), f"d{dr},{dc}"
        )
    return "L" if pcell < cell else "R"


def cell_programs(plan: ExecutionPlan, dg: DependenceGraph) -> dict[Hashable, CellProgram]:
    """Derive every cell's instruction stream from a plan."""
    streams: dict[Hashable, list[Instruction]] = {}
    for nid, (cell, t) in plan.fires.items():
        d = dg.g.nodes[nid]
        kind = d["kind"]
        opcode = d.get("opcode") or kind.value
        sources = tuple(
            sorted(
                (role, _origin(plan, dg, nid, ref, cell))
                for role, ref in d["operands"].items()
            )
        )
        streams.setdefault(cell, []).append(
            Instruction(cycle=t, opcode=opcode, sources=sources, tag=d.get("tag"))
        )
    return {
        cell: CellProgram(cell=cell, instructions=sorted(ins, key=lambda i: i.cycle))
        for cell, ins in streams.items()
    }


def render_program(program: CellProgram, limit: int = 16) -> str:
    """Human-readable listing of (the head of) one cell's stream."""
    lines = [
        f"cell {program.cell}: {program.busy_cycles} instructions, "
        f"{program.distinct_patterns} distinct patterns"
    ]
    for ins in program.instructions[:limit]:
        srcs = " ".join(f"{role}<-{origin}" for role, origin in ins.sources)
        lines.append(f"  t={ins.cycle:>5}  {ins.opcode:<6} {srcs}")
    if program.busy_cycles > limit:
        lines.append(f"  ... {program.busy_cycles - limit} more")
    return "\n".join(lines)
