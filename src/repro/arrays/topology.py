"""Array topologies: cells, links, and external-memory ports.

The paper's target structures:

* **linear array** (Fig. 18): ``m`` cells in a chain, one link between
  neighbours, ``m+1`` connections to external memories;
* **two-dimensional (mesh) array** (Fig. 19): ``sqrt(m) x sqrt(m)`` cells,
  nearest-neighbour links, ``2 sqrt(m)`` memory connections;
* **fixed-size array** (Fig. 17): one cell per G-node (``n x (n+1)``),
  with the two G-edge links (right neighbour, and down-left neighbour for
  the next level) — "a single communication path between cells".

A topology answers one question for the simulator: can a value move from
cell ``a`` to cell ``b`` in one hop?  Everything that cannot is routed
through external memory (cut-and-pile traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

__all__ = ["ArrayTopology", "linear_topology", "mesh_topology", "fixed_grid_topology"]

Cell = Hashable


@dataclass(frozen=True)
class ArrayTopology:
    """A set of cells plus the one-hop link relation.

    ``links`` holds *directed* one-hop displacements for pair-of-tuple
    cells, or ``None`` for the integer-indexed linear chain (where
    neighbourhood is ``|a-b| == 1``).
    """

    name: str
    geometry: str  # "linear" | "mesh" | "grid"
    cells: tuple[Cell, ...]
    links: frozenset[tuple[int, int]] | None
    memory_ports: int
    _cellset: frozenset = field(init=False, repr=False)

    def __post_init__(self) -> None:  # noqa: D105
        object.__setattr__(self, "_cellset", frozenset(self.cells))

    @property
    def m(self) -> int:
        """Number of cells."""
        return len(self.cells)

    def has_cell(self, cell: Cell) -> bool:
        """True when ``cell`` exists in this array."""
        return cell in self._cellset

    def is_neighbor(self, a: Cell, b: Cell) -> bool:
        """True when a value produced at ``a`` can reach ``b`` in one hop."""
        if a == b:
            return True
        if self.geometry == "linear":
            return abs(a - b) == 1
        delta = (b[0] - a[0], b[1] - a[1])
        return delta in self.links


def linear_topology(m: int) -> ArrayTopology:
    """Chain of ``m`` cells; ``m+1`` memory taps (Fig. 18)."""
    if m < 1:
        raise ValueError(f"need at least one cell, got m={m}")
    return ArrayTopology(
        name=f"linear({m})",
        geometry="linear",
        cells=tuple(range(m)),
        links=None,
        memory_ports=m + 1,
    )


def mesh_topology(rows: int, cols: int) -> ArrayTopology:
    """``rows x cols`` mesh; ``rows + cols`` memory taps (``2 sqrt(m)``)."""
    if rows < 1 or cols < 1:
        raise ValueError(f"mesh needs positive dimensions, got {rows}x{cols}")
    cells = tuple((r, c) for r in range(rows) for c in range(cols))
    links = frozenset({(0, 1), (0, -1), (1, 0), (-1, 0)})
    return ArrayTopology(
        name=f"mesh({rows}x{cols})",
        geometry="mesh",
        cells=cells,
        links=links,
        memory_ports=rows + cols,
    )


def fixed_grid_topology(rows: int, cols: int) -> ArrayTopology:
    """Fixed-size array: one cell per G-node of the Fig. 17 G-graph.

    Links follow the G-edges: right neighbour ``(0, +1)`` within a level
    and down-left ``(+1, -1)`` to the next level.  I/O enters at the top
    row only, so memory taps are not needed — ``memory_ports`` counts the
    host connections.
    """
    cells = tuple((r, c) for r in range(rows) for c in range(cols))
    links = frozenset({(0, 1), (1, -1)})
    return ArrayTopology(
        name=f"fixed({rows}x{cols})",
        geometry="grid",
        cells=cells,
        links=links,
        memory_ports=cols,
    )
