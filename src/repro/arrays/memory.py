"""External-memory subsystem accounting (Figs. 2, 18, 19).

Cut-and-pile parks every value that crosses a G-set boundary in an
external memory and reads it back when the consuming set runs.  The
paper counts the *connections* (``m+1`` for the linear array, ``2 sqrt(m)``
for the mesh) but not the traffic or capacity; this module derives both
from a finished cycle simulation:

* which port each parked word uses (the tap nearest the producing cell —
  ports sit at the cell boundaries);
* per-port read/write word counts (bandwidth per connection);
* the occupancy timeline of the whole memory pool: a word lives from its
  producer's fire until its last consumer's fire, so the high-water mark
  is the capacity the external memories must provide.

This turns the paper's "saved in external memories is straight-forward"
into checkable numbers — and exposes the linear/mesh difference in
traffic concentration (fewer mesh ports carry more words each).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from ..core.graph import DependenceGraph, NodeKind
from .plan import ExecutionPlan

__all__ = ["MemoryReport", "analyze_memory"]


@dataclass(frozen=True)
class MemoryReport:
    """Traffic and capacity census of the external-memory pool."""

    words_written: int
    words_read: int
    peak_occupancy: int
    port_writes: dict[Hashable, int]
    port_reads: dict[Hashable, int]

    @property
    def ports_used(self) -> int:
        """Ports that actually carried traffic."""
        return len(set(self.port_writes) | set(self.port_reads))

    @property
    def max_port_load(self) -> int:
        """Heaviest single port (reads + writes) — the wiring hot spot."""
        loads: dict[Hashable, int] = {}
        for port, w in self.port_writes.items():
            loads[port] = loads.get(port, 0) + w
        for port, r in self.port_reads.items():
            loads[port] = loads.get(port, 0) + r
        return max(loads.values(), default=0)


def _port_of(plan: ExecutionPlan, cell: Hashable) -> Hashable:
    """The memory tap a cell uses.

    Linear arrays tap at cell boundaries: cell ``p`` writes through tap
    ``p`` (its left boundary) — ``m+1`` taps in total with the rightmost
    boundary reserved for reads off the end.  Meshes tap at the row ends:
    cell ``(r, c)`` uses the row-``r`` tap on the nearer side, matching
    the ``2 sqrt(m)`` connections of Fig. 19.
    """
    if plan.topology.geometry == "linear":
        return cell
    r, c = cell
    cols = max(cc for _, cc in plan.topology.cells) + 1
    side = "L" if c < cols / 2 else "R"
    return (side, r)


def analyze_memory(plan: ExecutionPlan, dg: DependenceGraph) -> MemoryReport:
    """Census the external-memory behaviour of an execution plan.

    A reference is memory-routed exactly when the cycle simulator would
    route it through memory: producer and consumer in different execution
    regions (G-sets), or unlinked cells.
    """
    fires = plan.fires
    region_of = plan.region_of
    writes: set[tuple] = set()
    write_port: dict[tuple, Hashable] = {}
    write_time: dict[tuple, int] = {}
    last_read: dict[tuple, int] = {}
    port_writes: dict[Hashable, int] = {}
    port_reads: dict[Hashable, int] = {}
    reads = 0

    for nid in dg.g.nodes:
        if nid not in fires:
            continue
        cell, t = fires[nid]
        for ref in dg.operands(nid).values():
            src = ref[0]
            if dg.kind(src) in (NodeKind.INPUT, NodeKind.CONST):
                continue
            pcell, pt = fires[src]
            same_region = (
                not region_of or region_of.get(src) == region_of.get(nid)
            )
            local = cell == pcell or plan.topology.is_neighbor(pcell, cell)
            if same_region and local:
                continue
            # Memory round trip.
            if ref not in writes:
                writes.add(ref)
                port = _port_of(plan, pcell)
                write_port[ref] = port
                write_time[ref] = pt + 1
                port_writes[port] = port_writes.get(port, 0) + 1
            reads += 1
            rport = _port_of(plan, cell)
            port_reads[rport] = port_reads.get(rport, 0) + 1
            last_read[ref] = max(last_read.get(ref, 0), t)

    # Occupancy timeline: +1 at write, -1 after the last read.
    events: list[tuple[int, int]] = []
    for ref in writes:
        events.append((write_time[ref], +1))
        events.append((last_read[ref] + 1, -1))
    events.sort()
    live = peak = 0
    for _, delta in events:
        live += delta
        peak = max(peak, live)

    return MemoryReport(
        words_written=len(writes),
        words_read=reads,
        peak_occupancy=peak,
        port_writes=port_writes,
        port_reads=port_reads,
    )
