"""Experiments A-*: ablations and extensions beyond the paper."""

from __future__ import annotations

import numpy as np

from ..algorithms.transitive_closure import make_inputs, tc_regular
from ..algorithms.warshall import (
    floyd_warshall_reference,
    random_adjacency,
    warshall,
)
from ..core.ggraph import GGraph, group_by_blocks, group_by_columns
from ..core.gsets import (
    SCHEDULE_POLICIES,
    make_linear_gsets,
    make_mesh_gsets,
    schedule_gsets,
    verify_schedule,
)
from ..core.metrics import evaluate_schedule, schedule_memory_traffic
from ..core.schedopt import memory_highwater, schedule_gsets_memory_aware
from ..core.semiring import BOOLEAN, COUNTING, MAX_MIN, MIN_PLUS, closure_reference
from ..arrays.cost import fixed_array_cost, partitioned_array_cost
from ..arrays.cycle_sim import simulate
from ..arrays.pipeline import run_chained_instances
from ..arrays.plan import fixed_array_plan, min_initiation_interval, partitioned_plan

__all__ = [
    "policy_ablation",
    "grouping_ablation",
    "alignment_ablation",
    "chained_census",
    "semiring_sweep",
    "cost_census",
    "hybrid_census",
]


def policy_ablation(n: int = 16, m: int = 4) -> list[dict]:
    """A-POL: host bandwidth vs memory high-water across issue orders."""
    dg = tc_regular(n)
    gg = GGraph(dg, group_by_columns)
    plan = make_linear_gsets(gg, m, aligned=True)
    env = make_inputs(random_adjacency(n, seed=0))
    orders = {
        policy: schedule_gsets(plan, policy) for policy in sorted(SCHEDULE_POLICIES)
    }
    orders["memory-aware"] = schedule_gsets_memory_aware(plan)
    rows = []
    for policy, order in orders.items():
        verify_schedule(plan, order)
        ep = partitioned_plan(plan, order)
        res = simulate(ep, dg, env)
        rows.append(
            {
                "policy": policy,
                "makespan": res.makespan,
                "stalls": ep.stall_cycles,
                "req_hostBW(preload=nm)": float(
                    res.required_host_bandwidth(preload=n * m)
                ),
                "mem_highwater": memory_highwater(plan, order),
                "violations": len(res.violations),
            }
        )
    return rows


def grouping_ablation(n: int = 12, m: int = 4) -> list[dict]:
    """A-GRP: granularity trade (Fig. 9), fine -> coarse ordering."""
    dg = tc_regular(n)
    variants = [(f"blocks {br}x{br}", group_by_blocks(br, br, n)) for br in (2, 3, 6)]
    variants.insert(2, ("columns (paper)", group_by_columns))
    rows = []
    for name, assign in variants:
        gg = GGraph(dg, assign)
        plan = make_linear_gsets(gg, m)
        order = schedule_gsets(plan)
        rep = evaluate_schedule(plan, order)
        rows.append(
            {
                "grouping": name,
                "gnodes": len(gg),
                "gnodes/cell": round(len(gg) / m, 1),
                "max_gnode_time": max(gn.comp_time for gn in gg.gnodes.values()),
                "mem_words": schedule_memory_traffic(plan, order),
                "total_time": rep.total_time,
                "occupancy": float(rep.occupancy),
            }
        )
    return rows


def alignment_ablation(configs=((11, 4), (15, 4), (19, 4))) -> list[dict]:
    """A-ALN: the paper's skew-aligned blocks vs packed blocks."""
    rows = []
    for n, m in configs:
        dg = tc_regular(n)
        gg = GGraph(dg, group_by_columns)
        env = make_inputs(random_adjacency(n, seed=1))
        for aligned in (True, False):
            plan = make_linear_gsets(gg, m, aligned=aligned)
            order = schedule_gsets(plan, "vertical")
            rep = evaluate_schedule(plan, order)
            ep = partitioned_plan(plan, order)
            res = simulate(ep, dg, env)
            rows.append(
                {
                    "n": n,
                    "m": m,
                    "blocks": "aligned" if aligned else "packed",
                    "total_time": rep.total_time,
                    "U": float(rep.utilization),
                    "boundary_sets": rep.boundary_gsets,
                    "req_hostBW": float(res.required_host_bandwidth(preload=n * m)),
                    "paper_m/n": round(m / n, 3),
                }
            )
    return rows


def chained_census(n: int = 8, ks=(1, 2, 4, 6)) -> list[dict]:
    """A-CHAIN: k overlapped instances on the fixed array."""
    dg = tc_regular(n)
    gg = GGraph(dg, group_by_columns)
    ep = fixed_array_plan(gg)
    delta = min_initiation_interval(ep)
    base_makespan = ep.makespan
    rows = []
    for k in ks:
        mats = [random_adjacency(n, 0.3, seed=s) for s in range(k)]
        run = run_chained_instances(dg, ep, [make_inputs(a) for a in mats], delta)
        correct = all(
            np.array_equal(run.output_matrix(i, n), warshall(mats[i]))
            for i in range(k)
        )
        rows.append(
            {
                "n": n,
                "instances": k,
                "delta": delta,
                "makespan": run.result.makespan,
                "expected": base_makespan + (k - 1) * delta,
                "violations": len(run.result.violations),
                "all_correct": correct,
                "occupancy": float(run.result.occupancy),
            }
        )
    return rows


def semiring_sweep(n: int = 10, m: int = 4) -> list[dict]:
    """A-EXT: one array design, a family of path problems."""
    rng = np.random.default_rng(17)
    dg = tc_regular(n)
    gg = GGraph(dg, group_by_columns)
    plan = make_linear_gsets(gg, m)
    ep = partitioned_plan(plan, schedule_gsets(plan))
    rows = []
    cases = [
        ("reachability", BOOLEAN, random_adjacency(n, 0.3, seed=1), warshall),
        (
            "shortest paths",
            MIN_PLUS,
            np.where(rng.random((n, n)) < 0.4,
                     rng.integers(1, 9, (n, n)).astype(float), np.inf),
            floyd_warshall_reference,
        ),
        (
            "bottleneck paths",
            MAX_MIN,
            MAX_MIN.random_matrix(n, rng),
            lambda a: closure_reference(a, MAX_MIN),
        ),
    ]
    for name, sr, a, ref in cases:
        res = simulate(ep, dg, make_inputs(a, sr), sr)
        ok = bool(np.array_equal(res.output_matrix(n, sr), ref(a)))
        rows.append(
            {
                "problem": name,
                "semiring": sr.name,
                "pruning_sound": sr.supports_superfluous_pruning(),
                "correct": ok,
                "violations": len(res.violations),
            }
        )
    rows.append(
        {
            "problem": "path counting",
            "semiring": COUNTING.name,
            "pruning_sound": COUNTING.supports_superfluous_pruning(),
            "correct": "n/a (pruned graph invalid by design)",
            "violations": 0,
        }
    )
    return rows


def cost_census(n: int = 16, m: int = 4) -> list[dict]:
    """A-COST: structural resource counts per array design."""
    gg = GGraph(tc_regular(n), group_by_columns)
    lin_plan = make_linear_gsets(gg, m)
    mesh_plan = make_mesh_gsets(gg, m)
    designs = [
        partitioned_array_cost(lin_plan, schedule_gsets(lin_plan)),
        partitioned_array_cost(mesh_plan, schedule_gsets(mesh_plan)),
        fixed_array_cost(n, n + 1),
    ]
    return [c.row() for c in designs]


def hybrid_census(n: int = 16, m: int = 4, piles_list=(1, 2, 4, 8)) -> list[dict]:
    """A-HYB: the LSGP <-> LPGS spectrum via hybrid partitioning.

    The paper's own conjecture measured: cut-and-pile first (piles), then
    coalescing within each pile — local storage falls with the pile count
    while external traffic rises toward pure cut-and-pile.
    """
    from ..partitioning.coalescing import coalesce_by_strips
    from ..partitioning.hybrid import hybrid_partition

    gg = GGraph(tc_regular(n), group_by_columns)
    rows = []
    pure = coalesce_by_strips(gg, m)
    rows.append(
        {
            "scheme": "pure coalescing (LSGP)",
            "piles": 1,
            "local_storage": pure.max_local_storage,
            "external_words": 0,
            "total_time": pure.total_time,
        }
    )
    for piles in piles_list:
        if piles == 1:
            continue
        h = hybrid_partition(gg, m, piles)
        rows.append(
            {
                "scheme": f"hybrid ({piles} piles)",
                "piles": piles,
                "local_storage": h.max_local_storage,
                "external_words": h.external_words,
                "total_time": h.total_time,
            }
        )
    plan = make_linear_gsets(gg, m)
    order = schedule_gsets(plan)
    rows.append(
        {
            "scheme": "pure cut-and-pile (LPGS)",
            "piles": len(gg.cols),
            "local_storage": 0,
            "external_words": schedule_memory_traffic(plan, order),
            "total_time": evaluate_schedule(plan, order).total_time,
        }
    )
    return rows
