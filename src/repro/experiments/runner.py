"""Parallel experiment runner: fan experiment tables out over processes.

``repro bench`` (and anything else that wants many reproduction tables)
goes through :func:`run_experiments`.  With ``jobs > 1`` each experiment
runs in its own worker process under a *fresh* metrics registry and the
chosen simulator backend; the parent then merges every worker's registry
snapshot into its own (:meth:`MetricsRegistry.merge_json`), so the final
metrics are identical to a sequential run.  Results always come back in
the order the experiment ids were given, regardless of which worker
finished first — parallelism never changes the artefact.

The worker is a module-level function (picklable for the ``spawn`` start
method) and re-resolves the registry and backend inside the child, so no
process inherits mutable state from the parent.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, Sequence

from ..obs import runlog
from ..obs.metrics import MetricsRegistry, get_registry, set_registry

__all__ = ["run_experiments"]


def _run_one(exp_id: str) -> list[dict]:
    """Build one experiment table inside a ledger stage (any process)."""
    from . import EXPERIMENTS

    with runlog.stage_scope("experiment.run", exp=exp_id):
        return EXPERIMENTS[exp_id].run()


def _experiment_worker(
    exp_id: str,
    backend: str | None,
    record_metrics: bool,
    runlog_payload: dict[str, str] | None = None,
) -> tuple[str, list[dict], dict[str, Any] | None, list[dict[str, Any]]]:
    """Run one experiment in this process; return ``(id, rows, metrics,
    runlog_events)``.

    Installs a fresh registry (when metrics are recorded) and the
    requested backend default before building the table, so the child is
    indistinguishable from a sequential in-process run.  The parent's
    run-log context arrives in ``runlog_payload``; the worker's event
    buffer rides back with the result and is absorbed in submission
    order (like the registry snapshot).
    """
    from ..arrays.vector_sim import set_default_backend

    if backend is not None:
        set_default_backend(backend)
    snapshot: dict[str, Any] | None = None
    with runlog.worker_scope(runlog_payload, task=exp_id) as rl:
        if record_metrics:
            reg = MetricsRegistry()
            set_registry(reg)
            rows = _run_one(exp_id)
            snapshot = reg.to_json()
        else:
            rows = _run_one(exp_id)
    events = rl.events if rl is not None else []
    return exp_id, rows, snapshot, events


def run_experiments(
    exp_ids: Sequence[str],
    jobs: int | None = None,
    backend: str | None = None,
    record_metrics: bool = True,
) -> list[tuple[str, list[dict]]]:
    """Build several experiment tables, optionally across processes.

    Parameters
    ----------
    exp_ids:
        Experiment ids from :data:`repro.experiments.EXPERIMENTS`, in the
        order results should be returned.
    jobs:
        Worker processes.  ``None``/``0``/``1`` (or a single experiment)
        runs sequentially in-process.
    backend:
        Simulator backend for the runs (``None`` keeps each process's
        default, i.e. ``REPRO_SIM_BACKEND`` or ``reference``).
    record_metrics:
        When true, per-worker registries are merged into this process's
        registry so counters match a sequential run exactly.

    Returns ``[(exp_id, rows), ...]`` in ``exp_ids`` order.
    """
    from . import EXPERIMENTS

    unknown = [e for e in exp_ids if e not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiment id(s): {', '.join(unknown)}")

    # Run identity: the workload, never the parallelism degree.
    params = {"exp_ids": list(exp_ids), "backend": backend}
    with runlog.run_scope("bench", params) as rl:
        if not jobs or jobs <= 1 or len(exp_ids) <= 1:
            # Sequential runs share this process's registry already;
            # apply the backend override around the loop, restore after.
            from ..arrays.vector_sim import set_default_backend

            prev = (
                set_default_backend(backend) if backend is not None else None
            )
            try:
                results = []
                for eid in exp_ids:
                    with runlog.task_scope(eid):
                        results.append((eid, _run_one(eid)))
                return results
            finally:
                if prev is not None:
                    set_default_backend(prev)

        results = []
        payload = runlog.worker_payload()
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(exp_ids))
        ) as pool:
            futures = [
                pool.submit(
                    _experiment_worker, eid, backend, record_metrics,
                    payload,
                )
                for eid in exp_ids
            ]
            # Collect in submission order: deterministic regardless of
            # which worker finishes first; ledger events merge under the
            # same rule as the registry snapshots.
            for fut in futures:
                eid, rows, snapshot, events = fut.result()
                if snapshot is not None:
                    get_registry().merge_json(snapshot)
                if rl is not None:
                    rl.absorb(events)
                results.append((eid, rows))
        return results
