"""Experiments F22, T-EVAL, T-BASE, T-FT: the paper's comparisons."""

from __future__ import annotations

import numpy as np

from ..algorithms.faddeev import faddeev_ggraph
from ..algorithms.givens import givens_ggraph
from ..algorithms.lu import lu_ggraph
from ..algorithms.transitive_closure import tc_regular
from ..algorithms.warshall import random_adjacency, warshall
from ..baselines.nunez_torralba import run_nunez_torralba
from ..core.ggraph import GGraph, group_by_columns
from ..core.gsets import make_linear_gsets, make_mesh_gsets, schedule_gsets
from ..core.metrics import (
    boundary_loss,
    evaluate_schedule,
    tc_io_bandwidth,
    tc_linear_throughput,
    tc_utilization,
    time_mixing_loss,
)
from ..arrays.faults import degraded_throughput

__all__ = [
    "varying_time_census",
    "tradeoff_sweep",
    "baseline_sweep",
    "fault_sweep",
]


def varying_time_census(n: int = 12, m: int = 4) -> list[dict]:
    """F22: time-mixing loss — zero on linear paths, positive on blocks."""
    rows = []
    for name, gg in [
        ("LU", lu_ggraph(n)),
        ("Faddeev", faddeev_ggraph(max(3, n // 2))),
        ("Givens QR", givens_ggraph(n)),
    ]:
        lin_plan = make_linear_gsets(gg, m)
        lin_order = schedule_gsets(lin_plan)
        mesh_plan = make_mesh_gsets(gg, m)
        mesh_order = schedule_gsets(mesh_plan)
        lin = evaluate_schedule(lin_plan, lin_order)
        mesh = evaluate_schedule(mesh_plan, mesh_order)
        rows.append(
            {
                "algorithm": name,
                "m": m,
                "linear_mixing_loss": float(time_mixing_loss(lin_plan, lin_order)),
                "mesh_mixing_loss": float(time_mixing_loss(mesh_plan, mesh_order)),
                "linear_boundary": float(boundary_loss(lin_plan, lin_order)),
                "mesh_boundary": float(boundary_loss(mesh_plan, mesh_order)),
                "linear_occ": float(lin.occupancy),
                "mesh_occ": float(mesh.occupancy),
            }
        )
    return rows


def tradeoff_sweep(configs=((11, 4), (15, 4), (17, 9), (19, 4))) -> list[dict]:
    """T-EVAL: the Sec. 4.2 linear-vs-mesh comparison table."""
    rows = []
    for n, m in configs:
        gg = GGraph(tc_regular(n), group_by_columns)
        for geometry in ("linear", "mesh"):
            if geometry == "linear":
                plan = make_linear_gsets(gg, m, aligned=False)
            else:
                plan = make_mesh_gsets(gg, m)
            rep = evaluate_schedule(plan, schedule_gsets(plan))
            rows.append(
                {
                    "n": n,
                    "m": m,
                    "geometry": geometry,
                    "T_measured": float(rep.throughput),
                    "T_paper": float(tc_linear_throughput(n, m)),
                    "U_measured": float(rep.utilization),
                    "U_paper": float(tc_utilization(n)),
                    "D_IO_paper": float(tc_io_bandwidth(n, m)),
                    "mem_ports": rep.memory_connections,
                    "overhead": rep.overhead,
                }
            )
    return rows


def baseline_sweep(configs=((8, 2), (12, 2), (12, 3), (16, 4))) -> list[dict]:
    """T-BASE: against the Núñez-Torralba block partitioning [22]."""
    rows = []
    for n, s in configs:
        m = s * s
        a = random_adjacency(n, 0.35, seed=n)
        theirs = run_nunez_torralba(a, s)
        assert np.array_equal(theirs.result, warshall(a))
        gg = GGraph(tc_regular(n), group_by_columns)
        plan = make_mesh_gsets(gg, m)
        ours = evaluate_schedule(plan, schedule_gsets(plan))
        rows.append(
            {
                "n": n,
                "cells": m,
                "NT_kernels": theirs.kernels,
                "NT_control_steps": theirs.control_steps,
                "NT_cycles": theirs.total_cycles,
                "ours_cycles": ours.total_time,
                "speedup": round(theirs.total_cycles / ours.total_time, 2),
                "NT_mem_words": theirs.memory_words,
                "ours_mem_words": ours.memory_words,
            }
        )
    return rows


def fault_sweep(configs=((12, 4, 1), (16, 9, 1), (16, 9, 2))) -> list[dict]:
    """T-FT: graceful degradation, linear bypass vs mesh row retirement."""
    rows = []
    for n, m, f in configs:
        gg = GGraph(tc_regular(n), group_by_columns)
        reports = degraded_throughput(gg, m, f)
        for geometry, rep in reports.items():
            rows.append(
                {
                    "n": n,
                    "m": m,
                    "failures": f,
                    "geometry": geometry,
                    "cells_lost": rep.cells_lost,
                    "cells_used": rep.cells_used,
                    "healthy_cycles": rep.healthy_time,
                    "degraded_cycles": rep.degraded_time,
                    "throughput_retention": round(float(rep.retention), 3),
                }
            )
    return rows
