"""Sparse-dataset experiments: bit-packing speedup and engine agreement.

The paper's experiments stop at dense matrices an FPDG can be built for;
these tables measure the host-level closure engines of
:mod:`repro.datasets` on generated sparse workloads.

``F20-BIT`` is the headline scaling table: reflexive boolean closure of
seeded Kronecker graphs via the unpacked Warshall oracle
(:func:`repro.core.semiring.closure_reference` over ``BOOLEAN``) versus
the bit-packed kernel (:func:`repro.core.bitmatrix.closure_words`), with
bit-for-bit agreement checked per row.  The CI ``backend`` job gates on
``speedup >= 5`` for every ``n >= 1024`` row (see
``benchmarks/bench_f20_bitpack.py``).
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..core.bitmatrix import closure_words, pack_rows
from ..core.semiring import BOOLEAN, closure_reference
from ..datasets import compute_closure, kronecker

__all__ = ["bitpack_speedup", "engine_agreement"]

#: Kronecker scales for the default F20-BIT sweep: n = 256, 1024, 2048.
DEFAULT_SCALES: tuple[int, ...] = (8, 10, 11)


def _best_of(fn, repeats: int) -> tuple[float, object]:
    """Minimum wall time over ``repeats`` calls (and the last result)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def bitpack_speedup(
    scales: Sequence[int] = DEFAULT_SCALES,
    edge_factor: int = 8,
    seed: int = 0,
    repeats: int = 2,
) -> list[dict]:
    """F20-BIT rows: unpacked vs bit-packed reflexive closure per size.

    The timed bit-packed path includes the pack step (its real cost when
    starting from a dense matrix); agreement is checked on the packed
    words, so a row with ``agree=False`` would flag a kernel bug, not a
    tolerance issue.
    """
    rows = []
    for scale in scales:
        ds = kronecker(scale, edge_factor, seed=seed)
        a = ds.adjacency(diagonal=True)
        t_ref, ref = _best_of(lambda: closure_reference(a, BOOLEAN), repeats)
        t_bit, packed = _best_of(
            lambda: closure_words(pack_rows(a), ds.n), repeats
        )
        rows.append(
            {
                "dataset": ds.name,
                "n": ds.n,
                "m": ds.m,
                "t_unpacked_s": round(t_ref, 6),
                "t_bitpack_s": round(t_bit, 6),
                "speedup": round(t_ref / t_bit, 2) if t_bit else float("inf"),
                "agree": bool(np.array_equal(pack_rows(ref), packed)),
            }
        )
    return rows


def engine_agreement(
    scale: int = 7, edge_factor: int = 8, seeds: Sequence[int] = (0, 1)
) -> list[dict]:
    """Every closure engine against the dense reference, per seed.

    Small graphs (default n=128) so the dense oracle stays cheap; the
    scale-size agreement story is carried by ``repro bench --dataset``
    and the CI dataset smoke.
    """
    rows = []
    for seed in seeds:
        ds = kronecker(scale, edge_factor, seed=seed)
        oracle = compute_closure(ds, "reference")
        for engine in ("bitpack", "ssc1", "ssc2", "ssc12"):
            t0 = time.perf_counter()
            res = compute_closure(ds, engine)
            rows.append(
                {
                    "dataset": ds.name,
                    "n": ds.n,
                    "m": ds.m,
                    "engine": engine,
                    "kernel": res.kernel,
                    "wall_s": round(time.perf_counter() - t0, 6),
                    "closure_edges": res.closure_edges,
                    "agree": res.agrees_with(oracle),
                }
            )
    return rows
