"""The experiment registry: every figure/table as an importable function.

Each experiment builds the rows of one reproduction table (see DESIGN.md's
index and EXPERIMENTS.md for paper-vs-measured).  The functions are pure
library code — the pytest benchmarks wrap them with the shape assertions
and persistence, and ``python -m repro reproduce`` prints them directly.

    >>> from repro.experiments import EXPERIMENTS
    >>> rows = EXPERIMENTS["F18"].run()          # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from . import ablations, arrays, datasets, pipeline, schemes, tradeoffs

__all__ = ["Experiment", "EXPERIMENTS", "run_experiment"]


@dataclass(frozen=True)
class Experiment:
    """One reproducible experiment: id, title, and a row builder."""

    exp_id: str
    title: str
    build: Callable[[], list[dict]]

    def run(self) -> list[dict]:
        """Build the reproduction table rows with default parameters."""
        return self.build()


def _registry() -> dict[str, Experiment]:
    entries = [
        ("F01", "coalescing (LSGP) per-cell storage vs cut-and-pile",
         schemes.coalescing_storage),
        ("F02", "cut-and-pile (LPGS) execution census", schemes.cut_and_pile_census),
        ("F03", "band decomposition of dense matmul", schemes.band_decomposition),
        ("F04", "broadcast removal: max fan-out O(n) -> 1", pipeline.transform_census),
        ("F05", "grouping alternatives (Fig. 6)", pipeline.grouping_census),
        ("F07", "G-set selection: per-set uniformity suffices", pipeline.gset_census),
        ("F10-F11", "FPDG size and superfluous-node pruning", pipeline.count_census),
        ("F12-F16", "transformation pipeline property census", pipeline.stage_census),
        ("F17", "fixed-size arrays: ours vs Kung [23]; linear collapse",
         arrays.fixed_array_census),
        ("F18", "linear partitioned array vs Sec. 4.2 formulas", arrays.linear_sweep),
        ("F19", "2-D partitioned array vs Sec. 4.2", arrays.mesh_sweep),
        ("F20", "G-set scheduling policies", arrays.schedule_census),
        ("F20-BIT", "bit-packed boolean closure vs unpacked Warshall",
         datasets.bitpack_speedup),
        ("DS-AGREE", "closure-engine agreement on Kronecker graphs",
         datasets.engine_agreement),
        ("F21", "host bandwidth m/n with the R-block chain", arrays.io_census),
        ("F22", "varying G-node times: linear vs 2-D", tradeoffs.varying_time_census),
        ("T-EVAL", "Sec. 4.2 trade-off table, linear vs mesh",
         tradeoffs.tradeoff_sweep),
        ("T-BASE", "vs Núñez-Torralba block partitioning", tradeoffs.baseline_sweep),
        ("T-FT", "throughput retention under cell failures", tradeoffs.fault_sweep),
        ("A-POL", "schedule-policy ablation: host bandwidth vs memory",
         ablations.policy_ablation),
        ("A-GRP", "G-node granularity ablation (Fig. 9)",
         ablations.grouping_ablation),
        ("A-ALN", "aligned vs packed linear blocks", ablations.alignment_ablation),
        ("A-CHAIN", "fixed array: chained instances", ablations.chained_census),
        ("A-EXT", "one array, three path problems", ablations.semiring_sweep),
        ("A-COST", "structural cost per design", ablations.cost_census),
        ("A-HYB", "hybrid cut-and-pile + coalescing spectrum",
         ablations.hybrid_census),
    ]
    return {eid: Experiment(eid, title, fn) for eid, title, fn in entries}


EXPERIMENTS: dict[str, Experiment] = _registry()


def run_experiment(exp_id: str) -> list[dict]:
    """Build one experiment's rows by id (raises ``KeyError`` if unknown)."""
    return EXPERIMENTS[exp_id].run()
