"""Experiments F01-F03: the three partitioning approaches (Figs. 1-3)."""

from __future__ import annotations

import numpy as np

from ..algorithms.transitive_closure import tc_regular
from ..core.ggraph import GGraph, group_by_columns
from ..partitioning.coalescing import coalesce_by_strips
from ..partitioning.cut_and_pile import cut_and_pile
from ..partitioning.decomposition import band_matmul_decomposition

__all__ = ["coalescing_storage", "cut_and_pile_census", "band_decomposition"]


def coalescing_storage(ns=(6, 9, 12, 15), m: int = 4) -> list[dict]:
    """F01: LSGP per-cell live storage (O(n^2/m)) vs LPGS (zero local)."""
    rows = []
    for n in ns:
        gg = GGraph(tc_regular(n), group_by_columns)
        co = coalesce_by_strips(gg, m)
        cp = cut_and_pile(gg, m)
        rows.append(
            {
                "n": n,
                "m": m,
                "lsgp_storage_per_cell": co.max_local_storage,
                "n^2/m": n * n // m,
                "lsgp_occupancy": float(co.occupancy),
                "lpgs_local_storage": 0,
                "lpgs_external_words": cp.report.memory_words,
            }
        )
    return rows


def cut_and_pile_census(
    configs=((12, 3, "linear"), (12, 4, "linear"), (12, 4, "mesh"), (16, 4, "mesh")),
) -> list[dict]:
    """F02: cut-and-pile runs with zero stalls and external-only storage."""
    rows = []
    for n, m, geometry in configs:
        gg = GGraph(tc_regular(n), group_by_columns)
        cp = cut_and_pile(gg, m, geometry)
        r = cp.report.row()
        rows.append(
            {
                "n": n,
                "m": m,
                "geometry": geometry,
                "gsets": r["gsets"],
                "stalls": cp.exec_plan.stall_cycles,
                "overhead": r["overhead"],
                "external_words": r["mem_words"],
                "mem_ports": r["mem_ports"],
                "occupancy": r["occupancy"],
            }
        )
    return rows


def band_decomposition(n: int = 24, bands=(2, 4, 8, 12, 24), seed: int = 42) -> list[dict]:
    """F03: dense matmul as chained band sub-algorithms (Navarro)."""
    rng = np.random.default_rng(seed)
    a, b = rng.random((n, n)), rng.random((n, n))
    rows = []
    for w in bands:
        res = band_matmul_decomposition(a, b, w)
        assert np.allclose(res.result, a @ b)
        rows.append(
            {
                "n": n,
                "band_w": w,
                "passes": res.passes,
                "C_traffic_words": res.c_traffic,
                "input_words": res.input_words,
                "est_time": res.est_time,
                "traffic/pass": float(res.traffic_per_pass),
            }
        )
    return rows
