"""Experiments F04-F16: the transformation pipeline and grouping."""

from __future__ import annotations

import numpy as np

from ..algorithms.lu import lu_ggraph
from ..algorithms.transitive_closure import (
    TC_STAGES,
    expected_computed_ops,
    expected_full_ops,
    is_computed,
    run_graph,
    tc_full,
    tc_pruned,
    tc_regular,
)
from ..algorithms.warshall import random_adjacency, warshall
from ..core.analysis import (
    communication_patterns,
    find_broadcasts,
    flow_directions,
    max_fanout,
)
from ..core.ggraph import (
    GGraph,
    GroupingError,
    group_by_blocks,
    group_by_columns,
    group_by_diagonals,
    group_by_rows,
)
from ..core.graph import NodeKind, node_counts
from ..core.gsets import make_linear_gsets, schedule_gsets, verify_schedule
from ..core.transform import pipeline_broadcasts, prune_superfluous

__all__ = [
    "transform_census",
    "grouping_census",
    "gset_census",
    "count_census",
    "stage_census",
]


def transform_census(ns=(4, 6, 8, 10)) -> list[dict]:
    """F04: generic rewrites kill broadcasts, preserve the closure."""
    rows = []
    for n in ns:
        def superfluous(dg, nid, n=n):
            _, k, i, j = nid
            return not is_computed(n, k, i, j)

        full = tc_full(n)
        pruned = prune_superfluous(full, superfluous)
        piped = pipeline_broadcasts(pruned, fanout_threshold=1)
        a = random_adjacency(n, 0.35, seed=n)
        ok = np.array_equal(run_graph(piped, a), warshall(a))
        rows.append(
            {
                "n": n,
                "fanout_before": max_fanout(full),
                "fanout_pruned": max_fanout(pruned),
                "fanout_pipelined": max_fanout(piped),
                "semantics_preserved": ok,
            }
        )
    return rows


def grouping_census(n: int = 12) -> list[dict]:
    """F05: the Fig. 6 grouping alternatives and their G-graph quality."""
    dg = tc_regular(n)
    rows = []
    for name, assign in [
        ("diagonal-paths (cols)", group_by_columns),
        ("horizontal-paths (rows)", group_by_rows),
        ("2x2 blocks", group_by_blocks(2, 2, n)),
    ]:
        gg = GGraph(dg, assign)
        deltas = gg.edge_deltas()
        rows.append(
            {
                "grouping": name,
                "gnodes": len(gg),
                "uniform_time": gg.is_uniform_time(),
                "nearest_neighbour": gg.is_nearest_neighbour(),
                "distinct_edge_dirs": len(deltas),
                "max_time": max(gn.comp_time for gn in gg.gnodes.values()),
            }
        )
    try:
        GGraph(dg, group_by_diagonals(n + 1))
        cyclic = False
    except GroupingError:
        cyclic = True
    rows.append(
        {
            "grouping": "cyclic anti-diagonals",
            "gnodes": 0,
            "uniform_time": "-",
            "nearest_neighbour": "-",
            "distinct_edge_dirs": "-",
            "max_time": "REJECTED (cyclic G-graph)" if cyclic else "??",
        }
    )
    return rows


def gset_census(n: int = 12, m: int = 4) -> list[dict]:
    """F07: G-sets are internally uniform even on non-uniform G-graphs."""
    rows = []
    for name, gg in [
        ("transitive closure", GGraph(tc_regular(n), group_by_columns)),
        ("LU decomposition", lu_ggraph(n)),
    ]:
        plan = make_linear_gsets(gg, m)
        order = schedule_gsets(plan, "vertical")
        verify_schedule(plan, order)
        uniform_sets = sum(1 for s in plan.gsets if s.is_uniform(gg))
        rows.append(
            {
                "algorithm": name,
                "gnodes": len(gg),
                "cells": m,
                "gnodes/cell": round(len(gg) / m, 1),
                "gsets": len(plan.gsets),
                "uniform_gsets": uniform_sets,
                "globally_uniform": gg.is_uniform_time(),
            }
        )
    return rows


def count_census(ns=(4, 6, 8, 10, 12)) -> list[dict]:
    """F10/F11: n^3 op nodes; n(n-1)(n-2) after pruning."""
    rows = []
    for n in ns:
        full = tc_full(n)
        pruned = tc_pruned(n)
        rows.append(
            {
                "n": n,
                "full_ops": node_counts(full)[NodeKind.OP],
                "n^3": expected_full_ops(n),
                "pruned_ops": node_counts(pruned)[NodeKind.OP],
                "n(n-1)(n-2)": expected_computed_ops(n),
                "superfluous": expected_full_ops(n) - expected_computed_ops(n),
                "broadcast_sources": find_broadcasts(full).count,
                "max_fanout": max_fanout(full),
            }
        )
    return rows


def stage_census(n: int = 12) -> list[dict]:
    """F12-F16: per-stage property census of the whole pipeline."""
    a = random_adjacency(n, 0.35, seed=0)
    ref = warshall(a)
    rows = []
    for name, ctor in TC_STAGES.items():
        dg = ctor(n)
        bc = find_broadcasts(dg)
        fl = flow_directions(dg, pos_attr="draw")
        cp = communication_patterns(dg)
        rows.append(
            {
                "stage": name,
                "nodes": len(dg),
                "max_fanout": bc.max_fanout if bc.sources else 1,
                "unidirectional": fl.is_unidirectional,
                "stencils": cp.distinct,
                "dominant_stencil": float(cp.dominant_fraction),
                "closure_ok": bool(np.array_equal(run_graph(dg, a), ref)),
            }
        )
    return rows
