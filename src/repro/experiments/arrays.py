"""Experiments F17-F21: the derived arrays, measured by simulation.

Simulations go through :func:`repro.arrays.vector_sim.dispatch_simulate`,
so the process-wide backend default applies — ``repro bench --backend
vector`` (or ``REPRO_SIM_BACKEND=vector``) runs these sweeps on the
compiled batched backend with bit-identical rows.
"""

from __future__ import annotations

import time
from fractions import Fraction

import numpy as np

from ..algorithms.transitive_closure import make_inputs, tc_regular
from ..algorithms.warshall import random_adjacency, warshall
from ..baselines.kung_fixed import run_kung_fixed
from ..core.ggraph import GGraph, group_by_columns
from ..core.gsets import (
    SCHEDULE_POLICIES,
    make_linear_gsets,
    make_mesh_gsets,
    schedule_gsets,
    verify_schedule,
)
from ..core.metrics import (
    evaluate_schedule,
    tc_linear_throughput,
    tc_mesh_throughput,
    tc_utilization,
)
from ..arrays.host import simulate_rblock_chain
from ..arrays.plan import (
    fixed_array_plan,
    fixed_linear_plan,
    min_initiation_interval,
    partitioned_plan,
)
from ..arrays.vector_sim import dispatch_simulate as simulate

__all__ = [
    "F18_CONFIGS",
    "F19_CONFIGS",
    "fixed_array_census",
    "linear_sweep",
    "mesh_sweep",
    "schedule_census",
    "io_census",
    "backend_timing",
]

#: The shipped ``(n, m)`` sweep points of F18 (linear) and F19 (mesh);
#: hoisted so ``repro profile`` can rebuild the same plans for
#: critical-path attribution.
F18_CONFIGS: tuple[tuple[int, int], ...] = (
    (9, 5), (11, 4), (11, 6), (14, 3), (14, 5), (15, 4),
)
F19_CONFIGS: tuple[tuple[int, int], ...] = (
    (10, 4), (12, 4), (12, 9), (15, 9),
)


def fixed_array_census(ns=(5, 8, 11)) -> list[dict]:
    """F17: the fixed-size arrays versus Kung's load/reuse array."""
    rows = []
    for n in ns:
        dg = tc_regular(n)
        gg = GGraph(dg, group_by_columns)
        a = random_adjacency(n, 0.35, seed=n)
        ref = warshall(a)

        ep = fixed_array_plan(gg)
        res = simulate(ep, dg, make_inputs(a))
        ii = min_initiation_interval(ep)

        epl = fixed_linear_plan(gg)
        resl = simulate(epl, dg, make_inputs(a))
        iil = min_initiation_interval(epl)

        kung = run_kung_fixed(a)
        rows.append(
            {
                "n": n,
                "gnodes": len(gg),
                "ours_II": ii,
                "ours_mem_words": res.memory_words,
                "ours_ok": bool(np.array_equal(res.output_matrix(n), ref)),
                "kung_II": int(1 / kung.throughput),
                "kung_load_ovh": kung.overhead,
                "kung_ok": bool(np.array_equal(kung.result, ref)),
                "linear_II": iil,
                "n(n+1)": n * (n + 1),
                "linear_ok": bool(np.array_equal(resl.output_matrix(n), ref)),
            }
        )
    return rows


def linear_sweep(configs=F18_CONFIGS) -> list[dict]:
    """F18: the linear partitioned array, cycle-measured vs Sec. 4.2."""
    rows = []
    for n, m in configs:
        dg = tc_regular(n)
        gg = GGraph(dg, group_by_columns)
        plan = make_linear_gsets(gg, m, aligned=False)
        order = schedule_gsets(plan, "vertical")
        rep = evaluate_schedule(plan, order)
        ep = partitioned_plan(plan, order)
        a = random_adjacency(n, 0.35, seed=n + m)
        res = simulate(ep, dg, make_inputs(a))
        rows.append(
            {
                "n": n,
                "m": m,
                "T_measured": float(rep.throughput),
                "T_paper": float(tc_linear_throughput(n, m)),
                "U_measured": float(rep.utilization),
                "U_paper": float(tc_utilization(n)),
                "stalls": ep.stall_cycles,
                "mem_ports": rep.memory_connections,
                "closure_ok": bool(np.array_equal(res.output_matrix(n), warshall(a))),
                "violations": len(res.violations),
            }
        )
    return rows


def mesh_sweep(configs=F19_CONFIGS) -> list[dict]:
    """F19: the two-dimensional partitioned array vs Sec. 4.2."""
    rows = []
    for n, m in configs:
        dg = tc_regular(n)
        gg = GGraph(dg, group_by_columns)
        plan = make_mesh_gsets(gg, m)
        order = schedule_gsets(plan, "vertical")
        rep = evaluate_schedule(plan, order)
        ep = partitioned_plan(plan, order)
        a = random_adjacency(n, 0.35, seed=n * m)
        res = simulate(ep, dg, make_inputs(a))
        side = int(m**0.5)
        rows.append(
            {
                "n": n,
                "m": m,
                "shape": f"{side}x{side}",
                "T_measured": float(rep.throughput),
                "T_paper": float(tc_mesh_throughput(n, m)),
                "T_ratio": float(rep.throughput / tc_mesh_throughput(n, m)),
                "boundary_sets": rep.boundary_gsets,
                "stalls": ep.stall_cycles,
                "mem_ports": rep.memory_connections,
                "closure_ok": bool(np.array_equal(res.output_matrix(n), warshall(a))),
            }
        )
    return rows


def schedule_census(n: int = 12, m: int = 4) -> list[dict]:
    """F20: every policy is legal, pipelined and stall-free."""
    dg = tc_regular(n)
    gg = GGraph(dg, group_by_columns)
    plan = make_linear_gsets(gg, m)
    rows = []
    for policy in sorted(SCHEDULE_POLICIES):
        order = schedule_gsets(plan, policy)
        verify_schedule(plan, order)
        ep = partitioned_plan(plan, order)
        res = simulate(ep, dg, make_inputs(random_adjacency(n, seed=1)))
        rows.append(
            {
                "policy": policy,
                "gsets": len(order),
                "makespan": ep.makespan,
                "stalls": ep.stall_cycles,
                "violations": len(res.violations),
                "first_sets": " ".join(str(s.sid) for s in order[:4]),
            }
        )
    return rows


def backend_timing(
    configs=((24, 4, "linear"), (24, 16, "mesh")), replays: int = 3
) -> list[dict]:
    """A-VEC: reference-vs-vector wall time at paper-exceeding sizes.

    Builds each partitioned plan once, runs ``replays`` simulations on
    the reference interpreter and on the vector backend (one untimed
    warm-up replay pays the compile, after which every run is a cached
    replay — the deployment profile of ``verify_implementation`` and
    the campaigns), and reports the per-run wall times, the one-off
    compile cost, and a bit-identity check of the closure.
    """
    from ..arrays.cycle_sim import simulate as reference_simulate
    from ..arrays.vector_sim import simulate_vector
    from ..arrays.vector_compile import get_compiled
    from ..core.semiring import BOOLEAN

    rows = []
    for n, m, geometry in configs:
        dg = tc_regular(n)
        gg = GGraph(dg, group_by_columns)
        if geometry == "linear":
            plan = make_linear_gsets(gg, m, aligned=True)
        else:
            plan = make_mesh_gsets(gg, m)
        order = schedule_gsets(plan, "vertical")
        ep = partitioned_plan(plan, order)
        a = random_adjacency(n, 0.35, seed=n + m)
        inputs = make_inputs(a)

        t0 = time.perf_counter()
        compiled = get_compiled(ep, dg, BOOLEAN)
        wall_compile = time.perf_counter() - t0

        t0 = time.perf_counter()
        for _ in range(replays):
            ref = reference_simulate(ep, dg, inputs)
        wall_ref = (time.perf_counter() - t0) / replays

        simulate_vector(ep, dg, inputs)  # warm-up: cache is hot after this
        t0 = time.perf_counter()
        for _ in range(replays):
            vec = simulate_vector(ep, dg, inputs)
        wall_vec = (time.perf_counter() - t0) / replays

        rows.append(
            {
                "n": n,
                "m": m,
                "geometry": geometry,
                "fires": len(ep.fires),
                "steps": len(compiled.steps),
                "wall_reference_s": round(wall_ref, 6),
                "wall_vector_s": round(wall_vec, 6),
                "wall_compile_s": round(wall_compile, 6),
                "speedup": round(wall_ref / wall_vec, 2) if wall_vec else 0.0,
                "identical": bool(
                    np.array_equal(ref.output_matrix(n), vec.output_matrix(n))
                    and ref.makespan == vec.makespan
                    and ref.memory_words == vec.memory_words
                    and ref.violations == vec.violations
                ),
            }
        )
    return rows


def io_census(configs=((12, 3), (12, 4), (16, 4), (20, 4))) -> list[dict]:
    """F21: host bandwidth and R-block chain feasibility at m/n."""
    rows = []
    for n, m in configs:
        dg = tc_regular(n)
        gg = GGraph(dg, group_by_columns)
        plan = make_linear_gsets(gg, m, aligned=True)
        order = schedule_gsets(plan, "vertical")
        ep = partitioned_plan(plan, order)
        res = simulate(ep, dg, make_inputs(random_adjacency(n, seed=n)))
        slow = simulate_rblock_chain(res, Fraction(m, n))
        full = simulate_rblock_chain(res, 1)
        rows.append(
            {
                "n": n,
                "m": m,
                "words": len(res.input_deadlines),
                "avg_D_IO": float(res.average_host_bandwidth()),
                "paper_m/n": m / n,
                "chain@m/n_ok": slow.feasible,
                "preload_words": slow.preload_words,
                "max_R_memory": slow.max_r_memory,
                "chain@1_Rmem": full.max_r_memory,
            }
        )
    return rows
