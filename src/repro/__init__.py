"""Graph-based partitioning of matrix algorithms for systolic arrays.

A full reproduction of Moreno & Lang (ICPP 1988): the transformational
partitioning methodology (dependence graph -> transformed graph -> G-graph
-> G-sets -> array), its application to transitive closure, the linear /
two-dimensional / fixed-size arrays it derives, the Sec. 4 evaluation
measures, and the baselines the paper argues against — all executable on
a cycle-level systolic-array simulator.

Quickstart::

    import numpy as np
    from repro import partition_transitive_closure
    from repro.algorithms.warshall import random_adjacency, warshall

    impl = partition_transitive_closure(n=12, m=4, geometry="linear")
    print(impl.report.row())          # throughput, utilization, D_IO, ...
    a = random_adjacency(12, seed=0)
    assert np.array_equal(impl.run(a), warshall(a))

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` — the methodology: graph IR, analyses,
  transformations, G-graphs, G-sets, schedules, metrics;
* :mod:`repro.algorithms` — dependence-graph front-ends (transitive
  closure stages of Figs. 10-17, matmul, LU, Faddeev, Givens, triangular
  inverse) and software oracles;
* :mod:`repro.arrays` — array topologies, execution plans, the
  cycle-level simulator, the Fig. 21 host interface, fault analysis;
* :mod:`repro.partitioning` — coalescing (Fig. 1), cut-and-pile (Fig. 2),
  sub-algorithm decomposition (Fig. 3);
* :mod:`repro.baselines` — Kung's fixed-size array [23] and the
  Núñez-Torralba block partitioning [22];
* :mod:`repro.viz` — ASCII renderings of the figures.
"""

from .core.partitioner import (  # noqa: F401
    PartitionedImplementation,
    partition,
    partition_transitive_closure,
)
from .core.semiring import (  # noqa: F401
    BOOLEAN,
    COUNTING,
    MAX_MIN,
    MIN_PLUS,
    REAL,
    SEMIRINGS,
    Semiring,
)
from .core.graph import Axis, DependenceGraph, NodeKind, PortRef, port  # noqa: F401
from .core.ggraph import GGraph, group_by_columns, group_by_rows  # noqa: F401
from .core.verify import VerificationReport, verify_implementation  # noqa: F401

__version__ = "1.0.0"

__all__ = [
    "PartitionedImplementation",
    "partition",
    "partition_transitive_closure",
    "DependenceGraph",
    "NodeKind",
    "Axis",
    "PortRef",
    "port",
    "GGraph",
    "group_by_columns",
    "group_by_rows",
    "VerificationReport",
    "verify_implementation",
    "Semiring",
    "BOOLEAN",
    "MIN_PLUS",
    "MAX_MIN",
    "COUNTING",
    "REAL",
    "SEMIRINGS",
    "__version__",
]
