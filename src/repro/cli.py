"""Command-line interface: explore the reproduction from a terminal.

Examples::

    python -m repro stages --n 6
    python -m repro partition --n 12 --m 4 --geometry linear --simulate
    python -m repro ggraph --algorithm lu --n 8
    python -m repro schedule --n 12 --m 4 --policy vertical
    python -m repro level --n 6 --k 2
    python -m repro fixed --n 9
    python -m repro lint --n 12 --m 4
    python -m repro lint --experiments --format sarif --out lint.sarif
    python -m repro faults --seed 0 --experiments --jobs 2
    python -m repro trace --n 12 --m 4 --trace-out t.json
    python -m repro bench F18 F19 --backend vector --jobs 2
    python -m repro partition --n 12 --m 4 --simulate --backend vector
    python -m repro stats --n 12 --m 4
    python -m repro perfcheck --baseline benchmarks/perf_baseline.json \\
        --current benchmarks/out/history.jsonl
    python -m repro dashboard --out dash.html --n 9 --m 3
    python -m repro profile --experiment F18 --backend vector \\
        --flame-out flame.svg
    python -m repro profile --n 9 --m 3 --json --out profile.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro``."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="Graph-based partitioning of matrix algorithms for "
        "systolic arrays (Moreno & Lang, 1988) - reproduction toolkit",
    )
    sub = p.add_subparsers(dest="command", required=True)

    s = sub.add_parser("stages", help="property census of the Figs. 10-16 pipeline")
    s.add_argument("--n", type=int, default=6, help="problem size")

    s = sub.add_parser("partition", help="partition transitive closure onto an array")
    s.add_argument("--n", type=int, default=12)
    s.add_argument("--m", type=int, default=4, help="number of cells")
    s.add_argument("--geometry", choices=("linear", "mesh"), default="linear")
    s.add_argument("--policy", default="vertical")
    s.add_argument("--packed", action="store_true",
                   help="pack G-sets instead of the paper's skew alignment")
    s.add_argument("--simulate", action="store_true",
                   help="cycle-simulate on a random instance and verify")
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--backend", choices=("reference", "vector"), default=None,
                   help="simulator backend (default: REPRO_SIM_BACKEND or "
                        "reference; see docs/simulator.md)")
    s.add_argument("--trace-out", metavar="FILE", default=None,
                   help="with --simulate: write a Chrome trace JSON of the "
                        "pipeline stages and the simulated cycles")

    s = sub.add_parser("ggraph", help="render a G-graph's computation times")
    s.add_argument("--algorithm", choices=("tc", "lu", "faddeev", "givens"),
                   default="tc")
    s.add_argument("--n", type=int, default=8)

    s = sub.add_parser("schedule", help="show the G-set schedule order")
    s.add_argument("--n", type=int, default=12)
    s.add_argument("--m", type=int, default=4)
    s.add_argument("--geometry", choices=("linear", "mesh"), default="linear")
    s.add_argument("--policy", default="vertical")

    s = sub.add_parser("level", help="render one level of the Fig. 16 grid")
    s.add_argument("--n", type=int, default=6)
    s.add_argument("--k", type=int, default=0, help="level index")

    s = sub.add_parser("fixed", help="simulate the Fig. 17 fixed-size array")
    s.add_argument("--n", type=int, default=9)
    s.add_argument("--seed", type=int, default=0)

    s = sub.add_parser(
        "lint",
        help="statically check a design against the paper's invariants "
             "(RLxxx diagnostics; see docs/static-analysis.md)",
    )
    s.add_argument("--n", type=int, default=12)
    s.add_argument("--m", type=int, default=4)
    s.add_argument("--geometry", choices=("linear", "mesh"), default="linear")
    s.add_argument("--policy", default="vertical")
    s.add_argument("--packed", action="store_true",
                   help="pack G-sets instead of the paper's skew alignment")
    s.add_argument("--experiments", action="store_true",
                   help="lint every shipped configuration (the CI gate's "
                        "workload) instead of one design")
    s.add_argument("--config", default=None, metavar="NAME",
                   help="lint one shipped configuration by name")
    s.add_argument("--planner", action="store_true",
                   help="also compile the value program and run the "
                        "RL5xx plan-verification and RL6xx static-cost "
                        "tiers over it")
    s.add_argument("--from-run", metavar="RUN_ID", default=None,
                   help="rebuild the design a run ledger records and "
                        "lint the plan it fingerprinted (implies "
                        "--planner)")
    s.add_argument("--dir", metavar="DIR", default=None,
                   help="run-ledger directory for --from-run "
                        "(default: runs/ or REPRO_RUNLOG_DIR)")
    s.add_argument("--baseline", metavar="FILE", default=None,
                   help="suppress warn/info findings recorded in this "
                        "baseline file; errors always gate")
    s.add_argument("--update-baseline", action="store_true",
                   help="rewrite --baseline from the current findings "
                        "(accepts new warn-tier debt, drops stale "
                        "entries)")
    s.add_argument("--baseline-diff-out", metavar="FILE", default=None,
                   help="write the new/suppressed/stale split as a JSON "
                        "artefact (CI uploads this)")
    s.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text")
    s.add_argument("--out", metavar="FILE", default=None,
                   help="write the report to FILE instead of stdout")

    s = sub.add_parser(
        "faults",
        help="run a seeded fault-injection campaign through the resilience "
             "runtime (inject / detect / recover / verify; see "
             "docs/resilience.md)",
    )
    s.add_argument("--seed", type=int, default=0,
                   help="campaign seed (same seed => identical campaign)")
    s.add_argument("--experiments", action="store_true",
                   help="inject into every shipped campaign configuration "
                        "(the CI gate's workload)")
    s.add_argument("--config", default=None, metavar="NAME",
                   help="inject into one shipped campaign configuration")
    s.add_argument("--kinds", default=None, metavar="K1,K2",
                   help="comma-separated fault kinds to inject "
                        "(permanent, transient, dropped_word; default: all)")
    s.add_argument("--regime", default=None,
                   choices=("correlated", "bursty", "hammer", "all"),
                   help="arm a whole failure-regime fault plan per config "
                        "instead of single-fault cells, under the adaptive "
                        "policy (quarantine + graceful degradation); "
                        "'all' runs every regime")
    s.add_argument("--cluster-radius", type=int, default=None, metavar="R",
                   help="correlated regime: cells within R hops of the "
                        "epicenter die (default 1)")
    s.add_argument("--burst-enter", type=float, default=None, metavar="P",
                   help="bursty regime: per-cycle good->bad probability "
                        "of the Gilbert-Elliott chain (default 0.15)")
    s.add_argument("--burst-exit", type=float, default=None, metavar="P",
                   help="bursty regime: per-cycle bad->good probability "
                        "(default 0.5)")
    s.add_argument("--hammer-strikes", type=int, default=None, metavar="K",
                   help="hammer regime: transient strikes on the targeted "
                        "cell (default 4)")
    s.add_argument("--summary-out", metavar="FILE", default=None,
                   help="write the per-regime aggregate summary JSON "
                        "(the CI faults job's artifact)")
    s.add_argument("--format", choices=("text", "json"), default="text")
    s.add_argument("--out", metavar="FILE", default=None,
                   help="write the report to FILE instead of stdout")
    s.add_argument("--trace-out", metavar="FILE", default=None,
                   help="write a Chrome trace JSON of the recovery timelines "
                        "(one process lane per run; open in Perfetto)")
    s.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes, one campaign configuration each "
                        "(results and metrics identical to --jobs 1)")
    s.add_argument("--backend", choices=("reference", "vector"), default=None,
                   help="simulator backend for fault-free attempts "
                        "(faulty attempts always use the reference "
                        "interpreter's injection seam)")

    s = sub.add_parser(
        "reproduce",
        help="regenerate an experiment table (see DESIGN.md's index)",
    )
    s.add_argument("exp", nargs="*",
                   help="experiment ids (e.g. F18 T-EVAL); default: list them")

    s = sub.add_parser(
        "trace",
        help="run the full pipeline + simulation under the tracer and "
             "write a Chrome trace JSON (open in Perfetto)",
    )
    s.add_argument("--n", type=int, default=12)
    s.add_argument("--m", type=int, default=4)
    s.add_argument("--geometry", choices=("linear", "mesh"), default="linear")
    s.add_argument("--policy", default="vertical")
    s.add_argument("--packed", action="store_true")
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--backend", choices=("reference", "vector"), default=None,
                   help="simulator backend; tracing installs a probe, so "
                        "the vector backend falls back to the reference "
                        "interpreter for the traced run itself")
    s.add_argument("--trace-out", metavar="FILE", default="trace.json")

    s = sub.add_parser(
        "bench",
        help="build experiment tables through the parallel runner "
             "(optionally on the vector simulator backend)",
    )
    s.add_argument("exp", nargs="*",
                   help="experiment ids (e.g. F18 F19); default: all")
    s.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes, one experiment each; results "
                        "come back in id order regardless of completion")
    s.add_argument("--backend", choices=("reference", "vector"), default=None,
                   help="simulator backend for the runs (rows are "
                        "bit-identical across backends)")
    s.add_argument("--dataset", metavar="SPEC", default=None,
                   help="benchmark the closure engines (and, on small "
                        "graphs, the partitioned-array simulator) on a "
                        "loaded dataset instead of experiment tables; "
                        "SPEC is an edge-list path or "
                        "kron:scale=S[,edges=E][,seed=K]")
    s.add_argument("--remap", action="store_true",
                   help="with --dataset FILE: compact arbitrary external "
                        "vertex ids to 0..n-1")
    s.add_argument("--sources", type=int, default=64, metavar="K",
                   help="with --dataset: sampled source count for the "
                        "per-source engines on graphs above the dense "
                        "cutoff (default: 64, deterministic)")
    s.add_argument("--record", nargs="?", metavar="FILE", default=None,
                   const="benchmarks/out/history.jsonl",
                   help="with --dataset: append a DS-<name> perf record "
                        "to the history (default FILE: benchmarks/out/"
                        "history.jsonl) and refresh BENCH_PERF.json")

    s = sub.add_parser(
        "closure",
        help="transitive closure of a loaded sparse dataset via the "
             "host-level engines (bit-packed / reference / SSC "
             "baselines; see docs/datasets.md)",
    )
    s.add_argument("--dataset", required=True, metavar="SPEC",
                   help="edge-list path (optionally .gz) or "
                        "kron:scale=S[,edges=E][,seed=K]")
    s.add_argument("--engine", default="bitpack",
                   choices=("bitpack", "reference", "ssc1", "ssc2", "ssc12"),
                   help="closure engine (default: bitpack)")
    s.add_argument("--check", metavar="ENGINE", default=None,
                   choices=("bitpack", "reference", "ssc1", "ssc2", "ssc12"),
                   help="also run ENGINE and assert bit-identical "
                        "agreement (sampled sources above the dense "
                        "cutoff; exit 1 on disagreement)")
    s.add_argument("--check-sources", type=int, default=64, metavar="K",
                   help="sources sampled for --check on graphs above the "
                        "dense cutoff (default: 64, deterministic)")
    s.add_argument("--n", type=int, default=None,
                   help="vertex count override for edge-list files")
    s.add_argument("--remap", action="store_true",
                   help="compact arbitrary external vertex ids to 0..n-1")
    s.add_argument("--format", choices=("text", "json"), default="text")
    s.add_argument("--out", metavar="FILE", default=None,
                   help="write the summary to FILE instead of stdout")
    s.add_argument("--record", nargs="?", metavar="FILE", default=None,
                   const="benchmarks/out/history.jsonl",
                   help="append a DS-<name> perf record to the history "
                        "(default FILE: benchmarks/out/history.jsonl) "
                        "and refresh BENCH_PERF.json")

    s = sub.add_parser(
        "stats",
        help="run the pipeline + simulation under the metrics registry and "
             "print measured vs. closed-form (Sec. 4.2) metrics",
    )
    s.add_argument("--n", type=int, default=12)
    s.add_argument("--m", type=int, default=4)
    s.add_argument("--geometry", choices=("linear", "mesh"), default="linear")
    s.add_argument("--policy", default="vertical")
    s.add_argument("--packed", action="store_true")
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--format", choices=("prom", "json"), default="prom",
                   help="registry export format (default: Prometheus text)")

    s = sub.add_parser(
        "perfcheck",
        help="compare two perf artefacts (history/baseline/trajectory) and "
             "exit non-zero on regression",
    )
    s.add_argument("--baseline", required=True, metavar="FILE",
                   help="baseline artefact: baseline/trajectory JSON or "
                        "history JSONL")
    s.add_argument("--current", required=True, metavar="FILE",
                   help="current artefact (same accepted formats)")
    s.add_argument("--threshold", action="append", default=[],
                   metavar="CLASS=REL",
                   help="override a class threshold, e.g. wall_time=0.5 "
                        "(classes: wall_time, sim_cycles, memory_traffic, "
                        "host_bandwidth, other)")
    s.add_argument("--classes", default=None,
                   help="comma-separated metric classes to compare "
                        "(default: all; CI uses the deterministic ones)")
    s.add_argument("--update-baseline", action="store_true",
                   help="instead of comparing, rewrite --baseline from the "
                        "latest records of --current")

    s = sub.add_parser(
        "profile",
        help="profile a run: nested phase self/cumulative times, "
             "per-kernel timings, critical-path hotspots, and an SVG "
             "flamegraph (see docs/observability.md)",
    )
    s.add_argument("--experiment", metavar="EXP", default=None,
                   help="profile one shipped experiment (e.g. F18); "
                        "includes per-config critical paths for the "
                        "F18/F19 sweeps")
    s.add_argument("--n", type=int, default=None,
                   help="profile one ad-hoc partitioned design instead "
                        "of an experiment")
    s.add_argument("--m", type=int, default=4)
    s.add_argument("--geometry", choices=("linear", "mesh"), default="linear")
    s.add_argument("--policy", default="vertical")
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--backend", choices=("reference", "vector"), default=None,
                   help="simulator backend to profile (default: "
                        "REPRO_SIM_BACKEND or reference)")
    s.add_argument("--top", type=int, default=10, metavar="K",
                   help="rows per table: phases, kernels, hotspots "
                        "(default: 10)")
    s.add_argument("--json", action="store_true",
                   help="emit the versioned profile JSON document "
                        "instead of text")
    s.add_argument("--out", metavar="FILE", default=None,
                   help="write the report to FILE instead of stdout")
    s.add_argument("--flame-out", metavar="FILE", default=None,
                   help="write a self-contained SVG flamegraph of the "
                        "phase tree")
    s.add_argument("--folded-out", metavar="FILE", default=None,
                   help="write the phase tree in folded-stack format "
                        "(flamegraph.pl / speedscope / inferno input)")
    s.add_argument("--record", nargs="?", metavar="FILE", default=None,
                   const="benchmarks/out/history.jsonl",
                   help="append a '<exp>:profile' record of per-phase "
                        "self-times to the perf history (default FILE: "
                        "benchmarks/out/history.jsonl); perfcheck uses "
                        "it to blame wall-time regressions")
    s.add_argument("--from-run", metavar="RUN_ID", default=None,
                   help="rebuild the phase profile from a past run's "
                        "ledger instead of running anything")
    s.add_argument("--dir", default=None, metavar="DIR",
                   help="with --from-run: ledger directory (default: "
                        "REPRO_RUNLOG_DIR or ./runs)")

    s = sub.add_parser(
        "obs",
        help="query run ledgers: list/show/diff/verify the JSONL event "
             "logs every entry point records (see docs/observability.md)",
    )
    obs_sub = s.add_subparsers(dest="obs_command", required=True)

    o = obs_sub.add_parser("list", help="summarize recent runs, newest first")
    o.add_argument("--dir", default=None, metavar="DIR",
                   help="ledger directory (default: REPRO_RUNLOG_DIR or "
                        "./runs)")
    o.add_argument("--limit", type=int, default=20, metavar="N",
                   help="show at most N runs (default: 20)")

    o = obs_sub.add_parser(
        "show",
        help="one run's stage timeline with durations and cache/"
             "fallback/recovery annotations",
    )
    o.add_argument("run_id", nargs="?", default=None,
                   help="run ID (default: the most recent run)")
    o.add_argument("--dir", default=None, metavar="DIR")

    o = obs_sub.add_parser(
        "diff",
        help="compare two runs: event counts, stage durations, and "
             "content (modulo timestamps); exits 1 when content differs",
    )
    o.add_argument("run_a")
    o.add_argument("run_b")
    o.add_argument("--dir", default=None, metavar="DIR")

    o = obs_sub.add_parser(
        "verify",
        help="check ledger integrity: schema, contiguous seq, per-task "
             "monotonic timestamps, balanced stages, no orphan events",
    )
    o.add_argument("run_ids", nargs="*",
                   help="run IDs to verify (default: every ledger)")
    o.add_argument("--dir", default=None, metavar="DIR")

    s = sub.add_parser(
        "dashboard",
        help="render the self-contained HTML performance dashboard "
             "(per-cell heatmaps, occupancy lanes, measured-vs-closed-form "
             "curves, perf trajectory)",
    )
    s.add_argument("--out", metavar="FILE", default="dashboard.html")
    s.add_argument("--n", type=int, default=9)
    s.add_argument("--m", type=int, default=3)
    s.add_argument("--geometry", choices=("linear", "mesh"), default="linear")
    s.add_argument("--policy", default="vertical")
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--sizes", default=None,
                   help="comma-separated n values for the closed-form sweep "
                        "(default: around --n)")
    s.add_argument("--history", metavar="FILE",
                   default="benchmarks/out/history.jsonl",
                   help="benchmark history JSONL for the trajectory section "
                        "(skipped when missing)")
    s.add_argument("--runs", metavar="DIR", default=None,
                   help="run-ledger directory for the run-history panel "
                        "(default: REPRO_RUNLOG_DIR or ./runs; skipped "
                        "when missing)")
    s.add_argument("--regimes", action="store_true",
                   help="run the compact failure-regime campaign and "
                        "render the Failure regimes panel (correlated / "
                        "bursty / hammer under the adaptive policy)")
    return p


def _write_text(path, text: str) -> None:
    """Write a CLI artefact, creating parent directories as needed.

    Every ``--out``/``--trace-out``-style writer goes through here so
    ``repro lint --out reports/lint.sarif`` works without a prior
    ``mkdir``.
    """
    from pathlib import Path

    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(text)


def _cmd_stages(args) -> int:
    from .algorithms.transitive_closure import TC_STAGES
    from .viz import render_stage_table

    print(render_stage_table({k: f(args.n) for k, f in TC_STAGES.items()}))
    return 0


def _run_traced_pipeline(args, trace_path=None):
    """Build + simulate one partitioned closure under tracer and probe.

    Returns ``(impl, result, ok, tracer, probe)`` — the shared machinery
    of ``trace``, ``stats`` and ``partition --trace-out``.  When
    ``trace_path`` is given and the run raises, the valid partial Chrome
    trace (with a terminal ``trace.error`` event) is still flushed there
    before the exception propagates — see
    :func:`repro.obs.tracing.traced_run`.
    """
    from .algorithms.transitive_closure import make_inputs
    from .algorithms.warshall import random_adjacency, warshall
    from .arrays.vector_sim import dispatch_simulate
    from .core.partitioner import partition_transitive_closure
    from .obs import RecordingProbe, probe_chrome_events
    from .obs.tracing import traced_run

    with traced_run(trace_path) as tracer:
        impl = partition_transitive_closure(
            n=args.n, m=args.m, geometry=args.geometry,
            policy=args.policy, aligned=not getattr(args, "packed", False),
        )
        probe = RecordingProbe()
        a = random_adjacency(args.n, seed=args.seed)
        # A probe forces the reference interpreter (dispatch falls back
        # even under --backend vector), so the sim.simulate span and the
        # cycle-level events are always present in the trace.
        res = dispatch_simulate(
            impl.exec_plan, impl.dg, make_inputs(a), probe=probe,
            backend=getattr(args, "backend", None),
        )
        ok = bool(np.array_equal(res.output_matrix(args.n), warshall(a)))
    tracer.add_chrome_events(probe_chrome_events(probe))
    return impl, res, ok, tracer, probe


def _cmd_partition(args) -> int:
    from .algorithms.warshall import random_adjacency, warshall
    from .core.partitioner import partition_transitive_closure

    if args.trace_out and not args.simulate:
        print("--trace-out requires --simulate", file=sys.stderr)
        return 2
    if args.simulate and args.trace_out:
        impl, res, ok, tracer, _probe = _run_traced_pipeline(args)
        print(f"G-graph: {impl.gg}")
        for key, value in impl.report.row().items():
            print(f"  {key:>12}: {value}")
        n_events = tracer.write_chrome(args.trace_out)
        print(f"simulation: makespan={res.makespan} violations="
              f"{len(res.violations)} correct={ok}")
        print(f"trace: {args.trace_out} ({n_events} events, "
              f"{len(tracer.spans)} spans)")
        return 0 if (ok and res.ok) else 1

    impl = partition_transitive_closure(
        n=args.n, m=args.m, geometry=args.geometry,
        policy=args.policy, aligned=not args.packed,
    )
    print(f"G-graph: {impl.gg}")
    for key, value in impl.report.row().items():
        print(f"  {key:>12}: {value}")
    if args.simulate:
        a = random_adjacency(args.n, seed=args.seed)
        res = impl.simulate(a, backend=args.backend)
        ok = bool(np.array_equal(res.output_matrix(args.n), warshall(a)))
        print(f"simulation: makespan={res.makespan} violations="
              f"{len(res.violations)} correct={ok}")
        if not (ok and res.ok):
            return 1
    return 0


def _cmd_ggraph(args) -> int:
    from .viz import render_ggraph_times

    if args.algorithm == "tc":
        from .algorithms.transitive_closure import tc_regular
        from .core.ggraph import GGraph, group_by_columns

        gg = GGraph(tc_regular(args.n), group_by_columns)
    elif args.algorithm == "lu":
        from .algorithms.lu import lu_ggraph

        gg = lu_ggraph(args.n)
    elif args.algorithm == "faddeev":
        from .algorithms.faddeev import faddeev_ggraph

        gg = faddeev_ggraph(args.n)
    else:
        from .algorithms.givens import givens_ggraph

        gg = givens_ggraph(args.n)
    print(gg)
    print(render_ggraph_times(gg))
    return 0


def _cmd_schedule(args) -> int:
    from .core.partitioner import partition_transitive_closure
    from .viz import render_schedule

    impl = partition_transitive_closure(
        n=args.n, m=args.m, geometry=args.geometry, policy=args.policy
    )
    print(render_schedule(impl.order))
    return 0


def _cmd_level(args) -> int:
    from .algorithms.transitive_closure import tc_regular
    from .viz import render_level_grid

    if not (0 <= args.k < args.n):
        print(f"level k must be in [0, {args.n})", file=sys.stderr)
        return 2
    print(render_level_grid(tc_regular(args.n), args.k, args.n))
    return 0


def _cmd_fixed(args) -> int:
    from .algorithms.transitive_closure import make_inputs, tc_regular
    from .algorithms.warshall import random_adjacency, warshall
    from .core.ggraph import GGraph, group_by_columns
    from .arrays.cycle_sim import simulate
    from .arrays.plan import fixed_array_plan, min_initiation_interval

    dg = tc_regular(args.n)
    gg = GGraph(dg, group_by_columns)
    ep = fixed_array_plan(gg)
    a = random_adjacency(args.n, seed=args.seed)
    res = simulate(ep, dg, make_inputs(a))
    ok = bool(np.array_equal(res.output_matrix(args.n), warshall(a)))
    print(f"cells={len(gg)} II={min_initiation_interval(ep)} "
          f"makespan={res.makespan} correct={ok}")
    return 0 if ok else 1


def _cmd_lint(args) -> int:
    import json

    from .lint import (
        SCHEMA_VERSION,
        lint_config,
        lint_implementation,
        lint_shipped_configs,
    )

    modes = sum(
        1 for on in (args.experiments, bool(args.config),
                     args.from_run is not None) if on
    )
    if modes > 1:
        print("lint: --experiments, --config and --from-run are mutually "
              "exclusive", file=sys.stderr)
        return 2
    if args.update_baseline and not args.baseline:
        print("lint: --update-baseline needs --baseline FILE",
              file=sys.stderr)
        return 2

    notes: list[str] = []
    if args.from_run is not None:
        from .lint.planner import lint_from_run

        try:
            res = lint_from_run(args.from_run, args.dir)
        except FileNotFoundError as exc:
            print(f"lint: {exc}", file=sys.stderr)
            return 1
        except ValueError as exc:
            print(f"lint: {exc}", file=sys.stderr)
            return 2
        reports = {args.from_run: res["report"]}
        if res["matches"] is None:
            notes.append(
                f"run {args.from_run} recorded no plan fingerprint; "
                "linted today's rebuild"
            )
        elif res["matches"]:
            notes.append(
                f"plan fingerprint matches the run ledger "
                f"({res['fingerprint'][:12]})"
            )
        else:
            notes.append(
                "WARNING: today's plan fingerprint "
                f"{res['fingerprint'][:12]} is not among the "
                f"{len(res['recorded'])} the ledger recorded - the "
                "design has drifted since that run"
            )
    elif args.experiments:
        reports = lint_shipped_configs(planner=args.planner)
    elif args.config:
        try:
            reports = {
                args.config: lint_config(args.config, planner=args.planner)
            }
        except KeyError as exc:
            print(f"lint: {exc.args[0]}", file=sys.stderr)
            return 2
    else:
        from .core.metrics import tc_io_bandwidth
        from .core.partitioner import partition_transitive_closure

        impl = partition_transitive_closure(
            n=args.n, m=args.m, geometry=args.geometry,
            policy=args.policy, aligned=not args.packed,
        )
        name = (f"tc-n{args.n}-m{args.m}-{args.geometry}-{args.policy}"
                + ("-packed" if args.packed else ""))
        reports = {
            name: lint_implementation(
                impl, description=name,
                io_bound=tc_io_bandwidth(args.n, args.m),
                planner=args.planner,
            )
        }

    diff = None
    if args.baseline:
        from .lint.baseline import (
            apply_baseline,
            build_baseline,
            load_baseline,
            save_baseline,
        )

        if args.update_baseline:
            doc = build_baseline(reports)
            save_baseline(args.baseline, doc)
            notes.append(
                f"baseline: wrote {len(doc['findings'])} accepted "
                f"finding(s) to {args.baseline}"
            )
        else:
            try:
                baseline = load_baseline(args.baseline)
            except (OSError, ValueError, json.JSONDecodeError) as exc:
                print(f"lint: cannot load baseline: {exc}", file=sys.stderr)
                return 2
            diff = apply_baseline(reports, baseline)
            notes.append(diff.summary())
    if args.baseline_diff_out:
        if diff is None:
            print("lint: --baseline-diff-out needs --baseline (without "
                  "--update-baseline)", file=sys.stderr)
            return 2
        _write_text(
            args.baseline_diff_out,
            json.dumps(diff.to_dict(), indent=2, sort_keys=True) + "\n",
        )
        notes.append(f"baseline diff written to {args.baseline_diff_out}")

    errors = sum(len(rep.errors) for rep in reports.values())
    warnings = sum(len(rep.warnings) for rep in reports.values())
    summary = (f"{len(reports)} design(s), {errors} error(s), "
               f"{warnings} warning(s)")
    if args.format == "text":
        body = "\n\n".join(rep.to_text() for rep in reports.values())
        if len(reports) > 1:
            body += f"\n\nlint total: {summary}"
    elif args.format == "json":
        doc = {
            "version": SCHEMA_VERSION,
            "ok": all(rep.ok for rep in reports.values()),
            "reports": {n: rep.to_dict() for n, rep in reports.items()},
        }
        body = json.dumps(doc, indent=2, sort_keys=True)
    else:  # sarif: one SARIF run per linted design
        doc = None
        for rep in reports.values():
            one = rep.to_sarif()
            if doc is None:
                doc = one
            else:
                doc["runs"].extend(one["runs"])
        body = json.dumps(doc, indent=2, sort_keys=True)

    if args.out:
        _write_text(args.out, body + "\n")
        print(f"lint: wrote {args.format} report to {args.out} ({summary})")
    else:
        print(body)
    for note in notes:
        print(f"lint: {note}")
    return 1 if errors else 0


def _cmd_faults(args) -> int:
    import json

    from .resilience import (
        FaultKind,
        campaign_config,
        run_campaign,
        timeline_chrome_events,
    )
    from .resilience.report import RESILIENCE_PID

    if args.experiments and args.config:
        print("faults: --experiments and --config are mutually exclusive",
              file=sys.stderr)
        return 2
    configs = None
    if args.config:
        try:
            configs = [campaign_config(args.config)]
        except KeyError as exc:
            print(f"faults: {exc.args[0]}", file=sys.stderr)
            return 2
    kinds = None
    if args.kinds:
        if args.regime:
            print("faults: --kinds has no effect with --regime "
                  "(regimes plan their own fault mixes)", file=sys.stderr)
            return 2
        try:
            kinds = [FaultKind(k.strip()) for k in args.kinds.split(",")]
        except ValueError:
            print("faults: unknown fault kind; choose from "
                  + ", ".join(k.value for k in FaultKind), file=sys.stderr)
            return 2
    regime = None
    if args.regime:
        from .resilience import REGIME_NAMES

        regime = list(REGIME_NAMES) if args.regime == "all" else args.regime
    regime_knobs = {
        k: v
        for k, v in {
            "radius": args.cluster_radius,
            "p_enter": args.burst_enter,
            "p_exit": args.burst_exit,
            "strikes": args.hammer_strikes,
        }.items()
        if v is not None
    }

    result = run_campaign(
        seed=args.seed, configs=configs, kinds=kinds,
        jobs=args.jobs, backend=args.backend,
        regime=regime, regime_knobs=regime_knobs,
    )

    if args.trace_out:
        events = []
        for i, run in enumerate(r for r in result.runs if r.result is not None):
            for ev in timeline_chrome_events(run.result):
                ev["pid"] = RESILIENCE_PID + i  # one process lane per run
                events.append(ev)
        _write_text(
            args.trace_out, json.dumps({"traceEvents": events}, indent=2) + "\n"
        )
        print(f"faults: wrote {len(events)} trace events to {args.trace_out} "
              "-- open in https://ui.perfetto.dev")

    if args.summary_out:
        summary = result.regime_summary()
        _write_text(
            args.summary_out,
            json.dumps(summary, indent=2, sort_keys=True) + "\n",
        )
        print(f"faults: wrote regime summary to {args.summary_out} "
              f"({len(summary['regimes'])} regime(s))")

    if args.format == "json":
        body = json.dumps(result.to_dict(), indent=2, sort_keys=True)
    else:
        body = result.to_text()
    if args.out:
        good = sum(1 for r in result.runs if r.ok)
        _write_text(args.out, body + "\n")
        print(f"faults: wrote {args.format} report to {args.out} "
              f"({good}/{len(result.runs)} runs ok)")
    else:
        print(body)
    return 0 if result.ok else 1


def _cmd_reproduce(args) -> int:
    from .experiments import EXPERIMENTS
    from .viz import format_table

    if not args.exp:
        print("available experiments:")
        for exp in EXPERIMENTS.values():
            print(f"  {exp.exp_id:>8}  {exp.title}")
        return 0
    unknown = [e for e in args.exp if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    for eid in args.exp:
        exp = EXPERIMENTS[eid]
        print(f"== {exp.exp_id}: {exp.title} ==")
        print(format_table(exp.run()))
        print()
    return 0


def _sample_sources(n: int, k: int) -> "np.ndarray":
    """Deterministic sorted sample of ``k`` distinct sources in ``[0, n)``."""
    if k >= n:
        return np.arange(n, dtype=np.int64)
    rng = np.random.default_rng(0)
    return np.sort(rng.choice(n, size=k, replace=False)).astype(np.int64)


def _record_dataset_run(path, exp_id: str, metrics, n: int, m: int) -> dict:
    """Append a dataset perf record and refresh the trajectory roll-up.

    Mirrors the benchmark harness (``benchmarks/_common.py``): the
    record lands in the JSONL history at ``path`` and the repo-root
    ``BENCH_PERF.json`` is rebuilt from the full history, so dataset
    runs show up in ``perfcheck`` and the dashboard trajectory panel
    alongside the experiment tables.
    """
    from pathlib import Path

    from .obs import perf, runlog

    p = Path(path)
    rec = perf.make_record(
        exp_id, metrics, n=n, m=m,
        commit=perf.current_commit(p.parent),
        run_id=runlog.current_run_id(),
    )
    perf.append_history(p, rec)
    # The canonical benchmarks/out/history.jsonl rolls up to the
    # repo-root BENCH_PERF.json (same layout as benchmarks/_common.py);
    # a custom history path keeps its roll-up alongside itself.
    if p.as_posix().endswith("benchmarks/out/history.jsonl"):
        trajectory = p.parent.parent.parent / "BENCH_PERF.json"
    else:
        trajectory = p.parent / "BENCH_PERF.json"
    perf.write_trajectory(trajectory, perf.load_history(p))
    return rec


def _cmd_closure(args) -> int:
    import json
    from time import perf_counter

    from .datasets import DatasetError, compute_closure, resolve_dataset
    from .datasets.closure import DENSE_CUTOFF
    from .obs import runlog

    try:
        ds = resolve_dataset(args.dataset, n=args.n, remap=args.remap)
    except DatasetError as exc:
        print(f"closure: {exc}", file=sys.stderr)
        return 2
    runlog.emit("dataset", **ds.describe())

    t0 = perf_counter()
    res = compute_closure(ds, args.engine)
    wall = perf_counter() - t0
    summary = {
        "dataset": ds.describe(),
        "engine": res.engine,
        "kernel": res.kernel,
        "wall_s": round(wall, 6),
        "closure_edges": res.closure_edges,
        "mean_reach": round(res.closure_edges / ds.n, 3) if ds.n else 0.0,
    }
    runlog.emit(
        "closure", engine=res.engine, kernel=res.kernel,
        wall_s=summary["wall_s"], closure_edges=res.closure_edges,
    )

    agree = None
    if args.check:
        # Above the dense cutoff a full second closure can dwarf the
        # run itself, so the check compares a deterministic sample of
        # source rows instead of all n.
        srcs = (
            None if ds.n <= DENSE_CUTOFF
            else _sample_sources(ds.n, args.check_sources)
        )
        t0 = perf_counter()
        other = compute_closure(ds, args.check, sources=srcs)
        check_wall = perf_counter() - t0
        mine = res.words if srcs is None else res.words[srcs]
        agree = bool(np.array_equal(mine, other.words))
        summary["check"] = {
            "engine": other.engine,
            "kernel": other.kernel,
            "sources": int(len(other.sources)),
            "wall_s": round(check_wall, 6),
            "agree": agree,
        }
        runlog.emit(
            "closure_check", engine=other.engine, agree=agree,
            sources=int(len(other.sources)),
        )

    if args.record:
        metrics = {
            "wall_time_s": summary["wall_s"],
            "closure_edges": float(res.closure_edges),
        }
        rec = _record_dataset_run(
            args.record, f"DS-{ds.name}", metrics, ds.n, ds.m
        )
        print(f"closure: appended {rec['exp_id']} record to {args.record}")

    if args.format == "json":
        body = json.dumps(summary, indent=2, sort_keys=True)
    else:
        d = summary["dataset"]
        lines = [
            f"dataset: {d['name']} (n={d['n']}, m={d['m']}, "
            f"self_loops={d['self_loops']})",
            f"engine: {res.engine} (kernel {res.kernel}) "
            f"wall={summary['wall_s']}s",
            f"closure: {res.closure_edges} reachable pairs "
            f"(mean reach {summary['mean_reach']})",
        ]
        if agree is not None:
            c = summary["check"]
            lines.append(
                f"check: {c['engine']} on {c['sources']} source(s) "
                f"wall={c['wall_s']}s agree={c['agree']}"
            )
        body = "\n".join(lines)
    if args.out:
        _write_text(args.out, body + "\n")
        print(f"closure: wrote summary to {args.out}")
    else:
        print(body)
    return 0 if agree in (None, True) else 1


def _bench_dataset(args) -> int:
    """``repro bench --dataset``: closure engines head-to-head.

    Every engine runs on the same loaded graph; the bit-packed engine
    is the reference each other engine's rows are compared against
    (bit-for-bit).  Small graphs additionally run the partitioned-array
    simulator on both backends, closing the loop between the paper's
    systolic schedules and the host-level engines.
    """
    from time import perf_counter

    from .datasets import DatasetError, compute_closure, resolve_dataset
    from .datasets.closure import DENSE_CUTOFF
    from .obs import runlog
    from .viz import format_table

    try:
        ds = resolve_dataset(args.dataset, remap=args.remap)
    except DatasetError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 2
    runlog.emit("dataset", **ds.describe())

    t0 = perf_counter()
    oracle = compute_closure(ds, "bitpack")
    oracle_wall = perf_counter() - t0
    rows = [{
        "engine": "bitpack", "kernel": oracle.kernel,
        "sources": ds.n, "wall_s": round(oracle_wall, 6),
        "closure_edges": oracle.closure_edges, "agree": True,
    }]

    big = ds.n > DENSE_CUTOFF
    srcs = _sample_sources(ds.n, args.sources) if big else None
    engines = (["ssc1", "ssc2", "ssc12"] if big
               else ["reference", "ssc1", "ssc2", "ssc12"])
    for engine in engines:
        t0 = perf_counter()
        res = compute_closure(ds, engine, sources=srcs)
        wall = perf_counter() - t0
        mine = oracle.words if srcs is None else oracle.words[srcs]
        rows.append({
            "engine": engine, "kernel": res.kernel,
            "sources": int(len(res.sources)), "wall_s": round(wall, 6),
            "closure_edges": res.closure_edges,
            "agree": bool(np.array_equal(mine, res.words)),
        })

    if 3 <= ds.n <= 32:
        # Small enough for an FPDG: run the partitioned-array simulator
        # on the same adjacency via both backends.
        from .algorithms.transitive_closure import make_inputs
        from .arrays.vector_sim import dispatch_simulate
        from .core.bitmatrix import unpack_rows
        from .core.partitioner import partition_transitive_closure

        closed = unpack_rows(oracle.words, ds.n)
        impl = partition_transitive_closure(n=ds.n, m=args.m
                                            if hasattr(args, "m") else 4)
        inputs = make_inputs(ds.adjacency())
        for backend in ("reference", "vector"):
            t0 = perf_counter()
            res = dispatch_simulate(
                impl.exec_plan, impl.dg, inputs, backend=backend
            )
            wall = perf_counter() - t0
            rows.append({
                "engine": f"array-{backend}", "kernel": "systolic",
                "sources": ds.n, "wall_s": round(wall, 6),
                "closure_edges": int(res.output_matrix(ds.n).sum()),
                "agree": bool(
                    np.array_equal(res.output_matrix(ds.n), closed)
                ),
            })

    for row in rows:
        runlog.emit("closure", dataset=ds.name, **row)
    print(f"== DS-{ds.name}: closure engines on n={ds.n}, m={ds.m} ==")
    print(format_table(rows))
    if args.record:
        metrics = {"wall_time_s": rows[0]["wall_s"],
                   "closure_edges": float(oracle.closure_edges)}
        for row in rows[1:]:
            metrics[f"{row['engine']}_wall_s"] = row["wall_s"]
        rec = _record_dataset_run(
            args.record, f"DS-{ds.name}", metrics, ds.n, ds.m
        )
        print(f"bench: appended {rec['exp_id']} record to {args.record}")
    return 0 if all(r["agree"] for r in rows) else 1


def _cmd_bench(args) -> int:
    from .experiments import EXPERIMENTS
    from .experiments.runner import run_experiments
    from .viz import format_table

    if args.dataset:
        return _bench_dataset(args)
    exp_ids = list(args.exp) if args.exp else list(EXPERIMENTS)
    try:
        results = run_experiments(
            exp_ids, jobs=args.jobs, backend=args.backend
        )
    except KeyError as exc:
        print(f"bench: {exc.args[0]}", file=sys.stderr)
        return 2
    for eid, rows in results:
        exp = EXPERIMENTS[eid]
        print(f"== {exp.exp_id}: {exp.title} ==")
        print(format_table(rows))
        print()
    return 0


def _cmd_trace(args) -> int:
    impl, res, ok, tracer, probe = _run_traced_pipeline(args)
    n_events = tracer.write_chrome(args.trace_out)
    stages = sorted({s.name for s in tracer.spans})
    print(f"pipeline stages traced: {', '.join(stages)}")
    census = probe.operand_source_census()
    print(f"simulated {len(probe.fires)} fires over {res.makespan} cycles; "
          f"operand sources: " +
          ", ".join(f"{k}={v}" for k, v in census.items() if v))
    print(f"simulation: makespan={res.makespan} violations="
          f"{len(res.violations)} correct={ok}")
    print(f"trace: {args.trace_out} ({n_events} events, "
          f"{len(tracer.spans)} spans) -- open in https://ui.perfetto.dev")
    return 0 if (ok and res.ok) else 1


def _cmd_stats(args) -> int:
    from .obs import (
        MetricsRegistry,
        register_expected_metrics,
        register_sim_metrics,
    )

    impl, res, ok, _tracer, _probe = _run_traced_pipeline(args)
    reg = MetricsRegistry()
    labels = {"n": args.n, "m": args.m, "geometry": args.geometry}
    register_sim_metrics(reg, res, impl.report, labels=labels)
    register_expected_metrics(reg, args.n, args.m, args.geometry, labels=labels)
    reg.gauge("repro_sim_correct", "closure matched the software oracle").set(
        int(ok), **labels
    )
    if args.format == "json":
        print(reg.dump_json())
    else:
        print(reg.to_prometheus(), end="")
    # Measured vs. Sec. 4.2 closed forms.  Throughput/utilization are
    # exact iff m | n+1 with packed G-sets (the paper's divisibility
    # assumption); boundary G-sets account for any gap.  D_IO = m/n is a
    # *sufficient bound*: a host at that constant rate must meet every
    # word deadline (checked through the Fig. 21 R-block chain).
    from fractions import Fraction

    from .arrays.host import simulate_rblock_chain
    from .core.metrics import (
        memory_connections,
        tc_io_bandwidth,
        tc_linear_throughput,
        tc_mesh_throughput,
        tc_utilization,
    )

    rep = impl.report
    thr_form = tc_linear_throughput if args.geometry == "linear" else tc_mesh_throughput
    pairs = [
        ("throughput", rep.throughput, thr_form(args.n, args.m)),
        ("utilization", rep.utilization, tc_utilization(args.n)),
        ("memory_ports", rep.memory_connections,
         memory_connections(args.geometry, args.m)),
    ]
    exact = (args.n + 1) % args.m == 0 and args.packed
    print(f"\n# measured vs closed form (exact regime -- packed and m | n+1: "
          f"{exact})")
    for name, measured, expected in pairs:
        dev = (
            abs(float(measured) - float(expected)) / float(expected)
            if float(expected) else 0.0
        )
        print(f"#   {name:>12}: measured={float(measured):.6g} "
              f"expected={float(expected):.6g} deviation={dev:.2%}")
    d_io = tc_io_bandwidth(args.n, args.m)
    chain = simulate_rblock_chain(res, Fraction(d_io))
    print(f"#   {'io_bandwidth':>12}: measured_avg="
          f"{float(res.average_host_bandwidth()):.6g} "
          f"bound=m/n={float(d_io):.6g} "
          f"host@bound_meets_deadlines={chain.feasible}")
    return 0 if (ok and res.ok) else 1


def _cmd_perfcheck(args) -> int:
    import json

    from .obs import perf

    skipped: list[tuple[int, str]] = []
    try:
        current = perf.load_records(args.current, skipped=skipped)
    except (OSError, ValueError, KeyError) as exc:
        print(f"perfcheck: cannot read --current: {exc}", file=sys.stderr)
        return 2
    if args.update_baseline:
        doc = {"version": perf.SCHEMA_VERSION, "experiments": current}
        _write_text(
            args.baseline,
            json.dumps(doc, indent=2, sort_keys=True, default=repr) + "\n",
        )
        print(f"perfcheck: baseline {args.baseline} updated "
              f"({len(current)} experiment(s))")
        return 0
    try:
        baseline = perf.load_records(args.baseline, skipped=skipped)
    except (OSError, ValueError, KeyError) as exc:
        print(f"perfcheck: cannot read --baseline: {exc}", file=sys.stderr)
        return 2
    thresholds = {}
    for spec in args.threshold:
        cls, _, value = spec.partition("=")
        try:
            thresholds[cls.strip()] = float(value)
        except ValueError:
            print(f"perfcheck: bad --threshold {spec!r} (want CLASS=REL)",
                  file=sys.stderr)
            return 2
    classes = (
        [c.strip() for c in args.classes.split(",") if c.strip()]
        if args.classes else None
    )
    try:
        regressions = perf.compare(
            baseline, current, thresholds=thresholds, classes=classes
        )
    except ValueError as exc:
        print(f"perfcheck: {exc}", file=sys.stderr)
        return 2
    print(perf.format_report(
        baseline, current, regressions, classes,
        skipped_lines=len(skipped),
    ))
    return 1 if regressions else 0


def _profile_record_metrics(doc, phases) -> dict:
    """Flat ``profile_*`` metrics for a ``<exp>:profile`` history record.

    One ``profile_<path>_self_s`` metric per phase (path sanitized to a
    metric-name-safe token) plus ``profile_wall_s`` — the shape
    :func:`repro.obs.perf.blame_lines` reads back to name the phase
    that moved most under a wall-time regression.
    """
    import re

    metrics = {"profile_wall_s": float(doc["wall_s"])}
    for path, node in phases.walk():
        if len(path) == 1:  # the root is profile_wall_s already
            continue
        key = "_".join(
            re.sub(r"[^0-9A-Za-z]+", "_", p).strip("_") for p in path[1:]
        )
        metrics[f"profile_{key}_self_s"] = round(node.self_s, 9)
    return metrics


def _cmd_profile(args) -> int:
    import json
    from time import perf_counter

    from .obs import profile as prof
    from .obs.tracing import stage_span, traced_run

    modes = sum(
        1 for flag in (args.experiment, args.from_run, args.n) if flag is not None
    )
    if modes > 1:
        print("profile: --experiment, --n and --from-run are mutually "
              "exclusive", file=sys.stderr)
        return 2

    base_id = None  # history key stem for --record
    nm = (None, None)
    if args.from_run is not None:
        from .obs import runlog

        path = runlog.ledger_path(args.from_run, args.dir)
        try:
            events, problems = runlog.read_ledger(path)
        except OSError as exc:
            print(f"profile: cannot read {path}: {exc}", file=sys.stderr)
            return 1
        if problems:
            print(f"profile: {len(problems)} corrupt line(s) skipped",
                  file=sys.stderr)
        phases = prof.profile_from_runlog(events, root_name=args.from_run)
        doc = prof.build_profile_document(phases, wall_s=phases.total_s)
        base_id = args.from_run
        ok = True
    elif args.experiment is not None:
        from .arrays.vector_sim import resolve_backend, set_default_backend
        from .experiments import EXPERIMENTS

        if args.experiment not in EXPERIMENTS:
            print(f"profile: unknown experiment {args.experiment!r}; "
                  f"choose from {', '.join(EXPERIMENTS)}", file=sys.stderr)
            return 2
        backend = resolve_backend(args.backend)
        previous = set_default_backend(backend)
        try:
            with traced_run() as tracer, prof.kernel_profiling() as kp:
                t0 = perf_counter()
                with stage_span(
                    f"experiment.{args.experiment}", backend=backend
                ):
                    EXPERIMENTS[args.experiment].run()
                wall = perf_counter() - t0
        finally:
            set_default_backend(previous)
        phases = prof.build_phase_tree(tracer.spans, wall_s=wall)
        critical = [
            prof.config_critical_report(g, n, m, backend=backend,
                                        top=args.top)
            for g, n, m in prof.experiment_configs(args.experiment)
        ]
        doc = prof.build_profile_document(
            phases, wall, kernels=kp.summary(), critical_paths=critical,
            experiment=args.experiment, backend=backend,
        )
        base_id = args.experiment
        ok = True
    else:
        from .algorithms.transitive_closure import make_inputs
        from .algorithms.warshall import random_adjacency, warshall
        from .arrays.vector_sim import dispatch_simulate, resolve_backend
        from .core.partitioner import partition_transitive_closure

        n = args.n if args.n is not None else 12
        backend = resolve_backend(args.backend)
        with traced_run() as tracer, prof.kernel_profiling() as kp:
            t0 = perf_counter()
            with stage_span(
                "profile.config", n=n, m=args.m, geometry=args.geometry
            ):
                impl = partition_transitive_closure(
                    n=n, m=args.m, geometry=args.geometry,
                    policy=args.policy,
                )
                a = random_adjacency(n, seed=args.seed)
                res = dispatch_simulate(
                    impl.exec_plan, impl.dg, make_inputs(a),
                    backend=backend,
                )
            wall = perf_counter() - t0
        ok = bool(np.array_equal(res.output_matrix(n), warshall(a)))
        cp = prof.critical_path(impl.exec_plan, impl.dg)
        config = {
            "n": n, "m": args.m, "geometry": args.geometry,
            "policy": args.policy, "seed": args.seed, "correct": ok,
        }
        critical = [{
            "config": f"{args.geometry}-n{n}-m{args.m}",
            "geometry": args.geometry, "n": n, "m": args.m,
            "makespan": res.makespan,
            "start_cycle": cp.start_cycle,
            "end_cycle": cp.end_cycle,
            "length": cp.length,
            "matches_makespan": cp.length == res.makespan,
            "busy": res.busy, "useful": res.useful,
            "fired_nodes": len(impl.exec_plan.fires),
            "path_nodes": len(cp.steps),
            "zero_slack_nodes": cp.zero_slack_nodes,
            "hotspots": prof.attribute_makespan(cp, top=args.top),
        }]
        phases = prof.build_phase_tree(tracer.spans, wall_s=wall)
        doc = prof.build_profile_document(
            phases, wall, kernels=kp.summary(), critical_paths=critical,
            config=config, backend=backend,
        )
        base_id = f"{args.geometry}-n{n}-m{args.m}"
        nm = (n, args.m)

    body = (
        json.dumps(doc, indent=2, sort_keys=True) if args.json
        else prof.render_profile_text(doc, top=args.top)
    )
    if args.out:
        _write_text(args.out, body + "\n")
        print(f"profile: wrote {'json' if args.json else 'text'} report "
              f"to {args.out}")
    else:
        print(body)

    if args.flame_out:
        from .viz import svg_flamegraph

        title = f"repro profile: {base_id}" if base_id else "repro profile"
        _write_text(args.flame_out, svg_flamegraph(doc["phases"], title=title))
        print(f"profile: wrote flamegraph to {args.flame_out}")
    if args.folded_out:
        folded = prof.to_folded(phases)
        _write_text(args.folded_out, "\n".join(folded) + "\n")
        print(f"profile: wrote {len(folded)} folded stack(s) to "
              f"{args.folded_out}")
    if args.record:
        from .obs import perf

        rec = perf.make_record(
            (base_id or "config") + perf.PROFILE_SUFFIX,
            _profile_record_metrics(doc, phases),
            title="phase profile", n=nm[0], m=nm[1],
        )
        perf.append_history(args.record, rec)
        print(f"profile: appended {rec['exp_id']} record to {args.record}")
    return 0 if ok else 1


def _cmd_obs(args) -> int:
    from .obs import runlog

    if args.obs_command == "list":
        summaries = runlog.list_runs(args.dir)
        if not summaries:
            print(f"obs: no ledgers under {runlog.runlog_dir(args.dir)}")
            return 0
        print(f"{'run':<34} {'entry':<12} {'events':>6} {'tasks':>5} "
              f"{'dur(s)':>8} ok")
        for s in summaries[: args.limit]:
            dur = (
                f"{s['duration_s']:8.3f}"
                if s["duration_s"] is not None else f"{'?':>8}"
            )
            print(f"{s['run'] or '?':<34} {s['entry'] or '?':<12} "
                  f"{s['events']:>6} {len(s['tasks']):>5} {dur} "
                  f"{s['ok']}")
        return 0

    if args.obs_command == "show":
        run_id = args.run_id
        if run_id is None:
            summaries = runlog.list_runs(args.dir)
            if not summaries:
                print(
                    f"obs: no ledgers under {runlog.runlog_dir(args.dir)}",
                    file=sys.stderr,
                )
                return 1
            run_id = summaries[0]["run"]
        path = runlog.ledger_path(run_id, args.dir)
        try:
            events, problems = runlog.read_ledger(path)
        except OSError as exc:
            print(f"obs: cannot read {path}: {exc}", file=sys.stderr)
            return 1
        print(runlog.format_show(events))
        if problems:
            print(f"obs: {len(problems)} corrupt line(s) skipped",
                  file=sys.stderr)
        return 0

    if args.obs_command == "diff":
        loaded = []
        for run_id in (args.run_a, args.run_b):
            path = runlog.ledger_path(run_id, args.dir)
            try:
                events, _problems = runlog.read_ledger(path)
            except OSError as exc:
                print(f"obs: cannot read {path}: {exc}", file=sys.stderr)
                return 1
            loaded.append(events)
        text, identical = runlog.format_diff(
            loaded[0], loaded[1], args.run_a, args.run_b
        )
        print(text)
        return 0 if identical else 1

    # verify
    if args.run_ids:
        targets = [
            (rid, runlog.ledger_path(rid, args.dir)) for rid in args.run_ids
        ]
    else:
        targets = [
            (s["run"], runlog.ledger_path(s["run"], args.dir))
            for s in runlog.list_runs(args.dir)
        ]
    if not targets:
        print(f"obs: no ledgers under {runlog.runlog_dir(args.dir)}",
              file=sys.stderr)
        return 1
    bad = 0
    for run_id, path in targets:
        try:
            events, problems = runlog.read_ledger(path)
        except OSError as exc:
            print(f"{run_id}: FAIL (cannot read: {exc})")
            bad += 1
            continue
        findings = runlog.verify_ledger(events, problems, run_id=run_id)
        if findings:
            bad += 1
            print(f"{run_id}: FAIL ({len(findings)} finding(s))")
            for f in findings:
                print(f"  - {f}")
        else:
            print(f"{run_id}: ok ({len(events)} event(s))")
    print(f"obs verify: {len(targets) - bad}/{len(targets)} ledger(s) clean")
    return 1 if bad else 0


def _cmd_dashboard(args) -> int:
    from pathlib import Path

    from .obs.dashboard import build_dashboard

    sizes = None
    if args.sizes:
        try:
            sizes = sorted({int(s) for s in args.sizes.split(",") if s.strip()})
        except ValueError:
            print(f"dashboard: bad --sizes {args.sizes!r} (want e.g. 6,9,12)",
                  file=sys.stderr)
            return 2
    history = args.history if Path(args.history).exists() else None
    from .obs import runlog as _runlog

    runs_dir = _runlog.runlog_dir(args.runs)
    html = build_dashboard(
        n=args.n, m=args.m, geometry=args.geometry, policy=args.policy,
        seed=args.seed, sizes=sizes, history_path=history,
        runlog_dir=str(runs_dir) if runs_dir.is_dir() else None,
        regimes=args.regimes,
    )
    _write_text(args.out, html)
    print(f"dashboard: {args.out} ({len(html):,} bytes"
          + (f", history from {history}" if history else ", no history")
          + ")")
    return 0


_COMMANDS = {
    "stages": _cmd_stages,
    "partition": _cmd_partition,
    "ggraph": _cmd_ggraph,
    "schedule": _cmd_schedule,
    "level": _cmd_level,
    "fixed": _cmd_fixed,
    "lint": _cmd_lint,
    "faults": _cmd_faults,
    "reproduce": _cmd_reproduce,
    "bench": _cmd_bench,
    "closure": _cmd_closure,
    "trace": _cmd_trace,
    "stats": _cmd_stats,
    "perfcheck": _cmd_perfcheck,
    "profile": _cmd_profile,
    "obs": _cmd_obs,
    "dashboard": _cmd_dashboard,
}

#: Verbs that open a run-ledger scope (see :mod:`repro.obs.runlog`).
#: ``jobs`` is excluded from the run identity so ``--jobs N`` shares the
#: sequential run's ledger.
_LEDGER_VERBS = frozenset(
    {"partition", "trace", "faults", "bench", "perfcheck", "profile",
     "lint", "closure"}
)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    args = build_parser().parse_args(argv)
    handler = _COMMANDS[args.command]
    if args.command in _LEDGER_VERBS:
        from .obs import runlog

        params = {
            k: v for k, v in sorted(vars(args).items())
            if k not in ("command", "jobs")
        }
        with runlog.run_scope(args.command, params):
            return handler(args)
    return handler(args)
