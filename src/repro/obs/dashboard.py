"""Self-contained HTML performance dashboard (stdlib only, inline SVG).

``python -m repro dashboard --out dash.html`` renders one HTML file with
no external assets or scripts: native ``<title>`` tooltips carry the
hover layer, a ``<details>`` table mirrors every chart for
accessibility, and all chrome colors are CSS custom properties.

Sections:

* a KPI row of the run's headline measures (makespan, utilization vs
  the paper's closed form ``U = (n-1)(n-2)/(n(n+1))``, occupancy, host
  bandwidth vs the ``m/n`` bound, memory traffic, correctness);
* per-cell **fire-count and utilization heatmaps** from the
  :class:`~repro.obs.probe.RecordingProbe` event stream;
* the per-cell **occupancy timeline** (compute / transmit / delay lanes);
* the **Hotspots panel**: critical-path attribution over the execution
  plan (:mod:`repro.obs.profile`) — which ``(G-set, cell)`` segments own
  the makespan, with per-path slack counts;
* **measured vs. closed-form curves** across problem size ``n``
  (throughput and utilization, Sec. 4.2) and the measured **Fig. 21
  I/O-demand curve** against the ``m/n`` host-rate bound;
* the **perf trajectory** from the benchmark history store
  (:mod:`repro.obs.perf`), one small multiple per experiment.
"""

from __future__ import annotations

from html import escape
from typing import Any, Hashable, Mapping, Sequence

from ..viz.svg import svg_heatmap, svg_lanes, svg_line_chart
from .perf import load_history
from .probe import RecordingProbe
from .report import io_demand_curve, occupancy_timeline
from .runlog import list_runs

__all__ = [
    "ACTIVITY_CLASSES",
    "activity_class",
    "cell_grid",
    "collect_run",
    "collect_regimes",
    "sweep_closed_forms",
    "render_dashboard",
    "build_dashboard",
]

#: Fixed activity -> categorical-slot order for the occupancy lanes.
ACTIVITY_CLASSES = ("compute", "transmit", "delay")

#: Lane cap for the occupancy timeline (cells beyond it are listed, not
#: silently dropped).
MAX_LANES = 16

_STYLE = """
:root { color-scheme: light; }
.viz-root {
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --muted: #898781; --gridline: #e1e0d9; --baseline: #c3c2b7;
  --good: #0ca30c; --critical: #d03b3b;
  --border: rgba(11,11,11,0.10);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  color: var(--text-primary); background: var(--page);
  margin: 0; padding: 24px; line-height: 1.45;
}
.viz-root h1 { font-size: 20px; margin: 0 0 4px; }
.viz-root h2 { font-size: 14px; margin: 28px 0 8px; }
.viz-root .sub { color: var(--text-secondary); font-size: 12px; margin: 0 0 16px; }
.viz-root .card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 14px 16px; margin: 0 0 12px;
}
.viz-root .row { display: flex; flex-wrap: wrap; gap: 12px; }
.viz-root .tile { min-width: 132px; }
.viz-root .tile .label { font-size: 11px; color: var(--text-secondary); }
.viz-root .tile .value { font-size: 22px; font-weight: 600; }
.viz-root .tile .delta { font-size: 11px; color: var(--text-secondary); }
.viz-root .status-ok .value::after { content: " \\2713"; color: var(--good); }
.viz-root .status-bad .value::after { content: " \\2717"; color: var(--critical); }
.viz-root table { border-collapse: collapse; font-size: 12px; }
.viz-root th, .viz-root td {
  padding: 3px 10px; text-align: right;
  border-bottom: 1px solid var(--gridline);
  font-variant-numeric: tabular-nums;
}
.viz-root th { color: var(--text-secondary); font-weight: 600; }
.viz-root details summary { cursor: pointer; font-size: 12px; color: var(--text-secondary); }
.viz-root .note { font-size: 11px; color: var(--muted); }
"""


def activity_class(activity: str) -> str:
    """Normalise a fired node's tag/kind onto :data:`ACTIVITY_CLASSES`."""
    low = str(activity).lower()
    if "compute" in low or low == "op":
        return "compute"
    if "delay" in low:
        return "delay"
    return "transmit"


def cell_grid(counts: Mapping[Hashable, Any]) -> dict[tuple[int, int], float]:
    """Place per-cell values on a heatmap grid.

    Mesh cells (``(row, col)`` tuples) keep their coordinates; linear
    cells (ints) become one row; anything else is enumerated in sorted
    order.
    """
    keys = list(counts)
    if keys and all(
        isinstance(k, tuple) and len(k) == 2
        and all(isinstance(x, int) for x in k) for k in keys
    ):
        return {(k[0], k[1]): float(counts[k]) for k in keys}
    if keys and all(isinstance(k, int) for k in keys):
        return {(0, k): float(counts[k]) for k in keys}
    return {
        (0, i): float(counts[k])
        for i, k in enumerate(sorted(keys, key=repr))
    }


def collect_run(
    n: int,
    m: int,
    geometry: str = "linear",
    policy: str = "vertical",
    seed: int = 0,
) -> dict:
    """Partition + probe-simulate one closure; the dashboard's main input."""
    import numpy as np

    from ..algorithms.transitive_closure import make_inputs
    from ..algorithms.warshall import random_adjacency, warshall
    from ..arrays.cycle_sim import simulate
    from ..core.partitioner import partition_transitive_closure

    impl = partition_transitive_closure(
        n=n, m=m, geometry=geometry, policy=policy
    )
    probe = RecordingProbe()
    a = random_adjacency(n, seed=seed)
    res = simulate(impl.exec_plan, impl.dg, make_inputs(a), probe=probe)
    ok = bool(np.array_equal(res.output_matrix(n), warshall(a)))
    return {
        "n": n, "m": m, "geometry": geometry, "policy": policy,
        "impl": impl, "probe": probe, "result": res, "correct": ok,
    }


def sweep_closed_forms(
    sizes: Sequence[int],
    m: int,
    geometry: str = "linear",
    policy: str = "vertical",
) -> list[dict]:
    """Measured vs. Sec. 4.2 closed-form measures across problem size."""
    from ..core.metrics import (
        tc_linear_throughput,
        tc_mesh_throughput,
        tc_utilization,
    )
    from ..core.partitioner import partition_transitive_closure

    thr_form = (
        tc_linear_throughput if geometry == "linear" else tc_mesh_throughput
    )
    rows = []
    for n in sizes:
        impl = partition_transitive_closure(
            n=n, m=m, geometry=geometry, policy=policy
        )
        rep = impl.report
        rows.append(
            {
                "n": n,
                "measured_throughput": float(rep.throughput),
                "expected_throughput": float(thr_form(n, m)),
                "measured_utilization": float(rep.utilization),
                "expected_utilization": float(tc_utilization(n)),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

def _tile(label: str, value: str, delta: str = "", status: str = "") -> str:
    cls = f"tile {status}".strip()
    delta_html = f'<div class="delta">{escape(delta)}</div>' if delta else ""
    return (
        f'<div class="{cls}"><div class="label">{escape(label)}</div>'
        f'<div class="value">{escape(value)}</div>{delta_html}</div>'
    )


def _table(rows: Sequence[Mapping[str, Any]]) -> str:
    if not rows:
        return "<p class='note'>(no data)</p>"
    cols = list(rows[0].keys())
    head = "".join(f"<th>{escape(str(c))}</th>" for c in cols)
    body = "".join(
        "<tr>" + "".join(
            f"<td>{escape(_cell_text(r.get(c)))}</td>" for c in cols
        ) + "</tr>"
        for r in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def _cell_text(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:.6g}"
    return str(v)


def _details_table(summary: str, rows: Sequence[Mapping[str, Any]]) -> str:
    return (
        f"<details><summary>{escape(summary)}</summary>{_table(rows)}"
        f"</details>"
    )


def _run_sections(run: dict) -> list[str]:
    probe: RecordingProbe = run["probe"]
    res = run["result"]
    rep = run["impl"].report
    n, m = run["n"], run["m"]

    from ..core.metrics import tc_io_bandwidth, tc_utilization

    u_expected = float(tc_utilization(n))
    bw_bound = float(tc_io_bandwidth(n, m))
    sections = []

    status = "status-ok" if (run["correct"] and res.ok) else "status-bad"
    sections.append(
        '<div class="card"><div class="row">'
        + _tile("Makespan", f"{res.makespan:,}", "simulated cycles")
        + _tile(
            "Utilization",
            f"{float(res.utilization):.3f}",
            f"closed form U = {u_expected:.3f}",
        )
        + _tile("Occupancy", f"{float(res.occupancy):.3f}", "busy / capacity")
        + _tile(
            "Host bandwidth",
            f"{float(res.average_host_bandwidth()):.3f}",
            f"bound m/n = {bw_bound:.3f} words/cycle",
        )
        + _tile(
            "Memory traffic",
            f"{res.memory_reads:,}",
            f"{res.memory_words:,} words parked",
        )
        + _tile(
            "Closure",
            "correct" if run["correct"] else "wrong",
            f"{len(res.violations)} violation(s)",
            status,
        )
        + "</div></div>"
    )

    # Per-cell heatmaps from the probe event stream.
    from ..arrays.cycle_sim import cell_fire_counts, cell_utilization

    counts = cell_fire_counts(probe)
    util = cell_utilization(probe, res.makespan)
    count_rows = [
        {"cell": repr(c), "fires": v, "utilization": float(util[c])}
        for c, v in sorted(counts.items(), key=lambda kv: repr(kv[0]))
    ]
    sections.append(
        '<div class="card">'
        + svg_heatmap(
            cell_grid(counts),
            title=f"Fires per cell (n={n}, m={m}, {run['geometry']})",
            value_label="fires",
        )
        + svg_heatmap(
            {k: round(v, 3) for k, v in cell_grid(
                {c: float(f) for c, f in util.items()}
            ).items()},
            title="Per-cell utilization (busy cycles / makespan)",
            value_label="utilization",
            max_value=1.0,
        )
        + _details_table("per-cell data", count_rows)
        + "</div>"
    )

    # Occupancy timeline lanes.
    timeline = occupancy_timeline(probe)
    labels = sorted(timeline, key=repr)
    shown = labels[:MAX_LANES]
    lanes = {
        repr(c): [(t, activity_class(act)) for t, act in timeline[c]]
        for c in shown
    }
    note = (
        f'<p class="note">showing {len(shown)} of {len(labels)} cells; '
        f"omitted: {', '.join(repr(c) for c in labels[MAX_LANES:])}</p>"
        if len(labels) > len(shown) else ""
    )
    sections.append(
        '<div class="card">'
        + svg_lanes(
            lanes, res.makespan, ACTIVITY_CLASSES,
            title="Occupancy timeline (cell x cycle)",
        )
        + note
        + "</div>"
    )

    # Fig. 21: measured cumulative demand vs the m/n host-rate bound.
    curve = io_demand_curve(probe)
    if curve:
        last_t = max(curve[-1][0], 1)
        bound = [(0.0, 0.0), (float(last_t), bw_bound * last_t)]
        sections.append(
            '<div class="card">'
            + svg_line_chart(
                [
                    ("measured demand", [(float(t), float(w)) for t, w in curve]),
                    ("host @ m/n", bound),
                ],
                title="Fig. 21 - cumulative host words vs deadline cycle",
                x_label="cycle", y_label="words", step=True,
            )
            + _details_table(
                "I/O demand data",
                [{"cycle": t, "cum_words": w} for t, w in curve],
            )
            + "</div>"
        )
    return sections


def _hotspot_sections(run: dict, top: int = 10) -> list[str]:
    """The Hotspots panel: critical-path attribution for the shown run.

    Extracts the longest dependence-constrained chain through the run's
    execution plan (:func:`repro.obs.profile.critical_path`) and charges
    its cycles to ``(G-set, cell)`` segments — where the makespan
    actually went.  A chain covering every cycle (length == makespan)
    means no scheduling gap is left unexplained.
    """
    from .profile import attribute_makespan, critical_path

    impl = run["impl"]
    res = run["result"]
    cp = critical_path(impl.exec_plan, impl.dg)
    rows = attribute_makespan(cp, top=top)
    matches = cp.length == res.makespan
    fired = len(impl.exec_plan.fires)
    table_rows = [
        {
            "gset": r["gset"],
            "cell": r["cell"],
            "cycles": r["cycles"],
            "share": f"{r['share']:.1%}",
        }
        for r in rows
    ]
    note = (
        '<p class="note">critical path: cycles '
        f"{cp.start_cycle}..{cp.end_cycle} over {len(cp.steps)} node(s); "
        "top segments by cycles owned "
        "(<code>repro profile</code> for the full table and "
        "flamegraph)</p>"
    )
    return [
        '<div class="card"><div class="row">'
        + _tile(
            "Critical path",
            f"{cp.length:,}",
            f"of {res.makespan:,} cycles"
            + (" - covers the run" if matches else ""),
            "status-ok" if matches else "status-bad",
        )
        + _tile(
            "Zero-slack nodes",
            f"{cp.zero_slack_nodes:,}",
            f"of {fired:,} fired nodes",
        )
        + "</div>"
        + _table(table_rows)
        + note
        + "</div>"
    ]


def _numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _sweep_sections(rows: Sequence[Mapping[str, Any]]) -> list[str]:
    # Foreign or legacy sweep rows may carry null dimensions; plotting a
    # None x-coordinate would crash the chart, so such rows are skipped
    # (they still appear in the details table below the charts).
    plotted = [r for r in rows if _numeric(r.get("n"))]
    if not rows:
        return []
    if not plotted:
        return ['<div class="card">' + _details_table("sweep data", list(rows)) + "</div>"]
    rows, all_rows = plotted, list(rows)
    thr = [
        ("measured", [(r["n"], r["measured_throughput"]) for r in rows]),
        ("closed form", [(r["n"], r["expected_throughput"]) for r in rows]),
    ]
    util = [
        ("measured", [(r["n"], r["measured_utilization"]) for r in rows]),
        ("closed form", [(r["n"], r["expected_utilization"]) for r in rows]),
    ]
    return [
        '<div class="card">'
        + svg_line_chart(
            thr, title="Throughput vs n - measured vs T = m/(n^2 (n+1))",
            x_label="n", y_label="1/cycles",
        )
        + svg_line_chart(
            util,
            title="Utilization vs n - measured vs U = (n-1)(n-2)/(n(n+1))",
            x_label="n", y_label="U",
        )
        + _details_table("sweep data", all_rows)
        + "</div>"
    ]


def _trajectory_sections(history: Sequence[Mapping], max_exps: int = 8) -> list[str]:
    if not history:
        return []
    by_exp: dict[str, list[Mapping]] = {}
    for rec in history:
        by_exp.setdefault(rec["exp_id"], []).append(rec)
    exp_ids = sorted(by_exp)
    shown = exp_ids[:max_exps]
    charts = []
    for exp_id in shown:
        runs = by_exp[exp_id]
        pts = [
            (float(i + 1), float(rec["metrics"]["wall_time_s"]))
            for i, rec in enumerate(runs)
            if "wall_time_s" in rec.get("metrics", {})
        ]
        if not pts:
            continue
        charts.append(
            svg_line_chart(
                [("wall time (s)", pts)],
                title=f"{exp_id} - wall time across runs",
                x_label="run", y_label="seconds",
                width=320, height=190,
            )
        )
    note = (
        f'<p class="note">showing {len(shown)} of {len(exp_ids)} '
        f"experiments; omitted: {', '.join(exp_ids[max_exps:])}</p>"
        if len(exp_ids) > len(shown) else ""
    )
    # Dimensions may be null on older records (pre-inference benchmarks
    # never stamped them); render "-" rather than "None".
    table_rows = [
        {
            "exp_id": exp_id,
            "runs": len(by_exp[exp_id]),
            "last_n": n if _numeric(n := by_exp[exp_id][-1].get("n")) else "-",
            "last_m": m if _numeric(m := by_exp[exp_id][-1].get("m")) else "-",
            "last_commit": by_exp[exp_id][-1].get("commit") or "-",
            "last_wall_time_s": by_exp[exp_id][-1]
            .get("metrics", {})
            .get("wall_time_s", "-"),
        }
        for exp_id in exp_ids
    ]
    return [
        '<div class="card"><div class="row">'
        + "".join(charts)
        + "</div>"
        + note
        + _details_table("history summary", table_rows)
        + "</div>"
    ]


def collect_regimes(
    seed: int = 0,
    configs: Sequence[str] = ("linear-n12-m4", "mesh-n8-m4"),
) -> dict[str, Any]:
    """Run a compact failure-regime campaign for the dashboard panel.

    Two designs (one linear, one mesh — the mesh is where correlated
    clusters force the graceful-degradation tier) x every shipped
    regime, summarized by
    :meth:`~repro.resilience.campaign.CampaignResult.regime_summary`.
    """
    from ..resilience import REGIME_NAMES, run_campaign

    result = run_campaign(
        seed=seed, configs=list(configs), regime=list(REGIME_NAMES),
        record_metrics=False,
    )
    summary = result.regime_summary()
    summary["configs"] = list(configs)
    summary["runs"] = [r.to_dict() for r in result.runs]
    return summary


def _regime_sections(summary: Mapping[str, Any]) -> list[str]:
    """The Failure regimes panel: per-regime recover/degrade verdicts."""
    regimes: Mapping[str, Mapping[str, Any]] = summary.get("regimes", {})
    if not regimes:
        return []
    total = sum(g["runs"] for g in regimes.values())
    good = sum(g["ok"] for g in regimes.values())
    degraded = sum(g["degraded"] for g in regimes.values())
    quarantined = sum(g["quarantined"] for g in regimes.values())
    tiles = (
        _tile(
            "Regime cells",
            f"{good}/{total}",
            "recovered or gracefully degraded",
            "status-ok" if good == total else "status-bad",
        )
        + _tile("Quarantined cells", str(quarantined), "strike ladder")
        + _tile("Degraded runs", str(degraded), "host-side completion")
    )
    regime_rows = [
        {
            "regime": name,
            "runs": g["runs"],
            "ok": g["ok"],
            "recovered": g["recovered"],
            "degraded": g["degraded"],
            "quarantined": g["quarantined"],
            "degraded_gsets": g["degraded_gsets"],
            "min_availability": (
                f"{g['min_availability']:.3f}"
                if g.get("min_availability") is not None else "-"
            ),
            "max_slowdown": (
                f"{g['max_slowdown']:.3f}"
                if g.get("max_slowdown") is not None else "-"
            ),
        }
        for name, g in sorted(regimes.items())
    ]
    run_rows = [
        {
            "config": r["config"],
            "regime": r.get("regime", "-"),
            "ok": r["ok"],
            "faults": r.get("faults_planned", "-"),
            "detections": r["detections"],
            "retries": r["retries"],
            "repartitions": r["repartitions"],
            "quarantined": r.get("quarantined", 0),
            "degraded_gsets": r.get("degraded_gsets", 0),
            "availability": (
                f"{r['availability']:.3f}"
                if r.get("availability") is not None else "-"
            ),
            "mttr_cycles": (
                f"{r['mttr_cycles']:.1f}"
                if r.get("mttr_cycles") is not None else "-"
            ),
        }
        for r in summary.get("runs", [])
    ]
    note = (
        '<p class="note">seeded regime campaigns '
        f"(seed {summary.get('seed', 0)}) under the adaptive policy: "
        "correlated cluster death, Gilbert-Elliott transient bursts, "
        "same-cell hammering (<code>repro faults --regime all</code> "
        "for the full matrix)</p>"
    )
    return [
        '<div class="card"><div class="row">'
        + tiles
        + "</div>"
        + _table(regime_rows)
        + (_details_table("per-run data", run_rows) if run_rows else "")
        + note
        + "</div>"
    ]


def _runlog_sections(summaries: Sequence[Mapping[str, Any]]) -> list[str]:
    """The run-history panel: one row per ledger, newest first."""
    rows = []
    for s in summaries:
        counts = s.get("counts", {})
        annotations = ", ".join(
            f"{name}={counts[name]}"
            for name in (
                "lint", "plan_cache", "fallback", "fault_inject",
                "fault_detect", "fault_recover", "checkpoint",
                "repartition", "oracle", "error",
            )
            if counts.get(name)
        )
        rows.append(
            {
                "run": s.get("run") or "-",
                "entry": s.get("entry") or "-",
                "events": s.get("events", 0),
                "tasks": len(s.get("tasks", [])),
                "duration_s": (
                    round(s["duration_s"], 3)
                    if s.get("duration_s") is not None else "-"
                ),
                "ok": s.get("ok"),
                "annotations": annotations or "-",
            }
        )
    clean = sum(1 for s in summaries if s.get("ok"))
    return [
        '<div class="card">'
        + _tile("ledgers", str(len(summaries)))
        + _tile("completed ok", str(clean))
        + _details_table("recent runs (repro obs list)", rows)
        + "</div>"
    ]


def render_dashboard(
    run: dict | None = None,
    sweep_rows: Sequence[Mapping[str, Any]] | None = None,
    history: Sequence[Mapping] | None = None,
    title: str = "repro - performance dashboard",
    runlog_summaries: Sequence[Mapping[str, Any]] | None = None,
    regime_summary: Mapping[str, Any] | None = None,
) -> str:
    """Assemble the full HTML document from pre-computed pieces."""
    body: list[str] = [f"<h1>{escape(title)}</h1>"]
    if run is not None:
        body.append(
            f'<p class="sub">transitive closure, n={run["n"]}, '
            f'm={run["m"]}, {escape(run["geometry"])} array, '
            f'policy {escape(run["policy"])} - '
            f"{len(run['probe'].fires):,} probed fires over "
            f"{run['result'].makespan:,} cycles</p>"
        )
        body.append("<h2>Simulated run</h2>")
        body.extend(_run_sections(run))
        body.append("<h2>Hotspots (critical-path attribution)</h2>")
        body.extend(_hotspot_sections(run))
    if sweep_rows:
        body.append("<h2>Measured vs. closed forms (Sec. 4.2)</h2>")
        body.extend(_sweep_sections(sweep_rows))
    if history:
        body.append("<h2>Benchmark history (perf trajectory)</h2>")
        body.extend(_trajectory_sections(history))
    if regime_summary:
        body.append("<h2>Failure regimes (resilience under fire)</h2>")
        body.extend(_regime_sections(regime_summary))
    if runlog_summaries:
        body.append("<h2>Run ledger (recent runs)</h2>")
        body.extend(_runlog_sections(runlog_summaries))
    if (
        run is None and not sweep_rows and not history
        and not runlog_summaries and not regime_summary
    ):
        body.append('<p class="sub">(nothing to show)</p>')
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{escape(title)}</title>"
        f"<style>{_STYLE}</style></head>"
        f"<body class='viz-root'>{''.join(body)}</body></html>"
    )


def build_dashboard(
    n: int = 9,
    m: int = 3,
    geometry: str = "linear",
    policy: str = "vertical",
    seed: int = 0,
    sizes: Sequence[int] | None = None,
    history_path: str | None = None,
    runlog_dir: str | None = None,
    regimes: bool = False,
) -> str:
    """Run the pipeline, sweep sizes, load history, render — one call.

    ``regimes=True`` additionally runs the compact failure-regime
    campaign (:func:`collect_regimes`) and renders the Failure regimes
    panel.
    """
    run = collect_run(n, m, geometry=geometry, policy=policy, seed=seed)
    if sizes is None:
        sizes = sorted({max(4, n - 3), n, n + 3})
    sweep = sweep_closed_forms(sizes, m, geometry=geometry, policy=policy)
    history = load_history(history_path) if history_path else []
    summaries = list_runs(runlog_dir) if runlog_dir else []
    regime_summary = collect_regimes(seed=seed) if regimes else None
    return render_dashboard(
        run, sweep, history, runlog_summaries=summaries,
        regime_summary=regime_summary,
    )
