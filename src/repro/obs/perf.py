"""Benchmark history store and performance-regression detection.

The registry/probe layer (:mod:`repro.obs.metrics`, :mod:`repro.obs.probe`)
measures one run; this module makes those measurements *persist* and
*compare*:

* **history store** — every benchmark run appends one JSON line to
  ``benchmarks/out/history.jsonl`` (a :func:`make_record` dict keyed by
  experiment id, git commit, and problem size), and the latest runs are
  rolled up into a repo-root ``BENCH_PERF.json`` trajectory file so the
  perf history travels with the repository;
* **regression detector** — :func:`compare` diffs two sets of records
  with per-*metric-class* relative thresholds (wall time is noisy;
  simulated cycles, memory traffic and host bandwidth are deterministic
  and must not move), returning structured :class:`Regression` objects;
  ``python -m repro perfcheck`` wraps it with a non-zero exit code for
  CI gating.

Everything here is stdlib-only and file-format-first: records are plain
dicts, stores are JSONL/JSON files, and loaders sniff the three shapes
(single record, record list / JSONL, trajectory roll-up) so the CLI can
point at any artefact the harness produces.
"""

from __future__ import annotations

import json
import subprocess
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_THRESHOLDS",
    "METRIC_CLASSES",
    "PerfHistoryWarning",
    "Regression",
    "classify_metric",
    "current_commit",
    "make_record",
    "append_history",
    "load_history",
    "load_records",
    "latest_by_exp",
    "rollup",
    "write_trajectory",
    "make_baseline",
    "compare",
    "find_new_metrics",
    "PROFILE_SUFFIX",
    "profile_metrics_for",
    "blame_lines",
    "format_report",
]


class PerfHistoryWarning(UserWarning):
    """A perf artefact contained lines/records that had to be skipped."""

#: Schema version stamped into every JSON artefact this subsystem writes
#: (history records, ``BENCH_PERF.json``, baselines, ``<exp_id>.json``).
SCHEMA_VERSION = 1

#: How many runs per experiment the ``BENCH_PERF.json`` roll-up keeps.
TRAJECTORY_KEEP = 50

#: Metric classes, in reporting order.  Every perf metric is classified
#: by name into exactly one of these; each class carries its own
#: regression threshold because their noise profiles differ wildly.
METRIC_CLASSES = (
    "wall_time", "sim_cycles", "memory_traffic", "host_bandwidth", "other",
)

#: Relative regression thresholds per metric class: ``current`` regresses
#: when ``current > baseline * (1 + threshold)``.  Wall time jitters with
#: the machine; the simulated measures are exact and budgeted ~0.
DEFAULT_THRESHOLDS: dict[str, float] = {
    "wall_time": 0.50,
    "sim_cycles": 0.001,
    "memory_traffic": 0.001,
    "host_bandwidth": 0.01,
    "other": 0.10,
}

_CLASS_PATTERNS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("wall_time", ("wall", "_time_s", "duration", "_ms", "elapsed",
                   "_self_s", "profile_")),
    ("sim_cycles", ("cycle", "makespan", "total_time", "stall")),
    ("memory_traffic", ("memory", "words", "reads", "traffic", "r_memory")),
    ("host_bandwidth", ("bandwidth", "d_io", "hostbw", "_io", "io_")),
)


def classify_metric(name: str) -> str:
    """Map a metric name onto one of :data:`METRIC_CLASSES` by substring."""
    low = name.lower()
    for cls, needles in _CLASS_PATTERNS:
        if any(n in low for n in needles):
            return cls
    return "other"


def current_commit(repo_dir: str | Path | None = None) -> str | None:
    """Short git commit id of ``repo_dir`` (or CWD); ``None`` off-repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(repo_dir) if repo_dir else None,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def make_record(
    exp_id: str,
    metrics: Mapping[str, float],
    *,
    title: str = "",
    n: int | None = None,
    m: int | None = None,
    commit: str | None = None,
    ts: float | None = None,
    run_id: str | None = None,
) -> dict:
    """One history record: experiment key + flat ``{metric: value}`` dict.

    ``run_id`` links the record to its run ledger (see
    :mod:`repro.obs.runlog`) so a perf regression can be traced back to
    the exact run — ``repro obs show <run-id>`` — that produced it.
    """
    return {
        "version": SCHEMA_VERSION,
        "exp_id": exp_id,
        "title": title,
        "ts": time.time() if ts is None else ts,
        "commit": commit,
        "run_id": run_id,
        "n": n,
        "m": m,
        "metrics": {k: _as_number(v) for k, v in metrics.items()},
    }


def _as_number(v: Any) -> float | int:
    if isinstance(v, bool):
        return int(v)
    if isinstance(v, (int, float)):
        return v
    return float(v)  # Fractions, Decimals, numpy scalars


# ----------------------------------------------------------------------
# Stores: history JSONL + trajectory roll-up
# ----------------------------------------------------------------------

def append_history(path: str | Path, record: Mapping) -> None:
    """Append one record to the JSONL history file (created on demand)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as fh:
        fh.write(json.dumps(record, sort_keys=True, default=repr) + "\n")


def load_history(
    path: str | Path, skipped: list[tuple[int, str]] | None = None
) -> list[dict]:
    """Read a JSONL history file; missing file -> empty history.

    A history file is append-only and written by many harness runs, so a
    killed run can leave a truncated final line and a bad merge can leave
    garbage mid-file.  Corrupt lines (invalid JSON, or JSON that is not
    an object) are *skipped*, each with a :class:`PerfHistoryWarning`
    naming the file and line; pass a ``skipped`` list to collect
    ``(lineno, reason)`` pairs — ``perfcheck`` counts them in its report.
    """
    path = Path(path)
    if not path.exists():
        return []
    records = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            reason = f"invalid JSON ({exc.msg})"
            rec = None
        else:
            reason = "" if isinstance(rec, dict) else "not a record object"
        if rec is None or reason:
            warnings.warn(
                f"{path}:{lineno}: skipping corrupt history line: {reason}",
                PerfHistoryWarning,
                stacklevel=2,
            )
            if skipped is not None:
                skipped.append((lineno, reason))
            continue
        records.append(rec)
    return records


def latest_by_exp(records: Iterable[Mapping]) -> dict[str, dict]:
    """Last record per experiment id (records assumed chronological).

    Records without an ``exp_id`` (hand-edited or foreign artefacts)
    cannot be keyed, so they are skipped with a warning rather than
    aborting the whole comparison.
    """
    latest: dict[str, dict] = {}
    for rec in records:
        exp_id = rec.get("exp_id")
        if not exp_id:
            warnings.warn(
                "skipping perf record without exp_id",
                PerfHistoryWarning,
                stacklevel=2,
            )
            continue
        latest[exp_id] = dict(rec)
    return latest


def rollup(records: Sequence[Mapping], keep: int = TRAJECTORY_KEEP) -> dict:
    """The ``BENCH_PERF.json`` trajectory: last ``keep`` runs per exp."""
    by_exp: dict[str, list[dict]] = {}
    for rec in records:
        if not rec.get("exp_id"):
            continue  # unkeyable record; latest_by_exp already warned
        by_exp.setdefault(rec["exp_id"], []).append(
            {
                "ts": rec.get("ts"),
                "commit": rec.get("commit"),
                "run_id": rec.get("run_id"),
                "n": rec.get("n"),
                "m": rec.get("m"),
                "metrics": dict(rec.get("metrics", {})),
            }
        )
    return {
        "version": SCHEMA_VERSION,
        "experiments": {
            exp_id: {"runs": runs[-keep:]}
            for exp_id, runs in sorted(by_exp.items())
        },
    }


def write_trajectory(path: str | Path, records: Sequence[Mapping]) -> dict:
    """Roll ``records`` up and write the trajectory file; return the doc."""
    doc = rollup(records)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def make_baseline(records: Iterable[Mapping]) -> dict:
    """A committed-baseline document: the latest record per experiment."""
    return {
        "version": SCHEMA_VERSION,
        "experiments": latest_by_exp(records),
    }


def load_records(
    path: str | Path, skipped: list[tuple[int, str]] | None = None
) -> dict[str, dict]:
    """Latest record per exp from *any* perf artefact.

    Sniffs the format: ``.jsonl`` history, a baseline document
    (``{"experiments": {exp: record}}``), a trajectory roll-up
    (``{"experiments": {exp: {"runs": [...]}}}``), a JSON list of
    records, or a single record.  For JSONL histories, corrupt lines are
    skipped (see :func:`load_history`); ``skipped`` collects them.
    """
    path = Path(path)
    if path.suffix == ".jsonl":
        return latest_by_exp(load_history(path, skipped=skipped))
    doc = json.loads(path.read_text())
    if isinstance(doc, list):
        return latest_by_exp(doc)
    if "experiments" in doc:
        out: dict[str, dict] = {}
        for exp_id, entry in doc["experiments"].items():
            if "runs" in entry:  # trajectory shape
                if entry["runs"]:
                    rec = dict(entry["runs"][-1])
                    rec.setdefault("exp_id", exp_id)
                    out[exp_id] = rec
            else:  # baseline shape
                out[exp_id] = dict(entry)
        return out
    if "exp_id" in doc:  # single record
        return {doc["exp_id"]: doc}
    raise ValueError(f"unrecognised perf artefact shape in {path}")


# ----------------------------------------------------------------------
# Regression detection
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Regression:
    """One metric that moved past its class threshold."""

    exp_id: str
    metric: str
    metric_class: str
    baseline: float
    current: float
    threshold: float

    @property
    def ratio(self) -> float:
        """``current / baseline`` (``inf`` for a zero baseline)."""
        if self.baseline == 0:
            return float("inf")
        return self.current / self.baseline

    def __str__(self) -> str:  # noqa: D105
        pct = (self.ratio - 1.0) * 100 if self.ratio != float("inf") else float("inf")
        return (
            f"REGRESSION {self.exp_id}.{self.metric} [{self.metric_class}]: "
            f"{self.baseline:.6g} -> {self.current:.6g} "
            f"(+{pct:.1f}% > {self.threshold:.0%} allowed)"
        )


def compare(
    baseline: Mapping[str, Mapping],
    current: Mapping[str, Mapping],
    thresholds: Mapping[str, float] | None = None,
    classes: Sequence[str] | None = None,
) -> list[Regression]:
    """Diff two ``{exp_id: record}`` maps; return threshold breaches.

    Only metrics present on *both* sides of an experiment are compared
    (every perf metric here is higher-is-worse).  ``thresholds``
    overrides :data:`DEFAULT_THRESHOLDS` per class; ``classes`` restricts
    the comparison (e.g. CI skips the machine-dependent ``wall_time``).
    """
    limits = dict(DEFAULT_THRESHOLDS)
    if thresholds:
        unknown = set(thresholds) - set(METRIC_CLASSES)
        if unknown:
            raise ValueError(
                f"unknown metric class(es) {sorted(unknown)}; "
                f"expected one of {METRIC_CLASSES}"
            )
        limits.update(thresholds)
    if classes is not None:
        unknown = set(classes) - set(METRIC_CLASSES)
        if unknown:
            raise ValueError(
                f"unknown metric class(es) {sorted(unknown)}; "
                f"expected one of {METRIC_CLASSES}"
            )
    regressions: list[Regression] = []
    for exp_id in sorted(set(baseline) & set(current)):
        base_m = baseline[exp_id].get("metrics", {})
        cur_m = current[exp_id].get("metrics", {})
        for name in sorted(set(base_m) & set(cur_m)):
            cls = classify_metric(name)
            if classes is not None and cls not in classes:
                continue
            b, c = float(base_m[name]), float(cur_m[name])
            if c > b * (1.0 + limits[cls]) + 1e-12:
                regressions.append(
                    Regression(
                        exp_id=exp_id, metric=name, metric_class=cls,
                        baseline=b, current=c, threshold=limits[cls],
                    )
                )
    return regressions


def find_new_metrics(
    baseline: Mapping[str, Mapping],
    current: Mapping[str, Mapping],
) -> list[tuple[str, str, str]]:
    """Current-only metrics on shared experiments, as explicit findings.

    A metric present in ``current`` but absent from the baseline is not
    a regression (there is nothing to compare against) but it must not
    vanish silently either — it is exactly the state a freshly added
    benchmark metric is in until the baseline is regenerated.  Returns
    ``(exp_id, metric, metric_class)`` triples; :func:`format_report`
    renders them and the CLI keeps them non-gating.
    """
    findings: list[tuple[str, str, str]] = []
    for exp_id in sorted(set(baseline) & set(current)):
        base_m = baseline[exp_id].get("metrics", {})
        cur_m = current[exp_id].get("metrics", {})
        for name in sorted(set(cur_m) - set(base_m)):
            findings.append((exp_id, name, classify_metric(name)))
    return findings


#: Key suffix under which ``repro profile --record`` files its
#: companion record for an experiment: ``<exp_id>:profile``.  A separate
#: key keeps the ``profile_*`` phase metrics from shadowing the bench
#: record in :func:`latest_by_exp`.
PROFILE_SUFFIX = ":profile"


def profile_metrics_for(
    records: Mapping[str, Mapping], exp_id: str
) -> dict[str, float]:
    """``profile_*`` metrics visible for an experiment.

    Looks at the experiment's own record and its ``<exp_id>:profile``
    companion (written by ``repro profile --record``).
    """
    out: dict[str, float] = {}
    for key in (exp_id, exp_id + PROFILE_SUFFIX):
        rec = records.get(key)
        if rec:
            for name, v in rec.get("metrics", {}).items():
                if name.startswith("profile_"):
                    out[name] = float(v)
    return out


def blame_lines(
    baseline: Mapping[str, Mapping],
    current: Mapping[str, Mapping],
    regressions: Sequence[Regression],
) -> list[str]:
    """Attribute each wall_time regression to the phase that moved most.

    For every regressed wall_time metric, the per-phase self-time
    metrics recorded by ``repro profile --record`` are diffed on both
    sides and the phase with the largest absolute increase is named —
    turning "wall_time +23%" into "the simulate phase grew".  One blame
    line per experiment; a hint line when no profile record exists.
    """
    lines: list[str] = []
    seen: set[str] = set()
    for r in regressions:
        if r.metric_class != "wall_time" or r.exp_id.endswith(PROFILE_SUFFIX):
            continue
        if r.exp_id in seen:
            continue
        seen.add(r.exp_id)
        base_p = profile_metrics_for(baseline, r.exp_id)
        cur_p = profile_metrics_for(current, r.exp_id)
        shared = sorted(
            (set(base_p) & set(cur_p)) - {"profile_wall_s"}
        )
        if not shared:
            lines.append(
                f"BLAME {r.exp_id}: no profile record to attribute the "
                f"wall_time regression (record one with "
                f"`repro profile --record` on both sides)"
            )
            continue
        name = max(shared, key=lambda k: cur_p[k] - base_p[k])
        delta = cur_p[name] - base_p[name]
        phase = name.removeprefix("profile_").removesuffix("_self_s")
        lines.append(
            f"BLAME {r.exp_id}.{r.metric}: phase '{phase}' moved most "
            f"({base_p[name]:.6g}s -> {cur_p[name]:.6g}s, {delta:+.6g}s)"
        )
    return lines


def format_report(
    baseline: Mapping[str, Mapping],
    current: Mapping[str, Mapping],
    regressions: Sequence[Regression],
    classes: Sequence[str] | None = None,
    skipped_lines: int = 0,
) -> str:
    """Human-readable perfcheck summary (what the CLI prints)."""
    shared = sorted(set(baseline) & set(current))
    lines = [
        f"perfcheck: {len(shared)} experiment(s) compared"
        + (f" [classes: {', '.join(classes)}]" if classes else ""),
    ]
    run_ids = sorted(
        {
            rec.get("run_id")
            for rec in current.values()
            if rec.get("run_id")
        }
    )
    if run_ids:
        lines.append(
            "current records from run ledger(s): " + ", ".join(run_ids)
        )
    for exp_id in shared:
        base_m = baseline[exp_id].get("metrics", {})
        cur_m = current[exp_id].get("metrics", {})
        n_shared = len(set(base_m) & set(cur_m))
        bad = [r for r in regressions if r.exp_id == exp_id]
        status = "FAIL" if bad else "ok"
        lines.append(f"  {exp_id:>8}: {n_shared} metric(s) {status}")
    only_base = sorted(set(baseline) - set(current))
    only_cur = sorted(set(current) - set(baseline))
    if only_base:
        lines.append(f"  (baseline-only, skipped: {', '.join(only_base)})")
    if only_cur:
        lines.append(f"  (current-only, skipped: {', '.join(only_cur)})")
    for exp_id, metric, cls in find_new_metrics(baseline, current):
        lines.append(
            f"NEW METRIC {exp_id}.{metric} [{cls}]: no baseline yet, "
            "not gated (refresh with --update-baseline)"
        )
    if skipped_lines:
        lines.append(
            f"perfcheck: skipped {skipped_lines} corrupt history line(s)"
        )
    for r in regressions:
        lines.append(str(r))
    lines.extend(blame_lines(baseline, current, regressions))
    lines.append(
        "perfcheck: FAIL" if regressions else "perfcheck: no regressions"
    )
    return "\n".join(lines)
