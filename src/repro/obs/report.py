"""Derived views over probe event streams and simulation results.

Consumes a :class:`~repro.obs.probe.RecordingProbe` (and optionally the
:class:`~repro.arrays.cycle_sim.SimResult` of the same run) and derives:

* per-cell **occupancy timelines** — which cycles each cell was busy and
  doing what (compute vs. transmit/delay padding);
* the **memory-traffic-per-cycle** curve — cut-and-pile external-memory
  reads each cycle (the paper's partitioning traffic made visible);
* the measured Fig. 21 **I/O demand curve** — cumulative host words
  needed by each deadline cycle;
* **Chrome trace events** on the simulator process (1 trace microsecond
  = 1 simulated cycle): one lane per cell plus counter tracks, ready for
  Perfetto;
* registry population helpers mapping a run's measures (and the paper's
  Sec. 4.2 closed forms) onto named gauges for ``python -m repro stats``.

Everything here duck-types its inputs — no imports from
:mod:`repro.arrays` — so the obs package stays dependency-free and
import-cycle-free.
"""

from __future__ import annotations

from typing import Any, Hashable

from .metrics import MetricsRegistry
from .probe import RecordingProbe
from .tracing import SIM_PID

__all__ = [
    "occupancy_timeline",
    "memory_traffic_per_cycle",
    "io_demand_curve",
    "probe_chrome_events",
    "register_sim_metrics",
    "register_expected_metrics",
]


def occupancy_timeline(
    probe: RecordingProbe,
) -> dict[Hashable, list[tuple[int, str]]]:
    """Per-cell ``[(cycle, activity), ...]`` sorted by cycle.

    ``activity`` is the fired node's tag when present (``compute``,
    ``transmit``, ``delay``, ...) else its kind (``OP``/``PASS``/...).
    Gaps between entries are idle cycles — utilization per cell is
    ``len(timeline) / makespan``.
    """
    lanes: dict[Hashable, list[tuple[int, str]]] = {}
    for f in probe.fires:
        lanes.setdefault(f.cell, []).append((f.cycle, f.tag or f.kind))
    for lane in lanes.values():
        lane.sort()
    return lanes


def memory_traffic_per_cycle(probe: RecordingProbe) -> list[tuple[int, int]]:
    """Sorted ``(cycle, external-memory reads)`` pairs.

    Each entry counts the cut-and-pile round trips *consumed* that cycle;
    the matching write happened when the producing G-set ran.
    """
    counts: dict[int, int] = {}
    for ev in probe.operands:
        if ev.source == "memory":
            counts[ev.cycle] = counts.get(ev.cycle, 0) + 1
    return sorted(counts.items())


def io_demand_curve(probe: RecordingProbe) -> list[tuple[int, int]]:
    """Measured Fig. 21 curve: cumulative host words per deadline cycle.

    Matches :meth:`repro.arrays.cycle_sim.SimResult.io_demand_curve` when
    the probe watched the whole run (asserted by the test suite).
    """
    counts: dict[int, int] = {}
    for _node, deadline, _cell in probe.inputs:
        counts[deadline] = counts.get(deadline, 0) + 1
    curve: list[tuple[int, int]] = []
    total = 0
    for t in sorted(counts):
        total += counts[t]
        curve.append((t, total))
    return curve


def _cell_tid(cell: Hashable, order: dict[Hashable, int]) -> int:
    """Stable small integer lane id per cell (tid 1..k on SIM_PID)."""
    if cell not in order:
        order[cell] = len(order) + 1
    return order[cell]


def probe_chrome_events(probe: RecordingProbe) -> list[dict]:
    """Chrome trace events for the simulated run (ts in cycles).

    * one ``X`` event per fire, lane per cell (thread names announce the
      cell ids);
    * ``C`` counter tracks: fires per cycle, memory reads per cycle, and
      the cumulative I/O demand curve.
    """
    events: list[dict] = []
    order: dict[Hashable, int] = {}
    for f in probe.fires:
        tid = _cell_tid(f.cell, order)
        events.append(
            {
                "name": f.tag or f.kind,
                "ph": "X",
                "ts": float(f.cycle),
                "dur": 1.0,
                "pid": SIM_PID,
                "tid": tid,
                "cat": "sim.fire",
                "args": {"node": repr(f.node), "kind": f.kind},
            }
        )
    for cell, tid in order.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": SIM_PID,
                "tid": tid,
                "args": {"name": f"cell {cell!r}"},
            }
        )
    for name, series in (
        ("fires/cycle", probe.fires_per_cycle()),
        ("memory reads/cycle", memory_traffic_per_cycle(probe)),
        ("host words needed (cum.)", io_demand_curve(probe)),
    ):
        for cycle, value in series:
            events.append(
                {
                    "name": name,
                    "ph": "C",
                    "ts": float(cycle),
                    "pid": SIM_PID,
                    "tid": 0,
                    "cat": "sim.counter",
                    "args": {name: value},
                }
            )
    return events


def register_sim_metrics(
    registry: MetricsRegistry,
    result: Any,
    report: Any = None,
    prefix: str = "repro",
    labels: dict[str, Any] | None = None,
) -> None:
    """Record one simulated run's measures as gauges/counters.

    ``result`` duck-types :class:`~repro.arrays.cycle_sim.SimResult`;
    ``report`` (optional) duck-types
    :class:`~repro.core.metrics.PerformanceReport` — its schedule-level
    measures land next to the cycle-measured ones under
    ``<prefix>_schedule_*``.
    """
    labels = labels or {}
    g = registry.gauge
    g(f"{prefix}_sim_makespan_cycles", "cycles to drain the whole run").set(
        result.makespan, **labels
    )
    g(f"{prefix}_sim_cells", "cells in the simulated array").set(
        result.cells, **labels
    )
    g(f"{prefix}_sim_utilization", "useful cell-cycles / capacity").set(
        result.utilization, **labels
    )
    g(f"{prefix}_sim_occupancy", "busy cell-cycles / capacity").set(
        result.occupancy, **labels
    )
    g(
        f"{prefix}_sim_memory_words", "distinct words parked in external memory"
    ).set(result.memory_words, **labels)
    g(f"{prefix}_sim_memory_reads", "external-memory read round trips").set(
        result.memory_reads, **labels
    )
    g(
        f"{prefix}_sim_host_bandwidth_avg",
        "total host words / makespan (aggregate D_IO)",
    ).set(result.average_host_bandwidth(), **labels)
    g(
        f"{prefix}_sim_host_bandwidth_required",
        "min constant host rate meeting all deadlines",
    ).set(result.required_host_bandwidth(), **labels)
    registry.counter(
        f"{prefix}_sim_violations_total", "timing/locality violations"
    ).inc(len(result.violations), **labels)
    registry.counter(
        f"{prefix}_sim_input_words_total", "host words consumed"
    ).inc(len(result.input_deadlines), **labels)
    if report is not None:
        g(f"{prefix}_schedule_total_time", "schedule cycles (Sec. 4.1)").set(
            report.total_time, **labels
        )
        g(f"{prefix}_schedule_throughput", "1 / total schedule time").set(
            report.throughput, **labels
        )
        g(f"{prefix}_schedule_utilization", "Sec. 4.1 utilization U").set(
            report.utilization, **labels
        )
        g(f"{prefix}_schedule_occupancy", "Sec. 4.1 occupancy").set(
            report.occupancy, **labels
        )
        g(
            f"{prefix}_schedule_io_steady", "steady-state host rate (Fig. 21)"
        ).set(report.io_steady, **labels)
        g(f"{prefix}_schedule_memory_words", "cut-and-pile parked words").set(
            report.memory_words, **labels
        )
        g(
            f"{prefix}_schedule_memory_ports", "external memory connections"
        ).set(report.memory_connections, **labels)
        g(f"{prefix}_schedule_overhead", "partitioning overhead cycles").set(
            report.overhead, **labels
        )


def register_expected_metrics(
    registry: MetricsRegistry, n: int, m: int, geometry: str = "linear",
    prefix: str = "repro", labels: dict[str, Any] | None = None,
) -> None:
    """Record the paper's Sec. 4.2 closed forms as ``*_expected`` gauges.

    Imports :mod:`repro.core.metrics` lazily so ``repro.obs`` itself has
    no dependency on the core package.
    """
    from ..core.metrics import (
        memory_connections,
        tc_io_bandwidth,
        tc_linear_throughput,
        tc_mesh_throughput,
        tc_utilization,
    )

    labels = labels or {}
    g = registry.gauge
    thr = tc_linear_throughput(n, m) if geometry == "linear" else tc_mesh_throughput(n, m)
    g(
        f"{prefix}_expected_throughput", "closed form T = m / (n^2 (n+1))"
    ).set(thr, **labels)
    g(
        f"{prefix}_expected_utilization",
        "closed form U = (n-1)(n-2) / (n(n+1))",
    ).set(tc_utilization(n), **labels)
    g(f"{prefix}_expected_io_bandwidth", "closed form D_IO = m/n").set(
        tc_io_bandwidth(n, m), **labels
    )
    try:
        ports = memory_connections(geometry, m)
    except ValueError:
        ports = -1
    g(
        f"{prefix}_expected_memory_ports",
        "closed form memory connections (m+1 linear, 2 sqrt(m) mesh)",
    ).set(ports, **labels)
