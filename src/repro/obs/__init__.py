"""Observability for the partitioning pipeline and the cycle simulator.

Three instruments, one package:

* :mod:`repro.obs.metrics` — a **metrics registry** (counters, gauges,
  histograms) with Prometheus-text and JSON exporters; the benchmark
  harness routes every table through it so each experiment also lands as
  machine-readable ``benchmarks/out/<exp_id>.json``.
* :mod:`repro.obs.tracing` — **span tracing** of the pipeline stages
  (broadcast removal, flipping, delay insertion, grouping, G-set
  selection, scheduling, ...) with a Chrome ``trace_event`` exporter:
  traces open directly in Perfetto / ``chrome://tracing``.
* :mod:`repro.obs.probe` / :mod:`repro.obs.report` — **per-cycle
  simulator probes**: the cycle simulator emits fire/operand/input/
  violation events behind a zero-overhead-when-disabled protocol, from
  which per-cell occupancy timelines, memory-traffic curves and the
  measured Fig. 21 I/O demand curve are derived.

CLI: ``python -m repro trace --n 12 --m 4 --trace-out t.json`` and
``python -m repro stats --n 12 --m 4``.  See ``docs/observability.md``.
"""

from .metrics import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .probe import (  # noqa: F401
    FireEvent,
    NullProbe,
    OperandEvent,
    Probe,
    RecordingProbe,
    SOURCE_CLASSES,
)
from .report import (  # noqa: F401
    io_demand_curve,
    memory_traffic_per_cycle,
    occupancy_timeline,
    probe_chrome_events,
    register_expected_metrics,
    register_sim_metrics,
)
from .tracing import (  # noqa: F401
    Span,
    Tracer,
    get_tracer,
    install_tracer,
    stage_span,
    uninstall_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "Probe",
    "NullProbe",
    "RecordingProbe",
    "FireEvent",
    "OperandEvent",
    "SOURCE_CLASSES",
    "Span",
    "Tracer",
    "stage_span",
    "install_tracer",
    "uninstall_tracer",
    "get_tracer",
    "occupancy_timeline",
    "memory_traffic_per_cycle",
    "io_demand_curve",
    "probe_chrome_events",
    "register_sim_metrics",
    "register_expected_metrics",
]
