"""Observability for the partitioning pipeline and the cycle simulator.

Three instruments, one package:

* :mod:`repro.obs.metrics` — a **metrics registry** (counters, gauges,
  histograms) with Prometheus-text and JSON exporters; the benchmark
  harness routes every table through it so each experiment also lands as
  machine-readable ``benchmarks/out/<exp_id>.json``.
* :mod:`repro.obs.tracing` — **span tracing** of the pipeline stages
  (broadcast removal, flipping, delay insertion, grouping, G-set
  selection, scheduling, ...) with a Chrome ``trace_event`` exporter:
  traces open directly in Perfetto / ``chrome://tracing``.
* :mod:`repro.obs.probe` / :mod:`repro.obs.report` — **per-cycle
  simulator probes**: the cycle simulator emits fire/operand/input/
  violation events behind a zero-overhead-when-disabled protocol, from
  which per-cell occupancy timelines, memory-traffic curves and the
  measured Fig. 21 I/O demand curve are derived.

* :mod:`repro.obs.perf` — the **benchmark history store** (JSONL +
  ``BENCH_PERF.json`` trajectory roll-up) and the **regression
  detector** behind ``python -m repro perfcheck``.
* :mod:`repro.obs.runlog` — the **run ledger**: every entry point opens
  a run context with a deterministic run ID and appends typed JSONL
  events (stages, lint, plan cache, backend, faults, checkpoints,
  oracle) to ``runs/<run-id>.jsonl``; query via ``python -m repro obs``.
* :mod:`repro.obs.dashboard` — the self-contained **HTML dashboard**
  (``python -m repro dashboard``); imported lazily (as
  ``repro.obs.dashboard``) because it pulls in the viz layer.
* :mod:`repro.obs.profile` — the **hierarchical profiler**: phase trees
  from tracer spans or ledger stage events, per-``(depth, opcode)``
  kernel timings behind a probe-style zero-overhead seam, critical-path
  makespan attribution, folded-stack/flamegraph export, and the
  perfcheck "blame" inputs (``python -m repro profile``).

CLI: ``python -m repro trace --n 12 --m 4 --trace-out t.json``,
``python -m repro stats --n 12 --m 4``, ``python -m repro perfcheck``,
``python -m repro dashboard``.  See ``docs/observability.md``.
"""

from .metrics import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .perf import (  # noqa: F401
    DEFAULT_THRESHOLDS,
    METRIC_CLASSES,
    SCHEMA_VERSION,
    Regression,
    append_history,
    classify_metric,
    compare,
    current_commit,
    latest_by_exp,
    load_history,
    load_records,
    make_baseline,
    make_record,
    rollup,
    write_trajectory,
)
from .probe import (  # noqa: F401
    FireEvent,
    NullProbe,
    OperandEvent,
    Probe,
    RecordingProbe,
    SOURCE_CLASSES,
)
from .profile import (  # noqa: F401
    KERNEL_BUCKETS,
    PROFILE_SCHEMA_VERSION,
    CriticalPath,
    KernelProfiler,
    PathStep,
    ProfileNode,
    attribute_makespan,
    build_phase_tree,
    build_profile_document,
    critical_path,
    install_kernel_profiler,
    kernel_profiler,
    kernel_profiling,
    profile_from_runlog,
    render_profile_text,
    to_folded,
    uninstall_kernel_profiler,
)
from .report import (  # noqa: F401
    io_demand_curve,
    memory_traffic_per_cycle,
    occupancy_timeline,
    probe_chrome_events,
    register_expected_metrics,
    register_sim_metrics,
)
from .runlog import (  # noqa: F401
    RUNLOG_SCHEMA_VERSION,
    RunLog,
    current_run,
    current_run_id,
    current_task,
    emit,
    ledger_path,
    list_runs,
    make_run_id,
    read_ledger,
    run_scope,
    runlog_dir,
    runlog_enabled,
    stage_scope,
    strip_nondeterministic,
    summarize,
    task_scope,
    verify_ledger,
    worker_payload,
    worker_scope,
)
from .tracing import (  # noqa: F401
    Span,
    Tracer,
    get_tracer,
    install_tracer,
    stage_span,
    traced_run,
    uninstall_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "SCHEMA_VERSION",
    "METRIC_CLASSES",
    "DEFAULT_THRESHOLDS",
    "Regression",
    "classify_metric",
    "current_commit",
    "make_record",
    "append_history",
    "load_history",
    "load_records",
    "latest_by_exp",
    "rollup",
    "write_trajectory",
    "make_baseline",
    "compare",
    "Probe",
    "NullProbe",
    "RecordingProbe",
    "FireEvent",
    "OperandEvent",
    "SOURCE_CLASSES",
    "PROFILE_SCHEMA_VERSION",
    "KERNEL_BUCKETS",
    "ProfileNode",
    "build_phase_tree",
    "profile_from_runlog",
    "to_folded",
    "KernelProfiler",
    "install_kernel_profiler",
    "uninstall_kernel_profiler",
    "kernel_profiler",
    "kernel_profiling",
    "PathStep",
    "CriticalPath",
    "critical_path",
    "attribute_makespan",
    "build_profile_document",
    "render_profile_text",
    "Span",
    "Tracer",
    "stage_span",
    "install_tracer",
    "uninstall_tracer",
    "get_tracer",
    "traced_run",
    "RUNLOG_SCHEMA_VERSION",
    "RunLog",
    "run_scope",
    "task_scope",
    "stage_scope",
    "emit",
    "current_run",
    "current_run_id",
    "current_task",
    "make_run_id",
    "ledger_path",
    "runlog_dir",
    "runlog_enabled",
    "worker_payload",
    "worker_scope",
    "read_ledger",
    "list_runs",
    "summarize",
    "verify_ledger",
    "strip_nondeterministic",
    "occupancy_timeline",
    "memory_traffic_per_cycle",
    "io_demand_curve",
    "probe_chrome_events",
    "register_sim_metrics",
    "register_expected_metrics",
]
