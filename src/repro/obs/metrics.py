"""Metrics registry: counters, gauges, histograms, and text exporters.

The registry is the aggregate side of the observability layer
(:mod:`repro.obs`): code records named, optionally labelled values, and
the registry renders them either as Prometheus text-exposition format
(for eyeballing / scraping) or as a plain JSON-able dict (for the
benchmark harness's machine-readable ``benchmarks/out/<exp_id>.json``
artefacts).

Design notes
------------
* Metric instances are created lazily via :meth:`MetricsRegistry.counter`
  / ``gauge`` / ``histogram`` — asking twice for the same name returns
  the same instance (and raises if the second ask wants a different
  type, catching instrumentation bugs early).
* Values may be ``int``, ``float`` or :class:`fractions.Fraction` — the
  simulator's exact measures are Fractions and should stay exact until
  export, where they are rendered as floats.
* Labels are keyword arguments; a metric's series are keyed by the
  sorted ``(key, value)`` tuple so label order never matters.
* Label names are validated at call time (Prometheus grammar; ``__*``,
  ``le`` and ``quantile`` are reserved) and values must be scalars —
  a clear ``ValueError``/``TypeError`` beats silently exporting invalid
  text; values are backslash-escaped at export.
"""

from __future__ import annotations

import json
import re
import threading
from fractions import Fraction
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]

LabelKey = tuple[tuple[str, str], ...]

#: Prometheus label-name grammar; ``__``-prefixed names (``__name__``)
#: are reserved for internal use, ``le``/``quantile`` for histogram and
#: summary buckets.
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")
_RESERVED_LABELS = frozenset({"le", "quantile"})

#: Label values must be scalars that stringify deterministically; an
#: arbitrary object's ``str()`` can contain anything (quotes, newlines)
#: and silently corrupt the text exposition format.
_SCALAR_LABEL_TYPES = (str, bool, int, float, Fraction)


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    items = []
    for k, v in labels.items():
        if (
            not _LABEL_NAME_RE.match(k)
            or k.startswith("__")
            or k in _RESERVED_LABELS
        ):
            raise ValueError(
                f"invalid or reserved label name {k!r}: labels must match "
                f"[a-zA-Z_][a-zA-Z0-9_]* and must not start with '__' or "
                f"be one of {sorted(_RESERVED_LABELS)}"
            )
        if not isinstance(v, _SCALAR_LABEL_TYPES):
            raise TypeError(
                f"label {k}={v!r}: values must be str, bool, int, float "
                f"or Fraction (got {type(v).__name__})"
            )
        items.append((k, str(v)))
    return tuple(sorted(items))


def _escape_label_value(v: str) -> str:
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_value(v: Any) -> float | int:
    if isinstance(v, Fraction):
        return float(v)
    return v


def _render_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in key)
    return "{" + inner + "}"


class _Metric:
    """Shared plumbing for the three metric types."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: dict[LabelKey, Any] = {}
        self._lock = threading.Lock()

    def labels(self) -> Iterable[LabelKey]:
        return tuple(self._series)

    def _prom_header(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class Counter(_Metric):
    """A monotonically increasing count (events, words, violations)."""

    kind = "counter"

    def inc(self, amount: int | float | Fraction = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: Any) -> int | float | Fraction:
        return self._series.get(_label_key(labels), 0)

    def to_prometheus(self) -> list[str]:
        lines = self._prom_header()
        for key, v in sorted(self._series.items()):
            lines.append(f"{self.name}{_render_labels(key)} {_render_value(v)}")
        return lines

    def to_json(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "series": [
                {"labels": dict(key), "value": _render_value(v)}
                for key, v in sorted(self._series.items())
            ],
        }


class Gauge(_Metric):
    """A value that can go anywhere (utilization, makespan, bandwidth)."""

    kind = "gauge"

    def set(self, value: int | float | Fraction, **labels: Any) -> None:
        with self._lock:
            self._series[_label_key(labels)] = value

    def inc(self, amount: int | float | Fraction = 1, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: Any) -> int | float | Fraction:
        return self._series.get(_label_key(labels), 0)

    def to_prometheus(self) -> list[str]:
        lines = self._prom_header()
        for key, v in sorted(self._series.items()):
            lines.append(f"{self.name}{_render_labels(key)} {_render_value(v)}")
        return lines

    def to_json(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "series": [
                {"labels": dict(key), "value": _render_value(v)}
                for key, v in sorted(self._series.items())
            ],
        }


#: Default histogram buckets: span sub-microsecond Python calls up to
#: multi-second pipeline stages (seconds).
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Histogram(_Metric):
    """Bucketed distribution (stage durations, per-set I/O burst sizes)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError(f"histogram {name} needs at least one bucket")

    def observe(self, value: int | float | Fraction, **labels: Any) -> None:
        key = _label_key(labels)
        v = float(value)
        with self._lock:
            state = self._series.get(key)
            if state is None:
                state = {"counts": [0] * len(self.buckets), "sum": 0.0, "count": 0}
                self._series[key] = state
            for i, le in enumerate(self.buckets):
                if v <= le:
                    state["counts"][i] += 1
            state["sum"] += v
            state["count"] += 1

    def count(self, **labels: Any) -> int:
        state = self._series.get(_label_key(labels))
        return 0 if state is None else state["count"]

    def sum(self, **labels: Any) -> float:
        state = self._series.get(_label_key(labels))
        return 0.0 if state is None else state["sum"]

    def quantile(self, q: float, **labels: Any) -> float | None:
        """Estimate the q-quantile (0..1) by linear bucket interpolation.

        Standard Prometheus ``histogram_quantile`` semantics: the rank
        ``q * count`` is located in the cumulative bucket counts and the
        value interpolated within the bucket's ``(lower, le]`` range
        (lower bound 0 for the first bucket — observations here are
        non-negative durations/sizes).  Ranks falling beyond the last
        finite bucket clamp to its upper bound.  Returns ``None`` for an
        empty or unknown series.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        state = self._series.get(_label_key(labels))
        if state is None or not state["count"]:
            return None
        rank = q * state["count"]
        prev_count = 0
        for i, (le, cum) in enumerate(zip(self.buckets, state["counts"])):
            if cum >= rank:
                lower = self.buckets[i - 1] if i else 0.0
                within = cum - prev_count
                if within <= 0:
                    return le
                frac = (rank - prev_count) / within
                return lower + (le - lower) * frac
            prev_count = cum
        return self.buckets[-1]

    def to_prometheus(self) -> list[str]:
        lines = self._prom_header()
        for key, state in sorted(self._series.items()):
            for le, c in zip(self.buckets, state["counts"]):
                bkey = key + (("le", repr(le)),)
                lines.append(f"{self.name}_bucket{_render_labels(bkey)} {c}")
            ikey = key + (("le", "+Inf"),)
            lines.append(f"{self.name}_bucket{_render_labels(ikey)} {state['count']}")
            lines.append(f"{self.name}_sum{_render_labels(key)} {state['sum']}")
            lines.append(f"{self.name}_count{_render_labels(key)} {state['count']}")
        return lines

    def to_json(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "buckets": list(self.buckets),
            "series": [
                {
                    "labels": dict(key),
                    "counts": list(state["counts"]),
                    "sum": state["sum"],
                    "count": state["count"],
                }
                for key, state in sorted(self._series.items())
            ],
        }


class MetricsRegistry:
    """A named collection of metrics with lazy get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Any:
        with self._lock:
            m = self._metrics.get(name)
            if m is None:
                m = cls(name, help, **kwargs)
                self._metrics[name] = m
            elif not isinstance(m, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {m.kind}, "
                    f"not {cls.kind}"
                )
            return m

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    def reset(self) -> None:
        """Drop every metric (tests, or per-run registries)."""
        with self._lock:
            self._metrics.clear()

    def to_prometheus(self) -> str:
        """Prometheus text-exposition rendering of every metric."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].to_prometheus())
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> dict:
        """Plain-dict snapshot (json.dumps-able as is)."""
        return {name: m.to_json() for name, m in sorted(self._metrics.items())}

    def merge_json(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a :meth:`to_json` snapshot into this registry.

        The parallel runners (``run_campaign(jobs=...)``, ``repro
        bench --jobs``) give each worker process a fresh registry and
        ship its snapshot back; the parent merges them here so the
        process-wide registry sees the same series a sequential run
        would.  Counters add, gauges take the incoming value (last
        writer wins, matching sequential ``set`` semantics), histograms
        add their bucket counts and sums.  Label values arrive already
        stringified (that is how ``to_json`` renders them).
        """
        for name, doc in snapshot.items():
            mtype = doc.get("type")
            if mtype == "counter":
                c = self.counter(name, doc.get("help", ""))
                for s in doc["series"]:
                    # inc(0) still materialises the series, matching the
                    # zero-valued series a sequential run records.
                    c.inc(s["value"], **s["labels"])
            elif mtype == "gauge":
                g = self.gauge(name, doc.get("help", ""))
                for s in doc["series"]:
                    g.set(s["value"], **s["labels"])
            elif mtype == "histogram":
                buckets = tuple(doc["buckets"])
                h = self.histogram(name, doc.get("help", ""), buckets=buckets)
                if h.buckets != tuple(sorted(buckets)):
                    raise ValueError(
                        f"histogram {name!r}: bucket mismatch on merge"
                    )
                for s in doc["series"]:
                    key = _label_key(s["labels"])
                    with h._lock:
                        state = h._series.get(key)
                        if state is None:
                            state = {
                                "counts": [0] * len(h.buckets),
                                "sum": 0.0,
                                "count": 0,
                            }
                            h._series[key] = state
                        for i, c_in in enumerate(s["counts"]):
                            state["counts"][i] += c_in
                        state["sum"] += s["sum"]
                        state["count"] += s["count"]
            else:
                raise ValueError(
                    f"cannot merge metric {name!r} of type {mtype!r}"
                )

    def dump_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_json(), indent=indent, sort_keys=True)


_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _GLOBAL


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (returns the previous one)."""
    global _GLOBAL
    prev = _GLOBAL
    _GLOBAL = registry
    return prev
