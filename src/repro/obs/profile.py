"""Deterministic hierarchical profiler and hotspot attribution.

Three layers, all answering "where did the time (or the makespan) go?":

* **Phase profiling** — :func:`build_phase_tree` folds the tracer's
  closed spans (:class:`repro.obs.tracing.Span`) into a nested
  :class:`ProfileNode` tree with cumulative (``total_s``) and exclusive
  (``self_s``) times, so ``partition -> lint preflight -> plan compile ->
  simulate`` becomes a tree whose self-times sum to the measured wall
  time.  :func:`profile_from_runlog` rebuilds the same tree shape from a
  run ledger's ``stage_start``/``stage_end`` events, so a *past* run can
  be profiled from its JSONL alone (``repro profile --from-run``).
* **Kernel profiling** — :class:`KernelProfiler` records per-``(depth,
  opcode)`` batch-step timings and element counts from the vector
  replay loop (and per-node opcode timings from the reference
  interpreter) into :class:`~repro.obs.metrics.Histogram` series, with
  p50/p99 read back via :meth:`~repro.obs.metrics.Histogram.quantile`.
  The install seam (:func:`install_kernel_profiler` /
  :func:`kernel_profiler`) follows the ``probe``/``inject`` contract:
  when nothing is installed the hot loops pay one ``is not None`` check
  and nothing else.
* **Cycle attribution** — :func:`critical_path` extracts the longest
  dependence-constrained chain through an
  :class:`~repro.arrays.plan.ExecutionPlan` (data edges at the
  simulator's local/memory latencies plus same-cell resource edges),
  reports per-edge slack, and :func:`attribute_makespan` charges the
  path's cycles to ``(G-set, cell)`` segments — the top-k hotspot table.

Exports: :func:`to_folded` renders the phase tree in flamegraph-collapsed
(folded-stack) format; :func:`build_profile_document` assembles the
versioned profile JSON the ``repro profile`` CLI verb writes
(:data:`PROFILE_SCHEMA_VERSION`); ``repro.viz.svg.svg_flamegraph``
renders the tree as a self-contained SVG icicle.
"""

from __future__ import annotations

import bisect
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Mapping, Sequence

from .metrics import MetricsRegistry, get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..arrays.plan import ExecutionPlan
    from ..core.graph import DependenceGraph
    from .tracing import Span

__all__ = [
    "PROFILE_SCHEMA_VERSION",
    "KERNEL_BUCKETS",
    "ProfileNode",
    "build_phase_tree",
    "profile_from_runlog",
    "to_folded",
    "KernelProfiler",
    "install_kernel_profiler",
    "uninstall_kernel_profiler",
    "kernel_profiler",
    "kernel_profiling",
    "PathStep",
    "CriticalPath",
    "critical_path",
    "attribute_makespan",
    "experiment_configs",
    "build_config_plan",
    "config_critical_report",
    "build_profile_document",
    "render_profile_text",
]

#: Bump when the profile JSON document's fields change meaning; CI
#: verifies it on the ``repro profile`` smoke artefacts.
PROFILE_SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# Phase profiling: span/ledger streams -> nested self/cumulative tree
# ----------------------------------------------------------------------

@dataclass
class ProfileNode:
    """One phase in the profile tree (aggregated over its occurrences)."""

    name: str
    count: int = 0
    total_s: float = 0.0
    children: "dict[str, ProfileNode]" = field(default_factory=dict)

    @property
    def self_s(self) -> float:
        """Exclusive time: total minus the children's cumulative time.

        Clamped at zero — overlapping children could otherwise push it
        negative, and a flamegraph frame cannot have negative width.
        """
        return max(0.0, self.total_s - sum(
            c.total_s for c in self.children.values()
        ))

    def child(self, name: str) -> "ProfileNode":
        """Get-or-create the named child."""
        node = self.children.get(name)
        if node is None:
            node = ProfileNode(name)
            self.children[name] = node
        return node

    def add(self, path: Sequence[str], seconds: float) -> None:
        """Fold one occurrence of the phase at ``path`` into the tree."""
        node = self
        for name in path:
            node = node.child(name)
        node.count += 1
        node.total_s += seconds

    def to_dict(self) -> dict[str, Any]:
        """JSON form: children sorted by descending cumulative time."""
        return {
            "name": self.name,
            "count": self.count,
            "total_s": round(self.total_s, 9),
            "self_s": round(self.self_s, 9),
            "children": [
                c.to_dict()
                for c in sorted(
                    self.children.values(),
                    key=lambda c: (-c.total_s, c.name),
                )
            ],
        }

    def walk(self) -> "Iterator[tuple[tuple[str, ...], ProfileNode]]":
        """Depth-first ``(path, node)`` pairs, root included."""
        stack: list[tuple[tuple[str, ...], ProfileNode]] = [
            ((self.name,), self)
        ]
        while stack:
            path, node = stack.pop()
            yield path, node
            for c in sorted(
                node.children.values(), key=lambda c: c.name, reverse=True
            ):
                stack.append((path + (c.name,), c))


def build_phase_tree(
    spans: "Sequence[Span]",
    root_name: str = "run",
    wall_s: "float | None" = None,
) -> ProfileNode:
    """Fold closed tracer spans into a nested phase tree.

    Nesting is reconstructed from interval containment (the tracer
    appends children before their parents), so the caller only needs the
    flat ``tracer.spans`` list.  ``wall_s`` fixes the root's cumulative
    time; by default it is the extent of the spans themselves.  Because
    every span lies inside the root and ``self_s`` telescopes, the
    tree's self-times sum to the root total exactly.
    """
    root = ProfileNode(root_name, count=1)
    closed = [s for s in spans if s.end_ns is not None]
    if not closed:
        root.total_s = wall_s or 0.0
        return root
    t_lo = min(s.start_ns for s in closed)
    t_hi = max(s.end_ns for s in closed if s.end_ns is not None)
    root.total_s = wall_s if wall_s is not None else (t_hi - t_lo) / 1e9
    # Parents first at equal starts; a stack of open intervals gives the
    # ancestry of each span.
    ordered = sorted(closed, key=lambda s: (s.start_ns, -(s.end_ns or 0)))
    stack: list[Span] = []
    for s in ordered:
        while stack and not (
            s.start_ns >= stack[-1].start_ns
            and (s.end_ns or 0) <= (stack[-1].end_ns or 0)
        ):
            stack.pop()
        path = tuple(a.name for a in stack) + (s.name,)
        root.add(path, s.duration_s)
        stack.append(s)
    return root


def profile_from_runlog(
    events: Sequence[Mapping[str, Any]],
    root_name: str = "run",
) -> ProfileNode:
    """Rebuild a phase tree from a run ledger's stage events.

    Uses the ``stage_start``/``stage_end`` pairs (with their measured
    ``dur_s``) per task stream; task names become first-level phases, so
    a campaign ledger profiles as ``run -> <config> -> <stage> -> ...``.
    The root total is the ledger's first-to-last timestamp extent.
    """
    root = ProfileNode(root_name, count=1)
    ts = [
        ev["ts"] for ev in events
        if isinstance(ev.get("ts"), (int, float))
    ]
    if ts:
        root.total_s = max(ts) - min(ts)
    stacks: dict[Any, list[str]] = {}
    for ev in events:
        name = ev.get("event")
        task = ev.get("task")
        stack = stacks.setdefault(task, [])
        if name == "stage_start":
            stack.append(str(ev.get("stage")))
        elif name == "stage_end":
            stage = str(ev.get("stage"))
            if stack and stack[-1] == stage:
                stack.pop()
            dur = ev.get("dur_s")
            prefix = ([str(task)] if task is not None else [])
            root.add(
                prefix + stack + [stage],
                dur if isinstance(dur, (int, float)) else 0.0,
            )

    # Task/never-closed prefix nodes were created with zero total; give
    # them their children's cumulative time so self-times telescope to
    # the root total (the remainder lands on the root as untracked).
    def fill(node: ProfileNode) -> None:
        child_sum = 0.0
        for c in node.children.values():
            fill(c)
            child_sum += c.total_s
        if node.count == 0 and node.total_s == 0.0:
            node.total_s = child_sum

    for c in root.children.values():
        fill(c)
    return root


def to_folded(root: ProfileNode) -> list[str]:
    """Flamegraph-collapsed lines: ``a;b;c <self-microseconds>``.

    The standard folded-stack format (Gregg's ``flamegraph.pl``,
    speedscope, inferno all consume it); values are integral
    microseconds of *exclusive* time, zero-self frames are omitted.
    """
    lines = []
    for path, node in root.walk():
        us = round(node.self_s * 1e6)
        if us > 0:
            lines.append(";".join(path) + f" {us}")
    return lines


# ----------------------------------------------------------------------
# Kernel profiling: per-(depth, opcode) step timings, probe-style seam
# ----------------------------------------------------------------------

#: Kernel-step histogram buckets (seconds): batched numpy steps land in
#: the microsecond decades, whole replays in the milliseconds.
KERNEL_BUCKETS = (
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0,
)


class KernelProfiler:
    """Accumulates per-``(backend, depth, opcode)`` kernel-step timings.

    Observations land in the process registry's
    ``repro_profile_kernel_step_seconds`` :class:`Histogram` (and an
    elements counter), so ``repro stats``-style exports see them too;
    :meth:`summary` reads p50/p99 back through
    :meth:`~repro.obs.metrics.Histogram.quantile`.
    """

    def __init__(self, registry: "MetricsRegistry | None" = None) -> None:
        self.registry = registry if registry is not None else get_registry()
        self._hist = self.registry.histogram(
            "repro_profile_kernel_step_seconds",
            "Kernel batch-step wall time by backend/depth/opcode",
            buckets=KERNEL_BUCKETS,
        )
        self._elements = self.registry.counter(
            "repro_profile_kernel_elements_total",
            "Node firings evaluated per backend/depth/opcode",
        )
        #: exact per-key aggregates, for the deterministic summary table
        self._stats: dict[tuple[str, int, str], dict[str, float]] = {}

    def record(
        self,
        opcode: str,
        width: int,
        seconds: float,
        depth: int = 0,
        backend: str = "vector",
    ) -> None:
        """One batch step: ``width`` firings of ``opcode`` at ``depth``."""
        labels = {"backend": backend, "depth": depth, "opcode": opcode}
        self._hist.observe(seconds, **labels)
        self._elements.inc(width, **labels)
        st = self._stats.get((backend, depth, opcode))
        if st is None:
            st = {"calls": 0, "elements": 0, "total_s": 0.0}
            self._stats[(backend, depth, opcode)] = st
        st["calls"] += 1
        st["elements"] += width
        st["total_s"] += seconds

    def summary(self) -> list[dict[str, Any]]:
        """Per-key rows, heaviest total time first (p50/p99 included)."""
        rows = []
        for (backend, depth, opcode), st in self._stats.items():
            labels = {"backend": backend, "depth": depth, "opcode": opcode}
            rows.append(
                {
                    "backend": backend,
                    "depth": depth,
                    "opcode": opcode,
                    "calls": int(st["calls"]),
                    "elements": int(st["elements"]),
                    "total_s": round(st["total_s"], 9),
                    "p50_s": self._hist.quantile(0.50, **labels),
                    "p99_s": self._hist.quantile(0.99, **labels),
                }
            )
        rows.sort(key=lambda r: (-r["total_s"], r["backend"],
                                 r["depth"], r["opcode"]))
        return rows


_KPROF: "KernelProfiler | None" = None


def kernel_profiler() -> "KernelProfiler | None":
    """The installed kernel profiler, or ``None`` when profiling is off.

    The hot loops (:meth:`~repro.arrays.vector_compile.CompiledPlan.
    replay`, :func:`repro.arrays.cycle_sim.simulate`) look this up once
    per run and branch on ``is not None`` — the ``probe``/``inject``
    zero-overhead contract.
    """
    return _KPROF


def install_kernel_profiler(
    kp: "KernelProfiler | None" = None,
) -> KernelProfiler:
    """Install (and return) the process-wide kernel profiler."""
    global _KPROF
    _KPROF = kp if kp is not None else KernelProfiler()
    return _KPROF


def uninstall_kernel_profiler() -> "KernelProfiler | None":
    """Turn kernel profiling off; returns what was installed."""
    global _KPROF
    prev = _KPROF
    _KPROF = None
    return prev


@contextmanager
def kernel_profiling(
    kp: "KernelProfiler | None" = None,
) -> Iterator[KernelProfiler]:
    """Install a kernel profiler for one block, always uninstalling."""
    installed = install_kernel_profiler(kp)
    try:
        yield installed
    finally:
        uninstall_kernel_profiler()


# ----------------------------------------------------------------------
# Cycle attribution: critical path + slack over the plan's constraints
# ----------------------------------------------------------------------

#: Edge-kind preference at equal slack: a data dependence explains a
#: delay better than mere cell occupancy.
_EDGE_RANK = {"data-local": 0, "data-memory": 1, "resource": 2}


@dataclass(frozen=True)
class PathStep:
    """One node on the critical path (chronological order).

    ``edge`` and ``slack`` describe the constraint *into the next step*
    (``"end"``/0 on the last step): the kind of dependence that chains
    them and the idle cycles between the value being ready and the
    consumer firing.
    """

    node: Any
    cell: Any
    cycle: int
    region: Any
    edge: str
    slack: int


@dataclass
class CriticalPath:
    """The longest dependence-constrained chain through a plan."""

    steps: list[PathStep]
    makespan: int
    #: fired node -> minimum incoming-constraint slack (nodes with no
    #: fired predecessor are absent)
    slacks: dict[Any, int]

    @property
    def start_cycle(self) -> int:
        return self.steps[0].cycle if self.steps else 0

    @property
    def end_cycle(self) -> int:
        return self.steps[-1].cycle if self.steps else -1

    @property
    def length(self) -> int:
        """Cycles spanned inclusively: ``end - start + 1``."""
        if not self.steps:
            return 0
        return self.end_cycle - self.start_cycle + 1

    @property
    def matches_makespan(self) -> bool:
        """True when the chain explains the whole run, cycle 0 to last."""
        return self.length == self.makespan

    @property
    def zero_slack_nodes(self) -> int:
        return sum(1 for s in self.slacks.values() if s == 0)


def critical_path(plan: "ExecutionPlan", dg: "DependenceGraph") -> CriticalPath:
    """Extract the critical path over the plan's constraint DAG.

    Constraint edges mirror the simulator's timing rules exactly
    (:func:`repro.arrays.cycle_sim.simulate`): a data operand is usable
    one cycle after its producer fires when producer and consumer share
    a G-set region and are local/neighbouring cells, two cycles after
    when it round-trips external memory; and a cell fires at most one
    node per cycle (resource edges between its consecutive firings).
    A backward dynamic program finds, for the last-firing node, the
    chain reaching the *earliest* possible start cycle (ties broken by
    slack, then edge kind, then node repr — fully deterministic); when
    that chain starts at cycle 0 its length equals the makespan and the
    path accounts for every cycle of the run.
    """
    from ..core.graph import NodeKind

    fires = plan.fires
    if not fires:
        return CriticalPath(steps=[], makespan=plan.makespan, slacks={})
    node_data = dg.g.nodes
    region_of = plan.region_of
    topology = plan.topology

    # Per-cell firing timeline for resource edges.
    by_cell: dict[Any, list[tuple[int, Any]]] = {}
    for nid, (cell, t) in fires.items():
        by_cell.setdefault(cell, []).append((t, nid))
    for timeline in by_cell.values():
        timeline.sort(key=lambda p: (p[0], repr(p[1])))
    cell_cycles = {c: [t for t, _ in tl] for c, tl in by_cell.items()}

    def candidates(nid: Any) -> list[tuple[int, str, Any, int]]:
        """Incoming constraints: ``(slack, kind, pred, pred_cycle)``."""
        cell, t = fires[nid]
        out: list[tuple[int, str, Any, int]] = []
        for ref in node_data[nid].get("operands", {}).values():
            src = ref[0]
            src_kind = node_data[src]["kind"]
            if src_kind in (NodeKind.INPUT, NodeKind.CONST):
                continue  # host-fed / wired: the chain starts here
            pcell, pt = fires[src]
            if pt >= t:
                continue  # a violation edge cannot chain backwards
            same_region = (
                not region_of
                or region_of.get(src) == region_of.get(nid)
            )
            local = cell == pcell or topology.is_neighbor(pcell, cell)
            if same_region and local:
                out.append((t - (pt + 1), "data-local", src, pt))
            else:
                out.append((t - (pt + 2), "data-memory", src, pt))
        timeline = cell_cycles[cell]
        i = bisect.bisect_left(timeline, t)
        if i > 0:
            pt, pred = by_cell[cell][i - 1]
            out.append((t - (pt + 1), "resource", pred, pt))
        return out

    # DP in firing order: earliest chain start reachable from each node.
    order = sorted(fires, key=lambda nid: (fires[nid][1], repr(nid)))
    best_start: dict[Any, int] = {}
    choice: dict[Any, tuple[Any, str, int]] = {}
    slacks: dict[Any, int] = {}
    for nid in order:
        cands = candidates(nid)
        if not cands:
            best_start[nid] = fires[nid][1]
            continue
        slacks[nid] = min(c[0] for c in cands)
        picked = min(
            cands,
            key=lambda c: (
                best_start[c[2]], c[0], _EDGE_RANK[c[1]], repr(c[2]),
            ),
        )
        best_start[nid] = best_start[picked[2]]
        choice[nid] = (picked[2], picked[1], picked[0])

    tail = max(fires, key=lambda nid: (fires[nid][1], repr(nid)))
    # Deterministic tie-break on the last cycle: lexicographically
    # smallest repr among the latest-firing nodes.
    last_t = fires[tail][1]
    tail = min(
        (nid for nid in fires if fires[nid][1] == last_t), key=repr
    )

    chain: list[PathStep] = []
    nid: Any = tail
    edge, slack = "end", 0
    while True:
        cell, t = fires[nid]
        chain.append(
            PathStep(
                node=nid, cell=cell, cycle=t,
                region=region_of.get(nid), edge=edge, slack=slack,
            )
        )
        nxt = choice.get(nid)
        if nxt is None:
            break
        nid, edge, slack = nxt
    chain.reverse()
    # The backward walk hands each node the (edge, slack) of the
    # constraint it satisfies *into its consumer* — exactly the "hop out
    # of this step" the PathStep contract wants, with the tail keeping
    # its ``("end", 0)`` placeholder.
    return CriticalPath(
        steps=chain, makespan=plan.makespan, slacks=slacks
    )


def attribute_makespan(
    cp: CriticalPath, top: int = 8
) -> list[dict[str, Any]]:
    """Charge the path's cycles to ``(G-set, cell)`` segments: top-k.

    Contiguous path steps sharing a region and cell form one segment;
    a segment owns the cycles from its first step to the next segment's
    first step (the last segment runs to the path's end), so the
    segment cycles sum to :attr:`CriticalPath.length` exactly.
    """
    if not cp.steps:
        return []
    segments: list[tuple[Any, Any, int]] = []  # (region, cell, start)
    for s in cp.steps:
        if not segments or (segments[-1][0], segments[-1][1]) != (
            s.region, s.cell,
        ):
            segments.append((s.region, s.cell, s.cycle))
    totals: dict[tuple[str, str], int] = {}
    end = cp.end_cycle + 1
    for i, (region, cell, start) in enumerate(segments):
        stop = segments[i + 1][2] if i + 1 < len(segments) else end
        key = (str(region), str(cell))
        totals[key] = totals.get(key, 0) + (stop - start)
    length = cp.length
    rows = [
        {
            "gset": gset,
            "cell": cell,
            "cycles": cycles,
            "share": round(cycles / length, 6) if length else 0.0,
        }
        for (gset, cell), cycles in totals.items()
    ]
    rows.sort(key=lambda r: (-r["cycles"], r["gset"], r["cell"]))
    return rows[:top]


# ----------------------------------------------------------------------
# Shipped-config helpers and the profile document
# ----------------------------------------------------------------------

def experiment_configs(exp_id: str) -> list[tuple[str, int, int]]:
    """The ``(geometry, n, m)`` configurations an experiment sweeps.

    Only the partitioned-array sweeps (F18 linear, F19 mesh) have
    per-config plans to attribute; other experiments return ``[]``.
    """
    from ..experiments.arrays import F18_CONFIGS, F19_CONFIGS

    if exp_id == "F18":
        return [("linear", n, m) for n, m in F18_CONFIGS]
    if exp_id == "F19":
        return [("mesh", n, m) for n, m in F19_CONFIGS]
    return []


def build_config_plan(
    geometry: str, n: int, m: int
) -> "tuple[DependenceGraph, ExecutionPlan]":
    """Rebuild the partitioned plan the F18/F19 sweeps execute."""
    from ..algorithms.transitive_closure import tc_regular
    from ..arrays.plan import partitioned_plan
    from ..core.ggraph import GGraph, group_by_columns
    from ..core.gsets import (
        make_linear_gsets,
        make_mesh_gsets,
        schedule_gsets,
    )

    dg = tc_regular(n)
    gg = GGraph(dg, group_by_columns)
    if geometry == "linear":
        plan = make_linear_gsets(gg, m, aligned=False)
    else:
        plan = make_mesh_gsets(gg, m)
    order = schedule_gsets(plan, "vertical")
    return dg, partitioned_plan(plan, order)


def config_critical_report(
    geometry: str,
    n: int,
    m: int,
    backend: "str | None" = None,
    top: int = 8,
) -> dict[str, Any]:
    """Critical path + hotspots for one config, simulator-cross-checked.

    Runs one simulation (on ``backend``) so the path length, busy and
    useful counts are checked against a measured
    :class:`~repro.arrays.cycle_sim.SimResult`, not just the plan.
    """
    from ..algorithms.transitive_closure import make_inputs
    from ..algorithms.warshall import random_adjacency
    from ..arrays.vector_sim import dispatch_simulate

    dg, ep = build_config_plan(geometry, n, m)
    cp = critical_path(ep, dg)
    # Same adjacency the F18/F19 sweeps use (linear seeds n+m, mesh n*m)
    # so the cross-checked SimResult is the shipped one.
    a = random_adjacency(
        n, 0.35, seed=(n + m if geometry == "linear" else n * m)
    )
    res = dispatch_simulate(ep, dg, make_inputs(a), backend=backend)
    return {
        "config": f"{geometry}-n{n}-m{m}",
        "geometry": geometry,
        "n": n,
        "m": m,
        "makespan": res.makespan,
        "start_cycle": cp.start_cycle,
        "end_cycle": cp.end_cycle,
        "length": cp.length,
        "matches_makespan": cp.length == res.makespan,
        "busy": res.busy,
        "useful": res.useful,
        "fired_nodes": len(ep.fires),
        "path_nodes": len(cp.steps),
        "zero_slack_nodes": cp.zero_slack_nodes,
        "hotspots": attribute_makespan(cp, top=top),
    }


def build_profile_document(
    phases: ProfileNode,
    wall_s: float,
    kernels: "Sequence[Mapping[str, Any]] | None" = None,
    critical_paths: "Sequence[Mapping[str, Any]] | None" = None,
    experiment: "str | None" = None,
    config: "Mapping[str, Any] | None" = None,
    backend: "str | None" = None,
) -> dict[str, Any]:
    """Assemble the versioned profile JSON document."""
    self_sum = sum(node.self_s for _, node in phases.walk())
    return {
        "version": PROFILE_SCHEMA_VERSION,
        "kind": "repro-profile",
        "experiment": experiment,
        "config": dict(config) if config else None,
        "backend": backend,
        "wall_s": round(wall_s, 9),
        "self_sum_s": round(self_sum, 9),
        "phases": phases.to_dict(),
        "kernels": [dict(k) for k in (kernels or [])],
        "critical_paths": [dict(c) for c in (critical_paths or [])],
    }


def _phase_rows(
    doc: Mapping[str, Any],
) -> list[tuple[str, int, float, float]]:
    rows: list[tuple[str, int, float, float]] = []

    def rec(node: Mapping[str, Any], prefix: str) -> None:
        path = f"{prefix};{node['name']}" if prefix else str(node["name"])
        rows.append(
            (path, node["count"], node["total_s"], node["self_s"])
        )
        for c in node.get("children", []):
            rec(c, path)

    rec(doc["phases"], "")
    return rows


def render_profile_text(doc: Mapping[str, Any], top: int = 10) -> str:
    """Human-readable profile: phases, kernels, critical paths."""
    lines = [
        f"profile v{doc['version']} "
        + (f"experiment={doc['experiment']} " if doc.get("experiment") else "")
        + (f"backend={doc['backend']} " if doc.get("backend") else "")
        + f"wall={doc['wall_s']:.4f}s self-sum={doc['self_sum_s']:.4f}s",
        "",
        f"phases (top {top} by self time):",
        f"  {'phase':<52} {'count':>5} {'total(s)':>10} {'self(s)':>10}",
    ]
    rows = _phase_rows(doc)
    for path, count, total, self_s in sorted(
        rows, key=lambda r: -r[3]
    )[:top]:
        shown = path if len(path) <= 52 else "..." + path[-49:]
        lines.append(
            f"  {shown:<52} {count:>5} {total:>10.4f} {self_s:>10.4f}"
        )
    kernels = doc.get("kernels") or []
    if kernels:
        lines.append("")
        lines.append(f"kernels (top {top} by total time):")
        lines.append(
            f"  {'backend':<10} {'depth':>5} {'opcode':<8} {'calls':>6} "
            f"{'elements':>9} {'total(s)':>10} {'p50(s)':>9} {'p99(s)':>9}"
        )
        for k in kernels[:top]:
            p50 = k.get("p50_s")
            p99 = k.get("p99_s")
            lines.append(
                f"  {k['backend']:<10} {k['depth']:>5} {k['opcode']:<8} "
                f"{k['calls']:>6} {k['elements']:>9} {k['total_s']:>10.6f} "
                f"{(p50 if p50 is not None else 0.0):>9.2g} "
                f"{(p99 if p99 is not None else 0.0):>9.2g}"
            )
    for cp in doc.get("critical_paths") or []:
        lines.append("")
        lines.append(
            f"critical path [{cp['config']}]: cycles "
            f"{cp['start_cycle']}..{cp['end_cycle']} "
            f"length={cp['length']} makespan={cp['makespan']} "
            f"({'=' if cp['matches_makespan'] else '<'} makespan), "
            f"{cp['path_nodes']} node(s), "
            f"{cp['zero_slack_nodes']}/{cp['fired_nodes']} zero-slack"
        )
        if cp.get("hotspots"):
            lines.append(
                f"  {'gset':<22} {'cell':<8} {'cycles':>7} {'share':>7}"
            )
            for h in cp["hotspots"]:
                lines.append(
                    f"  {h['gset']:<22} {h['cell']:<8} {h['cycles']:>7} "
                    f"{h['share']:>7.1%}"
                )
    return "\n".join(lines)
