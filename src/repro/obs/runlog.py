"""Run ledger: one correlated, typed JSONL event log per top-level run.

Every top-level entry point (the ``partition`` / ``trace`` / ``faults`` /
``bench`` / ``perfcheck`` CLI verbs, plus
:func:`repro.core.verify.verify_implementation`,
:func:`repro.resilience.campaign.run_campaign` and
:func:`repro.experiments.runner.run_experiments`) opens a *run scope*
with a **deterministic run ID** and appends versioned events to a
per-run ledger file — stage start/end with durations, the lint
preflight outcome, plan-cache hit/miss/compile (with
``plan_fingerprint``), backend selection and fallback reason, fault
inject/detect/recover steps, checkpoint save/restore, and the oracle
verdict.  ``python -m repro obs`` queries the ledgers (``list`` /
``show`` / ``diff`` / ``verify``).

Design rules, in the order they matter:

* **Zero cost when inactive.**  :func:`emit` (and every scope helper)
  checks one module global and returns — exactly the
  :func:`repro.obs.tracing.stage_span` protocol.  Library users pay a
  ``None`` check per call site unless a run scope is open.
* **Deterministic identity.**  ``run_id = f"{entry}-{sha256(entry +
  canonical params)[:12]}"``.  The parameters *exclude* execution knobs
  that must not change the artefact (``jobs``), so a sequential and a
  ``--jobs 2`` run of the same campaign share one run ID and one ledger
  path.
* **Deterministic content.**  Event payloads carry semantic values
  (cycle counts, G-set ids, fault kinds, fingerprints) — never
  wall-clock numbers.  Wall-clock lives only in the reserved ``ts``
  field and the measured ``dur_s`` / ``compile_s`` duration fields
  (:data:`NONDETERMINISTIC_FIELDS`); stripping those must make a
  parallel run's ledger byte-identical to the sequential run's.
* **Cross-process propagation.**  A parent serializes
  :func:`worker_payload` into each ``ProcessPoolExecutor`` task; the
  worker opens :func:`worker_scope` (an in-memory buffer bound to the
  parent's run ID), returns its drained events with the result, and the
  parent :meth:`RunLog.absorb`\\ s them **in submission order** — the
  same merge discipline as :meth:`repro.obs.metrics.MetricsRegistry.
  merge_json`, and the reason event order is deterministic.
* **Crash-safe.**  Ledgers are buffered in memory and written once, at
  scope exit — including exceptional exit, where a terminal ``error``
  event and a ``run_end`` with ``ok=false`` are appended first.

See ``docs/observability.md`` ("Run ledger") for the event schema table.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from .metrics import get_registry

__all__ = [
    "RUNLOG_SCHEMA_VERSION",
    "NONDETERMINISTIC_FIELDS",
    "RunLog",
    "run_scope",
    "task_scope",
    "stage_scope",
    "emit",
    "current_run",
    "current_run_id",
    "current_task",
    "worker_payload",
    "worker_scope",
    "runlog_enabled",
    "runlog_dir",
    "runlog_max_events",
    "DEFAULT_MAX_EVENTS",
    "make_run_id",
    "ledger_path",
    "read_ledger",
    "list_runs",
    "summarize",
    "verify_ledger",
    "strip_nondeterministic",
    "format_show",
    "format_diff",
]

#: Bump when an event's reserved fields change meaning; every event
#: carries it as ``v`` and ``repro obs verify`` rejects mismatches.
RUNLOG_SCHEMA_VERSION = 1

#: Default ledger directory (overridable via ``REPRO_RUNLOG_DIR``).
DEFAULT_DIR = "runs"

#: Wall-clock-valued fields: the *only* fields allowed to differ between
#: a sequential and a parallel run of the same workload.
NONDETERMINISTIC_FIELDS = frozenset({"ts", "dur_s", "compile_s"})

#: Reserved per-event envelope fields; payloads may not collide.
_RESERVED_FIELDS = frozenset({"v", "run", "seq", "ts", "event", "task"})

#: Default cap on the in-memory event buffer; override with
#: ``REPRO_RUNLOG_MAX_EVENTS``.  Long campaigns keep the first ``cap``
#: events plus one explicit ``events_dropped`` marker instead of growing
#: without bound.
DEFAULT_MAX_EVENTS = 100_000

#: Events that must land even in an overflowing buffer: the terminal
#: pair ``repro obs verify`` requires to close a ledger.
_TERMINAL_EVENTS = frozenset({"run_end", "error"})


def runlog_max_events() -> int:
    """The event-buffer cap (env ``REPRO_RUNLOG_MAX_EVENTS``, min 2)."""
    raw = os.environ.get("REPRO_RUNLOG_MAX_EVENTS", "").strip()
    try:
        cap = int(raw) if raw else DEFAULT_MAX_EVENTS
    except ValueError:
        return DEFAULT_MAX_EVENTS
    return max(cap, 2)


def runlog_enabled() -> bool:
    """Ledger emission switch: ``REPRO_RUNLOG=0`` turns it off."""
    return os.environ.get("REPRO_RUNLOG", "").strip().lower() not in (
        "0", "false", "no", "off",
    )


def runlog_dir(override: "str | Path | None" = None) -> Path:
    """The ledger directory: explicit override > env > ``./runs``."""
    if override is not None:
        return Path(override)
    return Path(os.environ.get("REPRO_RUNLOG_DIR") or DEFAULT_DIR)


def make_run_id(entry: str, params: "Mapping[str, Any] | None") -> str:
    """Deterministic run ID: entry point + digest of canonical params.

    Two runs of the same entry point with the same semantic parameters
    get the same ID (and overwrite the same ledger file — the latest
    run of a configuration wins).  Parallelism degree is deliberately
    *not* a parameter: ``--jobs 2`` must produce the sequential run's
    ledger.
    """
    canonical = json.dumps(
        dict(params or {}), sort_keys=True, default=repr
    )
    digest = hashlib.sha256(
        f"{entry}:{canonical}".encode()
    ).hexdigest()[:12]
    return f"{entry}-{digest}"


def ledger_path(run_id: str, dir: "str | Path | None" = None) -> Path:
    """Where a run's ledger lives: ``<runlog_dir>/<run_id>.jsonl``."""
    return runlog_dir(dir) / f"{run_id}.jsonl"


class RunLog:
    """One run's event buffer (written to disk at scope exit).

    Instances are created by :func:`run_scope` (parent, file-backed) and
    :func:`worker_scope` (worker, in-memory only); library code talks to
    the module-level :func:`emit` / :func:`task_scope` /
    :func:`stage_scope`, which are no-ops unless a scope is open.
    """

    def __init__(
        self,
        run_id: str,
        entry: str,
        path: "Path | None" = None,
        task: "str | None" = None,
    ) -> None:
        self.run_id = run_id
        self.entry = entry
        self.path = path
        self.events: list[dict[str, Any]] = []
        self._seq = 0
        self._tasks: "list[str | None]" = [task]
        self._t0 = time.time()
        self.max_events = runlog_max_events()
        self.dropped = 0
        self._overflow: "dict[str, Any] | None" = None

    # -- emission -------------------------------------------------------

    @property
    def task(self) -> "str | None":
        """The innermost open task scope (``None`` at run level)."""
        return self._tasks[-1]

    def emit(self, event: str, **fields: Any) -> dict[str, Any]:
        """Append one typed event; returns the event dict.

        Once the buffer holds :attr:`max_events` events, further
        non-terminal events are counted rather than stored: a single
        ``events_dropped`` marker (its ``dropped`` count updated in
        place until the ledger is written) takes the next slot, keeping
        ``seq`` contiguous while bounding memory on long campaigns.
        Terminal events (``run_end``, ``error``) always land.
        """
        bad = _RESERVED_FIELDS & fields.keys()
        if bad:
            raise ValueError(
                f"event payload collides with reserved field(s) "
                f"{sorted(bad)}"
            )
        if (
            len(self.events) >= self.max_events
            and event not in _TERMINAL_EVENTS
        ):
            return self._note_drop()
        return self._append(event, fields)

    def _append(self, event: str, fields: Mapping[str, Any]) -> dict[str, Any]:
        ev: dict[str, Any] = {
            "v": RUNLOG_SCHEMA_VERSION,
            "run": self.run_id,
            "seq": self._seq,
            "ts": time.time(),
            "event": event,
            "task": self._tasks[-1],
        }
        ev.update(fields)
        self._seq += 1
        self.events.append(ev)
        return ev

    def _note_drop(self) -> dict[str, Any]:
        self.dropped += 1
        if self._overflow is None:
            self._overflow = self._append(
                "events_dropped", {"limit": self.max_events, "dropped": 0}
            )
        self._overflow["dropped"] = self.dropped
        return self._overflow

    @contextmanager
    def task_ctx(self, name: str) -> Iterator[None]:
        """Attribute events emitted inside to logical task ``name``."""
        self._tasks.append(name)
        try:
            yield
        finally:
            self._tasks.pop()

    @contextmanager
    def stage(self, name: str, **fields: Any) -> Iterator[None]:
        """A ``stage_start`` / ``stage_end`` pair with measured duration."""
        self.emit("stage_start", stage=name, **fields)
        t0 = time.perf_counter()
        try:
            yield
        except BaseException as exc:
            self.emit(
                "stage_end", stage=name,
                dur_s=round(time.perf_counter() - t0, 6),
                error=type(exc).__name__,
            )
            raise
        else:
            self.emit(
                "stage_end", stage=name,
                dur_s=round(time.perf_counter() - t0, 6),
            )

    # -- cross-process merge --------------------------------------------

    def payload(self) -> dict[str, str]:
        """The picklable context a worker needs to join this run."""
        return {"run": self.run_id, "entry": self.entry}

    def absorb(self, events: "Sequence[Mapping[str, Any]]") -> None:
        """Fold one worker's drained events in, re-stamping ``seq``.

        Call once per worker **in submission order** (the discipline
        :meth:`~repro.obs.metrics.MetricsRegistry.merge_json` callers
        already follow) so the merged ledger's event order matches the
        sequential run's exactly.
        """
        for ev in events:
            if (
                len(self.events) >= self.max_events
                and ev.get("event") not in _TERMINAL_EVENTS
            ):
                self._note_drop()
                continue
            merged = dict(ev)
            merged["run"] = self.run_id
            merged["seq"] = self._seq
            self._seq += 1
            self.events.append(merged)

    # -- completion -----------------------------------------------------

    def close(self, ok: bool) -> None:
        """Append ``run_end``, write the ledger, publish run metrics."""
        self.emit("run_end", ok=bool(ok), n_events=len(self.events))
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("w") as fh:
                for ev in self.events:
                    fh.write(
                        json.dumps(ev, sort_keys=True, default=repr) + "\n"
                    )
        reg = get_registry()
        reg.counter(
            "repro_runs_total",
            "run-ledger runs by entry point and verdict",
        ).inc(entry=self.entry, ok=bool(ok))
        counts: dict[str, int] = {}
        for ev in self.events:
            counts[ev["event"]] = counts.get(ev["event"], 0) + 1
        ev_counter = reg.counter(
            "repro_run_events_total",
            "run-ledger events by entry point and event type",
        )
        for name in sorted(counts):
            ev_counter.inc(counts[name], entry=self.entry, event=name)
        if self.dropped:
            reg.counter(
                "repro_run_events_dropped_total",
                "run-ledger events dropped by the buffer cap",
            ).inc(self.dropped, entry=self.entry)


_ACTIVE: "RunLog | None" = None


def current_run() -> "RunLog | None":
    """The open run scope, or ``None`` when no ledger is recording."""
    return _ACTIVE


def current_run_id() -> "str | None":
    """The open run's ID (``None`` outside a run scope)."""
    return _ACTIVE.run_id if _ACTIVE is not None else None


def current_task() -> str:
    """The open task name, or ``""`` — safe as a metrics label value."""
    if _ACTIVE is None or _ACTIVE.task is None:
        return ""
    return _ACTIVE.task


def emit(event: str, **fields: Any) -> None:
    """Append one event to the open run's ledger (no-op without one)."""
    if _ACTIVE is not None:
        _ACTIVE.emit(event, **fields)


@contextmanager
def task_scope(name: str) -> Iterator[None]:
    """Attribute enclosed events to task ``name`` (no-op without a run)."""
    if _ACTIVE is None:
        yield
        return
    with _ACTIVE.task_ctx(name):
        yield


@contextmanager
def stage_scope(name: str, **fields: Any) -> Iterator[None]:
    """Emit a timed stage pair around the block (no-op without a run)."""
    if _ACTIVE is None:
        yield
        return
    with _ACTIVE.stage(name, **fields):
        yield


@contextmanager
def run_scope(
    entry: str,
    params: "Mapping[str, Any] | None" = None,
    dir: "str | Path | None" = None,
) -> "Iterator[RunLog | None]":
    """Open (or join) the run scope for one top-level entry point.

    Nested calls — e.g. :func:`~repro.resilience.campaign.run_campaign`
    under the ``faults`` CLI verb — join the already-open run instead of
    starting a second ledger.  With ``REPRO_RUNLOG=0`` the scope yields
    ``None`` and nothing is recorded.  On an escaping exception the
    ledger is still written, with a terminal ``error`` event and
    ``run_end`` ``ok=false`` — then the exception propagates.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        yield _ACTIVE
        return
    if not runlog_enabled():
        yield None
        return
    run_id = make_run_id(entry, params)
    rl = RunLog(run_id, entry, path=ledger_path(run_id, dir))
    rl.emit(
        "run_start", entry=entry,
        params={k: params[k] for k in sorted(params)} if params else {},
    )
    _ACTIVE = rl
    try:
        yield rl
    except BaseException as exc:
        _ACTIVE = None
        rl.emit("error", error=type(exc).__name__, message=str(exc))
        rl.close(ok=False)
        raise
    else:
        _ACTIVE = None
        rl.close(ok=True)


def worker_payload() -> "dict[str, str] | None":
    """The open run's picklable context for a worker-process task."""
    return _ACTIVE.payload() if _ACTIVE is not None else None


@contextmanager
def worker_scope(
    payload: "Mapping[str, str] | None", task: "str | None" = None
) -> "Iterator[RunLog | None]":
    """Join a parent's run from inside a worker process.

    Opens an in-memory (never file-backed) :class:`RunLog` bound to the
    parent's run ID; the worker returns ``rl.events`` with its result
    and the parent calls :meth:`RunLog.absorb`.  A ``None`` payload
    (ledger disabled in the parent) yields ``None`` and records nothing.

    A forked worker inherits the parent's ``_ACTIVE`` as a dead copy —
    it is saved and restored, never written to, so only the fresh
    buffer opened here records inside the scope.
    """
    global _ACTIVE
    if payload is None:
        yield None
        return
    rl = RunLog(
        payload["run"], payload["entry"], path=None, task=task
    )
    inherited = _ACTIVE
    _ACTIVE = rl
    try:
        yield rl
    finally:
        _ACTIVE = inherited


# ----------------------------------------------------------------------
# Queries: read / list / verify / show / diff
# ----------------------------------------------------------------------

def read_ledger(
    path: "str | Path",
) -> tuple[list[dict[str, Any]], list[str]]:
    """Parse one ledger file: ``(events, problems)``.

    Parse failures are *findings*, not exceptions — ``repro obs
    verify`` reports them; a missing file raises :class:`OSError`.
    """
    events: list[dict[str, Any]] = []
    problems: list[str] = []
    for lineno, line in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            ev = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: invalid JSON ({exc.msg})")
            continue
        if not isinstance(ev, dict):
            problems.append(f"line {lineno}: not an event object")
            continue
        events.append(ev)
    return events, problems


def list_runs(dir: "str | Path | None" = None) -> list[dict[str, Any]]:
    """Summaries of every ledger in the directory, newest first."""
    d = runlog_dir(dir)
    if not d.is_dir():
        return []
    summaries = []
    for p in sorted(d.glob("*.jsonl")):
        events, problems = read_ledger(p)
        s = summarize(events)
        s["path"] = str(p)
        s["problems"] = len(problems)
        summaries.append(s)
    summaries.sort(key=lambda s: (-(s["started"] or 0.0), s["run"] or ""))
    return summaries


def summarize(events: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    """Run-level facts of one ledger (header of ``show`` / ``list``)."""
    if not events:
        return {
            "run": None, "entry": None, "started": None,
            "duration_s": None, "ok": None, "events": 0,
            "tasks": [], "counts": {},
        }
    first, last = events[0], events[-1]
    counts: dict[str, int] = {}
    tasks: list[str] = []
    for ev in events:
        name = str(ev.get("event"))
        counts[name] = counts.get(name, 0) + 1
        task = ev.get("task")
        if task is not None and task not in tasks:
            tasks.append(task)
    started = first.get("ts")
    ended = last.get("ts")
    return {
        "run": first.get("run"),
        "entry": first.get("entry") or str(first.get("run", "")).rsplit(
            "-", 1
        )[0],
        "started": started,
        "duration_s": (
            round(ended - started, 6)
            if isinstance(started, (int, float))
            and isinstance(ended, (int, float)) else None
        ),
        "ok": last.get("ok") if last.get("event") == "run_end" else None,
        "events": len(events),
        "tasks": tasks,
        "counts": dict(sorted(counts.items())),
    }


def verify_ledger(
    events: Sequence[Mapping[str, Any]],
    problems: Sequence[str] = (),
    run_id: "str | None" = None,
) -> list[str]:
    """Integrity findings for one ledger (empty list == clean).

    Checks: schema version; one ``run_start`` first and one ``run_end``
    last (no orphan events outside the run, none from an unknown run
    ID); contiguous ``seq``; per-task-stream monotonic timestamps
    (worker streams interleave on the wall clock, so *global*
    monotonicity is deliberately not required); balanced, properly
    nested ``stage_start`` / ``stage_end`` pairs per task stream.
    """
    findings = list(problems)
    if not events:
        findings.append("empty ledger (no events)")
        return findings
    expect_run = run_id or events[0].get("run")
    starts = [i for i, ev in enumerate(events) if ev.get("event") == "run_start"]
    ends = [i for i, ev in enumerate(events) if ev.get("event") == "run_end"]
    if starts != [0]:
        findings.append(
            f"expected exactly one run_start as the first event, "
            f"found at positions {starts}"
        )
    if ends != [len(events) - 1]:
        findings.append(
            f"expected exactly one run_end as the last event, "
            f"found at positions {ends}"
        )
    last_ts: dict[Any, float] = {}
    stacks: dict[Any, list[str]] = {}
    for i, ev in enumerate(events):
        if ev.get("v") != RUNLOG_SCHEMA_VERSION:
            findings.append(
                f"seq {i}: schema version {ev.get('v')!r} != "
                f"{RUNLOG_SCHEMA_VERSION}"
            )
        if ev.get("run") != expect_run:
            findings.append(
                f"seq {i}: orphan event from run {ev.get('run')!r} "
                f"(expected {expect_run!r})"
            )
        if ev.get("seq") != i:
            findings.append(
                f"position {i}: non-contiguous seq {ev.get('seq')!r}"
            )
        task = ev.get("task")
        ts = ev.get("ts")
        if isinstance(ts, (int, float)):
            prev = last_ts.get(task)
            if prev is not None and ts < prev - 1e-6:
                findings.append(
                    f"seq {i}: timestamp regression in task "
                    f"{task!r} ({ts} < {prev})"
                )
            last_ts[task] = max(prev or ts, ts)
        name = ev.get("event")
        if name == "stage_start":
            stacks.setdefault(task, []).append(str(ev.get("stage")))
        elif name == "stage_end":
            stack = stacks.setdefault(task, [])
            if not stack or stack[-1] != str(ev.get("stage")):
                findings.append(
                    f"seq {i}: stage_end {ev.get('stage')!r} without "
                    f"matching stage_start in task {task!r}"
                )
            else:
                stack.pop()
    for task, stack in sorted(stacks.items(), key=repr):
        for stage in stack:
            findings.append(
                f"unclosed stage {stage!r} in task {task!r}"
            )
    return findings


def strip_nondeterministic(
    events: Sequence[Mapping[str, Any]],
) -> list[dict[str, Any]]:
    """Events minus wall-clock fields — the cross-run comparison form."""
    return [
        {
            k: v for k, v in ev.items()
            if k not in NONDETERMINISTIC_FIELDS
        }
        for ev in events
    ]


def _fmt_fields(ev: Mapping[str, Any]) -> str:
    parts = []
    for k in sorted(ev):
        if k in _RESERVED_FIELDS:
            continue
        v = ev[k]
        if isinstance(v, float):
            parts.append(f"{k}={v:.6g}")
        elif isinstance(v, str):
            parts.append(f"{k}={v}")
        else:
            parts.append(f"{k}={json.dumps(v, sort_keys=True, default=repr)}")
    return " ".join(parts)


def format_show(events: Sequence[Mapping[str, Any]]) -> str:
    """The ``repro obs show`` rendering: header, timeline, stage totals."""
    s = summarize(events)
    lines = [
        f"run {s['run']} (entry {s['entry']}): {s['events']} event(s), "
        f"{len(s['tasks'])} task(s), ok={s['ok']}",
    ]
    if isinstance(s["started"], (int, float)):
        stamp = time.strftime(
            "%Y-%m-%dT%H:%M:%S", time.gmtime(s["started"])
        )
        lines.append(
            f"started {stamp}Z, duration {s['duration_s']:.3f}s"
        )
    lines.append("")
    t0 = events[0].get("ts") if events else 0.0
    lines.append(f"{'seq':>5} {'+t(s)':>9}  {'task':<26} event")
    for ev in events:
        ts = ev.get("ts")
        dt = (
            f"{ts - t0:9.3f}"
            if isinstance(ts, (int, float)) and isinstance(t0, (int, float))
            else f"{'?':>9}"
        )
        task = ev.get("task") or "-"
        detail = _fmt_fields(ev)
        lines.append(
            f"{ev.get('seq', '?'):>5} {dt}  {task:<26} "
            f"{ev.get('event')}" + (f" {detail}" if detail else "")
        )
    totals = _stage_totals(events)
    if totals:
        lines.append("")
        lines.append("per-stage durations:")
        for stage, (count, total) in sorted(totals.items()):
            lines.append(
                f"  {stage:<26} {count:>4} stage(s)  {total:9.3f}s total"
            )
    return "\n".join(lines)


def _stage_totals(
    events: Sequence[Mapping[str, Any]],
) -> dict[str, tuple[int, float]]:
    totals: dict[str, tuple[int, float]] = {}
    for ev in events:
        if ev.get("event") != "stage_end":
            continue
        stage = str(ev.get("stage"))
        dur = ev.get("dur_s")
        count, total = totals.get(stage, (0, 0.0))
        totals[stage] = (
            count + 1,
            total + (dur if isinstance(dur, (int, float)) else 0.0),
        )
    return totals


def format_diff(
    a_events: Sequence[Mapping[str, Any]],
    b_events: Sequence[Mapping[str, Any]],
    a_name: str,
    b_name: str,
) -> tuple[str, bool]:
    """The ``repro obs diff`` rendering: ``(text, content_identical)``.

    Compares event counts by type, per-stage duration totals, and the
    timestamp-stripped event streams (the determinism contract).
    """
    lines = [f"diff {a_name} vs {b_name}"]
    a_sum, b_sum = summarize(a_events), summarize(b_events)
    lines.append(
        f"  events: {a_sum['events']} vs {b_sum['events']}; "
        f"tasks: {len(a_sum['tasks'])} vs {len(b_sum['tasks'])}; "
        f"ok: {a_sum['ok']} vs {b_sum['ok']}"
    )
    kinds = sorted(set(a_sum["counts"]) | set(b_sum["counts"]))
    for kind in kinds:
        ca = a_sum["counts"].get(kind, 0)
        cb = b_sum["counts"].get(kind, 0)
        marker = "" if ca == cb else "   <- differs"
        lines.append(f"  {kind:<18} {ca:>6} vs {cb:<6}{marker}")
    a_tot, b_tot = _stage_totals(a_events), _stage_totals(b_events)
    stages = sorted(set(a_tot) | set(b_tot))
    if stages:
        lines.append("  stage durations (total s):")
        for stage in stages:
            ta = a_tot.get(stage, (0, 0.0))[1]
            tb = b_tot.get(stage, (0, 0.0))[1]
            lines.append(
                f"    {stage:<26} {ta:9.3f} vs {tb:9.3f} "
                f"({tb - ta:+.3f})"
            )
    a_stripped = strip_nondeterministic(a_events)
    b_stripped = strip_nondeterministic(b_events)
    # The run ID differs whenever the parameters differ; exclude it from
    # the content comparison so diffing two *configurations* reports on
    # their behaviour, not their identity.
    for ev in a_stripped:
        ev.pop("run", None)
    for ev in b_stripped:
        ev.pop("run", None)
    identical = a_stripped == b_stripped
    if identical:
        lines.append("  content: identical modulo timestamps")
    else:
        where = len(a_stripped)
        for i, (ea, eb) in enumerate(zip(a_stripped, b_stripped)):
            if ea != eb:
                where = i
                break
        lines.append(
            f"  content: differs from seq {where} onward "
            f"(modulo timestamps)"
        )
    return "\n".join(lines), identical
