"""Per-cycle simulator probes (the event-stream side of observability).

The cycle simulator (:func:`repro.arrays.cycle_sim.simulate`) accepts an
optional ``probe``.  When none is passed (the default) the hot loop pays
a single ``is not None`` check per event site — effectively zero
overhead.  When a probe is supplied, the simulator calls it with every:

* **fire** — a slot-occupying node executing at ``(cell, cycle)``;
* **operand read** — classified by *source class*: ``local`` (same cell
  or register), ``neighbor`` (one-hop link), ``memory`` (cut-and-pile
  round trip), ``input`` (host delivery) or ``const`` (wired control);
* **input deadline** — a host word's delivery deadline being recorded;
* **violation** — a timing/locality constraint failing.

:class:`RecordingProbe` is the standard implementation: it stores the raw
events; :mod:`repro.obs.report` derives per-cell occupancy timelines,
memory-traffic-per-cycle curves, the measured Fig. 21 I/O demand curve,
and Chrome trace events from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Protocol, runtime_checkable

__all__ = [
    "Probe",
    "NullProbe",
    "RecordingProbe",
    "FireEvent",
    "OperandEvent",
    "SOURCE_CLASSES",
]

#: Operand source classes reported via :meth:`Probe.on_operand`.
SOURCE_CLASSES = ("local", "neighbor", "memory", "input", "const")


@runtime_checkable
class Probe(Protocol):
    """What the cycle simulator calls while executing a plan."""

    def on_fire(
        self, cycle: int, cell: Hashable, node: Any, kind: str, tag: str | None
    ) -> None:
        """A slot-occupying node fired."""

    def on_operand(
        self,
        cycle: int,
        cell: Hashable,
        node: Any,
        role: str,
        source: str,
        producer: Any,
    ) -> None:
        """An operand was read; ``source`` is one of SOURCE_CLASSES."""

    def on_input(self, node: Any, deadline: int, cell: Hashable) -> None:
        """A host word's (earliest) delivery deadline was recorded."""

    def on_violation(self, violation: Any) -> None:
        """A timing/locality violation was detected."""


class NullProbe:
    """Explicit do-nothing probe (same as passing ``probe=None``)."""

    def on_fire(self, cycle, cell, node, kind, tag) -> None:  # noqa: D102
        pass

    def on_operand(self, cycle, cell, node, role, source, producer) -> None:  # noqa: D102
        pass

    def on_input(self, node, deadline, cell) -> None:  # noqa: D102
        pass

    def on_violation(self, violation) -> None:  # noqa: D102
        pass


@dataclass(frozen=True)
class FireEvent:
    """One node execution."""

    cycle: int
    cell: Hashable
    node: Any
    kind: str
    tag: str | None


@dataclass(frozen=True)
class OperandEvent:
    """One operand read, classified by where the value came from."""

    cycle: int
    cell: Hashable
    node: Any
    role: str
    source: str
    producer: Any


@dataclass
class RecordingProbe:
    """Collects every simulator event for later analysis.

    Memory cost is proportional to the number of fires + operand reads;
    for per-cycle *aggregates* only, see the derivations in
    :mod:`repro.obs.report` which consume this and can then drop it.
    """

    fires: list[FireEvent] = field(default_factory=list)
    operands: list[OperandEvent] = field(default_factory=list)
    inputs: list[tuple[Any, int, Hashable]] = field(default_factory=list)
    violations: list[Any] = field(default_factory=list)

    def on_fire(self, cycle, cell, node, kind, tag) -> None:  # noqa: D102
        self.fires.append(FireEvent(cycle, cell, node, kind, tag))

    def on_operand(self, cycle, cell, node, role, source, producer) -> None:  # noqa: D102
        self.operands.append(
            OperandEvent(cycle, cell, node, role, source, producer)
        )

    def on_input(self, node, deadline, cell) -> None:  # noqa: D102
        self.inputs.append((node, deadline, cell))

    def on_violation(self, violation) -> None:  # noqa: D102
        self.violations.append(violation)

    # -- light-weight aggregates (heavier ones live in obs.report) -----

    def fires_per_cycle(self) -> list[tuple[int, int]]:
        """Sorted ``(cycle, number of fires)`` pairs."""
        counts: dict[int, int] = {}
        for f in self.fires:
            counts[f.cycle] = counts.get(f.cycle, 0) + 1
        return sorted(counts.items())

    def operand_source_census(self) -> dict[str, int]:
        """How many operand reads came from each source class."""
        census = {s: 0 for s in SOURCE_CLASSES}
        for ev in self.operands:
            census[ev.source] = census.get(ev.source, 0) + 1
        return census

    def cells(self) -> list[Hashable]:
        """Every cell that fired at least once, in first-fire order."""
        seen: dict[Hashable, None] = {}
        for f in self.fires:
            if f.cell not in seen:
                seen[f.cell] = None
        return list(seen)
