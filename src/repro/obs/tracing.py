"""Span-based tracing with a Chrome ``trace_event`` JSON exporter.

A :class:`Tracer` records *spans* — named intervals measured with the
monotonic clock, tagged with arbitrary key/value pairs (node counts, edge
counts, G-set counts, ...).  The pipeline stages of
:mod:`repro.core.transform`, :mod:`repro.core.partitioner`,
:mod:`repro.partitioning.cut_and_pile` and :mod:`repro.arrays.pipeline`
open a span via :func:`stage_span`, which is a cheap no-op until a tracer
is installed (:func:`install_tracer`) — library users pay nothing unless
they ask for a trace.

The exporter emits the Chrome ``trace_event`` format (``X`` complete
events on wall-clock process 1, plus any raw events contributed by the
simulator probes on their own process), so ``python -m repro trace
--trace-out t.json`` produces a file that opens directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from fractions import Fraction
from pathlib import Path
from typing import Any, Iterator

__all__ = [
    "Span",
    "Tracer",
    "stage_span",
    "install_tracer",
    "uninstall_tracer",
    "get_tracer",
    "traced_run",
    "WALL_PID",
    "SIM_PID",
]

#: Chrome-trace process ids: wall-clock pipeline spans vs. simulated cycles.
WALL_PID = 1
SIM_PID = 2


def _jsonable(v: Any) -> Any:
    if isinstance(v, Fraction):
        return float(v)
    if isinstance(v, (str, int, float, bool)) or v is None:
        return v
    return repr(v)


@dataclass
class Span:
    """One named, tagged interval (times in nanoseconds, monotonic)."""

    name: str
    start_ns: int
    end_ns: int | None = None
    args: dict[str, Any] = field(default_factory=dict)
    tid: int = 1

    def tag(self, key: str, value: Any) -> "Span":
        """Attach one key/value pair; chainable."""
        self.args[key] = _jsonable(value)
        return self

    @property
    def duration_ns(self) -> int:
        if self.end_ns is None:
            raise ValueError(f"span {self.name!r} not yet closed")
        return self.end_ns - self.start_ns

    @property
    def duration_s(self) -> float:
        return self.duration_ns / 1e9


class _NullSpan:
    """Singleton stand-in yielded when no tracer is installed."""

    __slots__ = ()

    def tag(self, key: str, value: Any) -> "_NullSpan":  # noqa: D102
        return self

    @property
    def args(self) -> dict:  # noqa: D102
        return {}


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans and raw Chrome events; exports trace JSON."""

    def __init__(self, clock=time.perf_counter_ns) -> None:
        self._clock = clock
        self.t0_ns: int = clock()
        self.spans: list[Span] = []
        #: raw Chrome trace events (probes append simulator-time events)
        self.extra_events: list[dict] = []
        self._stack: list[Span] = []

    @contextmanager
    def span(self, name: str, **args: Any) -> Iterator[Span]:
        """Open a span; the yielded object accepts ``.tag(k, v)``."""
        s = Span(name=name, start_ns=self._clock(), tid=1)
        for k, v in args.items():
            s.tag(k, v)
        self._stack.append(s)
        try:
            yield s
        finally:
            s.end_ns = self._clock()
            self._stack.pop()
            self.spans.append(s)

    def instant(self, name: str, **args: Any) -> None:
        """Record a zero-duration marker event."""
        s = Span(name=name, start_ns=self._clock(), end_ns=None)
        for k, v in args.items():
            s.tag(k, v)
        self.extra_events.append(
            {
                "name": name,
                "ph": "i",
                "ts": (s.start_ns - self.t0_ns) / 1e3,
                "pid": WALL_PID,
                "tid": 1,
                "s": "t",
                "args": s.args,
            }
        )

    def terminal_error(self, exc: BaseException) -> None:
        """Record a run-ending exception as a terminal instant event.

        Open spans are closed by their context managers during unwind,
        so a trace that ends with this marker is still a valid Chrome
        trace — Perfetto shows every stage up to the failure plus the
        ``trace.error`` instant naming the exception.
        """
        self.instant(
            "trace.error",
            error=type(exc).__name__,
            message=str(exc),
        )

    def add_chrome_event(self, event: dict) -> None:
        """Append a pre-built Chrome trace event (probes use this)."""
        self.extra_events.append(event)

    def add_chrome_events(self, events: list[dict]) -> None:
        for e in events:
            self.add_chrome_event(e)

    def find_spans(self, name: str) -> list[Span]:
        """All closed spans with the given name."""
        return [s for s in self.spans if s.name == name]

    # -- export ---------------------------------------------------------

    def to_chrome(self) -> dict:
        """The whole trace as a Chrome ``trace_event`` JSON object.

        Wall-clock spans become ``X`` (complete) events on process
        :data:`WALL_PID`; timestamps are microseconds since the tracer was
        created, as the format requires.  Probe-contributed events (on
        :data:`SIM_PID`, where 1 "microsecond" = 1 simulated cycle) are
        appended verbatim.
        """
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": WALL_PID,
                "tid": 0,
                "args": {"name": "pipeline (wall clock)"},
            },
            {
                "name": "process_name",
                "ph": "M",
                "pid": SIM_PID,
                "tid": 0,
                "args": {"name": "simulator (1 us = 1 cycle)"},
            },
        ]
        for s in self.spans:
            events.append(
                {
                    "name": s.name,
                    "ph": "X",
                    "ts": (s.start_ns - self.t0_ns) / 1e3,
                    "dur": (s.duration_ns) / 1e3,
                    "pid": WALL_PID,
                    "tid": s.tid,
                    "cat": s.name.split(".", 1)[0],
                    "args": s.args,
                }
            )
        events.extend(self.extra_events)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome(self, path) -> int:
        """Write the Chrome trace JSON to ``path``; returns event count.

        Parent directories are created as needed, so ``--trace-out
        runs/today/t.json`` works without a prior ``mkdir``.
        """
        doc = self.to_chrome()
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        with p.open("w") as fh:
            json.dump(doc, fh)
        return len(doc["traceEvents"])


_TRACER: Tracer | None = None


def get_tracer() -> Tracer | None:
    """The installed tracer, or None when tracing is off."""
    return _TRACER


def install_tracer(tracer: Tracer | None = None) -> Tracer:
    """Install (and return) the process-wide tracer; tracing turns on."""
    global _TRACER
    _TRACER = tracer if tracer is not None else Tracer()
    return _TRACER


def uninstall_tracer() -> Tracer | None:
    """Turn tracing off; returns the tracer that was installed."""
    global _TRACER
    prev = _TRACER
    _TRACER = None
    return prev


@contextmanager
def traced_run(trace_path: "str | Path | None" = None) -> Iterator[Tracer]:
    """Install a tracer for one run, crash-safe.

    On normal exit the tracer is uninstalled and handed back untouched —
    the caller decides what to export (and may append probe events
    first).  On an escaping exception, a terminal ``trace.error``
    instant is recorded and — when ``trace_path`` is given — the valid
    partial Chrome trace is flushed to it before the exception
    propagates, so a crashed traced run never loses its trace file.
    """
    tracer = install_tracer()
    try:
        yield tracer
    except BaseException as exc:
        tracer.terminal_error(exc)
        if trace_path is not None:
            tracer.write_chrome(trace_path)
        raise
    finally:
        uninstall_tracer()


@contextmanager
def stage_span(name: str, **args: Any) -> Iterator[Span | _NullSpan]:
    """Span against the installed tracer, or a no-op when tracing is off.

    This is the one call sites use::

        with stage_span("transform.prune", graph=dg.name) as sp:
            ...
            sp.tag("nodes_out", len(out))
    """
    tracer = _TRACER
    if tracer is None:
        yield NULL_SPAN
        return
    with tracer.span(name, **args) as s:
        yield s
