"""G-set checkpointing: the cut-and-pile memories as recovery barriers.

Cut-and-pile already parks every value that crosses a G-set boundary in
external memory (the ``+2``-cycle round trip the simulator charges).
Those parking points are therefore *free* checkpoints: committing a
G-set means writing its boundary values — exactly the words the healthy
execution writes anyway — plus marking its members done.

**Why a checkpoint is always sufficient to resume, on any re-partition:**
commits happen at the granularity of the G-sets of the partition that
executed them.  Consider any dependence edge from a committed node ``u``
to an uncommitted node ``v``.  ``u``'s whole G-set committed and ``v``
did not, so ``u`` and ``v`` were in *different* G-sets of that partition
— the edge crossed a G-set boundary, so ``u``'s value was parked at
commit time.  Hence every value an uncommitted node can ever need is
either in the store, a host input, or produced by the resumed execution
itself; the new partition (``m - f`` linear chain, row-retired mesh) can
be anything.

:class:`RecoveryPlan` is the structured resume description the runtime
builds after a re-partition and the RL401 lint pass proves sound before
a single cycle executes on the degraded array.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Mapping

from ..core.graph import NodeId

__all__ = ["CheckpointStore", "RecoveryPlan"]


@dataclass
class CheckpointStore:
    """Committed G-set state: parked boundary values + done markers.

    ``values`` is keyed by ``(node id, output port)`` — the same
    coordinates the cut-and-pile external memories use.  ``fire_cycle``
    records the absolute cycle each committed node fired at, so resumed
    plans can honour the ``+2``-cycle memory round trip exactly like
    :func:`repro.arrays.plan.partitioned_plan` does.
    """

    values: dict[tuple[NodeId, str], Any] = field(default_factory=dict)
    committed_nodes: set[NodeId] = field(default_factory=set)
    committed_sids: list[tuple] = field(default_factory=list)
    fire_cycle: dict[NodeId, int] = field(default_factory=dict)
    #: Total boundary words written across all commits (parked traffic).
    words_written: int = 0

    def commit(
        self,
        sid: tuple,
        nodes: Iterable[NodeId],
        parked: Mapping[tuple[NodeId, str], Any],
        fires: Mapping[NodeId, int],
    ) -> None:
        """Mark one G-set done and park its boundary values."""
        self.values.update(parked)
        self.committed_nodes.update(nodes)
        self.committed_sids.append(sid)
        self.fire_cycle.update(fires)
        self.words_written += len(parked)

    def has(self, node: NodeId) -> bool:
        """True when ``node`` has committed."""
        return node in self.committed_nodes

    def read(self, node: NodeId, out_port: str) -> Any:
        """A parked value (KeyError when the word was never parked)."""
        return self.values[(node, out_port)]


@dataclass
class RecoveryPlan:
    """A resumed execution after a mid-run re-partition.

    The RL401 lint pass (``recovery.sound``) checks, before the runtime
    resumes, that

    * no node in :attr:`to_fire` is already in :attr:`committed`
      (a re-fired committed node would double-write its parked words and
      waste degraded-array cycles);
    * every logical cell used by :attr:`cell_of` maps through
      :attr:`cell_map` onto a surviving physical cell (none in
      :attr:`retired`, no unmapped logical cell);
    * :attr:`to_fire` and :attr:`committed` together cover
      :attr:`slot_nodes` (otherwise the resumed run can never complete).
    """

    description: str
    #: Nodes the resumed schedule will fire (uncommitted slot nodes).
    to_fire: frozenset[NodeId]
    #: Nodes already committed to the checkpoint store.
    committed: frozenset[NodeId]
    #: Every slot-occupying node of the graph (the completion target).
    slot_nodes: frozenset[NodeId]
    #: Logical cell each to-fire node runs on under the new partition.
    cell_of: dict[NodeId, Hashable]
    #: Logical -> physical cell map of the degraded array.
    cell_map: dict[Hashable, Hashable]
    #: Physical cells diagnosed dead and retired.
    retired: frozenset[Hashable]
