"""The resilient executor: G-set-stepped runs with mid-run recovery.

Instead of simulating one monolithic execution plan, the resilient
runtime drives the pile one G-set at a time — the same cells, the same
skews, the same cycles as :func:`repro.arrays.plan.partitioned_plan`
(a fault-free resilient run fires every node at the *identical*
``(cell, cycle)``; the test suite asserts this) — but with a commit
barrier after every set:

1. build the set's attempt subgraph (operands from earlier sets become
   reads of the checkpoint store — the cut-and-pile external memories);
2. simulate it at absolute cycles, with the campaign's injector armed;
3. run the detectors (deadline watchdog, then full-rate signature
   recompute-and-compare);
4. on success, park the set's boundary words and commit; on
   :class:`~repro.resilience.detect.FaultDetected`, retry with backoff —
   and when the same physical cell stays implicated across
   ``permanent_threshold`` consecutive detections, diagnose a permanent
   fault, retire the cell (linear bypass ``m -> m-f``; mesh row
   retirement), re-partition the *uncommitted remainder* of the G-graph
   with the existing :func:`~repro.core.gsets.make_linear_gsets` /
   :func:`~repro.core.gsets.make_mesh_gsets` machinery, lint the
   resulting :class:`~repro.resilience.checkpoint.RecoveryPlan` (RL401),
   and resume from the checkpoint.

Every cycle of overhead — failed attempts, backoff, re-partition
control, idle slots left by committed members inside re-cut G-sets — is
accounted on the same clock the healthy run uses, so
``RecoveryResult.degraded_throughput`` is a measured number, not an
estimate.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Hashable, Mapping, Sequence

import numpy as np

from ..algorithms import transitive_closure as tc
from ..arrays.plan import ExecutionPlan, _mesh_skew
from ..arrays.topology import linear_topology, mesh_topology
from ..core.evaluate import evaluate, evaluate_full
from ..core.ggraph import GGraph
from ..core.graph import DependenceGraph, NodeId, NodeKind, PortRef
from ..core.gsets import GSet, GSetPlan, make_linear_gsets, make_mesh_gsets, schedule_gsets
from ..core.partitioner import PartitionedImplementation
from ..core.semiring import BOOLEAN, Semiring
from ..obs import runlog
from ..obs.metrics import get_registry
from ..obs.tracing import stage_span
from .checkpoint import CheckpointStore, RecoveryPlan
from .detect import DetectionEvent, FaultDetected, check_signatures, check_watchdog
from .faults import AttemptInjector, FaultKind, FaultSpec

__all__ = [
    "CellHealth",
    "RecoveryPolicy",
    "ResilienceError",
    "RecoveryExhausted",
    "TimelineEvent",
    "RecoveryResult",
    "run_resilient",
    "run_resilient_closure",
]


class ResilienceError(RuntimeError):
    """An unrecoverable resilience-runtime failure."""


class RecoveryExhausted(ResilienceError):
    """The retry budget ran out (or no cells survive) — a structured stop.

    Carries the G-set that could not be completed, the number of
    attempts spent on it, and the last detection event.
    """

    def __init__(
        self, sid: tuple, attempts: int, last: "DetectionEvent | None", why: str
    ) -> None:
        self.sid = sid
        self.attempts = attempts
        self.last_detection = last
        super().__init__(
            f"recovery exhausted at G-set {sid} after {attempts} attempt(s): {why}"
        )


@dataclass(frozen=True)
class RecoveryPolicy:
    """Tunable recovery behaviour (all cycle costs land on the run clock).

    Attributes
    ----------
    max_retries:
        Retries allowed per G-set before :class:`RecoveryExhausted`
        (or, with :attr:`degrade`, the graceful-degradation tier).
    backoff_cycles:
        Base backoff.  ``backoff="linear"`` waits ``r * backoff_cycles``
        on retry ``r``; ``"exponential"`` waits
        ``backoff_cycles * 2**(r-1)`` capped at
        :attr:`backoff_cap_cycles`.
    backoff:
        Backoff growth discipline, ``"linear"`` or ``"exponential"``.
    backoff_cap_cycles:
        Upper bound on one exponential backoff wait (RL402 requires the
        growth to be bounded).
    jitter_cycles:
        Deterministic jitter amplitude: retry ``r`` of G-set ``sid``
        additionally waits ``sha256(f"jitter:{sid}:{r}") %
        (jitter_cycles + 1)`` cycles — de-synchronizing repeated
        retries without any platform-dependent randomness.
    permanent_threshold:
        Consecutive signature detections that must implicate one same
        physical cell before it is diagnosed permanent and retired.
    quarantine_strikes:
        Escalation ladder: cumulative signature strikes (across the
        whole run, not necessarily consecutive) after which a cell is
        *quarantined* as suspected-permanent and the existing
        re-partition path triggers instead of burning the retry budget
        on a chronically flaky cell.  ``0`` disables the ladder.
    repartition_cycles:
        Control-plane cost charged for a mid-run re-partition.
    degrade:
        Enable the graceful-degradation tier: when the retry budget is
        exhausted, or a re-partition is impossible (no surviving
        cells), the affected G-set is retired to a host-side reference
        computation and the run completes with ``degraded=True``
        instead of raising :class:`RecoveryExhausted`.
    degrade_cycles_per_node:
        Host-side cost model for a degraded G-set: cycles charged per
        member node computed on the host (the host is slower per value
        than the array but needs no retries).
    signature_sample_rate:
        Fraction of members whose signatures are recomputed (1.0 — the
        default — is what guarantees every value fault is caught).
    """

    max_retries: int = 4
    backoff_cycles: int = 2
    backoff: str = "linear"
    backoff_cap_cycles: int = 64
    jitter_cycles: int = 0
    permanent_threshold: int = 2
    quarantine_strikes: int = 0
    repartition_cycles: int = 8
    degrade: bool = False
    degrade_cycles_per_node: int = 2
    signature_sample_rate: float = 1.0


def _backoff_wait(policy: RecoveryPolicy, sid: tuple, attempt: int) -> int:
    """Cycles to wait after failed ``attempt`` of G-set ``sid``.

    Deterministic by construction: exponential growth is capped, and
    jitter comes from a stringly-keyed SHA-256 draw, never a platform
    RNG — the same policy replays the same waits everywhere.
    """
    if policy.backoff == "exponential":
        base = min(
            policy.backoff_cycles * (2 ** (attempt - 1)),
            policy.backoff_cap_cycles,
        )
    else:
        base = policy.backoff_cycles * attempt
    if policy.jitter_cycles > 0:
        digest = hashlib.sha256(f"jitter:{sid}:{attempt}".encode()).digest()
        base += digest[0] % (policy.jitter_cycles + 1)
    return base


@dataclass
class CellHealth:
    """One physical cell's health record on the per-run scoreboard.

    ``state`` walks ``healthy -> suspect`` on the first implication and
    ends in ``retired`` (diagnosed permanent) or ``quarantined``
    (escalated after :attr:`RecoveryPolicy.quarantine_strikes` strikes);
    cells never leave a terminal state within one run.
    """

    cell: Hashable
    state: str = "healthy"  # healthy | suspect | retired | quarantined
    strikes: int = 0
    implicated: int = 0
    first_implicated: "int | None" = None
    retired_at: "int | None" = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe rendering for reports and campaign summaries."""
        return {
            "cell": repr(self.cell),
            "state": self.state,
            "strikes": self.strikes,
            "implicated": self.implicated,
            "first_implicated": self.first_implicated,
            "retired_at": self.retired_at,
        }


@dataclass(frozen=True)
class TimelineEvent:
    """One step of the recovery timeline (renderable as a trace span)."""

    # "gset" | "retry" | "backoff" | "repartition" | "skip" | "degrade"
    kind: str
    sid: tuple
    start: int
    end: int
    detail: str = ""


@dataclass
class RecoveryResult:
    """Everything a resilient run measured."""

    description: str
    outputs: dict[NodeId, Any]
    total_cycles: int
    healthy_cycles: int
    stall_cycles: int
    injected: list[FaultSpec]
    detections: list[DetectionEvent]
    detected_fault_count: int
    retries: int
    repartitions: int
    retired_cells: frozenset[Hashable]
    final_m: int
    words_parked: int
    timeline: list[TimelineEvent]
    #: Absolute cycle every committed node fired at (fault-free runs
    #: reproduce :func:`repro.arrays.plan.partitioned_plan` exactly).
    fire_cycles: dict[NodeId, int]
    oracle_ok: "bool | None" = None
    #: G-sets retired to the host-side reference computation (graceful
    #: degradation) and the member nodes the host computed.
    degraded_sids: list[tuple] = field(default_factory=list)
    degraded_nodes: int = 0
    #: Escalated-to-permanent specs the quarantine ladder synthesized
    #: (``provenance="escalated"``; never armed in the simulator).
    escalations: list[FaultSpec] = field(default_factory=list)
    #: Per-physical-cell health records (initial topology's cells).
    scoreboard: dict[Hashable, CellHealth] = field(default_factory=dict)
    #: Cycles from each G-set's first detection to its commit/degrade.
    repair_cycles: list[int] = field(default_factory=list)

    @property
    def overhead_cycles(self) -> int:
        """Cycles beyond the fault-free makespan of the healthy plan."""
        return self.total_cycles - self.healthy_cycles

    @property
    def degraded_throughput(self) -> Fraction:
        """Measured throughput as a fraction of the healthy run's (<= 1)."""
        if self.total_cycles <= 0:
            return Fraction(0)
        return Fraction(self.healthy_cycles, self.total_cycles)

    @property
    def slowdown(self) -> Fraction:
        """``T_run / T_healthy`` (>= 1) — the inverse lens on
        :attr:`degraded_throughput`, matching
        :attr:`repro.arrays.faults.FaultReport.slowdown`."""
        if self.healthy_cycles <= 0:
            return Fraction(1)
        return Fraction(self.total_cycles, self.healthy_cycles)

    @property
    def degraded(self) -> bool:
        """True when any G-set was retired to the host (graceful tier)."""
        return bool(self.degraded_sids)

    @property
    def mttr_cycles(self) -> "float | None":
        """Mean cycles from a set's first detection to its commit
        (measured repair time; ``None`` for fault-free runs)."""
        if not self.repair_cycles:
            return None
        return sum(self.repair_cycles) / len(self.repair_cycles)

    @property
    def availability(self) -> Fraction:
        """Fraction of cell-cycles the array's cells were in service.

        A cell retired (or quarantined) at clock ``t`` was available
        for ``t`` of the run's ``total_cycles``; surviving cells for
        all of them.  1 for a fault-free run, and the per-cell view of
        the hyper-systolic row-retirement cost as arrays shrink.
        """
        if self.total_cycles <= 0 or not self.scoreboard:
            return Fraction(1)
        alive = sum(
            min(h.retired_at, self.total_cycles)
            if h.retired_at is not None else self.total_cycles
            for h in self.scoreboard.values()
        )
        return Fraction(alive, len(self.scoreboard) * self.total_cycles)

    @property
    def recovered(self) -> bool:
        """Every detected fault was survived (the run completed)."""
        return self.detected_fault_count == len(
            [f for f in self.injected if f.triggered]
        )

    @property
    def all_faults_detected(self) -> bool:
        """Every fault that actually fired was caught by a detector."""
        return self.recovered

    def output_matrix(self, n: int, semiring: Semiring = BOOLEAN) -> np.ndarray:
        """Assemble ``("out", i, j)`` outputs into a matrix."""
        m = np.empty((n, n), dtype=semiring.dtype)
        for i in range(n):
            for j in range(n):
                m[i, j] = self.outputs[("out", i, j)]
        return m


def _identity_cell_map(geometry: str, m: int, shape: tuple[int, int]) -> dict:
    if geometry == "linear":
        return {c: c for c in range(m)}
    return {(r, c): (r, c) for r in range(shape[0]) for c in range(shape[1])}


def _skew_fn(geometry: str, skew_unit: int) -> Callable[[Any], int]:
    if geometry == "linear":
        return lambda cell: skew_unit * int(cell)
    return lambda cell: _mesh_skew(cell, skew_unit)


@dataclass
class _SetLayout:
    """One pending G-set's uncommitted members with plan coordinates."""

    sid: tuple
    members: tuple[NodeId, ...]  # dg topological order
    cell_of: dict[NodeId, Hashable]
    slot_of: dict[NodeId, int]
    comp_time: int


def _layout(
    s: GSet,
    gg: GGraph,
    committed: set[NodeId],
    topo_index: Mapping[NodeId, int],
) -> _SetLayout:
    cell_of: dict[NodeId, Hashable] = {}
    slot_of: dict[NodeId, int] = {}
    for gid, cell in zip(s.gids, s.cells):
        for j, nid in enumerate(gg.gnodes[gid].members):
            if nid in committed:
                continue
            cell_of[nid] = cell
            slot_of[nid] = j
    members = tuple(sorted(cell_of, key=lambda n: topo_index[n]))
    return _SetLayout(
        sid=s.sid,
        members=members,
        cell_of=cell_of,
        slot_of=slot_of,
        comp_time=s.comp_time(gg),
    )


def _build_attempt_graph(
    dg: DependenceGraph,
    layout: _SetLayout,
    store: CheckpointStore,
    inputs: Mapping[NodeId, Any],
) -> tuple[DependenceGraph, dict[NodeId, Any], list[tuple[NodeId, str]]]:
    """The attempt subgraph, its input env, and the ports to park.

    Members are re-added with their original ids; operands outside the
    set become reads of the checkpoint store (synthetic
    ``("ckpt", src, port)`` inputs), host inputs, or constants.  Output
    taps expose every member's ``out`` port (``("sig", nid)`` — the
    signature the detector compares) plus every forwarded port consumed
    outside the set (``("park", nid, port)`` — the cut-and-pile words
    the commit parks).
    """
    member_set = set(layout.members)
    sub = DependenceGraph(f"{dg.name}/gset{layout.sid}")
    sub_inputs: dict[NodeId, Any] = {}
    node_data = dg.g.nodes

    def resolve(src: NodeId, port: str) -> PortRef:
        if src in member_set:
            return PortRef(src, port)
        if store.has(src):
            synth = ("ckpt", src, port)
            if synth not in sub:
                sub.add_input(synth)
                sub_inputs[synth] = store.read(src, port)
            return PortRef(synth, "out")
        src_kind = node_data[src]["kind"]
        if src_kind is NodeKind.INPUT:
            if src not in sub:
                sub.add_input(src, tag=node_data[src].get("tag"))
                sub_inputs[src] = inputs[src]
            return PortRef(src, port)
        if src_kind is NodeKind.CONST:
            if src not in sub:
                sub.add_const(src, node_data[src]["value"])
            return PortRef(src, port)
        raise ResilienceError(
            f"G-set {layout.sid} depends on uncommitted node {src!r} "
            "outside the set — the resumed schedule is unsound"
        )

    for nid in layout.members:
        d = node_data[nid]
        kind = d["kind"]
        operands = {
            role: resolve(src, port)
            for role, (src, port) in d["operands"].items()
        }
        if kind is NodeKind.OP:
            sub.add_op(
                nid, d["opcode"], operands,
                comp_time=d.get("comp_time", 1), tag=d.get("tag"),
            )
        elif kind in (NodeKind.PASS, NodeKind.DELAY):
            (ref,) = operands.values()
            sub.add_pass(nid, ref, kind=kind, tag=d.get("tag"))
        else:  # pragma: no cover - G-nodes only group slot nodes
            raise ResilienceError(f"non-slot node {nid!r} inside a G-node")

    parked_ports: list[tuple[NodeId, str]] = []
    for nid in layout.members:
        sub.add_output(("sig", nid), PortRef(nid, "out"))
        for p in dg.output_ports(nid):
            consumed_outside = any(
                dst not in member_set for dst, _ in dg.consumers(nid, p)
            )
            if consumed_outside:
                parked_ports.append((nid, p))
                if p != "out":
                    sub.add_output(("park", nid, p), PortRef(nid, p))
    return sub, sub_inputs, parked_ports


def run_resilient(
    dg: DependenceGraph,
    gg: GGraph,
    plan: GSetPlan,
    order: Sequence[GSet],
    inputs: Mapping[NodeId, Any],
    semiring: Semiring = BOOLEAN,
    faults: Sequence[FaultSpec] = (),
    policy: RecoveryPolicy = RecoveryPolicy(),
    aligned: bool = True,
    reschedule: "Callable[[GSetPlan], list[GSet]] | None" = None,
    skew_unit: int = 1,
    verify: bool = True,
    record_metrics: bool = True,
    description: "str | None" = None,
    rng: "random.Random | None" = None,
    backend: "str | None" = None,
) -> RecoveryResult:
    """Execute a partitioned design with checkpoints, detection, recovery.

    Parameters
    ----------
    faults:
        Armed :class:`~repro.resilience.faults.FaultSpec` list (empty for
        a fault-free run — which then fires every node at exactly the
        cycles :func:`~repro.arrays.plan.partitioned_plan` assigns).
    policy:
        Retry/backoff/diagnosis/re-partition tuning.
    aligned:
        Alignment flag forwarded to :func:`make_linear_gsets` when a
        permanent fault forces a linear re-partition.
    reschedule:
        Scheduler for re-partitioned plans (default: the paper's
        vertical-path policy).
    verify:
        Compare the recovered outputs against the software oracle
        (:func:`repro.core.evaluate.evaluate`) and record the verdict on
        ``RecoveryResult.oracle_ok``.
    record_metrics:
        Publish ``repro_fault_*`` metrics to the process-wide registry.
    backend:
        Simulator backend for the per-set attempts (``None`` uses the
        process default).  Attempts that an armed fault *could* touch
        keep the injection seam and therefore run on the reference
        interpreter regardless (see
        :meth:`~repro.resilience.faults.AttemptInjector.may_trigger`);
        provably fault-free attempts drop the seam and may use the
        vectorized backend.

    Raises
    ------
    RecoveryExhausted
        When one G-set exceeds the retry budget or no cells survive.
    """
    from ..arrays.vector_sim import get_backend, resolve_backend

    _preflight_policy(policy)
    backend_name = resolve_backend(backend)
    simulate = get_backend(backend_name)

    if reschedule is None:
        reschedule = lambda p: schedule_gsets(p, "vertical")  # noqa: E731
    desc = description or (
        f"{dg.name} -> {plan.geometry}(m={plan.m}) resilient"
    )
    runlog.emit(
        "backend", backend=backend_name, design=desc,
        geometry=plan.geometry, m=plan.m,
    )
    faults = list(faults)
    topo_index = {nid: i for i, nid in enumerate(dg.topological_order())}
    slot_nodes = frozenset(
        nid for nid in topo_index
        if dg.g.nodes[nid]["kind"].occupies_slot
    )

    geometry = plan.geometry
    cur_m = plan.m
    cur_shape = plan.shape
    cell_map: dict[Hashable, Hashable] = _identity_cell_map(
        geometry, cur_m, cur_shape
    )
    retired: set[Hashable] = set()
    skew = _skew_fn(geometry, skew_unit)
    topo = (
        linear_topology(cur_m) if geometry == "linear"
        else mesh_topology(*cur_shape)
    )

    store = CheckpointStore()
    clock = 0
    stalls = 0
    retries = 0
    repartitions = 0
    timeline: list[TimelineEvent] = []
    detections: list[DetectionEvent] = []
    detected_spec_ids: set[int] = set()

    healthy_cycles = _healthy_clock(gg, order)

    queue: list[GSet] = list(order)
    i = 0
    attempts_this_set = 0
    implicated_history: list[set[Hashable]] = []
    logged_specs: set[int] = set()

    # Per-physical-cell health scoreboard (escalation ladder state).
    scoreboard: dict[Hashable, CellHealth] = {
        c: CellHealth(cell=c) for c in cell_map
    }
    escalations: list[FaultSpec] = []
    degraded_sids: list[tuple] = []
    degraded_nodes = 0
    repair_cycles: list[int] = []
    incident_open: "int | None" = None
    # Graceful-degradation terminal mode: once a re-partition proves
    # impossible the array is written off and every remaining G-set
    # goes straight to the host-side reference computation.
    host_only = False

    def _host_complete(s: GSet, layout: _SetLayout, start: int, reason: str) -> int:
        """Graceful degradation: compute one G-set host-side and commit it.

        The host evaluates the attempt subgraph with the reference
        interpreter — reliable by assumption, like the signature
        recompute — parks exactly the words the array would have
        parked, and charges ``degrade_cycles_per_node`` per member on
        the same run clock every other recovery cost lands on.
        """
        nonlocal degraded_nodes
        sub, sub_inputs, parked_ports = _build_attempt_graph(
            dg, layout, store, inputs
        )
        full = evaluate_full(sub, sub_inputs, semiring)
        end = start + policy.degrade_cycles_per_node * len(layout.members)
        parked = {(nid, p): full[nid][p] for nid, p in parked_ports}
        store.commit(
            s.sid, layout.members, parked,
            {nid: end for nid in layout.members},
        )
        degraded_sids.append(s.sid)
        degraded_nodes += len(layout.members)
        timeline.append(
            TimelineEvent(
                "degrade", s.sid, start, end,
                f"{reason}: {len(layout.members)} node(s) host-computed",
            )
        )
        runlog.emit(
            "degrade", design=desc, sid=repr(s.sid), reason=reason,
            nodes=len(layout.members), words=len(parked),
        )
        return end

    with stage_span(
        "resilience.run", graph=dg.name, geometry=geometry, m=plan.m,
        gsets=len(order), faults=len(faults),
    ) as sp:
        while i < len(queue):
            s = queue[i]
            layout = _layout(s, gg, store.committed_nodes, topo_index)
            if not layout.members:
                timeline.append(
                    TimelineEvent("skip", s.sid, clock, clock, "all committed")
                )
                i += 1
                attempts_this_set = 0
                implicated_history.clear()
                continue
            if host_only:
                clock = _host_complete(s, layout, clock, "no_survivors")
                if incident_open is not None:
                    repair_cycles.append(clock - incident_open)
                    incident_open = None
                i += 1
                attempts_this_set = 0
                implicated_history.clear()
                continue

            # Earliest start honouring checkpointed cross-set operands
            # (memory round trip) — partitioned_plan's stall rule.
            earliest = clock
            for nid in layout.members:
                offset = skew(layout.cell_of[nid]) + layout.slot_of[nid]
                for src, _port in dg.g.nodes[nid]["operands"].values():
                    prior = store.fire_cycle.get(src)
                    if prior is not None:
                        earliest = max(earliest, prior + 2 - offset)
            stalls += earliest - clock
            set_start = earliest

            sub, sub_inputs, parked_ports = _build_attempt_graph(
                dg, layout, store, inputs
            )
            fires = {
                nid: (
                    layout.cell_of[nid],
                    set_start + skew(layout.cell_of[nid]) + layout.slot_of[nid],
                )
                for nid in layout.members
            }
            ep = ExecutionPlan(
                topology=topo,
                fires=fires,
                description=f"gset {s.sid} attempt {attempts_this_set + 1}",
            )
            ep.validate_exclusive()

            injector = AttemptInjector(faults, semiring, cell_map)
            # When no armed fault can touch this attempt the injector is
            # provably a no-op: drop the seam so the attempt may run on
            # the vectorized backend (it falls back whenever ``inject``
            # is armed).  The injector object itself stays — the
            # watchdog reads its (empty) delivery log either way.
            armed = injector.may_trigger(fires, sub_inputs)
            res = simulate(
                ep, sub, sub_inputs, semiring,
                inject=injector if armed else None,
            )
            if res.violations:  # pragma: no cover - internal invariant
                raise ResilienceError(
                    f"attempt plan for G-set {s.sid} violated timing: "
                    f"{res.violations[0]}"
                )
            attempts_this_set += 1
            attempt_end = set_start + layout.comp_time
            for f in injector.triggered_specs:
                if id(f) not in logged_specs:
                    logged_specs.add(id(f))
                    runlog.emit(
                        "fault_inject", design=desc, kind=f.kind.value,
                        fault=f.describe(), sid=repr(s.sid),
                        attempt=attempts_this_set,
                    )

            try:
                check_watchdog(
                    injector, s.sid, attempts_this_set, set_start
                )
                computed = {
                    nid: res.outputs[("sig", nid)] for nid in layout.members
                }
                check_signatures(
                    sub, sub_inputs, semiring, layout.members, computed,
                    layout.cell_of, cell_map, s.sid, attempts_this_set,
                    set_start,
                    sample_rate=policy.signature_sample_rate, rng=rng,
                )
            except FaultDetected as fd:
                detections.append(fd.event)
                detected_spec_ids.update(
                    id(f) for f in injector.triggered_specs
                )
                runlog.emit(
                    "fault_detect", design=desc, reason=fd.reason,
                    sid=repr(s.sid), attempt=attempts_this_set,
                    nodes=len(fd.nodes),
                    cells=sorted(map(repr, fd.cells)),
                )
                timeline.append(
                    TimelineEvent(
                        "retry", s.sid, set_start, attempt_end,
                        f"attempt {attempts_this_set}: {fd.reason}",
                    )
                )
                retries += 1
                if incident_open is None:
                    incident_open = attempt_end
                # Scoreboard: every implicated cell takes a strike
                # (dropped words implicate the channel, not silicon).
                for cell in fd.event.strike_cells:
                    h = scoreboard.setdefault(cell, CellHealth(cell=cell))
                    h.strikes += 1
                    h.implicated += 1
                    if h.first_implicated is None:
                        h.first_implicated = attempt_end
                    if h.state == "healthy":
                        h.state = "suspect"
                # Wasted attempt cycles + backoff, on the clock.
                backoff = _backoff_wait(policy, s.sid, attempts_this_set)
                clock = attempt_end + backoff
                if backoff:
                    timeline.append(
                        TimelineEvent(
                            "backoff", s.sid, attempt_end, clock,
                            f"{backoff} cycle(s)",
                        )
                    )
                if fd.reason == "signature_mismatch":
                    implicated_history.append(set(fd.cells))
                else:
                    implicated_history.clear()  # channel fault, no cell
                # Escalation ladder: a consecutive-implication diagnosis
                # wins; otherwise cumulative strikes quarantine a cell
                # as suspected-permanent, re-using the re-partition path
                # instead of burning the remaining retry budget.
                diagnosed = _diagnose(implicated_history, policy)
                provenance = "diagnosed"
                if not diagnosed and policy.quarantine_strikes > 0:
                    diagnosed = {
                        c for c, h in scoreboard.items()
                        if h.state == "suspect"
                        and h.strikes >= policy.quarantine_strikes
                    }
                    provenance = "escalated"
                if diagnosed:
                    retired |= diagnosed
                    for cell in diagnosed:
                        h = scoreboard.setdefault(
                            cell, CellHealth(cell=cell)
                        )
                        h.state = (
                            "retired" if provenance == "diagnosed"
                            else "quarantined"
                        )
                        h.retired_at = clock
                    if provenance == "escalated":
                        for cell in sorted(diagnosed, key=repr):
                            spec = FaultSpec(
                                kind=FaultKind.PERMANENT, cell=cell,
                                onset=clock, provenance="escalated",
                            )
                            escalations.append(spec)
                            runlog.emit(
                                "quarantine", design=desc,
                                cell=repr(cell),
                                strikes=scoreboard[cell].strikes,
                                sid=repr(s.sid),
                            )
                    try:
                        (
                            queue, i, cur_m, cur_shape, cell_map, topo,
                        ) = _repartition(
                            dg, gg, geometry, plan.m, plan.shape, retired,
                            aligned, reschedule, store, slot_nodes, s.sid,
                            diagnosed,
                        )
                    except RecoveryExhausted:
                        if not policy.degrade:
                            raise
                        # No surviving cells: write the array off and
                        # complete the remainder on the host.
                        host_only = True
                        clock = _host_complete(
                            s, layout, clock, "no_survivors"
                        )
                        if incident_open is not None:
                            repair_cycles.append(clock - incident_open)
                            incident_open = None
                        i += 1
                        attempts_this_set = 0
                        implicated_history.clear()
                        continue
                    repartitions += 1
                    rep_end = clock + policy.repartition_cycles
                    timeline.append(
                        TimelineEvent(
                            "repartition", s.sid, clock, rep_end,
                            f"retired {sorted(map(repr, diagnosed))} "
                            f"({provenance}) -> m={cur_m}",
                        )
                    )
                    runlog.emit(
                        "repartition", design=desc, sid=repr(s.sid),
                        retired=sorted(map(repr, diagnosed)),
                        new_m=cur_m, provenance=provenance,
                    )
                    runlog.emit(
                        "checkpoint", action="restore", design=desc,
                        sid=repr(s.sid),
                        committed=len(store.committed_nodes),
                        words=store.words_written,
                    )
                    clock = rep_end
                    attempts_this_set = 0
                    implicated_history.clear()
                    continue
                if attempts_this_set > policy.max_retries:
                    if policy.degrade:
                        # Graceful degradation: this set completes on
                        # the host; the array keeps the remaining sets.
                        clock = _host_complete(
                            s, layout, clock, "retry_exhausted"
                        )
                        if incident_open is not None:
                            repair_cycles.append(clock - incident_open)
                            incident_open = None
                        i += 1
                        attempts_this_set = 0
                        implicated_history.clear()
                        continue
                    raise RecoveryExhausted(
                        s.sid, attempts_this_set, fd.event,
                        f"retry budget ({policy.max_retries}) exhausted; "
                        f"last detection: {fd}",
                    ) from fd
                continue

            # Committed: park the boundary words, advance the pile clock.
            parked = {
                (nid, p): (
                    res.outputs[("sig", nid)] if p == "out"
                    else res.outputs[("park", nid, p)]
                )
                for nid, p in parked_ports
            }
            store.commit(
                s.sid, layout.members, parked,
                {nid: fires[nid][1] for nid in layout.members},
            )
            runlog.emit(
                "checkpoint", action="save", design=desc,
                sid=repr(s.sid), members=len(layout.members),
                words=len(parked),
            )
            timeline.append(
                TimelineEvent(
                    "gset", s.sid, set_start, attempt_end,
                    f"{len(layout.members)} node(s), "
                    f"{len(parked)} word(s) parked",
                )
            )
            clock = attempt_end
            if incident_open is not None:
                repair_cycles.append(clock - incident_open)
                incident_open = None
            i += 1
            attempts_this_set = 0
            implicated_history.clear()

        outputs: dict[NodeId, Any] = {}
        for out_nid in dg.outputs:
            ((src, port),) = dg.g.nodes[out_nid]["operands"].values()
            outputs[out_nid] = store.read(src, port)
        sp.tag("total_cycles", clock)
        sp.tag("retries", retries)
        sp.tag("repartitions", repartitions)

    injected = [f for f in faults if f.triggered]
    detected_count = sum(1 for f in injected if id(f) in detected_spec_ids)
    oracle_ok: "bool | None" = None
    if verify:
        oracle = evaluate(dg, inputs, semiring)
        oracle_ok = all(
            bool(outputs[nid] == oracle[nid]) for nid in dg.outputs
        )
    runlog.emit(
        "fault_recover", design=desc, injected=len(injected),
        detected=detected_count, retries=retries,
        repartitions=repartitions, final_m=cur_m,
        total_cycles=clock, overhead_cycles=clock - healthy_cycles,
        quarantined=len(escalations), degraded_gsets=len(degraded_sids),
        degraded_nodes=degraded_nodes,
    )
    runlog.emit(
        "oracle", design=desc, checked=bool(verify), ok=oracle_ok,
        outputs=len(dg.outputs),
    )

    result = RecoveryResult(
        description=desc,
        outputs=outputs,
        total_cycles=clock,
        healthy_cycles=healthy_cycles,
        stall_cycles=stalls,
        injected=injected,
        detections=detections,
        detected_fault_count=detected_count,
        retries=retries,
        repartitions=repartitions,
        retired_cells=frozenset(retired),
        final_m=cur_m,
        words_parked=store.words_written,
        fire_cycles=dict(store.fire_cycle),
        timeline=timeline,
        oracle_ok=oracle_ok,
        degraded_sids=degraded_sids,
        degraded_nodes=degraded_nodes,
        escalations=escalations,
        scoreboard=scoreboard,
        repair_cycles=repair_cycles,
    )
    if record_metrics:
        _record_metrics(result)
    return result


def _healthy_clock(gg: GGraph, order: Sequence[GSet]) -> int:
    """The fault-free pile clock: back-to-back set computation times.

    Matches both the resilient runtime's fault-free clock and (zero
    stalls, the paper's regime) the schedule evaluator's total time.
    """
    return sum(s.comp_time(gg) for s in order)


def _diagnose(
    history: Sequence[set[Hashable]], policy: RecoveryPolicy
) -> set[Hashable]:
    """Physical cells implicated by every one of the last N detections."""
    k = policy.permanent_threshold
    if len(history) < k:
        return set()
    suspect = set(history[-1])
    for cells in list(history)[-k:]:
        suspect &= cells
    return suspect


def _repartition(
    dg: DependenceGraph,
    gg: GGraph,
    geometry: str,
    m0: int,
    shape0: tuple[int, int],
    retired: set[Hashable],
    aligned: bool,
    reschedule: Callable[[GSetPlan], list[GSet]],
    store: CheckpointStore,
    slot_nodes: frozenset[NodeId],
    at_sid: tuple,
    newly_retired: set[Hashable],
) -> tuple:
    """Re-cut the G-graph for the surviving cells and lint the resume."""
    if geometry == "linear":
        surviving = [c for c in range(m0) if c not in retired]
        new_m = len(surviving)
        if new_m < 1:
            raise RecoveryExhausted(
                at_sid, 0, None, "no surviving cells after retirement"
            )
        new_plan = make_linear_gsets(gg, new_m, aligned=aligned)
        new_shape = (1, new_m)
        new_cell_map: dict[Hashable, Hashable] = {
            logical: phys for logical, phys in enumerate(surviving)
        }
        new_topo = linear_topology(new_m)
    else:
        dead_rows = {cell[0] for cell in retired}
        surviving_rows = [r for r in range(shape0[0]) if r not in dead_rows]
        rows, cols = len(surviving_rows), shape0[1]
        if rows < 1:
            raise RecoveryExhausted(
                at_sid, 0, None, "no surviving mesh rows after retirement"
            )
        new_plan = make_mesh_gsets(gg, rows * cols, shape=(rows, cols))
        new_m = rows * cols
        new_shape = (rows, cols)
        new_cell_map = {
            (lr, c): (surviving_rows[lr], c)
            for lr in range(rows)
            for c in range(cols)
        }
        new_topo = mesh_topology(rows, cols)

    new_order = reschedule(new_plan)
    # Lint the resume (RL401) before a single degraded cycle executes.
    committed = frozenset(store.committed_nodes)
    cell_of: dict[NodeId, Hashable] = {}
    for s in new_order:
        for gid, cell in zip(s.gids, s.cells):
            for nid in gg.gnodes[gid].members:
                if nid not in committed:
                    cell_of[nid] = cell
    rp = RecoveryPlan(
        description=(
            f"resume {geometry} m={new_m} after retiring "
            f"{sorted(map(repr, newly_retired))}"
        ),
        to_fire=frozenset(cell_of),
        committed=committed,
        slot_nodes=slot_nodes,
        cell_of=cell_of,
        cell_map=new_cell_map,
        retired=frozenset(retired),
    )
    _preflight_recovery(rp)
    return new_order, 0, new_m, new_shape, new_cell_map, new_topo


def _preflight_policy(policy: RecoveryPolicy) -> None:
    """RL402 gate: raise :class:`repro.lint.LintError` on an unsound policy."""
    from ..lint import LintError, LintTarget
    from ..lint.registry import run_lint

    report = run_lint(
        LintTarget(description="recovery policy", policy=policy),
        record_metrics=False,
    )
    if not report.ok:
        raise LintError(report)


def _preflight_recovery(rp: RecoveryPlan) -> None:
    """RL401 gate: raise :class:`repro.lint.LintError` on an unsound resume."""
    from ..lint import LintError, LintTarget
    from ..lint.registry import run_lint

    report = run_lint(
        LintTarget(description=rp.description, recovery=rp),
        record_metrics=False,
    )
    if not report.ok:
        raise LintError(report)


def _record_metrics(result: RecoveryResult) -> None:
    reg = get_registry()
    labels = {"design": result.description}
    injected = reg.counter(
        "repro_fault_injected_total", "faults that actually fired, by kind"
    )
    for f in result.injected:
        injected.inc(kind=f.kind.value, **labels)
    reg.counter(
        "repro_fault_detected_total", "injected faults caught by a detector"
    ).inc(result.detected_fault_count, **labels)
    if result.recovered and (result.oracle_ok is not False):
        reg.counter(
            "repro_fault_recovered_total",
            "faults survived with oracle-correct output",
        ).inc(result.detected_fault_count, **labels)
    reg.counter(
        "repro_fault_retries_total", "G-set attempt retries"
    ).inc(result.retries, **labels)
    reg.counter(
        "repro_fault_repartitions_total", "mid-run re-partitions"
    ).inc(result.repartitions, **labels)
    reg.gauge(
        "repro_fault_recovery_overhead_cycles",
        "cycles beyond the fault-free makespan",
    ).set(result.overhead_cycles, **labels)
    reg.gauge(
        "repro_fault_degraded_throughput",
        "measured throughput fraction of the healthy run (<= 1)",
    ).set(result.degraded_throughput, **labels)
    reg.gauge(
        "repro_fault_words_parked",
        "checkpoint words written to the cut-and-pile memories",
    ).set(result.words_parked, **labels)
    if result.escalations:
        reg.counter(
            "repro_cell_quarantined_total",
            "cells quarantined as suspected-permanent by the strike ladder",
        ).inc(len(result.escalations), **labels)
    if result.degraded:
        reg.counter(
            "repro_fault_degraded_gsets_total",
            "G-sets retired to the host-side reference computation",
        ).inc(len(result.degraded_sids), **labels)
    reg.gauge(
        "repro_fault_availability",
        "fraction of cell-cycles the array's cells were in service",
    ).set(result.availability, **labels)
    if result.mttr_cycles is not None:
        reg.gauge(
            "repro_fault_mttr_cycles",
            "mean cycles from first detection to commit/degrade per G-set",
        ).set(result.mttr_cycles, **labels)


def run_resilient_closure(
    impl: PartitionedImplementation,
    a: np.ndarray,
    faults: Sequence[FaultSpec] = (),
    policy: RecoveryPolicy = RecoveryPolicy(),
    aligned: bool = True,
    record_metrics: bool = True,
    description: "str | None" = None,
    backend: "str | None" = None,
) -> RecoveryResult:
    """Resilient execution of a partitioned transitive closure.

    Convenience wrapper binding :func:`run_resilient` to the
    transitive-closure I/O naming (``("in", i, j)`` / ``("out", i, j)``)
    of a :class:`~repro.core.partitioner.PartitionedImplementation`.
    """
    return run_resilient(
        impl.dg,
        impl.gg,
        impl.plan,
        impl.order,
        tc.make_inputs(a, impl.semiring),
        semiring=impl.semiring,
        faults=faults,
        policy=policy,
        aligned=aligned,
        record_metrics=record_metrics,
        description=description,
        backend=backend,
    )
