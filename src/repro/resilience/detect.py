"""Fault detection: signature recompute-and-compare + deadline watchdog.

Two detectors, matched to the fault model:

* :func:`check_signatures` — after a G-set attempt, the host recomputes
  the set's member values in software from the same checkpointed/host
  inputs (:func:`repro.core.evaluate.evaluate_full` over the attempt
  subgraph) and compares every member's ``out`` port against what the
  array produced.  Because injected corruption only ever lands on ``out``
  ports (see :mod:`repro.resilience.faults`) and every corruption source
  an attempt can read is either a checked member ``out``, a reliable
  parked word, or a host word guarded by the watchdog, a *full-rate*
  signature check (``sample_rate=1``) detects every value fault — even
  ones the idempotent boolean OR would mask before they reach a parked
  boundary word.  Lower sample rates trade that guarantee for recompute
  cost and are measured, not default.
* :func:`check_watchdog` — the host channel's delivery log (the
  simulated stand-in for a parity/timeout detector at the memory/host
  interface) is inspected for words that missed their delivery deadline;
  a dropped word is detected even when the substituted zero happens to
  leave every computed value unchanged.

Both raise :class:`FaultDetected` — a structured event carrying the
G-set, the mismatched nodes, and the implicated *physical* cells, which
is what the runtime's permanent-fault diagnosis consumes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Hashable, Mapping

from ..core.evaluate import evaluate_full
from ..core.graph import DependenceGraph, NodeId
from ..core.semiring import Semiring
from .faults import AttemptInjector

__all__ = ["FaultDetected", "check_signatures", "check_watchdog"]


@dataclass
class DetectionEvent:
    """The structured payload of one detection."""

    reason: str  # "signature_mismatch" | "dropped_word"
    sid: tuple
    attempt: int
    clock: int
    nodes: tuple[NodeId, ...]
    cells: tuple[Hashable, ...]

    @property
    def strike_cells(self) -> tuple[Hashable, ...]:
        """Physical cells this detection charges a *strike* against.

        Only signature mismatches implicate silicon — a dropped word
        implicates the host channel, so it never advances any cell
        toward the quarantine threshold (the escalation ladder's
        per-cell scoreboard consumes exactly this view).
        """
        if self.reason != "signature_mismatch":
            return ()
        return self.cells


class FaultDetected(Exception):
    """A detector found evidence of a fault during one G-set attempt.

    Structured fields mirror :class:`DetectionEvent` (also available
    whole on :attr:`event`): ``reason`` is ``"signature_mismatch"`` or
    ``"dropped_word"``, ``nodes`` the mismatched/lost node ids, and
    ``cells`` the implicated *physical* cells (empty for dropped words,
    which implicate the channel, not a cell).
    """

    def __init__(self, event: DetectionEvent) -> None:
        self.event = event
        self.reason = event.reason
        self.sid = event.sid
        self.attempt = event.attempt
        self.clock = event.clock
        self.nodes = event.nodes
        self.cells = event.cells
        where = f"G-set {event.sid} attempt {event.attempt}"
        if event.reason == "dropped_word":
            detail = f"host words lost: {list(event.nodes)!r}"
        else:
            detail = (
                f"{len(event.nodes)} signature mismatch(es), "
                f"implicating cell(s) {sorted(map(repr, event.cells))}"
            )
        super().__init__(f"{event.reason} in {where}: {detail}")


def check_watchdog(
    injector: AttemptInjector, sid: tuple, attempt: int, clock: int
) -> None:
    """Raise :class:`FaultDetected` for words the channel failed to deliver."""
    if injector.dropped_words:
        raise FaultDetected(
            DetectionEvent(
                reason="dropped_word",
                sid=sid,
                attempt=attempt,
                clock=clock,
                nodes=tuple(injector.dropped_words),
                cells=(),
            )
        )


def check_signatures(
    sub_dg: DependenceGraph,
    sub_inputs: Mapping[NodeId, Any],
    semiring: Semiring,
    members: tuple[NodeId, ...],
    computed: Mapping[NodeId, Any],
    cell_of: Mapping[NodeId, Hashable],
    cell_map: Mapping[Hashable, Hashable],
    sid: tuple,
    attempt: int,
    clock: int,
    sample_rate: float = 1.0,
    rng: "random.Random | None" = None,
) -> None:
    """Recompute the attempt in software and compare member signatures.

    ``computed[nid]`` is the ``out`` value the array produced for member
    ``nid`` (the simulator's ``("sig", nid)`` output taps).  With
    ``sample_rate < 1`` only a seeded subset of members is compared
    (``rng`` supplies the coin; required then).
    """
    checked = members
    if sample_rate < 1.0:
        if rng is None:
            raise ValueError("sample_rate < 1 requires an rng")
        checked = tuple(n for n in members if rng.random() < sample_rate)
    if not checked:
        return
    oracle = evaluate_full(sub_dg, sub_inputs, semiring)
    bad = tuple(
        nid for nid in checked if bool(computed[nid] != oracle[nid]["out"])
    )
    if bad:
        # Implicate only *root* mismatches — bad nodes none of whose
        # in-set producers are bad themselves.  A corrupted node's value
        # propagates downstream, so every mismatch set contains the fault
        # origin plus innocent consumers; rooting keeps the permanent
        # diagnosis from retiring healthy cells along with the dead one.
        bad_set = set(bad)
        roots = tuple(
            nid
            for nid in bad
            if not any(
                src in bad_set
                for src, _ in sub_dg.operands(nid).values()
            )
        ) or bad
        phys = tuple(
            sorted(
                {cell_map.get(cell_of[n], cell_of[n]) for n in roots},
                key=repr,
            )
        )
        raise FaultDetected(
            DetectionEvent(
                reason="signature_mismatch",
                sid=sid,
                attempt=attempt,
                clock=clock,
                nodes=bad,
                cells=phys,
            )
        )
