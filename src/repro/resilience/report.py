"""Rendering resilient runs: recovery timelines as Chrome trace events.

The recovery timeline rides the same Chrome trace-event export as the
simulator probes and the stage spans (:mod:`repro.obs.tracing`): one
dedicated process lane (:data:`RESILIENCE_PID`) where G-set commits,
failed attempts, backoff waits and re-partitions appear as duration
(``X``) events on the simulated-cycle timebase (1 "microsecond" = 1
cycle, matching :func:`repro.obs.report.probe_chrome_events`), plus
instant (``i``) markers for each detection.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.tracing import Tracer
    from .runtime import RecoveryResult

__all__ = ["RESILIENCE_PID", "timeline_chrome_events", "add_recovery_trace"]

#: Trace process lane for recovery timelines (the simulator uses 2).
RESILIENCE_PID = 3

#: One trace thread lane per timeline event kind, in display order.
_KIND_TIDS = {
    "gset": 1, "skip": 1, "retry": 2, "backoff": 2,
    "repartition": 3, "degrade": 4,
}
_TID_NAMES = {1: "commits", 2: "retries", 3: "repartitions", 4: "degraded"}


def timeline_chrome_events(result: "RecoveryResult") -> list[dict]:
    """Chrome trace events for one resilient run's recovery timeline."""
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": RESILIENCE_PID,
            "args": {"name": f"recovery: {result.description}"},
        }
    ]
    for tid, name in _TID_NAMES.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": RESILIENCE_PID,
                "tid": tid,
                "args": {"name": name},
            }
        )
    for ev in result.timeline:
        events.append(
            {
                "name": f"{ev.kind} {ev.sid!r}",
                "ph": "X",
                "ts": float(ev.start),
                "dur": float(max(ev.end - ev.start, 1)),
                "pid": RESILIENCE_PID,
                "tid": _KIND_TIDS.get(ev.kind, 1),
                "cat": f"resilience.{ev.kind}",
                "args": {"gset": repr(ev.sid), "detail": ev.detail},
            }
        )
    for spec in result.escalations:
        events.append(
            {
                "name": f"quarantined: {spec.cell!r}",
                "ph": "i",
                "ts": float(spec.onset),
                "pid": RESILIENCE_PID,
                "tid": _KIND_TIDS["repartition"],
                "s": "p",
                "cat": "resilience.quarantine",
                "args": {
                    "cell": repr(spec.cell),
                    "provenance": spec.provenance,
                    "fault": spec.describe(),
                },
            }
        )
    for d in result.detections:
        events.append(
            {
                "name": f"detected: {d.reason}",
                "ph": "i",
                "ts": float(d.clock),
                "pid": RESILIENCE_PID,
                "tid": _KIND_TIDS["retry"],
                "s": "p",
                "cat": "resilience.detect",
                "args": {
                    "gset": repr(d.sid),
                    "attempt": d.attempt,
                    "nodes": [repr(n) for n in d.nodes],
                    "cells": [repr(c) for c in d.cells],
                },
            }
        )
    return events


def add_recovery_trace(tracer: "Tracer", result: "RecoveryResult") -> None:
    """Attach one run's recovery timeline to a tracer's Chrome export."""
    tracer.add_chrome_events(timeline_chrome_events(result))
