"""Resilience runtime: fault injection, checkpointing, mid-run recovery.

The paper's partitioned arrays (Sec. 5) are naturally fault-tolerant:
cut-and-pile already parks every cross-G-set value in external memory,
so a G-set boundary is a free checkpoint, and the partitioning machinery
that cut the G-graph for ``m`` cells can re-cut it mid-run for the
``m - f`` cells that survive a permanent failure.  This package makes
that argument *measured runtime behaviour*:

* :mod:`~repro.resilience.faults` — the fault model (permanent cell
  death, transient single-firing corruption, dropped host words) and the
  injection seam into :func:`repro.arrays.cycle_sim.simulate`;
* :mod:`~repro.resilience.detect` — signature recompute-and-compare and
  the host-channel deadline watchdog;
* :mod:`~repro.resilience.checkpoint` — the G-set-boundary checkpoint
  store and the :class:`RecoveryPlan` the RL401 lint pass proves sound;
* :mod:`~repro.resilience.runtime` — the G-set-stepped executor with
  retries, permanent-fault diagnosis and mid-run re-partitioning;
* :mod:`~repro.resilience.regimes` — seeded failure-regime planners
  (spatially correlated clusters, Gilbert–Elliott transient bursts,
  same-cell hammering) whose multi-fault plans drive the quarantine
  escalation ladder and the graceful-degradation tier;
* :mod:`~repro.resilience.campaign` — seeded campaigns over the shipped
  experiment configurations (the CI ``faults`` gate);
* :mod:`~repro.resilience.report` — recovery timelines in the Chrome
  trace export.
"""

from .campaign import (
    ADAPTIVE_POLICY,
    CAMPAIGN_CONFIGS,
    CampaignConfig,
    CampaignDesign,
    CampaignResult,
    CampaignRun,
    build_design,
    campaign_config,
    plan_fault,
    run_campaign,
)
from .checkpoint import CheckpointStore, RecoveryPlan
from .detect import DetectionEvent, FaultDetected, check_signatures, check_watchdog
from .faults import AttemptInjector, FaultKind, FaultSpec, Injector, corrupt
from .regimes import (
    REGIME_NAMES,
    BurstyRegime,
    CorrelatedRegime,
    FaultPlan,
    FaultRegime,
    HammerRegime,
    make_regime,
)
from .report import add_recovery_trace, timeline_chrome_events
from .runtime import (
    CellHealth,
    RecoveryExhausted,
    RecoveryPolicy,
    RecoveryResult,
    ResilienceError,
    TimelineEvent,
    run_resilient,
    run_resilient_closure,
)

__all__ = [
    "ADAPTIVE_POLICY",
    "AttemptInjector",
    "BurstyRegime",
    "CAMPAIGN_CONFIGS",
    "CellHealth",
    "CorrelatedRegime",
    "FaultPlan",
    "FaultRegime",
    "HammerRegime",
    "REGIME_NAMES",
    "make_regime",
    "CampaignConfig",
    "CampaignDesign",
    "CampaignResult",
    "CampaignRun",
    "build_design",
    "campaign_config",
    "CheckpointStore",
    "DetectionEvent",
    "FaultDetected",
    "FaultKind",
    "FaultSpec",
    "Injector",
    "RecoveryExhausted",
    "RecoveryPlan",
    "RecoveryPolicy",
    "RecoveryResult",
    "ResilienceError",
    "TimelineEvent",
    "add_recovery_trace",
    "check_signatures",
    "check_watchdog",
    "corrupt",
    "plan_fault",
    "run_campaign",
    "run_resilient",
    "run_resilient_closure",
    "timeline_chrome_events",
]
