"""Failure regimes: seeded generators of correlated and bursty fault plans.

PR 4's campaigns inject *one isolated fault per run* — the regime each
detector and the recovery ladder were proven against.  Real spatial
arrays fail differently: neighbouring cells die together (a broken
power rail or clock spine takes out a stretch of a row), transients
arrive in temporal bursts under load, and a marginal cell keeps
producing single-event upsets until it is taken out of service.  This
module models those three regimes as deterministic, seeded fault
*planners* over the healthy design:

* :class:`CorrelatedRegime` — spatially correlated multi-cell death: an
  epicenter cell plus every cell within ``radius`` hops of it (linear
  chain distance, mesh Manhattan distance) dies permanently, with
  onsets spread over a small window.  A mesh cluster routinely spans a
  whole row, which is exactly the retirement unit of the mesh recovery
  path.
* :class:`BurstyRegime` — temporally bursty transients from a two-state
  **Gilbert–Elliott** process walked over the healthy plan's cycle
  timeline: in the *good* state nothing happens; entering the *bad*
  state (probability ``p_enter`` per cycle) corrupts each firing of
  that cycle with probability ``p_corrupt`` until the process exits
  (probability ``p_exit`` per cycle).  One burst can straddle a G-set
  boundary, so consecutive sets each detect and retry.
* :class:`HammerRegime` — repeated transients on *one* cell under
  sustained load: ``strikes`` single-event upsets targeting firings of
  the same physical cell across distinct G-sets.  No single detection
  looks permanent (every retry computes cleanly), but the per-cell
  strike count climbs — the workload the quarantine escalation ladder
  exists for.

Planning is stringly deterministic like :func:`~repro.resilience.
campaign.plan_fault`: the caller seeds ``random.Random(f"{seed}:
{config}:{regime}")`` and the planners draw from it in a fixed order,
so the same seed yields a byte-identical :class:`FaultPlan` on every
platform and process.  Every planned fault is guaranteed to *fire* on
the healthy schedule (onsets are clamped to each cell's live window;
transients target nodes that fire exactly once per attempt).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Hashable, Mapping

from ..arrays.plan import partitioned_plan
from .faults import FaultKind, FaultSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.graph import NodeId
    from .campaign import CampaignDesign

__all__ = [
    "FaultPlan",
    "FaultRegime",
    "CorrelatedRegime",
    "BurstyRegime",
    "HammerRegime",
    "REGIME_NAMES",
    "make_regime",
]


@dataclass(frozen=True)
class FaultPlan:
    """One regime's planned faults against one design (JSON-safe)."""

    regime: str
    params: tuple[tuple[str, Any], ...]
    faults: tuple[FaultSpec, ...]

    def to_dict(self) -> dict[str, Any]:
        """Canonical rendering — byte-identical for identical seeds."""
        return {
            "regime": self.regime,
            "params": {k: v for k, v in self.params},
            "faults": [f.describe() for f in self.faults],
        }

    def specs(self) -> list[FaultSpec]:
        """Fresh armed copies for one resilient run (plans are reusable)."""
        return [
            FaultSpec(
                kind=f.kind, cell=f.cell, onset=f.onset, node=f.node,
                provenance=f.provenance,
            )
            for f in self.faults
        ]


def _healthy_schedule(
    design: "CampaignDesign",
) -> "dict[NodeId, tuple[Hashable, int]]":
    """Node -> (cell, absolute fire cycle) of the healthy plan."""
    ep = partitioned_plan(design.plan, design.order)
    return dict(ep.fires)


def _last_fire_by_cell(
    fires: "Mapping[NodeId, tuple[Hashable, int]]",
) -> dict[Hashable, int]:
    last: dict[Hashable, int] = {}
    for cell, t in fires.values():
        last[cell] = max(last.get(cell, -1), t)
    return last


def _hop_distance(geometry: str, a: Hashable, b: Hashable) -> int:
    """Topological distance between two cells (chain or Manhattan)."""
    if geometry == "linear":
        return abs(int(a) - int(b))  # type: ignore[arg-type]
    (ar, ac), (br, bc) = a, b  # type: ignore[misc]
    return abs(ar - br) + abs(ac - bc)


class FaultRegime:
    """Base of the seeded regime planners (`name` + :meth:`plan`)."""

    name: str = "regime"

    def params(self) -> tuple[tuple[str, Any], ...]:
        """The regime's knob settings, echoed into reports and ledgers."""
        raise NotImplementedError  # pragma: no cover - abstract

    def plan(
        self, design: "CampaignDesign", rng: random.Random
    ) -> FaultPlan:
        """Deterministically target this regime at one design."""
        raise NotImplementedError  # pragma: no cover - abstract


@dataclass(frozen=True)
class CorrelatedRegime(FaultRegime):
    """Spatially correlated multi-cell death around a seeded epicenter.

    Every cell within ``radius`` hops of the epicenter (inclusive) dies
    permanently; onsets start at a seeded cycle in the epicenter's live
    window and spread forward by at most ``onset_spread`` cycles, each
    clamped to its own cell's last healthy firing so every member of
    the cluster is guaranteed to corrupt at least one value.
    """

    radius: int = 1
    onset_spread: int = 2

    name = "correlated"

    def params(self) -> tuple[tuple[str, Any], ...]:
        return (("radius", self.radius), ("onset_spread", self.onset_spread))

    def plan(
        self, design: "CampaignDesign", rng: random.Random
    ) -> FaultPlan:
        fires = _healthy_schedule(design)
        last = _last_fire_by_cell(fires)
        cells = sorted(last, key=repr)
        epicenter = cells[rng.randrange(len(cells))]
        geometry = design.plan.geometry
        cluster = [
            c for c in cells
            if _hop_distance(geometry, epicenter, c) <= self.radius
        ]
        base = rng.randint(0, last[epicenter])
        faults = []
        for c in cluster:
            onset = min(base + rng.randint(0, self.onset_spread), last[c])
            faults.append(
                FaultSpec(kind=FaultKind.PERMANENT, cell=c, onset=onset)
            )
        return FaultPlan(
            regime=self.name,
            params=self.params() + (("epicenter", repr(epicenter)),),
            faults=tuple(faults),
        )


@dataclass(frozen=True)
class BurstyRegime(FaultRegime):
    """Temporally bursty transients via a two-state Gilbert–Elliott chain.

    The chain is stepped once per cycle of the healthy plan's timeline:
    ``good -> bad`` with probability ``p_enter``, ``bad -> good`` with
    ``p_exit``.  While *bad*, each node firing that cycle is corrupted
    with probability ``p_corrupt`` (one transient fault per hit node),
    up to ``max_faults`` total.  A chain that never produces a hit
    falls back to one seeded transient so the plan is never empty.
    """

    p_enter: float = 0.15
    p_exit: float = 0.5
    p_corrupt: float = 0.7
    max_faults: int = 6

    name = "bursty"

    def params(self) -> tuple[tuple[str, Any], ...]:
        return (
            ("p_enter", self.p_enter),
            ("p_exit", self.p_exit),
            ("p_corrupt", self.p_corrupt),
            ("max_faults", self.max_faults),
        )

    def plan(
        self, design: "CampaignDesign", rng: random.Random
    ) -> FaultPlan:
        fires = _healthy_schedule(design)
        by_cycle: dict[int, list[Any]] = {}
        for nid, (_cell, t) in fires.items():
            by_cycle.setdefault(t, []).append(nid)
        for nodes in by_cycle.values():
            nodes.sort(key=repr)
        makespan = max(by_cycle) if by_cycle else 0

        faults: list[FaultSpec] = []
        bad = False
        for t in range(makespan + 1):
            if bad:
                if rng.random() < self.p_exit:
                    bad = False
            elif rng.random() < self.p_enter:
                bad = True
            if not bad:
                continue
            for nid in by_cycle.get(t, ()):
                if len(faults) >= self.max_faults:
                    break
                if rng.random() < self.p_corrupt:
                    faults.append(
                        FaultSpec(kind=FaultKind.TRANSIENT, node=nid)
                    )
            if len(faults) >= self.max_faults:
                break
        if not faults:
            slots = sorted(fires, key=repr)
            faults.append(
                FaultSpec(
                    kind=FaultKind.TRANSIENT,
                    node=slots[rng.randrange(len(slots))],
                )
            )
        return FaultPlan(
            regime=self.name, params=self.params(), faults=tuple(faults)
        )


@dataclass(frozen=True)
class HammerRegime(FaultRegime):
    """Repeated transients hammering one cell across distinct G-sets.

    Picks the seeded cell, then one of its firings in each of up to
    ``strikes`` distinct G-sets (earliest sets first; when the cell
    appears in fewer sets than ``strikes``, the last targeted node is
    struck repeatedly — consecutive attempts each consume one armed
    copy).  Each strike alone is an ordinary retryable transient; their
    accumulation is what drives the per-cell strike count past the
    quarantine threshold.
    """

    strikes: int = 4

    name = "hammer"

    def params(self) -> tuple[tuple[str, Any], ...]:
        return (("strikes", self.strikes),)

    def plan(
        self, design: "CampaignDesign", rng: random.Random
    ) -> FaultPlan:
        fires = _healthy_schedule(design)
        # Nodes grouped per (cell, G-set), preserving pile order.
        member_set: dict[Any, int] = {}
        for si, s in enumerate(design.order):
            for gid in s.gids:
                for nid in design.gg.gnodes[gid].members:
                    if nid in fires:
                        member_set.setdefault(nid, si)
        per_cell: dict[Hashable, dict[int, list[Any]]] = {}
        for nid, (cell, _t) in fires.items():
            si = member_set.get(nid)
            if si is None:
                continue
            per_cell.setdefault(cell, {}).setdefault(si, []).append(nid)
        cells = sorted(per_cell, key=repr)
        # Prefer cells spanning the most G-sets: more distinct strike
        # opportunities, so the ladder is exercised, not the budget.
        max_sets = max(len(per_cell[c]) for c in cells)
        eligible = [c for c in cells if len(per_cell[c]) == max_sets]
        cell = eligible[rng.randrange(len(eligible))]
        sets = sorted(per_cell[cell])
        targets: list[Any] = []
        for si in sets[: self.strikes]:
            nodes = sorted(per_cell[cell][si], key=repr)
            targets.append(nodes[rng.randrange(len(nodes))])
        while len(targets) < self.strikes:
            targets.append(targets[-1])
        faults = tuple(
            FaultSpec(kind=FaultKind.TRANSIENT, node=nid) for nid in targets
        )
        return FaultPlan(
            regime=self.name,
            params=self.params() + (("cell", repr(cell)),),
            faults=faults,
        )


#: The shipped regime names, in CLI/report order.
REGIME_NAMES: tuple[str, ...] = ("correlated", "bursty", "hammer")


def make_regime(name: str, **knobs: Any) -> FaultRegime:
    """Construct a shipped regime by name, applying any knob overrides.

    Knobs irrelevant to the named regime are ignored, so one CLI knob
    namespace can parameterize all three regimes.
    """
    classes: dict[str, type[FaultRegime]] = {
        "correlated": CorrelatedRegime,
        "bursty": BurstyRegime,
        "hammer": HammerRegime,
    }
    if name not in classes:
        raise KeyError(
            f"unknown failure regime {name!r}; available: {REGIME_NAMES}"
        )
    cls = classes[name]
    fields = {f for f in getattr(cls, "__dataclass_fields__", {})}
    return cls(**{k: v for k, v in knobs.items() if k in fields and v is not None})
