"""Seeded fault-injection campaigns over the shipped experiment designs.

A campaign takes every shipped partitioned configuration (the same
design points the lint gate proves clean, plus a 3x3 mesh), plans one
fault of each kind against each design with a deterministic
seed-derived RNG, and drives the resilient runtime through
inject -> detect -> recover -> verify.  The CI ``faults`` job gates on
``CampaignResult.ok``: every planned fault actually fired, every fired
fault was detected, every run completed, and every recovered output
equals the software oracle.

Seeding is stringly deterministic — ``random.Random(f"{seed}:{config}:
{kind}")`` — so a campaign replays identically across processes and
platforms (no ``hash()``, no global RNG state).

The fixed-size array of Fig. 17 is deliberately *not* a campaign
target: it has no G-set barriers to checkpoint at and no spare cells to
re-partition onto — the paper's partitioned arrays are the
fault-tolerant ones, and the campaign measures exactly that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import TYPE_CHECKING, Any, Hashable, Mapping, Sequence

import numpy as np

from ..algorithms import transitive_closure as tc
from ..arrays.plan import partitioned_plan
from ..arrays.vector_compile import compiled_cache_info
from ..core.semiring import BOOLEAN, Semiring
from ..obs import runlog
from ..obs.metrics import get_registry
from .faults import FaultKind, FaultSpec
from .regimes import FaultPlan, make_regime
from .runtime import RecoveryPolicy, RecoveryResult, ResilienceError, run_resilient

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from ..core.ggraph import GGraph
    from ..core.graph import DependenceGraph, NodeId
    from ..core.gsets import GSet, GSetPlan

__all__ = [
    "ADAPTIVE_POLICY",
    "CampaignConfig",
    "CampaignDesign",
    "CampaignRun",
    "CampaignResult",
    "CAMPAIGN_CONFIGS",
    "campaign_config",
    "plan_fault",
    "run_campaign",
]

#: The recovery policy regime campaigns run under: capped exponential
#: backoff with deterministic jitter, a quarantine ladder that retires a
#: thrice-struck cell instead of burning the budget on it, and the
#: graceful-degradation tier so a cornered run completes host-side with
#: ``degraded=True`` rather than raising ``RecoveryExhausted``.
ADAPTIVE_POLICY = RecoveryPolicy(
    max_retries=4,
    backoff="exponential",
    backoff_cycles=2,
    backoff_cap_cycles=32,
    jitter_cycles=3,
    quarantine_strikes=3,
    degrade=True,
)


@dataclass(frozen=True)
class CampaignConfig:
    """One named design point a campaign injects faults into."""

    name: str
    description: str
    n: int
    m: int
    geometry: str = "linear"
    policy: str = "vertical"
    aligned: bool = True
    memory_aware: bool = False


@dataclass
class CampaignDesign:
    """A built design: the artefacts the resilient runtime consumes."""

    config: CampaignConfig
    dg: "DependenceGraph"
    gg: "GGraph"
    plan: "GSetPlan"
    order: "list[GSet]"
    semiring: Semiring


#: The campaign's design points: the six partitioned lint-gate configs
#: plus a 3x3 mesh (so mesh row retirement is exercised on more than
#: one surviving row).
CAMPAIGN_CONFIGS: tuple[CampaignConfig, ...] = (
    CampaignConfig(
        "linear-n12-m4",
        "F18 reference point: linear array, aligned, vertical policy",
        n=12, m=4,
    ),
    CampaignConfig(
        "linear-n9-m3",
        "F21 host-bandwidth point: linear array with m | n",
        n=9, m=3,
    ),
    CampaignConfig(
        "mesh-n8-m4",
        "F19 reference point: 2x2 mesh",
        n=8, m=4, geometry="mesh",
    ),
    CampaignConfig(
        "linear-horizontal-n12-m4",
        "F20/A-POL variant: horizontal-path schedule policy",
        n=12, m=4, policy="horizontal",
    ),
    CampaignConfig(
        "linear-packed-n12-m4",
        "A-ALN ablation: packed (non-aligned) linear blocks",
        n=12, m=4, aligned=False,
    ),
    CampaignConfig(
        "linear-memaware-n12-m4",
        "A-POL optimization: memory-aware greedy schedule",
        n=12, m=4, memory_aware=True,
    ),
    CampaignConfig(
        "mesh-n12-m9",
        "3x3 mesh: row retirement leaves a working 2x3 array",
        n=12, m=9, geometry="mesh",
    ),
)


def campaign_config(name: str) -> CampaignConfig:
    """Look up a shipped campaign configuration by name."""
    by_name = {c.name: c for c in CAMPAIGN_CONFIGS}
    if name not in by_name:
        raise KeyError(
            f"unknown campaign config {name!r}; available: {sorted(by_name)}"
        )
    return by_name[name]


def build_design(config: CampaignConfig) -> CampaignDesign:
    """Construct the design artefacts for one campaign configuration."""
    if config.memory_aware:
        from ..core.ggraph import GGraph, group_by_columns
        from ..core.gsets import make_linear_gsets
        from ..core.schedopt import schedule_gsets_memory_aware

        dg = tc.tc_regular(config.n)
        gg = GGraph(dg, group_by_columns)
        plan = make_linear_gsets(gg, config.m, aligned=config.aligned)
        order = list(schedule_gsets_memory_aware(plan))
        return CampaignDesign(
            config=config, dg=dg, gg=gg, plan=plan, order=order,
            semiring=BOOLEAN,
        )
    from ..core.partitioner import partition_transitive_closure

    impl = partition_transitive_closure(
        n=config.n, m=config.m, geometry=config.geometry,
        policy=config.policy, aligned=config.aligned,
    )
    return CampaignDesign(
        config=config, dg=impl.dg, gg=impl.gg, plan=impl.plan,
        order=list(impl.order), semiring=impl.semiring,
    )


def seeded_matrix(n: int, rng: random.Random, density: float = 0.4) -> np.ndarray:
    """A reproducible boolean adjacency matrix for campaign inputs."""
    return np.array(
        [[1 if rng.random() < density else 0 for _ in range(n)] for _ in range(n)],
        dtype=np.int64,
    )


def plan_fault(
    design: CampaignDesign, kind: FaultKind, rng: random.Random
) -> FaultSpec:
    """Target one fault of ``kind`` at ``design``, seeded by ``rng``.

    Targets are chosen so the fault is guaranteed to fire: transient
    faults hit a slot node (every slot node fires exactly once per run),
    dropped words hit a consumed primary input, and permanent faults hit
    a cell that fires with an onset no later than its last healthy
    firing.
    """
    dg = design.dg
    if kind is FaultKind.TRANSIENT:
        slots = [
            nid for nid in dg.topological_order()
            if dg.kind(nid).occupies_slot
        ]
        return FaultSpec(kind=kind, node=rng.choice(slots))
    if kind is FaultKind.DROPPED_WORD:
        consumed = sorted(
            (nid for nid in dg.inputs if dg.consumers(nid)), key=repr
        )
        return FaultSpec(kind=kind, node=rng.choice(consumed))
    # Permanent: a physical cell of the healthy plan, dying while it
    # still has work left (onset <= its last healthy firing).
    ep = partitioned_plan(design.plan, design.order)
    last_fire: dict[Hashable, int] = {}
    for cell, t in ep.fires.values():
        last_fire[cell] = max(last_fire.get(cell, -1), t)
    cells = sorted(last_fire, key=repr)
    cell = cells[rng.randrange(len(cells))]
    onset = rng.randint(0, last_fire[cell])
    return FaultSpec(kind=kind, cell=cell, onset=onset)


@dataclass
class CampaignRun:
    """The measured outcome of one (config, fault kind) campaign cell."""

    config: str
    kind: str
    fault: str
    injected: bool
    detected: bool
    recovered: bool
    oracle_ok: bool
    detections: int
    retries: int
    repartitions: int
    total_cycles: int
    healthy_cycles: int
    overhead_cycles: int
    degraded_throughput: Fraction
    error: "str | None" = None
    result: "RecoveryResult | None" = field(default=None, repr=False)
    #: Set on regime campaign cells (``None`` for classic one-fault runs).
    regime: "str | None" = None
    regime_params: "dict[str, Any] | None" = None
    faults_planned: int = 0
    quarantined: int = 0
    degraded_gsets: int = 0
    degraded_nodes: int = 0
    availability: "float | None" = None
    mttr_cycles: "float | None" = None

    @property
    def degraded(self) -> bool:
        """True when any G-set completed via the graceful tier."""
        return self.degraded_gsets > 0

    @property
    def ok(self) -> bool:
        """Injected, detected, oracle-correct, and recovered *or*
        gracefully degraded (the only tier regime runs may end in)."""
        return (
            self.error is None
            and self.injected
            and self.detected
            and (self.recovered or self.degraded)
            and self.oracle_ok
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe rendering (the heavyweight result object elided)."""
        d = {
            "config": self.config,
            "kind": self.kind,
            "fault": self.fault,
            "ok": self.ok,
            "injected": self.injected,
            "detected": self.detected,
            "recovered": self.recovered,
            "oracle_ok": self.oracle_ok,
            "detections": self.detections,
            "retries": self.retries,
            "repartitions": self.repartitions,
            "total_cycles": self.total_cycles,
            "healthy_cycles": self.healthy_cycles,
            "overhead_cycles": self.overhead_cycles,
            "degraded_throughput": float(self.degraded_throughput),
            "error": self.error,
        }
        if self.regime is not None:
            d["regime"] = self.regime
            d["regime_params"] = self.regime_params
            d["faults_planned"] = self.faults_planned
            d["quarantined"] = self.quarantined
            d["degraded"] = self.degraded
            d["degraded_gsets"] = self.degraded_gsets
            d["degraded_nodes"] = self.degraded_nodes
            d["availability"] = self.availability
            d["mttr_cycles"] = self.mttr_cycles
        return d


@dataclass
class CampaignResult:
    """Every run of one seeded campaign, plus the aggregate verdict."""

    seed: int
    runs: list[CampaignRun]

    @property
    def ok(self) -> bool:
        """The CI gate: 100% injected, detected, recovered, verified."""
        return bool(self.runs) and all(r.ok for r in self.runs)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe rendering for ``repro faults --format json``."""
        return {
            "seed": self.seed,
            "ok": self.ok,
            "runs": [r.to_dict() for r in self.runs],
        }

    def regime_summary(self) -> dict[str, Any]:
        """Aggregate regime verdicts for CI artifacts and the dashboard.

        Groups the campaign's regime cells by regime name and reports,
        per regime: runs, how many recovered on-array vs completed via
        the graceful tier, quarantines, and the worst availability /
        slowdown observed — the numbers the "Failure regimes" dashboard
        panel renders.
        """
        regimes: dict[str, dict[str, Any]] = {}
        for r in self.runs:
            if r.regime is None:
                continue
            g = regimes.setdefault(
                r.regime,
                {
                    "runs": 0, "ok": 0, "recovered": 0, "degraded": 0,
                    "quarantined": 0, "degraded_gsets": 0,
                    "min_availability": None, "max_slowdown": None,
                    "params": r.regime_params,
                },
            )
            g["runs"] += 1
            g["ok"] += int(r.ok)
            g["recovered"] += int(r.recovered and not r.degraded)
            g["degraded"] += int(r.degraded)
            g["quarantined"] += r.quarantined
            g["degraded_gsets"] += r.degraded_gsets
            if r.availability is not None:
                cur = g["min_availability"]
                g["min_availability"] = (
                    r.availability if cur is None
                    else min(cur, r.availability)
                )
            if r.healthy_cycles > 0:
                slow = r.total_cycles / r.healthy_cycles
                cur = g["max_slowdown"]
                g["max_slowdown"] = (
                    slow if cur is None else max(cur, slow)
                )
        return {
            "seed": self.seed,
            "ok": self.ok,
            "regimes": regimes,
        }

    def to_text(self) -> str:
        """Human-readable campaign table."""
        lines = [f"fault campaign (seed {self.seed})", ""]
        header = (
            f"{'config':<26} {'kind':<13} {'ok':<4} {'det':>3} "
            f"{'rty':>3} {'rep':>3} {'cycles':>7} {'ovh':>5} {'thr':>6}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for r in self.runs:
            lines.append(
                f"{r.config:<26} {r.kind:<13} "
                f"{'yes' if r.ok else 'NO':<4} {r.detections:>3} "
                f"{r.retries:>3} {r.repartitions:>3} {r.total_cycles:>7} "
                f"{r.overhead_cycles:>5} {float(r.degraded_throughput):>6.3f}"
            )
            if r.error:
                lines.append(f"    error: {r.error}")
            if r.regime is not None and (r.quarantined or r.degraded):
                lines.append(
                    f"    ladder: {r.quarantined} cell(s) quarantined, "
                    f"{r.degraded_gsets} G-set(s) host-degraded "
                    f"({r.degraded_nodes} node(s))"
                )
        good = sum(1 for r in self.runs if r.ok)
        lines.append("")
        lines.append(
            f"{good}/{len(self.runs)} runs ok "
            f"(injected, detected, recovered-or-degraded, oracle-verified)"
        )
        return "\n".join(lines)


def _config_runs(
    seed: int,
    config: CampaignConfig,
    kinds: Sequence[FaultKind],
    policy: RecoveryPolicy,
    record_metrics: bool,
    backend: "str | None",
    regimes: "Sequence[str] | None" = None,
    regime_knobs: "Mapping[str, Any] | None" = None,
) -> list[CampaignRun]:
    """All campaign cells of one configuration (one design build)."""
    cache_before = compiled_cache_info()
    with runlog.stage_scope("campaign.config", config=config.name):
        design = build_design(config)
        a = seeded_matrix(
            config.n, random.Random(f"{seed}:{config.name}:matrix")
        )
        inputs = tc.make_inputs(a, design.semiring)
        if regimes:
            runs = _regime_runs(
                seed, config, regimes, regime_knobs or {}, policy,
                record_metrics, backend, design, inputs,
            )
        else:
            runs = _kind_runs(
                seed, config, kinds, policy, record_metrics, backend,
                design, inputs,
            )
    cache_after = compiled_cache_info()
    runlog.emit(
        "plan_cache", outcome="summary", config=config.name,
        hits=cache_after["hits"] - cache_before["hits"],
        misses=cache_after["misses"] - cache_before["misses"],
    )
    return runs


def _kind_runs(
    seed: int,
    config: CampaignConfig,
    kinds: Sequence[FaultKind],
    policy: RecoveryPolicy,
    record_metrics: bool,
    backend: "str | None",
    design: CampaignDesign,
    inputs: "Mapping[NodeId, Any]",
) -> list[CampaignRun]:
    runs: list[CampaignRun] = []
    for kind in kinds:
        rng = random.Random(f"{seed}:{config.name}:{kind.value}")
        spec = plan_fault(design, kind, rng)
        error: "str | None" = None
        result: "RecoveryResult | None" = None
        with runlog.stage_scope("campaign.cell", kind=kind.value):
            try:
                result = run_resilient(
                    design.dg, design.gg, design.plan, design.order,
                    inputs,
                    semiring=design.semiring,
                    faults=[spec],
                    policy=policy,
                    aligned=config.aligned,
                    record_metrics=record_metrics,
                    description=f"{config.name}:{kind.value}",
                    backend=backend,
                )
            except ResilienceError as exc:
                error = f"{type(exc).__name__}: {exc}"
        if result is not None:
            run = CampaignRun(
                config=config.name,
                kind=kind.value,
                fault=spec.describe(),
                injected=spec.triggered,
                detected=(
                    spec.triggered
                    and result.detected_fault_count
                    >= len(result.injected)
                ),
                recovered=result.recovered,
                oracle_ok=bool(result.oracle_ok),
                detections=len(result.detections),
                retries=result.retries,
                repartitions=result.repartitions,
                total_cycles=result.total_cycles,
                healthy_cycles=result.healthy_cycles,
                overhead_cycles=result.overhead_cycles,
                degraded_throughput=result.degraded_throughput,
                result=result,
            )
        else:
            run = CampaignRun(
                config=config.name,
                kind=kind.value,
                fault=spec.describe(),
                injected=spec.triggered,
                detected=False,
                recovered=False,
                oracle_ok=False,
                detections=0,
                retries=0,
                repartitions=0,
                total_cycles=0,
                healthy_cycles=0,
                overhead_cycles=0,
                degraded_throughput=Fraction(0),
                error=error,
            )
        runs.append(run)
        if record_metrics:
            get_registry().counter(
                "repro_fault_campaign_runs_total",
                "campaign runs by config, kind and verdict",
            ).inc(config=config.name, kind=kind.value, ok=run.ok)
    return runs


def _regime_runs(
    seed: int,
    config: CampaignConfig,
    regimes: "Sequence[str]",
    regime_knobs: "Mapping[str, Any]",
    policy: RecoveryPolicy,
    record_metrics: bool,
    backend: "str | None",
    design: CampaignDesign,
    inputs: "Mapping[NodeId, Any]",
) -> list[CampaignRun]:
    """One campaign cell per failure regime against one design.

    Each regime plans its whole multi-fault :class:`~repro.resilience.
    regimes.FaultPlan` from ``random.Random(f"{seed}:{config}:{regime}")``
    — the same stringly-deterministic keying as :func:`plan_fault` — and
    a cell is *ok* when at least one planned fault fired, every fired
    fault was detected, the output matches the oracle, and the run
    either recovered on-array or completed via the graceful tier.
    """
    runs: list[CampaignRun] = []
    for name in regimes:
        regime = make_regime(name, **regime_knobs)
        rng = random.Random(f"{seed}:{config.name}:{name}")
        fault_plan: FaultPlan = regime.plan(design, rng)
        specs = fault_plan.specs()
        error: "str | None" = None
        result: "RecoveryResult | None" = None
        with runlog.stage_scope("campaign.cell", regime=name):
            runlog.emit(
                "fault_regime", design=f"{config.name}:{name}",
                regime=name, params=dict(fault_plan.params),
                faults=len(specs),
            )
            try:
                result = run_resilient(
                    design.dg, design.gg, design.plan, design.order,
                    inputs,
                    semiring=design.semiring,
                    faults=specs,
                    policy=policy,
                    aligned=config.aligned,
                    record_metrics=record_metrics,
                    description=f"{config.name}:{name}",
                    backend=backend,
                )
            except ResilienceError as exc:
                error = f"{type(exc).__name__}: {exc}"
        fired = [f for f in specs if f.triggered]
        fault_desc = "; ".join(f.describe() for f in fault_plan.faults)
        if result is not None:
            run = CampaignRun(
                config=config.name,
                kind=name,
                fault=fault_desc,
                injected=bool(fired),
                detected=bool(fired) and result.all_faults_detected,
                recovered=result.recovered,
                oracle_ok=bool(result.oracle_ok),
                detections=len(result.detections),
                retries=result.retries,
                repartitions=result.repartitions,
                total_cycles=result.total_cycles,
                healthy_cycles=result.healthy_cycles,
                overhead_cycles=result.overhead_cycles,
                degraded_throughput=result.degraded_throughput,
                result=result,
                regime=name,
                regime_params=dict(fault_plan.params),
                faults_planned=len(fault_plan.faults),
                quarantined=len(result.escalations),
                degraded_gsets=len(result.degraded_sids),
                degraded_nodes=result.degraded_nodes,
                availability=float(result.availability),
                mttr_cycles=result.mttr_cycles,
            )
        else:
            run = CampaignRun(
                config=config.name,
                kind=name,
                fault=fault_desc,
                injected=bool(fired),
                detected=False,
                recovered=False,
                oracle_ok=False,
                detections=0,
                retries=0,
                repartitions=0,
                total_cycles=0,
                healthy_cycles=0,
                overhead_cycles=0,
                degraded_throughput=Fraction(0),
                error=error,
                regime=name,
                regime_params=dict(fault_plan.params),
                faults_planned=len(fault_plan.faults),
            )
        runs.append(run)
        if record_metrics:
            reg = get_registry()
            reg.counter(
                "repro_fault_campaign_runs_total",
                "campaign runs by config, kind and verdict",
            ).inc(config=config.name, kind=name, ok=run.ok)
            reg.counter(
                "repro_fault_regime_runs_total",
                "regime campaign cells by regime and verdict",
            ).inc(regime=name, config=config.name, ok=run.ok)
            reg.counter(
                "repro_fault_regime_faults_total",
                "faults planned by the failure regimes",
            ).inc(len(fault_plan.faults), regime=name, config=config.name)
    return runs


def _campaign_worker(
    seed: int,
    config: CampaignConfig,
    kinds: tuple[FaultKind, ...],
    policy: RecoveryPolicy,
    record_metrics: bool,
    backend: "str | None",
    runlog_payload: "dict[str, str] | None" = None,
    regimes: "tuple[str, ...] | None" = None,
    regime_knobs: "dict[str, Any] | None" = None,
) -> "tuple[list[CampaignRun], dict[str, Any] | None, list[dict[str, Any]]]":
    """One worker process: a fresh registry, one config, all kinds.

    Module-level so :class:`~concurrent.futures.ProcessPoolExecutor`
    can pickle it.  Returns the runs, the worker registry's JSON
    snapshot (merged into the parent registry), and the worker's run-log
    event buffer (absorbed into the parent ledger in submission order —
    the same discipline, so a ``--jobs N`` ledger is content-identical
    to a sequential one).
    """
    from ..obs.metrics import MetricsRegistry, set_registry

    snapshot: "dict[str, Any] | None" = None
    if record_metrics:
        set_registry(MetricsRegistry())
    with runlog.worker_scope(runlog_payload, task=config.name) as rl:
        runs = _config_runs(
            seed, config, kinds, policy, record_metrics, backend,
            regimes=regimes, regime_knobs=regime_knobs,
        )
    events = rl.events if rl is not None else []
    if record_metrics:
        snapshot = get_registry().to_json()
    return runs, snapshot, events


def run_campaign(
    seed: int = 0,
    configs: "Sequence[CampaignConfig | str] | None" = None,
    kinds: "Sequence[FaultKind | str] | None" = None,
    policy: "RecoveryPolicy | None" = None,
    record_metrics: bool = True,
    jobs: "int | None" = None,
    backend: "str | None" = None,
    regime: "str | Sequence[str] | None" = None,
    regime_knobs: "Mapping[str, Any] | None" = None,
) -> CampaignResult:
    """Run one seeded campaign: every config x every fault kind/regime.

    Classic campaigns (``regime=None``) inject exactly one planned
    fault per (config, kind) cell and must detect it, recover, and
    produce the oracle's output.  Regime campaigns (``regime`` a name
    from :data:`~repro.resilience.regimes.REGIME_NAMES`, or a sequence
    of them) instead arm one whole multi-fault
    :class:`~repro.resilience.regimes.FaultPlan` per (config, regime)
    cell and run it under :data:`ADAPTIVE_POLICY` (quarantine ladder +
    graceful degradation) unless ``policy`` overrides; a cell passes
    when every fired fault is detected and the run recovers *or*
    degrades gracefully with oracle-correct output.  ``regime_knobs``
    forwards CLI knob overrides to
    :func:`~repro.resilience.regimes.make_regime`.  A
    :class:`~repro.resilience.runtime.RecoveryExhausted` (or any
    resilience error) is recorded on the run — the campaign never
    crashes half way — and fails the aggregate verdict.

    ``jobs`` > 1 fans the configurations out over a
    :class:`~concurrent.futures.ProcessPoolExecutor`.  Results come
    back in submission order and every worker's metrics snapshot is
    merged into the parent registry, so the :class:`CampaignResult`
    (and, with ``record_metrics``, the registry series) is identical to
    a sequential run's — the seeded RNG streams are keyed by config
    name, never by worker.  ``backend`` selects the attempt simulator
    (see :func:`~repro.resilience.runtime.run_resilient`).
    """
    chosen = [
        campaign_config(c) if isinstance(c, str) else c
        for c in (configs if configs is not None else CAMPAIGN_CONFIGS)
    ]
    chosen_kinds = [
        FaultKind(k) if isinstance(k, str) else k
        for k in (kinds if kinds is not None else tuple(FaultKind))
    ]
    regimes: "tuple[str, ...] | None" = None
    if regime is not None:
        regimes = (regime,) if isinstance(regime, str) else tuple(regime)
    if policy is None:
        policy = ADAPTIVE_POLICY if regimes else RecoveryPolicy()
    knobs = dict(regime_knobs or {})
    # Run identity: semantic parameters only — never ``jobs``, so a
    # parallel campaign shares the sequential run's ledger.  Regime
    # keys only appear on regime campaigns, keeping the classic
    # campaign's run IDs stable across this feature.
    params: dict[str, Any] = {
        "seed": seed,
        "configs": [c.name for c in chosen],
        "kinds": [k.value for k in chosen_kinds],
        "backend": backend,
    }
    if regimes:
        params["regimes"] = list(regimes)
        if knobs:
            params["regime_knobs"] = {
                k: knobs[k] for k in sorted(knobs)
            }
    runs: list[CampaignRun] = []
    with runlog.run_scope("campaign", params) as rl:
        if jobs is not None and jobs > 1 and len(chosen) > 1:
            from concurrent.futures import ProcessPoolExecutor

            kinds_t = tuple(chosen_kinds)
            payload = runlog.worker_payload()
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(chosen))
            ) as pool:
                futures = [
                    pool.submit(
                        _campaign_worker, seed, config, kinds_t, policy,
                        record_metrics, backend, payload,
                        regimes, knobs,
                    )
                    for config in chosen
                ]
                # Deterministic: collect in submission (= config) order;
                # ledgers and registries merge under the same rule.
                for fut in futures:
                    config_runs, snapshot, events = fut.result()
                    runs.extend(config_runs)
                    if snapshot is not None:
                        get_registry().merge_json(snapshot)
                    if rl is not None:
                        rl.absorb(events)
        else:
            for config in chosen:
                with runlog.task_scope(config.name):
                    runs.extend(
                        _config_runs(
                            seed, config, chosen_kinds, policy,
                            record_metrics, backend,
                            regimes=regimes, regime_knobs=knobs,
                        )
                    )
    return CampaignResult(seed=seed, runs=runs)
