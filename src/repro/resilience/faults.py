"""Fault model and injection for the resilience runtime.

Three physical failure modes, all expressed against the *healthy* design
so campaigns can be planned before anything breaks:

* **permanent** — a cell dies at an absolute cycle ``onset``; every value
  it produces from that cycle on is corrupted, forever.  Named by
  *physical* cell: after a re-partition the logical cells are renumbered,
  but the dead silicon stays dead.
* **transient** — a single-event upset corrupting the value one firing of
  one node produces; the fault is consumed by triggering, so a retry of
  the affected G-set computes cleanly.
* **dropped_word** — the host/memory channel loses one input word; the
  cell reads the semiring's zero instead.  The channel's delivery log
  records the loss (the model of a parity/timeout detector at the host
  interface), and a re-request on retry succeeds.

Corruption is semiring-aware: :func:`corrupt` maps the additive identity
to the multiplicative one and anything else to the additive identity, so
an injected fault always *changes* the value (a flip for the boolean
closure, a zero/one swap elsewhere) — which is what makes full-rate
signature detection exhaustive.

The :class:`Injector` protocol is the seam
:func:`repro.arrays.cycle_sim.simulate` calls behind an ``is not None``
check, mirroring the probe seam's zero-overhead-when-disabled contract.
:class:`AttemptInjector` is the runtime's implementation, scoped to one
G-set attempt with the current logical-to-physical cell map.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import (
    Any,
    Hashable,
    Iterable,
    Mapping,
    Protocol,
    Sequence,
    runtime_checkable,
)

from ..core.graph import NodeId
from ..core.semiring import Semiring

__all__ = [
    "FaultKind",
    "FaultSpec",
    "Injector",
    "AttemptInjector",
    "corrupt",
]


class FaultKind(enum.Enum):
    """The three injected failure modes."""

    PERMANENT = "permanent"
    TRANSIENT = "transient"
    DROPPED_WORD = "dropped_word"


@dataclass
class FaultSpec:
    """One planned fault of a seeded campaign.

    ``cell`` (physical) and ``onset`` apply to permanent faults; ``node``
    names the corrupted firing of a transient fault or the lost host word
    of a dropped-word fault.  ``triggered`` flips when the fault first
    fires so one-shot faults (transient, dropped word) are consumed by
    their first occurrence.

    ``provenance`` records where the spec came from: ``"injected"``
    faults were planned by a campaign or test and armed in the
    simulator; ``"escalated"`` permanents were *synthesized* by the
    quarantine ladder when a cell's transient strike count crossed the
    threshold — they are never armed (the silicon may be healthy; the
    retirement is precautionary) and exist so reports and trace lanes
    can tell a diagnosed dead cell from a quarantined flaky one.
    """

    kind: FaultKind
    cell: Hashable = None
    onset: int = 0
    node: NodeId = None
    triggered: bool = field(default=False, compare=False)
    provenance: str = "injected"

    def describe(self) -> str:
        """Compact human-readable form for reports and timelines."""
        tag = "" if self.provenance == "injected" else f", {self.provenance}"
        if self.kind is FaultKind.PERMANENT:
            return f"permanent(cell={self.cell!r}, onset={self.onset}{tag})"
        if self.kind is FaultKind.TRANSIENT:
            return f"transient(node={self.node!r}{tag})"
        return f"dropped_word(node={self.node!r}{tag})"


def corrupt(semiring: Semiring, value: Any) -> Any:
    """A value guaranteed to differ from ``value`` under the semiring.

    The additive identity becomes the multiplicative identity and
    anything else becomes the additive identity — a bit flip for the
    boolean closure, a finite/zero swap for the numeric semirings.
    """
    if value == semiring.zero:
        return semiring.one
    return semiring.zero


@runtime_checkable
class Injector(Protocol):
    """What the cycle simulator calls when ``inject`` is supplied."""

    def on_fire_value(
        self, cycle: int, cell: Hashable, node: NodeId, value: Any
    ) -> Any:
        """Return the (possibly corrupted) value a firing produces."""
        ...  # pragma: no cover - protocol

    def on_host_word(self, node: NodeId, value: Any) -> Any:
        """Return the value the host channel delivers for an input word."""
        ...  # pragma: no cover - protocol


class AttemptInjector:
    """Applies a campaign's armed faults during one G-set attempt.

    Parameters
    ----------
    faults:
        The run's fault list (shared across attempts; one-shot faults
        carry their consumed state in :attr:`FaultSpec.triggered`).
    semiring:
        Algebra used for value corruption and dropped-word substitution.
    cell_map:
        Current logical-to-physical cell map (identity on the healthy
        array); permanent faults name physical cells.
    """

    def __init__(
        self,
        faults: Sequence[FaultSpec],
        semiring: Semiring,
        cell_map: Mapping[Hashable, Hashable],
    ) -> None:
        self.semiring = semiring
        self.cell_map = dict(cell_map)
        self.permanent = [f for f in faults if f.kind is FaultKind.PERMANENT]
        self.transient = {
            f.node: f
            for f in faults
            if f.kind is FaultKind.TRANSIENT and not f.triggered
        }
        self.drops = {
            f.node: f
            for f in faults
            if f.kind is FaultKind.DROPPED_WORD and not f.triggered
        }
        #: Host words the channel failed to deliver during this attempt —
        #: what the deadline watchdog inspects (the simulated stand-in for
        #: a parity/timeout detector at the host interface).
        self.dropped_words: list[NodeId] = []
        #: Firings corrupted during this attempt (ground truth for tests).
        self.corrupted_fires: list[tuple[int, Hashable, NodeId]] = []
        #: Specs that fired during this attempt — what a detection in this
        #: attempt is attributed to when campaigns count coverage.
        self.triggered_specs: list[FaultSpec] = []

    def may_trigger(
        self,
        fires: Mapping[NodeId, tuple[Hashable, int]],
        input_ids: Iterable[NodeId],
    ) -> bool:
        """Could any armed fault affect an attempt with these firings?

        Exact, not heuristic: a permanent fault needs a firing on its
        physical cell at or after its onset; a one-shot transient needs
        its node to fire; a dropped word needs its input word to be
        read.  When this returns ``False`` the injector is provably a
        no-op for the attempt, so the runtime may run it without the
        injection seam (and therefore on the vectorized backend).
        """
        if self.transient and any(n in fires for n in self.transient):
            return True
        if self.drops:
            drops = self.drops
            if any(nid in drops for nid in input_ids):
                return True
        for f in self.permanent:
            for cell, t in fires.values():
                if self.cell_map.get(cell, cell) == f.cell and t >= f.onset:
                    return True
        return False

    def on_fire_value(
        self, cycle: int, cell: Hashable, node: NodeId, value: Any
    ) -> Any:
        """Corrupt the fired value when a permanent/transient fault hits."""
        phys = self.cell_map.get(cell, cell)
        for f in self.permanent:
            if f.cell == phys and cycle >= f.onset:
                f.triggered = True
                self.triggered_specs.append(f)
                self.corrupted_fires.append((cycle, phys, node))
                return corrupt(self.semiring, value)
        t = self.transient.get(node)
        if t is not None and not t.triggered:
            t.triggered = True
            self.triggered_specs.append(t)
            self.corrupted_fires.append((cycle, phys, node))
            return corrupt(self.semiring, value)
        return value

    def on_host_word(self, node: NodeId, value: Any) -> Any:
        """Drop the word (deliver the semiring zero) when armed."""
        d = self.drops.get(node)
        if d is not None and not d.triggered:
            d.triggered = True
            self.triggered_specs.append(d)
            self.dropped_words.append(node)
            return self.semiring.zero
        return value
