"""Core of the reproduction: the graph-based partitioning methodology."""
