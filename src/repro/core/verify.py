"""Randomised end-to-end verification of a partitioned implementation.

One call answers "does this array design actually work?": it sweeps
random inputs (and, optionally, the named synthetic workloads) through
the cycle simulator, cross-checks every result against the software
oracle for the implementation's semiring, and accumulates the timing/
locality evidence into a single report.

    >>> from repro import partition_transitive_closure
    >>> from repro.core.verify import verify_implementation
    >>> impl = partition_transitive_closure(n=8, m=3)
    >>> report = verify_implementation(impl, trials=5, seed=0)
    >>> report.ok
    True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from .partitioner import PartitionedImplementation
from .semiring import Semiring, closure_reference

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..lint import LintReport

__all__ = ["VerificationReport", "verify_implementation"]


@dataclass
class VerificationReport:
    """Evidence gathered by :func:`verify_implementation`."""

    trials: int
    correct: int
    violation_trials: int
    stall_cycles: int
    max_memory_words: int
    mismatches: list[str] = field(default_factory=list)
    lint: "LintReport | None" = None

    @property
    def ok(self) -> bool:
        """Every trial correct, no timing violations anywhere.

        Static lint findings (``lint``) do not affect this: the dynamic
        evidence stands on its own, and the checker's verdict is
        reported separately (``lint.ok``).
        """
        return self.correct == self.trials and self.violation_trials == 0

    def summary(self) -> str:
        """One-line human summary."""
        status = "OK" if self.ok else "FAILED"
        line = (
            f"{status}: {self.correct}/{self.trials} correct, "
            f"{self.violation_trials} trials with violations, "
            f"{self.stall_cycles} stall cycles, "
            f"peak memory {self.max_memory_words} words"
        )
        if self.lint is not None:
            c = self.lint.counts()
            line += (
                f"; lint: {c['error']} error(s), {c['warning']} warning(s)"
            )
        return line


def _random_input(n: int, semiring: Semiring, rng: np.random.Generator) -> np.ndarray:
    density = float(rng.uniform(0.15, 0.6))
    return semiring.random_matrix(n, rng, density=density)


def verify_implementation(
    impl: PartitionedImplementation,
    trials: int = 10,
    seed: int = 0,
    extra_inputs: list[np.ndarray] | None = None,
    preflight: bool = True,
    backend: str | None = None,
) -> VerificationReport:
    """Sweep random inputs through the implementation and check everything.

    Parameters
    ----------
    impl:
        A partitioned implementation (from :func:`repro.partition` or
        :func:`repro.partition_transitive_closure`) whose graph uses the
        transitive-closure I/O naming.
    trials:
        Number of random matrices to run.
    extra_inputs:
        Additional adjacency/weight matrices (e.g. from
        :mod:`repro.algorithms.workloads`) appended to the sweep.
    preflight:
        Also run the static design checker (:mod:`repro.lint`) and
        attach its :class:`~repro.lint.LintReport` to the result's
        ``lint`` field.  Unlike the partitioner's ``preflight=True``
        this never raises — the point of verification is to gather all
        the evidence, static and dynamic, side by side.
    backend:
        Simulator backend for every trial (``"reference"`` /
        ``"vector"``; ``None`` uses the process default).  With the
        vector backend the plan is compiled once and every trial is a
        cached replay — see :mod:`repro.arrays.vector_compile`.
    """
    from ..arrays.vector_sim import resolve_backend
    from ..obs import runlog

    rng = np.random.default_rng(seed)
    n = len({nid[1] for nid in impl.dg.inputs})
    params = {
        "design": impl.dg.name,
        "geometry": impl.plan.geometry,
        "m": impl.plan.m,
        "trials": trials,
        "seed": seed,
        "backend": backend,
    }
    with runlog.run_scope("verify", params):
        runlog.emit(
            "backend", backend=resolve_backend(backend),
            design=impl.dg.name,
        )
        lint_report = None
        if preflight:
            from ..lint import LintTarget, run_lint
            from .metrics import tc_io_bandwidth

            with runlog.stage_scope("verify.preflight"):
                lint_report = run_lint(
                    LintTarget.from_implementation(
                        impl, io_bound=tc_io_bandwidth(n, impl.plan.m)
                    )
                )
        sr = impl.semiring
        inputs = [_random_input(n, sr, rng) for _ in range(trials)]
        for extra in extra_inputs or []:
            if extra.shape != (n, n):
                raise ValueError(
                    f"extra input shape {extra.shape} does not match n={n}"
                )
            inputs.append(np.asarray(extra))

        correct = 0
        violation_trials = 0
        max_mem = 0
        mismatches: list[str] = []
        with runlog.stage_scope("verify.trials", trials=len(inputs)):
            for idx, a in enumerate(inputs):
                res = impl.simulate(a, backend=backend)
                if res.violations:
                    violation_trials += 1
                max_mem = max(max_mem, res.memory_words)
                got = res.output_matrix(n, sr)
                expected = closure_reference(a, sr)
                if np.array_equal(got, expected):
                    correct += 1
                else:
                    bad = int(np.sum(got != expected))
                    mismatches.append(
                        f"trial {idx}: {bad} mismatching entries"
                    )
        report = VerificationReport(
            trials=len(inputs),
            correct=correct,
            violation_trials=violation_trials,
            stall_cycles=impl.exec_plan.stall_cycles,
            max_memory_words=max_mem,
            mismatches=mismatches,
            lint=lint_report,
        )
        runlog.emit(
            "oracle", design=impl.dg.name, checked=True, ok=report.ok,
            trials=report.trials, correct=report.correct,
        )
        return report
