"""Algebraic structures underlying the matrix recurrences.

Warshall's transitive-closure recurrence

    x[i,j] <- x[i,j] (+) ( x[i,k] (x) x[k,j] )

is an instance of the generic *closed idempotent semiring* iteration; the
paper instantiates it with boolean OR / AND.  We keep the algebra abstract so
that the very same dependence graphs and arrays compute:

* ``BOOLEAN``   -- transitive closure (the paper's application);
* ``MIN_PLUS``  -- all-pairs shortest paths (Floyd--Warshall), the natural
  extension the 1988 hardware community also targeted;
* ``MAX_MIN``   -- maximum-capacity (bottleneck) paths;
* ``COUNTING``  -- path counting over the natural numbers (non-idempotent;
  useful as a *negative* example: superfluous-node pruning is only valid on
  semirings satisfying the absorption laws, see
  :func:`Semiring.supports_superfluous_pruning`).

The superfluous-node argument of the paper (Section 3.1) requires

    a (+) a == a                      (idempotent addition), and
    a (x) one == a                    (diagonal elements are the (x)-identity)

so that when one operand of ``(x)`` is a diagonal element the whole update
collapses to the previous value.  Each semiring records whether it satisfies
these laws.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

__all__ = [
    "Semiring",
    "BOOLEAN",
    "MIN_PLUS",
    "MAX_MIN",
    "COUNTING",
    "REAL",
    "SEMIRINGS",
    "closure_reference",
]


@dataclass(frozen=True)
class Semiring:
    """A semiring ``(S, (+), (x), zero, one)`` with numpy-vectorised ops.

    Attributes
    ----------
    name:
        Human-readable identifier (also the registry key in
        :data:`SEMIRINGS`).
    add / mul:
        Scalar (and numpy-broadcastable) binary operations implementing
        ``(+)`` and ``(x)``.
    zero / one:
        The additive and multiplicative identities.
    idempotent_add:
        Whether ``a (+) a == a`` holds; required for the paper's
        superfluous-node elimination.
    diagonal:
        The value carried by diagonal elements of the closure input
        (``1`` for boolean adjacency, ``0`` distance for min-plus).  The
        pruning argument requires ``diagonal == one``.
    dtype:
        Preferred numpy dtype for dense matrices over this semiring.
    """

    name: str
    add: Callable[[Any, Any], Any]
    mul: Callable[[Any, Any], Any]
    zero: Any
    one: Any
    idempotent_add: bool
    dtype: Any
    diagonal: Any = field(default=None)

    def __post_init__(self) -> None:  # noqa: D105
        if self.diagonal is None:
            object.__setattr__(self, "diagonal", self.one)

    # ------------------------------------------------------------------
    # Core algebra helpers
    # ------------------------------------------------------------------
    def mac(self, a: Any, b: Any, c: Any) -> Any:
        """The systolic primitive ``a (+) (b (x) c)`` (one graph node)."""
        return self.add(a, self.mul(b, c))

    def supports_superfluous_pruning(self) -> bool:
        """True when Fig. 11's superfluous-node elimination is sound.

        Requires idempotent addition and the diagonal to be the
        ``(x)``-identity, so ``x (+) (x (x) one) == x``.
        """
        return bool(self.idempotent_add) and self.diagonal == self.one

    # ------------------------------------------------------------------
    # Dense-matrix conveniences (used by reference implementations)
    # ------------------------------------------------------------------
    def matrix(self, a: np.ndarray) -> np.ndarray:
        """Copy ``a`` into this semiring's dtype with the diagonal forced.

        Warshall's formulation assumes ``a[i,i]`` carries
        :attr:`diagonal` (a node is always adjacent to itself).
        """
        m = np.array(a, dtype=self.dtype, copy=True)
        if m.ndim != 2 or m.shape[0] != m.shape[1]:
            raise ValueError(f"expected a square matrix, got shape {m.shape}")
        np.fill_diagonal(m, self.diagonal)
        return m

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Semiring matrix product ``C[i,j] = (+)_k a[i,k] (x) b[k,j]``."""
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        n, k1 = a.shape
        k2, p = b.shape
        if k1 != k2:
            raise ValueError(f"shape mismatch {a.shape} @ {b.shape}")
        # (n, k, 1) x (1, k, p) -> reduce over k with the semiring add.
        prod = self.mul(a[:, :, None], b[None, :, :])
        out = np.full((n, p), self.zero, dtype=self.dtype)
        for k in range(k1):
            out = self.add(out, prod[:, k, :])
        return out

    def random_matrix(
        self, n: int, rng: np.random.Generator, density: float = 0.4
    ) -> np.ndarray:
        """A random ``n x n`` input matrix suitable for closure testing."""
        mask = rng.random((n, n)) < density
        if self.name == "boolean":
            m = mask.astype(self.dtype)
        elif self.name == "min_plus":
            w = rng.integers(1, 10, size=(n, n)).astype(self.dtype)
            m = np.where(mask, w, self.zero)
        elif self.name == "max_min":
            w = rng.integers(1, 10, size=(n, n)).astype(self.dtype)
            m = np.where(mask, w, self.zero)
        else:  # counting and friends
            m = mask.astype(self.dtype)
        np.fill_diagonal(m, self.diagonal)
        return m


def _bool_or(a: Any, b: Any) -> Any:
    return a | b


def _bool_and(a: Any, b: Any) -> Any:
    return a & b


BOOLEAN = Semiring(
    name="boolean",
    add=_bool_or,
    mul=_bool_and,
    zero=False,
    one=True,
    idempotent_add=True,
    dtype=np.bool_,
)

_INF = np.inf

MIN_PLUS = Semiring(
    name="min_plus",
    add=np.minimum,
    mul=lambda a, b: a + b,
    zero=_INF,
    one=0.0,
    idempotent_add=True,
    dtype=np.float64,
)

MAX_MIN = Semiring(
    name="max_min",
    add=np.maximum,
    mul=np.minimum,
    zero=0.0,
    one=_INF,
    idempotent_add=True,
    dtype=np.float64,
)

COUNTING = Semiring(
    name="counting",
    add=lambda a, b: a + b,
    mul=lambda a, b: a * b,
    zero=0,
    one=1,
    idempotent_add=False,
    dtype=np.int64,
)

#: Ordinary (+, *) arithmetic over floats — not a closure semiring, but it
#: lets ``mac`` nodes express plain multiply-accumulate (matrix product).
REAL = Semiring(
    name="real",
    add=lambda a, b: a + b,
    mul=lambda a, b: a * b,
    zero=0.0,
    one=1.0,
    idempotent_add=False,
    dtype=np.float64,
)

SEMIRINGS: dict[str, Semiring] = {
    s.name: s for s in (BOOLEAN, MIN_PLUS, MAX_MIN, COUNTING, REAL)
}


def closure_reference(a: np.ndarray, semiring: Semiring = BOOLEAN) -> np.ndarray:
    """Plain-Python Warshall/Floyd closure, the oracle for everything else.

    Implements exactly the triple loop of Section 3.1:

        for k: for i: for j:  x[i,j] = x[i,j] (+) (x[i,k] (x) x[k,j])

    with the diagonal preset to :attr:`Semiring.diagonal`.
    """
    x = semiring.matrix(a)
    n = x.shape[0]
    for k in range(n):
        # Vectorised over (i, j); x[:, k] and x[k, :] are frozen first,
        # which matches the k-1 superscripts of the recurrence (row k and
        # column k do not change during step k on idempotent semirings,
        # and freezing them keeps non-idempotent semirings well-defined).
        col = x[:, k].copy()
        row = x[k, :].copy()
        x = semiring.add(x, semiring.mul(col[:, None], row[None, :]))
    return x
