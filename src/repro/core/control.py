"""Control-complexity census (the paper's "simple control" arguments).

The paper repeatedly argues simplicity qualitatively: the Fig. 17 array
has "no control complexity" versus Kung's load/reuse switching; the
linear partitioned array's implementation "is easier" than the mesh's;
the Núñez-Torralba chaining "requires rather complex control".  This
module makes those claims measurable.

A cell's *control context* in one G-set is the tuple of decisions its
controller must make there: is the cell active; does each operand come
from a neighbour or from external memory (set-boundary input); does each
forwarded output go to a neighbour or to memory.  The number of distinct
contexts a cell cycles through over the whole schedule — and the number
of distinct contexts array-wide — is the size of the control store an
implementation needs.

Reproduction note (an honest finding): by these raw counts the two
geometries are comparable — the linear array's skew-aligned blocks
produce *more* distinct ragged shapes (one lead-in offset per ``k mod m``
residue) while each cell needs only ~4 contexts, and the mesh's
triangular boundary blocks repeat a few shapes.  The paper's simplicity
argument for linear arrays is therefore best read as dimensional (one
communication direction, one schedule axis, bypass-friendly chains — see
:mod:`repro.arrays.faults`), and its *measurable* advantages are the
Fig. 22 time-mixing loss and fault retention, not configuration-table
size.  The metric is kept because it does separate both of our schemes
from the baselines (Kung's global load/compute mode switch; the
Núñez-Torralba per-kernel reconfiguration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from .gsets import GSet, GSetPlan

__all__ = ["ControlReport", "control_complexity"]


@dataclass(frozen=True)
class ControlReport:
    """Distinct control contexts per cell and array-wide.

    ``set_shapes`` counts the distinct active-cell patterns the array
    controller must be able to issue — the length of its configuration
    table.  A rectangular scheme cycles through a few full/tail shapes;
    the mesh's skew-induced triangular boundary blocks (Fig. 19a) each
    add one.
    """

    per_cell: dict[Hashable, int]
    distinct_total: int
    geometry: str
    set_shapes: int

    @property
    def max_per_cell(self) -> int:
        """Largest control store any single cell needs."""
        return max(self.per_cell.values(), default=0)

    @property
    def mean_per_cell(self) -> float:
        """Average control-store size."""
        if not self.per_cell:
            return 0.0
        return sum(self.per_cell.values()) / len(self.per_cell)


def _neighbour_offsets(geometry: str) -> tuple[tuple[int, ...], ...]:
    if geometry == "linear":
        return ((-1,), (1,))
    return ((-1, 0), (1, 0), (0, -1), (0, 1))


def _shift(
    cell: int | tuple[int, ...], off: tuple[int, ...]
) -> int | tuple[int, ...]:
    if isinstance(cell, tuple):
        return tuple(c + o for c, o in zip(cell, off))
    return cell + off[0]


def control_complexity(plan: GSetPlan, order: Sequence[GSet]) -> ControlReport:
    """Count the distinct per-set control contexts of every cell.

    A context records, for one G-set, which of the cell's neighbours are
    active alongside it (all other operand/result traffic is memory
    traffic and needs memory-port steering instead of neighbour links).
    Idle participation is one further context.
    """
    offsets = _neighbour_offsets(plan.geometry)
    contexts: dict[Hashable, set] = {}
    shapes: set[frozenset] = set()
    all_cells = set()
    for s in plan.gsets:
        all_cells.update(s.cells)
    for s in order:
        active = set(s.cells)
        shapes.add(frozenset(active))
        for cell in all_cells:
            if cell in active:
                ctx = tuple(_shift(cell, off) in active for off in offsets)
            else:
                ctx = "idle"
            contexts.setdefault(cell, set()).add(ctx)
    per_cell = {cell: len(ctxs) for cell, ctxs in contexts.items()}
    distinct_total = len({frozenset(ctxs) for ctxs in contexts.values()})
    return ControlReport(
        per_cell=per_cell,
        distinct_total=distinct_total,
        geometry=plan.geometry,
        set_shapes=len(shapes),
    )
