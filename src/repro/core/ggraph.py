"""G-graphs: grouping primitive nodes into G-nodes (Sec. 2, Figs. 5-6).

Step 2 of the partitioning procedure collapses groups of primitive nodes of
the (already transformed) dependence graph into *G-nodes*; the graph of
G-nodes — the *G-graph* — is what gets mapped onto the target array.  The
selection of groups should

(a) reduce communication requirements (G-node data dependences between
    neighbours only, simple pattern);
(b) equalise computation time where possible (G-nodes composed of the same
    number of primitive nodes);
(c) yield many more G-nodes than array cells, structured two-dimensionally,
    so scheduling has freedom (Sec. 2, requirements a-c).

This module provides the :class:`GGraph` container plus the grouping
strategies the paper compares in Fig. 6 (horizontal / vertical / diagonal
paths, and blocks).  G-node ids are always ``(row, col)`` pairs in a
virtual two-dimensional G-space, which is what the mapping step
(:mod:`repro.core.gsets`) consumes.

For the transitive-closure graph of Fig. 16 the winning strategy groups
each level's grid columns — the *diagonal paths* of the paper's drawing —
producing the Fig. 17 G-graph: ``n`` horizontal paths of ``n+1`` G-nodes,
each of computation time exactly ``n``, with G-edges only to the right
neighbour ``(k, c+1)`` and to the next level ``(k+1, c-1)``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Mapping

import networkx as nx

from .graph import DependenceGraph, NodeId

__all__ = [
    "GNode",
    "GGraph",
    "group_by_rows",
    "group_by_columns",
    "group_by_diagonals",
    "group_by_blocks",
    "GroupingError",
]

GNodeId = tuple  # (row, col) in G-space


class GroupingError(ValueError):
    """Raised when a grouping is not a valid G-graph (e.g. cyclic)."""


@dataclass
class GNode:
    """One G-node: an ordered group of primitive nodes.

    ``members`` are sorted by intra-G-node execution order (the scheduling
    order a single cell uses when it executes the G-node).  ``comp_time``
    is the number of slot-occupying members — the paper's G-node
    computation time.
    """

    gid: GNodeId
    members: tuple[NodeId, ...]
    comp_time: int
    tags: dict[str, int] = field(default_factory=dict)

    @property
    def useful_time(self) -> int:
        """Members that perform real computation (tag ``compute``)."""
        return self.tags.get("compute", 0)


class GGraph:
    """The graph of G-nodes derived from a dependence graph and a grouping.

    Parameters
    ----------
    dg:
        The transformed dependence graph (all slot-occupying nodes must be
        assigned to a group).
    assign:
        Mapping from primitive node id to its G-node id, or a callable
        ``assign(dg, nid) -> GNodeId | None`` (None permitted only for
        non-slot nodes).  G-node ids must be ``(row, col)`` tuples.

    The constructor derives the G-edge structure (an edge between two
    G-nodes for every primitive dependence crossing groups), checks that
    the G-graph is acyclic (a grouping that creates mutual dependences
    between groups cannot be scheduled atomically), and orders each
    G-node's members by an intra-group topological order.
    """

    def __init__(
        self,
        dg: DependenceGraph,
        assign: "Mapping[NodeId, GNodeId] | Callable[[DependenceGraph, NodeId], GNodeId | None]",
    ) -> None:
        self.dg = dg
        assign_fn = assign.get if isinstance(assign, Mapping) else (
            lambda nid: assign(dg, nid)
        )
        self.node_of: dict[NodeId, GNodeId] = {}
        members: dict[GNodeId, list[NodeId]] = {}
        for nid in dg.g.nodes:
            kind = dg.kind(nid)
            gid = assign_fn(nid)
            if gid is None:
                if kind.occupies_slot:
                    raise GroupingError(f"slot node {nid!r} not assigned to a G-node")
                continue
            if not (isinstance(gid, tuple) and len(gid) == 2):
                raise GroupingError(f"G-node id must be a (row, col) pair, got {gid!r}")
            self.node_of[nid] = gid
            members.setdefault(gid, []).append(nid)

        # Intra-group topological order = execution order within the cell.
        # Rank nodes by their longest intra-group dependence chain, with the
        # drawing position as a deterministic tie-break (independent nodes
        # such as the delay column then execute in position order, which is
        # what their neighbours' timing expects).
        topo = dg.topological_order()
        group_rank: dict[NodeId, int] = {}
        for nid in topo:
            gid = self.node_of.get(nid)
            if gid is None:
                continue
            rank = 0
            for pred in dg.g.predecessors(nid):
                if self.node_of.get(pred) == gid:
                    rank = max(rank, group_rank[pred] + 1)
            group_rank[nid] = rank
        self.gnodes: dict[GNodeId, GNode] = {}
        for gid, nids in members.items():
            nids.sort(key=lambda x: (group_rank[x], dg.pos(x) or ()))
            comp_time = sum(1 for x in nids if dg.kind(x).occupies_slot)
            tags = Counter(
                dg.g.nodes[x].get("tag") or dg.kind(x).value
                for x in nids
                if dg.kind(x).occupies_slot
            )
            self.gnodes[gid] = GNode(
                gid=gid, members=tuple(nids), comp_time=comp_time, tags=dict(tags)
            )

        # Derive the G-edge structure.
        self.g = nx.DiGraph()
        self.g.add_nodes_from(self.gnodes)
        for u, v in dg.g.edges:
            gu, gv = self.node_of.get(u), self.node_of.get(v)
            if gu is None or gv is None or gu == gv:
                continue
            if self.g.has_edge(gu, gv):
                self.g.edges[gu, gv]["weight"] += 1
            else:
                self.g.add_edge(gu, gv, weight=1)
        if not nx.is_directed_acyclic_graph(self.g):
            cycle = nx.find_cycle(self.g)
            raise GroupingError(f"grouping produces a cyclic G-graph: {cycle[:4]}")

    # ------------------------------------------------------------------
    # Shape and time structure
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.gnodes)

    @property
    def rows(self) -> tuple:
        """Sorted distinct G-space row indices."""
        return tuple(sorted({gid[0] for gid in self.gnodes}))

    @property
    def cols(self) -> tuple:
        """Sorted distinct G-space column indices."""
        return tuple(sorted({gid[1] for gid in self.gnodes}))

    def grid_shape(self) -> tuple[int, int]:
        """(number of rows, number of columns) of the G-space grid."""
        return (len(self.rows), len(self.cols))

    def comp_times(self) -> dict[GNodeId, int]:
        """Computation time of every G-node."""
        return {gid: gn.comp_time for gid, gn in self.gnodes.items()}

    def is_uniform_time(self) -> bool:
        """True when all G-nodes have the same computation time (Fig. 17)."""
        times = {gn.comp_time for gn in self.gnodes.values()}
        return len(times) <= 1

    def row_times(self, row: int) -> tuple[int, ...]:
        """Computation times along one horizontal path (Fig. 22 analysis)."""
        return tuple(
            self.gnodes[gid].comp_time
            for gid in sorted(g for g in self.gnodes if g[0] == row)
        )

    def col_times(self, col: int) -> tuple[int, ...]:
        """Computation times along one vertical path."""
        return tuple(
            self.gnodes[gid].comp_time
            for gid in sorted(g for g in self.gnodes if g[1] == col)
        )

    def total_slots(self) -> int:
        """Total primitive slots across all G-nodes."""
        return sum(gn.comp_time for gn in self.gnodes.values())

    def total_useful(self) -> int:
        """Total 'compute'-tagged slots (numerator of utilization)."""
        return sum(gn.useful_time for gn in self.gnodes.values())

    # ------------------------------------------------------------------
    # Communication structure
    # ------------------------------------------------------------------
    def edge_deltas(self) -> Counter:
        """Histogram of G-edge direction vectors ``(d_row, d_col)``.

        A well-formed G-graph (requirement (a)) has a tiny support here —
        the Fig. 17 G-graph has exactly ``{(0, 1), (1, -1)}``.
        """
        deltas: Counter = Counter()
        for (r1, c1), (r2, c2) in self.g.edges:
            deltas[(r2 - r1, c2 - c1)] += 1
        return deltas

    def is_nearest_neighbour(self, max_step: int = 1) -> bool:
        """True when every G-edge connects G-space neighbours."""
        return all(
            abs(dr) <= max_step and abs(dc) <= max_step
            for dr, dc in self.edge_deltas()
        )

    def asap_times(self, lag: int = 1) -> dict[GNodeId, int]:
        """Earliest start tags for every G-node (the Fig. 20 ``t_i`` tags).

        With pipelined data flow a successor G-node can start ``lag``
        cycles after its predecessor *starts* (not after it completes),
        because the first result leaves the predecessor after one cycle.
        """
        start: dict[GNodeId, int] = {}
        for gid in nx.topological_sort(self.g):
            preds = list(self.g.predecessors(gid))
            start[gid] = max((start[p] + lag for p in preds), default=0)
        return start

    def predecessors(self, gid: GNodeId) -> list[GNodeId]:
        """G-nodes this G-node depends on."""
        return list(self.g.predecessors(gid))

    def __repr__(self) -> str:  # noqa: D105
        r, c = self.grid_shape()
        times = sorted({gn.comp_time for gn in self.gnodes.values()})
        return (
            f"<GGraph {len(self)} G-nodes ({r}x{c} grid), "
            f"comp times {times[:5]}{'...' if len(times) > 5 else ''}>"
        )


# ----------------------------------------------------------------------
# Grouping strategies (Fig. 6 alternatives)
# ----------------------------------------------------------------------

def _pos3(dg: DependenceGraph, nid: NodeId) -> tuple | None:
    """Position of a slot node as (level, row, col), else None."""
    if not dg.kind(nid).occupies_slot:
        return None
    p = dg.pos(nid)
    if p is None or len(p) != 3:
        raise GroupingError(f"slot node {nid!r} lacks a (level, row, col) position")
    return p


def group_by_rows(dg: DependenceGraph, nid: NodeId) -> GNodeId | None:
    """Horizontal-path grouping: G-node = one row of one level."""
    p = _pos3(dg, nid)
    if p is None:
        return None
    k, r, _ = p
    return (k, r)


def group_by_columns(dg: DependenceGraph, nid: NodeId) -> GNodeId | None:
    """Vertical-path grouping: G-node = one column of one level.

    On the Fig. 16 transitive-closure graph these columns are the drawn
    *diagonal* paths, and this grouping produces the Fig. 17 G-graph.
    """
    p = _pos3(dg, nid)
    if p is None:
        return None
    k, _, c = p
    return (k, c)


def group_by_diagonals(modulus: int) -> Callable[[DependenceGraph, NodeId], GNodeId | None]:
    """Anti-diagonal grouping: G-node = ``(level, (row + col) mod modulus)``.

    Included as a Fig. 6 alternative; for some graphs it yields cyclic
    G-graphs (caught by :class:`GGraph`), illustrating why grouping
    requires care.
    """

    def assign(dg: DependenceGraph, nid: NodeId) -> GNodeId | None:
        p = _pos3(dg, nid)
        if p is None:
            return None
        k, r, c = p
        return (k, (r + c) % modulus)

    return assign


def group_by_blocks(
    block_rows: int, block_cols: int, level_height: int | None = None
) -> Callable[[DependenceGraph, NodeId], GNodeId | None]:
    """Block grouping: G-node = one ``block_rows x block_cols`` tile.

    Levels are flattened into numeric G-space rows: ``row = level *
    ceil(level_height / block_rows) + r // block_rows`` so the result
    remains a 2-D grid with orderable coordinates.  ``level_height``
    defaults to a bound derived from the graph's largest row index.
    """
    if block_rows < 1 or block_cols < 1:
        raise ValueError("block dimensions must be >= 1")
    state: dict[str, int] = {}

    def assign(dg: DependenceGraph, nid: NodeId) -> GNodeId | None:
        p = _pos3(dg, nid)
        if p is None:
            return None
        k, r, c = p
        if "stride" not in state:
            height = level_height
            if height is None:
                height = 1 + max(
                    dg.pos(x)[1]
                    for x in dg.g.nodes
                    if dg.kind(x).occupies_slot and dg.pos(x) is not None
                )
            state["stride"] = -(-height // block_rows)
        return (k * state["stride"] + r // block_rows, c // block_cols)

    return assign
