"""Functional evaluation of dependence graphs.

Every stage of the transformation pipeline — from the fully-parallel graph
of Fig. 10 down to the regularized graph of Fig. 16 — must compute the same
function.  This module is the *semantic-equivalence oracle*: it interprets
any :class:`~repro.core.graph.DependenceGraph` by topological order and
returns the output values, so tests can compare each stage against the
Warshall reference on random inputs.

Opcode semantics are resolved here (not stored in the graph) so that the
same graph can be evaluated over different semirings.

Port model: each node's evaluation produces a dict of output-port values.
Op nodes expose ``"out"`` (the computed result) plus each operand under its
role name (the forwarded copy a systolic cell passes to its neighbour).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Mapping

from .graph import DependenceGraph, GraphError, NodeId, NodeKind
from .semiring import BOOLEAN, Semiring

__all__ = ["evaluate", "evaluate_full", "OPCODE_SEMANTICS"]


def _rotg(a: float, b: float) -> tuple[float, float]:
    """Generate a Givens rotation (c, s) annihilating ``b`` against ``a``."""
    r = math.hypot(a, b)
    if r == 0.0:
        return (1.0, 0.0)
    return (a / r, b / r)


#: opcode -> callable(semiring, **role values) -> result value
OPCODE_SEMANTICS: dict[str, Callable[..., Any]] = {
    "mac": lambda sr, a, b, c: sr.mac(a, b, c),
    "add": lambda sr, a, b: a + b,
    "sub": lambda sr, a, b: a - b,
    "mul": lambda sr, a, b: a * b,
    "div": lambda sr, a, b: a / b,
    "msub": lambda sr, a, b, c: a - b * c,
    "rotg": lambda sr, a, b: _rotg(a, b),
    "rota": lambda sr, a, b, r: r[0] * a + r[1] * b,
    "rotb": lambda sr, a, b, r: -r[1] * a + r[0] * b,
    "neg": lambda sr, a: -a,
    "recip": lambda sr, a: 1.0 / a,
}


def evaluate_full(
    dg: DependenceGraph,
    inputs: Mapping[NodeId, Any],
    semiring: Semiring = BOOLEAN,
) -> dict[NodeId, dict[str, Any]]:
    """Evaluate every node of ``dg``; return per-node output-port tables.

    Parameters
    ----------
    dg:
        The graph to interpret (any pipeline stage).
    inputs:
        Value for each primary-input node id; missing inputs raise
        :class:`~repro.core.graph.GraphError`.
    semiring:
        Algebra used by ``mac`` nodes.  Field opcodes ignore it.
    """
    values: dict[NodeId, dict[str, Any]] = {}

    def read(ref: tuple[NodeId, str]) -> Any:
        src, sport = ref
        return values[src][sport]

    for nid in dg.topological_order():
        kind = dg.kind(nid)
        if kind is NodeKind.INPUT:
            if nid not in inputs:
                raise GraphError(f"no value supplied for input {nid!r}")
            values[nid] = {"out": inputs[nid]}
        elif kind is NodeKind.CONST:
            values[nid] = {"out": dg.g.nodes[nid]["value"]}
        elif kind in (NodeKind.PASS, NodeKind.DELAY, NodeKind.OUTPUT):
            (ref,) = dg.operands(nid).values()
            values[nid] = {"out": read(ref)}
        elif kind is NodeKind.OP:
            opcode = dg.g.nodes[nid]["opcode"]
            fn = OPCODE_SEMANTICS.get(opcode)
            if fn is None:
                raise GraphError(f"no semantics registered for opcode {opcode!r}")
            roles = {r: read(ref) for r, ref in dg.operands(nid).items()}
            table = dict(roles)  # forwarded operands
            table["out"] = fn(semiring, **roles)
            values[nid] = table
        else:  # pragma: no cover - exhaustive over NodeKind
            raise GraphError(f"cannot evaluate node kind {kind}")
    return values


def evaluate(
    dg: DependenceGraph,
    inputs: Mapping[NodeId, Any],
    semiring: Semiring = BOOLEAN,
) -> dict[NodeId, Any]:
    """Evaluate ``dg`` and return only the primary-output values."""
    values = evaluate_full(dg, inputs, semiring)
    return {nid: values[nid]["out"] for nid in dg.outputs}
