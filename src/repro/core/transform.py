"""Generic dependence-graph transformations (Sec. 2 step 1, Fig. 4).

The methodology removes implementation-hostile properties by *rewriting
the graph*:

* :func:`prune_superfluous` — delete operations that provably do not
  change their value (Fig. 11), stretching the data lines across them;
* :func:`pipeline_broadcasts` — replace every one-to-many fan-out by a
  pipelined chain threaded through the consumers (Fig. 4a / Fig. 12);
  consumers forward the operand on their output port, so no extra
  hardware nodes are needed where a consumer already occupies the slot;
* :func:`insert_delay` — put delay nodes on an edge to equalise path
  lengths / regularise a communication pattern (Fig. 4b / Fig. 15c);
* :func:`reindex_positions` — re-embed the drawing (the *flip*
  transformations of Fig. 13 are position re-indexings: the wiring order
  of the pipelined chains is chosen by ``order_key``, the drawing by the
  new positions).

The transitive-closure front-end (:mod:`repro.algorithms.transitive_closure`)
constructs each stage directly for exact control of the geometry; the
tests demonstrate that these generic rewrites reproduce the same
properties (e.g. ``pipeline_broadcasts(tc_pruned(n))`` kills every
broadcast while preserving the computed closure).
"""

from __future__ import annotations

from typing import Callable, Hashable

from ..obs.tracing import stage_span
from .analysis import find_broadcasts
from .graph import (
    DependenceGraph,
    NodeId,
    NodeKind,
    PortRef,
    port,
)

__all__ = [
    "prune_superfluous",
    "pipeline_broadcasts",
    "insert_delay",
    "reindex_positions",
    "TransformError",
]


class TransformError(ValueError):
    """Raised when a rewrite cannot be applied."""


def prune_superfluous(
    dg: DependenceGraph,
    is_superfluous: Callable[[DependenceGraph, NodeId], bool],
    carrier_role: str = "a",
) -> DependenceGraph:
    """Remove op nodes whose result provably equals one of their operands.

    ``is_superfluous(dg, nid)`` marks removable op nodes;
    ``carrier_role`` names the operand whose value the node would have
    produced (for the Warshall ``mac`` this is ``a`` — see the
    superfluous-node argument of Sec. 3.1).  Consumers are rewired to the
    carrier's producer, transitively, so chains of superfluous nodes
    collapse to their first real producer.
    """
    with stage_span(
        "transform.prune_superfluous", graph=dg.name,
        nodes_in=len(dg), edges_in=dg.g.number_of_edges(),
    ) as sp:
        out = dg.copy(name=f"{dg.name}/pruned")
        # Resolve replacement references in topological order so that chains
        # of superfluous nodes collapse in one pass.
        replacement: dict[NodeId, tuple[Hashable, str]] = {}
        doomed: list[NodeId] = []
        for nid in out.topological_order():
            if out.kind(nid) is not NodeKind.OP or not is_superfluous(out, nid):
                continue
            ops = out.operands(nid)
            if carrier_role not in ops:
                raise TransformError(
                    f"superfluous node {nid!r} has no {carrier_role!r} operand"
                )
            ref = ops[carrier_role]
            # If the carrier itself was superfluous, chase it.
            while ref[0] in replacement and ref[1] == "out":
                ref = replacement[ref[0]]
            replacement[nid] = ref
            doomed.append(nid)
        # Rewire all consumers of doomed nodes.
        for nid in list(out.g.nodes):
            for role, (src, sport) in list(out.operands(nid).items()):
                if src in replacement:
                    ref = replacement[src] if sport == "out" else None
                    if ref is None:
                        # A forwarding port of a removed node: the forwarded
                        # operand is whatever the removed node consumed there.
                        fref = dg.operands(src)[sport]
                        while fref[0] in replacement and fref[1] == "out":
                            fref = replacement[fref[0]]
                        ref = fref
                    out.rewire(nid, role, PortRef(*ref))
        for nid in reversed(doomed):
            out.remove_node(nid)
        sp.tag("pruned", len(doomed))
        sp.tag("nodes_out", len(out))
        sp.tag("edges_out", out.g.number_of_edges())
    return out


def pipeline_broadcasts(
    dg: DependenceGraph,
    order_key: Callable[[DependenceGraph, NodeId], tuple] | None = None,
    fanout_threshold: int = 1,
) -> DependenceGraph:
    """Replace every broadcast by a chain through its consumers (Fig. 4a).

    For each value with more than ``fanout_threshold`` consuming nodes,
    the consumers are sorted by ``order_key`` (default: their position,
    then their id) and re-wired so that consumer ``i`` reads the value
    from consumer ``i-1``'s forwarding port.  Op nodes forward operands on
    the port named after the consuming role; pass/delay nodes forward on
    ``out``.  Output nodes cannot forward and are left reading the source
    directly (collecting a result is host wiring, not array wiring).

    The chain's direction is entirely determined by ``order_key`` — the
    flip transformations of Fig. 13 are realised by passing a cyclic key
    that places the broadcast source first.
    """

    def default_key(g: DependenceGraph, nid: NodeId) -> tuple:
        p = g.pos(nid)
        return (p if p is not None else (), repr(nid))

    key = order_key or default_key
    with stage_span(
        "transform.pipeline_broadcasts", graph=dg.name,
        nodes_in=len(dg), edges_in=dg.g.number_of_edges(),
    ) as sp:
        out = dg.copy(name=f"{dg.name}/pipelined")
        report = find_broadcasts(out, fanout_threshold=fanout_threshold)
        chained = 0
        for (src, sport), _count in report.sources:
            consumers: list[tuple[NodeId, str]] = []
            for nid in list(out.g.successors(src)):
                for role, ref in out.operands(nid).items():
                    if ref == (src, sport):
                        consumers.append((nid, role))
            # Group roles per consumer: a node reading the value on several
            # ports receives it once and fans it out internally (operands may
            # share a reference), so the chain hops nodes, not roles.
            roles_of: dict[NodeId, list[str]] = {}
            for nid, role in consumers:
                if out.kind(nid) is not NodeKind.OUTPUT:
                    roles_of.setdefault(nid, []).append(role)
            if len(roles_of) <= fanout_threshold:
                continue
            chain = sorted(roles_of, key=lambda nid: key(out, nid))
            prev_ref: PortRef = PortRef(src, sport)
            for nid in chain:
                for role in roles_of[nid]:
                    out.rewire(nid, role, prev_ref)
                if out.kind(nid) is NodeKind.OP:
                    prev_ref = port(nid, roles_of[nid][0])
                else:  # PASS / DELAY forward on their out port
                    prev_ref = PortRef(nid, "out")
            chained += 1
        sp.tag("broadcasts", len(report.sources))
        sp.tag("chained", chained)
        sp.tag("nodes_out", len(out))
        sp.tag("edges_out", out.g.number_of_edges())
    return out


def insert_delay(
    dg: DependenceGraph,
    consumer: NodeId,
    role: str,
    count: int = 1,
    positions: list[tuple] | None = None,
    tag: str = "delay",
) -> DependenceGraph:
    """Insert ``count`` delay nodes on one operand edge (Fig. 4b).

    Used to equalise path lengths when a communication pattern varies
    across the graph; the delays are placed "with the same communication
    structure that dominates the graph" (Fig. 15c), which here means the
    caller supplies their drawing positions.
    """
    if count < 1:
        raise TransformError(f"delay count must be positive, got {count}")
    with stage_span(
        "transform.insert_delay", graph=dg.name, nodes_in=len(dg),
        count=count,
    ) as sp:
        out = dg.copy(name=f"{dg.name}/delayed")
        ref = out.operands(consumer).get(role)
        if ref is None:
            raise TransformError(f"node {consumer!r} has no operand {role!r}")
        prev: PortRef = PortRef(*ref)
        for idx in range(count):
            pos = positions[idx] if positions else None
            did = ("delay", consumer, role, idx)
            out.add_delay(did, prev, pos=pos, tag=tag)
            prev = PortRef(did, "out")
        out.rewire(consumer, role, prev)
        sp.tag("nodes_out", len(out))
    return out


def reindex_positions(
    dg: DependenceGraph,
    fn: Callable[[NodeId, tuple], tuple],
) -> DependenceGraph:
    """Re-embed the drawing: ``fn(nid, pos) -> new pos`` (the Fig. 13 flips).

    Only positions change; wiring is untouched.  Combined with
    :func:`pipeline_broadcasts` and a matching ``order_key`` this realises
    the paper's flip: nodes on the wrong side of a broadcast source are
    moved past its other end, making all chains uni-directional.
    """
    with stage_span(
        "transform.reindex_positions", graph=dg.name, nodes_in=len(dg)
    ) as sp:
        out = dg.copy(name=f"{dg.name}/reindexed")
        moved = 0
        for nid in out.g.nodes:
            p = out.pos(nid)
            if p is not None:
                out.set_pos(nid, fn(nid, p))
                moved += 1
        sp.tag("repositioned", moved)
    return out
