"""The three-step partitioning procedure as one façade (Sec. 2).

:func:`partition` runs the full methodology on any grouped dependence
graph; :func:`partition_transitive_closure` is the turnkey entry point for
the paper's application — from a problem size and an array description to
a verified, cycle-simulated partitioned implementation.

    >>> from repro import partition_transitive_closure
    >>> impl = partition_transitive_closure(n=12, m=4, geometry="linear")
    >>> impl.report.row()["U"]                      # doctest: +SKIP
    0.673...
    >>> import numpy as np
    >>> from repro.algorithms.warshall import random_adjacency, warshall
    >>> a = random_adjacency(12, seed=0)
    >>> bool(np.array_equal(impl.run(a), warshall(a)))
    True
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..algorithms import transitive_closure as tc
from ..obs.tracing import stage_span
from .ggraph import GGraph, GNodeId, group_by_columns
from .graph import DependenceGraph, NodeId
from .gsets import (
    GSet,
    GSetPlan,
    make_linear_gsets,
    make_mesh_gsets,
    schedule_gsets,
    verify_schedule,
)
from .metrics import PerformanceReport, evaluate_schedule, tc_io_bandwidth
from .semiring import BOOLEAN, Semiring

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from ..arrays.cycle_sim import SimResult
    from ..arrays.plan import ExecutionPlan

__all__ = ["PartitionedImplementation", "partition", "partition_transitive_closure"]


@dataclass
class PartitionedImplementation:
    """Everything the methodology produces for one (algorithm, array) pair."""

    dg: DependenceGraph
    gg: GGraph
    plan: GSetPlan
    order: list[GSet]
    report: PerformanceReport
    semiring: Semiring = BOOLEAN

    _exec_plan = None

    @property
    def exec_plan(self) -> "ExecutionPlan":
        """The cycle-level execution plan (built lazily)."""
        if self._exec_plan is None:
            from ..arrays.plan import partitioned_plan

            with stage_span(
                "arrays.partitioned_plan", gsets=len(self.order)
            ) as sp:
                self._exec_plan = partitioned_plan(self.plan, self.order)
                sp.tag("fires", len(self._exec_plan.fires))
                sp.tag("makespan", self._exec_plan.makespan)
                sp.tag("stall_cycles", self._exec_plan.stall_cycles)
        return self._exec_plan

    def run(
        self, a: np.ndarray, strict: bool = True, backend: str | None = None
    ) -> np.ndarray:
        """Cycle-simulate the implementation on an input matrix.

        Only available for graphs using the transitive-closure I/O naming
        (``("in", i, j)`` / ``("out", i, j)``); raises on violations when
        ``strict``.  ``backend`` selects the simulator engine
        (``"reference"`` / ``"vector"``; ``None`` uses the process-wide
        default — see :mod:`repro.arrays.vector_sim`).
        """
        from ..arrays.vector_sim import dispatch_simulate

        n = a.shape[0]
        res = dispatch_simulate(
            self.exec_plan, self.dg, tc.make_inputs(a, self.semiring), self.semiring,
            strict=strict, backend=backend,
        )
        return res.output_matrix(n, self.semiring)

    def simulate(
        self, a: np.ndarray, backend: str | None = None
    ) -> "SimResult":
        """Full cycle simulation; returns the raw :class:`SimResult`."""
        from ..arrays.vector_sim import dispatch_simulate

        return dispatch_simulate(
            self.exec_plan, self.dg, tc.make_inputs(a, self.semiring), self.semiring,
            backend=backend,
        )


def _run_preflight(
    impl: PartitionedImplementation, io_bound: Fraction | None = None
) -> None:
    """Static design check; raises :class:`repro.lint.LintError` on errors."""
    from ..lint import LintTarget
    from ..lint import preflight as lint_preflight

    with stage_span("partition.preflight") as sp:
        report = lint_preflight(
            LintTarget.from_implementation(impl, io_bound=io_bound)
        )
        sp.tag("findings", len(report))


def partition(
    dg: DependenceGraph,
    grouping: Callable[[DependenceGraph, NodeId], GNodeId | None],
    m: int,
    geometry: str = "linear",
    policy: str = "vertical",
    aligned: bool = True,
    mesh_shape: tuple[int, int] | None = None,
    semiring: Semiring = BOOLEAN,
    preflight: bool = False,
) -> PartitionedImplementation:
    """Run steps 2-3 of the procedure on an already-transformed graph.

    (Step 1 — removing broadcasts, bi-directional flow and irregularity —
    is the responsibility of the algorithm front-end or of
    :mod:`repro.core.transform`.)

    ``preflight=True`` runs the static design checker
    (:mod:`repro.lint`) over the finished implementation and raises
    :class:`repro.lint.LintError` before returning a design with
    error-severity findings.
    """
    with stage_span(
        "partition.group", graph=dg.name,
        nodes=len(dg), edges=dg.g.number_of_edges(),
    ) as sp:
        gg = GGraph(dg, grouping)
        sp.tag("gnodes", len(gg.gnodes))
        sp.tag("gedges", gg.g.number_of_edges())
    with stage_span(
        "partition.select_gsets", geometry=geometry, m=m, gnodes=len(gg.gnodes)
    ) as sp:
        if geometry == "linear":
            plan = make_linear_gsets(gg, m, aligned=aligned)
        elif geometry == "mesh":
            plan = make_mesh_gsets(gg, m, shape=mesh_shape)
        else:
            raise ValueError(f"unknown geometry {geometry!r}")
        sp.tag("gsets", len(plan.gsets))
        sp.tag("boundary_gsets", plan.boundary_sets())
    with stage_span("partition.schedule", policy=policy, gsets=len(plan.gsets)):
        order = schedule_gsets(plan, policy)
    with stage_span("partition.verify", gsets=len(order)):
        verify_schedule(plan, order)
    with stage_span("partition.evaluate", gsets=len(order)) as sp:
        report = evaluate_schedule(plan, order)
        sp.tag("total_time", report.total_time)
        sp.tag("utilization", report.utilization)
    impl = PartitionedImplementation(
        dg=dg, gg=gg, plan=plan, order=order, report=report, semiring=semiring
    )
    if preflight:
        _run_preflight(impl)
    return impl


def partition_transitive_closure(
    n: int,
    m: int,
    geometry: str = "linear",
    policy: str = "vertical",
    aligned: bool = True,
    semiring: Semiring = BOOLEAN,
    preflight: bool = False,
) -> PartitionedImplementation:
    """Turnkey partitioned transitive closure (the paper's Sec. 3).

    Builds the regularized graph (Fig. 16), groups its diagonal paths into
    the Fig. 17 G-graph, selects and schedules G-sets for the requested
    array, and returns the implementation with its Sec. 4 report.

    ``preflight=True`` statically checks the design (including the
    Fig. 21 ``m/n`` host-bandwidth bound) and raises
    :class:`repro.lint.LintError` on error-severity findings.
    """
    with stage_span("frontend.tc_regular", n=n) as sp:
        dg = tc.tc_regular(n)
        sp.tag("nodes", len(dg))
        sp.tag("edges", dg.g.number_of_edges())
    impl = partition(
        dg,
        group_by_columns,
        m,
        geometry=geometry,
        policy=policy,
        aligned=aligned,
        semiring=semiring,
    )
    if preflight:
        _run_preflight(impl, io_bound=tc_io_bandwidth(n, m))
    return impl
