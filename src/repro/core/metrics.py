"""Performance measures for partitioned execution (Section 4.1).

The paper evaluates arrays with four measures, all computable from the
dependence graphs used to derive the implementation:

* **Throughput** ``T``: ``T^{-1} = sum_i (tau_i^{-1} + d_i)`` where
  ``tau_i^{-1} = t_i`` is the longest computation time of a node in the
  ``i``-th G-set and ``d_i`` the partitioning overhead (zero when data
  flow through the G-nodes is pipelined).
* **Utilization** ``U = N / (m / T)`` where ``N = sum_i n_i t_i`` is the
  total number of nodes of the *original* (pruned) dependence graph — the
  work that must actually be performed.
* **I/O bandwidth** ``D_IO``: rate at which the host must feed inputs.
* **Overhead due to partitioning**: cycles spent on actions that are not
  part of the algorithm (loading/unloading); zero for the paper's arrays,
  non-zero for the baselines.

Two families of functions live here:

* ``tc_*`` — the paper's closed forms for partitioned transitive closure
  (Section 4.2), used as the *expected* values in benchmarks;
* ``*_from_schedule`` — the same measures computed from an actual G-set
  plan and schedule, used as the *measured* values (and cross-checked
  against the cycle-accurate simulator in :mod:`repro.arrays`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from .ggraph import GGraph
from .graph import NodeKind
from .gsets import GSet, GSetPlan

__all__ = [
    "PerformanceReport",
    "tc_linear_throughput",
    "tc_mesh_throughput",
    "tc_utilization",
    "tc_io_bandwidth",
    "tc_gset_count",
    "memory_connections",
    "evaluate_schedule",
    "time_mixing_loss",
    "boundary_loss",
    "schedule_total_time",
    "schedule_io_profile",
    "schedule_memory_traffic",
]


# ----------------------------------------------------------------------
# Closed forms (Section 4.2)
# ----------------------------------------------------------------------

def tc_gset_count(n: int, m: int) -> Fraction:
    """Number of G-sets, ``n(n+1)/m`` (exact when ``m | n+1``)."""
    return Fraction(n * (n + 1), m)


def tc_linear_throughput(n: int, m: int) -> Fraction:
    """Linear-array throughput ``T = m / (n^2 (n+1))`` (Sec. 4.2)."""
    return Fraction(m, n * n * (n + 1))


def tc_mesh_throughput(n: int, m: int) -> Fraction:
    """Two-dimensional-array throughput — same as the linear array.

    ``(n/sqrt(m)) ((n+1)/sqrt(m)) = n(n+1)/m`` G-sets of time ``n``.
    """
    return tc_linear_throughput(n, m)


def tc_utilization(n: int) -> Fraction:
    """Utilization ``U = (n-1)(n-2) / (n(n+1)) -> 1`` (Sec. 4.2).

    Independent of ``m``; identical for the linear and the
    two-dimensional arrays.
    """
    return Fraction((n - 1) * (n - 2), n * (n + 1))


def tc_io_bandwidth(n: int, m: int) -> Fraction:
    """Host I/O bandwidth ``D_IO = n m / n^2 = m / n`` (Fig. 21)."""
    return Fraction(m, n)


def memory_connections(geometry: str, m: int) -> int:
    """External-memory connections: ``m+1`` (linear) or ``2 sqrt(m)`` (mesh)."""
    if geometry == "linear":
        return m + 1
    if geometry == "mesh":
        side = math.isqrt(m)
        if side * side != m:
            raise ValueError(f"mesh memory connections need square m, got {m}")
        return 2 * side
    raise ValueError(f"unknown geometry {geometry!r}")


# ----------------------------------------------------------------------
# Schedule-derived measures
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PerformanceReport:
    """Sec. 4.1 measures for one partitioned implementation."""

    geometry: str
    m: int
    total_time: int
    overhead: int
    throughput: Fraction
    utilization: Fraction
    occupancy: Fraction
    io_bandwidth: Fraction
    io_steady: Fraction
    io_peak: int
    memory_words: int
    memory_connections: int
    gsets: int
    boundary_gsets: int

    def row(self) -> dict:
        """Flat dict for table printing in the benchmark harness."""
        return {
            "geometry": self.geometry,
            "m": self.m,
            "T_total": self.total_time,
            "overhead": self.overhead,
            "T": float(self.throughput),
            "U": float(self.utilization),
            "occupancy": float(self.occupancy),
            "D_IO": float(self.io_bandwidth),
            "D_IO_steady": float(self.io_steady),
            "D_IO_peak": self.io_peak,
            "mem_words": self.memory_words,
            "mem_ports": self.memory_connections,
            "gsets": self.gsets,
            "boundary": self.boundary_gsets,
        }


def schedule_total_time(
    gg: GGraph, order: Sequence[GSet], overheads: Sequence[int] | None = None
) -> tuple[int, int]:
    """``(total cycles, overhead cycles)`` for a sequential G-set schedule.

    Sec. 4.1: ``T^{-1} = sum_i (t_i + d_i)``.  G-sets are executed in
    pipelined overlap, so each contributes its slowest member's
    computation time; ``overheads`` supplies the per-set ``d_i`` (zero by
    default — the paper's arrays have none; baselines pass theirs).
    """
    times = [s.comp_time(gg) for s in order]
    if overheads is None:
        overheads = [0] * len(order)
    if len(overheads) != len(order):
        raise ValueError("need one overhead entry per G-set")
    return sum(times) + sum(overheads), sum(overheads)


def schedule_io_profile(
    plan: GSetPlan, order: Sequence[GSet]
) -> tuple[list[tuple[int, int]], int]:
    """Input-consumption timeline of a schedule.

    Returns ``(events, total_inputs)`` where each event is
    ``(start_cycle_of_the_gset, number_of_primary_inputs_it_consumes)``.
    Primary inputs are operand references to INPUT nodes of the underlying
    dependence graph — exactly the words the host must deliver (Fig. 21).
    """
    dg = plan.gg.dg
    events: list[tuple[int, int]] = []
    t = 0
    total = 0
    for s in order:
        refs: set[tuple] = set()
        for gid in s.gids:
            for nid in plan.gg.gnodes[gid].members:
                for _, ref in dg.operands(nid).items():
                    if dg.kind(ref[0]) is NodeKind.INPUT:
                        refs.add(ref)
        if refs:
            events.append((t, len(refs)))
            total += len(refs)
        t += s.comp_time(plan.gg)
    return events, total


def schedule_memory_traffic(plan: GSetPlan, order: Sequence[GSet]) -> int:
    """Words written to external memory by the schedule.

    Every value produced in one G-set and consumed in another must be
    parked in an external memory between the two executions (cut-and-pile,
    Fig. 2).  Values used inside their own G-set stay in cell registers.
    Counted as distinct produced values crossing a set boundary.
    """
    set_of = plan.set_of
    dg = plan.gg.dg
    crossing: set[tuple] = set()
    for nid in dg.g.nodes:
        gdst = plan.gg.node_of.get(nid)
        if gdst is None:
            continue
        for ref in dg.operands(nid).values():
            gsrc = plan.gg.node_of.get(ref[0])
            if gsrc is None:
                continue
            if set_of[gsrc] != set_of[gdst]:
                crossing.add(ref)
    return len(crossing)


def time_mixing_loss(plan: GSetPlan, order: Sequence[GSet]) -> Fraction:
    """Cell-cycles wasted because a G-set mixes computation times.

    Every G-set occupies each of its cells for its *slowest* member's
    time; a cell holding a faster member idles for the difference.  This
    is the Sec. 4.3 / Fig. 22 inefficiency: zero when G-sets are chosen
    along uniform-time paths (the linear array always can), strictly
    positive for two-dimensional blocks over a time-graded G-graph.
    Returned as a fraction of total capacity ``m * total_time``.
    """
    gg = plan.gg
    total, _ = schedule_total_time(gg, order)
    if total == 0:
        return Fraction(0)
    wasted = 0
    for s in order:
        t_set = s.comp_time(gg)
        for gid in s.gids:
            wasted += t_set - gg.gnodes[gid].comp_time
    return Fraction(wasted, plan.m * total)


def boundary_loss(plan: GSetPlan, order: Sequence[GSet]) -> Fraction:
    """Cell-cycles wasted by ragged (partially filled) boundary G-sets.

    The paper's "boundary sets ... might not use all cells in the array";
    fraction of total capacity, complementary to
    :func:`time_mixing_loss`: occupancy = 1 - mixing - boundary.
    """
    gg = plan.gg
    total, _ = schedule_total_time(gg, order)
    if total == 0:
        return Fraction(0)
    wasted = sum((plan.m - len(s)) * s.comp_time(gg) for s in order)
    return Fraction(wasted, plan.m * total)


def evaluate_schedule(
    plan: GSetPlan,
    order: Sequence[GSet],
    overheads: Sequence[int] | None = None,
) -> PerformanceReport:
    """Compute the full Sec. 4.1 report for a plan + schedule.

    * ``utilization`` uses the paper's numerator: primitive nodes of the
      original pruned graph (tag ``compute``).
    * ``occupancy`` additionally counts transmit/delay slots as busy —
      the gap between the two is the price of the regularization padding.
    * ``io_bandwidth`` is total inputs / total time (the paper's steady
      state aggregate); ``io_peak`` is the largest single-set demand.
    """
    gg = plan.gg
    total, ovh = schedule_total_time(gg, order, overheads)
    useful = gg.total_useful()
    occupied = sum(gg.gnodes[g].comp_time for s in order for g in s.gids)
    events, total_inputs = schedule_io_profile(plan, order)
    peak = max((w for _, w in events), default=0)
    # Steady-state host rate: words of one input event over the time until
    # the next one -- the paper's D_IO = nm / sum(t_ck) = m/n (Fig. 21).
    # The median gap is used because the first vertical path is shorter
    # than the steady ones (pipeline fill), and the R-block chain of
    # Fig. 21 absorbs exactly that kind of transient.
    rates = []
    for idx, (t0, w) in enumerate(events):
        t1 = events[idx + 1][0] if idx + 1 < len(events) else total
        if t1 > t0:
            rates.append(Fraction(w, t1 - t0))
    rates.sort()
    steady = rates[len(rates) // 2] if rates else Fraction(0)
    mem_words = schedule_memory_traffic(plan, order)
    try:
        ports = memory_connections(plan.geometry, plan.m)
    except ValueError:
        ports = -1
    denom = plan.m * total if total else 1
    return PerformanceReport(
        geometry=plan.geometry,
        m=plan.m,
        total_time=total,
        overhead=ovh,
        throughput=Fraction(1, total) if total else Fraction(0),
        utilization=Fraction(useful, denom),
        occupancy=Fraction(occupied, denom),
        io_bandwidth=Fraction(total_inputs, total) if total else Fraction(0),
        io_steady=steady,
        io_peak=peak,
        memory_words=mem_words,
        memory_connections=ports,
        gsets=len(order),
        boundary_gsets=plan.boundary_sets(),
    )
