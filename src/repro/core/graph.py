"""Fully-parallel dependence-graph IR.

The paper describes algorithms by their *fully-parallel dependence graph*
(Section 1): nodes are operations, edges are data communications, all loops
are unfolded, all inputs/outputs are available in parallel, and every
operation takes unit time.  This module provides that IR.

Node kinds
----------
``INPUT``
    A primary input of the algorithm (one element of the input matrix).
``CONST``
    A compile-time constant (e.g. the always-1 diagonal of the adjacency
    matrix after Fig. 11's simplification).
``OP``
    A computation node.  Each op node carries an ``opcode`` naming its
    semantics (resolved by :mod:`repro.core.evaluate`) and a set of operand
    *roles* (named input ports).  The transitive-closure primitive is the
    semiring multiply-accumulate ``mac: out = a (+) (b (x) c)``.
``PASS``
    A data-transmission node: forwards its single operand unchanged.  Pass
    nodes are what broadcasting turns into after the pipelining
    transformation of Fig. 4a / Fig. 12 — they occupy an array slot but do
    no arithmetic.
``DELAY``
    A pure timing node inserted by the regularization transformation
    (Fig. 4b / Fig. 15); semantically identical to ``PASS`` but accounted
    separately because it exists only to equalise path lengths.
``OUTPUT``
    A primary output (one element of the result matrix).

Output ports
------------
Systolic cells *forward* their operands: a cell that computes
``a (+) (b (x) c)`` also passes ``b`` and ``c`` on to its neighbours.  An
op node therefore exposes output port ``"out"`` (its result) plus one port
per operand role (the forwarded operand).  Operand references are plain
node ids (shorthand for the producer's ``"out"`` port) or
:class:`PortRef` objects naming a forwarding port.

Positions
---------
Every node may carry a ``pos`` attribute — a tuple of coordinates giving
the node a place in the drawing the paper reasons about (for transitive
closure: ``(level k, row, col)``).  Transformations rewrite positions;
analyses (flow direction, regularity) read them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Hashable, Iterator, Mapping

import networkx as nx

__all__ = [
    "NodeKind",
    "Axis",
    "OP_ROLES",
    "DependenceGraph",
    "GraphError",
    "PortRef",
    "port",
    "node_counts",
]

NodeId = Hashable


class GraphError(ValueError):
    """Raised when a dependence graph violates a structural invariant."""


class NodeKind(enum.Enum):
    """The role a node plays in the dependence graph."""

    INPUT = "input"
    CONST = "const"
    OP = "op"
    PASS = "pass"
    DELAY = "delay"
    OUTPUT = "output"

    @property
    def is_compute(self) -> bool:
        """True for nodes that perform arithmetic (occupy a PE usefully)."""
        return self is NodeKind.OP

    @property
    def occupies_slot(self) -> bool:
        """True for nodes that consume one array cell-cycle when executed."""
        return self in (NodeKind.OP, NodeKind.PASS, NodeKind.DELAY)


class Axis(str, enum.Enum):
    """Communication-direction tag for an edge (drawing semantics)."""

    VERTICAL = "vertical"  # within a level, down the rows
    HORIZONTAL = "horizontal"  # within a level, along a row
    DIAGONAL = "diagonal"  # within a level, along a diagonal
    LEVEL = "level"  # between consecutive levels (k -> k+1)
    IO = "io"  # to/from the host
    BROADCAST = "broadcast"  # one-to-many fan-out (pre-transformation)


#: Operand roles required by each opcode, in canonical order.
OP_ROLES: dict[str, tuple[str, ...]] = {
    # semiring multiply-accumulate: out = a (+) (b (x) c)
    "mac": ("a", "b", "c"),
    # field ops used by the Section 4.3 workloads (LU, Givens, Faddeev...)
    "add": ("a", "b"),
    "sub": ("a", "b"),
    "mul": ("a", "b"),
    "div": ("a", "b"),
    # out = a - b*c (Gaussian elimination inner update)
    "msub": ("a", "b", "c"),
    # Givens rotation generation: emits the (c, s) pair as one value
    "rotg": ("a", "b"),
    # Givens rotation application halves: out = c*a + s*b / -s*a + c*b
    "rota": ("a", "b", "r"),
    "rotb": ("a", "b", "r"),
    # unary negate / reciprocal
    "neg": ("a",),
    "recip": ("a",),
}


@dataclass(frozen=True)
class PortRef:
    """Reference to a specific output port of a node.

    Plain node ids are shorthand for their ``"out"`` port; use
    :func:`port` to read a forwarded operand instead.
    """

    node: Hashable
    port: str = "out"


def port(nid: Hashable, name: str) -> PortRef:
    """Reference output port ``name`` of node ``nid``."""
    return PortRef(nid, name)


def _split_source(src: Hashable) -> tuple[Hashable, str]:
    """Normalise a source reference to ``(node id, port name)``."""
    if isinstance(src, PortRef):
        return src.node, src.port
    return src, "out"


@dataclass(frozen=True)
class NodeView:
    """Immutable snapshot of one node's attributes (convenience accessor)."""

    id: NodeId
    kind: NodeKind
    opcode: str | None
    pos: tuple | None
    comp_time: int
    tag: str | None
    value: Any


class DependenceGraph:
    """A fully-parallel dependence graph backed by :class:`networkx.DiGraph`.

    Operand wiring is stored on each consumer node (attribute
    ``operands``: role -> ``(producer id, producer port)``); the networkx
    edges mirror the wiring with parallel operand edges collapsed, and are
    used for traversal, topological ordering and analyses.

    The class enforces single assignment (each node added once), port
    completeness for op nodes, and acyclicity (checked by
    :meth:`validate` / :meth:`topological_order`).
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self.g = nx.DiGraph()
        self._inputs: list[NodeId] = []
        self._outputs: list[NodeId] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _add_node(self, nid: NodeId, kind: NodeKind, **attrs: Any) -> NodeId:
        if nid in self.g:
            raise GraphError(f"node {nid!r} added twice")
        self.g.add_node(nid, kind=kind, operands={}, **attrs)
        return nid

    def add_input(self, nid: NodeId, pos: tuple | None = None, tag: str | None = None) -> NodeId:
        """Add a primary-input node."""
        self._add_node(nid, NodeKind.INPUT, pos=pos, tag=tag, comp_time=0)
        self._inputs.append(nid)
        return nid

    def add_const(self, nid: NodeId, value: Any, pos: tuple | None = None) -> NodeId:
        """Add a constant node carrying ``value``."""
        return self._add_node(nid, NodeKind.CONST, value=value, pos=pos, comp_time=0)

    def add_op(
        self,
        nid: NodeId,
        opcode: str,
        operands: Mapping[str, "NodeId | PortRef"],
        pos: tuple | None = None,
        comp_time: int = 1,
        tag: str | None = None,
        axes: Mapping[str, Axis | str] | None = None,
    ) -> NodeId:
        """Add a computation node.

        Parameters
        ----------
        opcode:
            Key into :data:`OP_ROLES`.
        operands:
            Mapping from role name to the producer (node id or
            :class:`PortRef`); must supply exactly the roles the opcode
            requires.
        axes:
            Optional per-role communication-axis tags.
        """
        roles = OP_ROLES.get(opcode)
        if roles is None:
            raise GraphError(f"unknown opcode {opcode!r}")
        if set(operands) != set(roles):
            raise GraphError(
                f"opcode {opcode!r} requires roles {roles}, got {tuple(operands)}"
            )
        self._add_node(nid, NodeKind.OP, opcode=opcode, pos=pos, comp_time=comp_time, tag=tag)
        axes = axes or {}
        for role, src in operands.items():
            self._wire(src, nid, role=role, axis=axes.get(role))
        return nid

    def add_pass(
        self,
        nid: NodeId,
        src: "NodeId | PortRef",
        pos: tuple | None = None,
        axis: Axis | str | None = None,
        kind: NodeKind = NodeKind.PASS,
        tag: str | None = None,
    ) -> NodeId:
        """Add a pass-through (or, with ``kind=DELAY``, a delay) node."""
        if kind not in (NodeKind.PASS, NodeKind.DELAY):
            raise GraphError(f"add_pass kind must be PASS or DELAY, got {kind}")
        self._add_node(nid, kind, pos=pos, comp_time=1, tag=tag)
        self._wire(src, nid, role="a", axis=axis)
        return nid

    def add_delay(
        self,
        nid: NodeId,
        src: "NodeId | PortRef",
        pos: tuple | None = None,
        axis: Axis | str | None = None,
        tag: str | None = None,
    ) -> NodeId:
        """Add a delay node (regularization padding, Fig. 4b / Fig. 15)."""
        return self.add_pass(nid, src, pos=pos, axis=axis, kind=NodeKind.DELAY, tag=tag)

    def add_output(
        self,
        nid: NodeId,
        src: "NodeId | PortRef",
        pos: tuple | None = None,
        tag: str | None = None,
    ) -> NodeId:
        """Add a primary-output node fed by ``src``."""
        self._add_node(nid, NodeKind.OUTPUT, pos=pos, tag=tag, comp_time=0)
        self._wire(src, nid, role="a", axis=Axis.IO)
        self._outputs.append(nid)
        return nid

    def _wire(
        self, src: Hashable, dst: NodeId, role: str, axis: Axis | str | None
    ) -> None:
        src_node, src_port = _split_source(src)
        if src_node not in self.g:
            raise GraphError(f"edge from unknown node {src_node!r}")
        if src_node == dst:
            # A node consuming its own output has no legal firing time;
            # graph-level self-loops are always a construction bug.
            # (Relation-level self-loops in *datasets* are fine — they
            # become diagonal matrix entries, never FPDG edges; see
            # repro.datasets.core.)
            raise GraphError(
                f"self-loop: node {dst!r} cannot consume its own output"
            )
        if src_port != "out" and src_port not in self.output_ports(src_node):
            raise GraphError(
                f"node {src_node!r} has no output port {src_port!r} "
                f"(available: {self.output_ports(src_node)})"
            )
        if isinstance(axis, str):
            axis = Axis(axis)
        self.g.nodes[dst]["operands"][role] = (src_node, src_port)
        if self.g.has_edge(src_node, dst):
            data = self.g.edges[src_node, dst]
            data["roles"] = data["roles"] + (role,)
        else:
            self.g.add_edge(src_node, dst, roles=(role,), role=role, src_port=src_port, axis=axis)

    def rewire(self, dst: NodeId, role: str, new_src: "NodeId | PortRef") -> None:
        """Re-point operand ``role`` of ``dst`` at a different producer.

        Used by transformations (e.g. broadcast serialization re-points a
        consumer at its upstream neighbour's forwarding port).
        """
        ops = self.g.nodes[dst]["operands"]
        if role not in ops:
            raise GraphError(f"node {dst!r} has no operand role {role!r}")
        old_node, _ = ops[role]
        # Drop the structural edge if no other role still uses it.
        remaining = [r for r, (s, _) in ops.items() if s == old_node and r != role]
        if not remaining and self.g.has_edge(old_node, dst):
            self.g.remove_edge(old_node, dst)
        elif self.g.has_edge(old_node, dst):
            data = self.g.edges[old_node, dst]
            data["roles"] = tuple(r for r in data["roles"] if r != role)
        del ops[role]
        self._wire(new_src, dst, role=role, axis=None)

    def remove_node(self, nid: NodeId) -> None:
        """Remove ``nid`` (callers must have rewired its consumers first)."""
        consumers = [c for c in self.g.successors(nid)]
        if consumers:
            raise GraphError(f"cannot remove {nid!r}: still feeds {consumers[:3]}")
        self.g.remove_node(nid)
        if nid in self._inputs:
            self._inputs.remove(nid)
        if nid in self._outputs:
            self._outputs.remove(nid)

    def output_ports(self, nid: NodeId) -> tuple[str, ...]:
        """Output ports exposed by ``nid`` (see module docstring)."""
        d = self.g.nodes[nid]
        if d["kind"] is NodeKind.OP:
            return ("out",) + OP_ROLES[d["opcode"]]
        return ("out",)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> tuple[NodeId, ...]:
        """Primary inputs in insertion order."""
        return tuple(self._inputs)

    @property
    def outputs(self) -> tuple[NodeId, ...]:
        """Primary outputs in insertion order."""
        return tuple(self._outputs)

    def kind(self, nid: NodeId) -> NodeKind:
        """Kind of node ``nid``."""
        return self.g.nodes[nid]["kind"]

    def node(self, nid: NodeId) -> NodeView:
        """An immutable attribute snapshot for ``nid``."""
        d = self.g.nodes[nid]
        return NodeView(
            id=nid,
            kind=d["kind"],
            opcode=d.get("opcode"),
            pos=d.get("pos"),
            comp_time=d.get("comp_time", 1),
            tag=d.get("tag"),
            value=d.get("value"),
        )

    def pos(self, nid: NodeId) -> tuple | None:
        """Drawing position of ``nid`` (or None)."""
        return self.g.nodes[nid].get("pos")

    def set_pos(self, nid: NodeId, pos: tuple) -> None:
        """Reposition ``nid`` (used by the flip transformations)."""
        self.g.nodes[nid]["pos"] = pos

    def operands(self, nid: NodeId) -> dict[str, tuple[NodeId, str]]:
        """Mapping role -> ``(producer id, producer port)``."""
        return dict(self.g.nodes[nid]["operands"])

    def consumers(self, nid: NodeId, out_port: str | None = None) -> list[tuple[NodeId, str]]:
        """Consumers of ``nid``: list of ``(consumer id, role)``.

        With ``out_port`` given, only consumers reading that port.
        """
        result = []
        for succ in self.g.successors(nid):
            for role, (src, sport) in self.g.nodes[succ]["operands"].items():
                if src == nid and (out_port is None or sport == out_port):
                    result.append((succ, role))
        return result

    def nodes_of_kind(self, *kinds: NodeKind) -> Iterator[NodeId]:
        """Iterate node ids whose kind is in ``kinds``."""
        want = set(kinds)
        for nid, d in self.g.nodes(data=True):
            if d["kind"] in want:
                yield nid

    def __len__(self) -> int:
        return self.g.number_of_nodes()

    def __contains__(self, nid: NodeId) -> bool:
        return nid in self.g

    def __repr__(self) -> str:  # noqa: D105
        c = node_counts(self)
        return (
            f"<DependenceGraph {self.name!r}: {c[NodeKind.OP]} ops, "
            f"{c[NodeKind.PASS]} passes, {c[NodeKind.DELAY]} delays, "
            f"{c[NodeKind.INPUT]} in, {c[NodeKind.OUTPUT]} out>"
        )

    # ------------------------------------------------------------------
    # Structural checks
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the invariants every stage of the pipeline must keep.

        * acyclic (the FPDG has all loops unfolded);
        * every op node has exactly the ports its opcode requires;
        * pass/delay/output nodes have exactly one operand;
        * source nodes (inputs/constants) have none.
        """
        if not nx.is_directed_acyclic_graph(self.g):
            cycle = nx.find_cycle(self.g)
            raise GraphError(f"graph has a cycle: {cycle[:4]}...")
        for nid in self.nodes_of_kind(NodeKind.OP):
            opcode = self.g.nodes[nid]["opcode"]
            roles = set(OP_ROLES[opcode])
            have = set(self.g.nodes[nid]["operands"])
            if have != roles:
                raise GraphError(f"op {nid!r} ({opcode}) has ports {have}, needs {roles}")
        for nid in self.nodes_of_kind(NodeKind.PASS, NodeKind.DELAY, NodeKind.OUTPUT):
            n_ops = len(self.g.nodes[nid]["operands"])
            if n_ops != 1:
                raise GraphError(f"{self.kind(nid).value} node {nid!r} has {n_ops} operands")
        for nid in self.nodes_of_kind(NodeKind.INPUT, NodeKind.CONST):
            if self.g.nodes[nid]["operands"]:
                raise GraphError(f"source node {nid!r} has operands")

    def topological_order(self) -> list[NodeId]:
        """Nodes in a topological order (validates acyclicity)."""
        try:
            return list(nx.topological_sort(self.g))
        except nx.NetworkXUnfeasible as exc:
            raise GraphError("graph has a cycle") from exc

    def critical_path_length(self) -> int:
        """Length (in unit-time node executions) of the longest path.

        The paper: a direct pipelined implementation of the graph has
        minimum delay *determined by the longest path in the graph*.  Only
        slot-occupying nodes contribute time.
        """
        dist: dict[NodeId, int] = {}
        for nid in self.topological_order():
            t = 1 if self.kind(nid).occupies_slot else 0
            preds = list(self.g.predecessors(nid))
            dist[nid] = t + (max(dist[p] for p in preds) if preds else 0)
        return max(dist.values(), default=0)

    # ------------------------------------------------------------------
    # Copy
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "DependenceGraph":
        """Deep structural copy (operand maps are copied per node)."""
        out = DependenceGraph(name or self.name)
        out.g = self.g.copy()
        for nid in out.g.nodes:
            out.g.nodes[nid]["operands"] = dict(out.g.nodes[nid]["operands"])
        out._inputs = list(self._inputs)
        out._outputs = list(self._outputs)
        return out


def node_counts(dg: DependenceGraph) -> dict[NodeKind, int]:
    """Histogram of node kinds (Fig. 10/11 bookkeeping)."""
    counts = {k: 0 for k in NodeKind}
    for _, d in dg.g.nodes(data=True):
        counts[d["kind"]] += 1
    return counts
