"""G-set selection and scheduling (Sec. 2 step 3, Figs. 7, 18-20).

A *G-set* is a group of up to ``m`` neighbouring G-nodes scheduled for
concurrent execution on the ``m`` cells of the target array; successive
G-sets execute sequentially (cut-and-pile), overlapped in pipelined
fashion.  For maximal utilization all G-nodes of a set should have the
same computation time (Sec. 2 requirement; Fig. 8).

Two selections are provided, matching the paper's two target arrays:

* :func:`make_linear_gsets` — ``m`` consecutive G-nodes from one
  horizontal path (Fig. 18); G-set ``(k, B)`` covers columns
  ``[B*m, (B+1)*m)`` of G-row ``k``.
* :func:`make_mesh_gsets` — ``sqrt(m) x sqrt(m)`` blocks of G-nodes
  (Fig. 19); boundary blocks may be ragged (the paper's triangular
  boundary sets).

Scheduling (:func:`schedule_gsets`) is a list scheduler over the G-set
dependence DAG: a G-set becomes *ready* once every G-set it depends on has
been issued, and among ready sets a policy priority picks the next one.
The paper's "scheduling by vertical paths" (Fig. 20) is the
``"vertical"`` policy: column-major priority, which under the readiness
constraint produces exactly the skewed wavefront the paper draws — and
spaces the input-consuming top-row G-sets ``n`` sets apart, which is what
keeps the host bandwidth at ``m/n`` (Fig. 21).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, Sequence

import networkx as nx

from .ggraph import GGraph, GNodeId

__all__ = [
    "GSet",
    "GSetPlan",
    "make_linear_gsets",
    "make_mesh_gsets",
    "infer_skew",
    "gset_dependences",
    "schedule_gsets",
    "verify_schedule",
    "ScheduleError",
    "SCHEDULE_POLICIES",
]


class ScheduleError(ValueError):
    """Raised when a G-set plan or schedule is infeasible/illegal."""


@dataclass(frozen=True)
class GSet:
    """A group of G-nodes executed concurrently on the array.

    ``cells`` maps each member G-node to the array cell index that
    executes it — an integer ``p`` for a linear array, a pair ``(pr, pc)``
    for a mesh.
    """

    sid: tuple
    gids: tuple[GNodeId, ...]
    cells: tuple

    def __len__(self) -> int:
        return len(self.gids)

    def comp_time(self, gg: GGraph) -> int:
        """Set computation time = slowest member (Sec. 4.1's ``t_i``)."""
        return max(gg.gnodes[g].comp_time for g in self.gids)

    def is_uniform(self, gg: GGraph) -> bool:
        """True when all members share one computation time (Fig. 8)."""
        return len({gg.gnodes[g].comp_time for g in self.gids}) == 1


@dataclass
class GSetPlan:
    """A complete mapping of a G-graph onto an array.

    Attributes
    ----------
    gg:
        The G-graph being mapped.
    gsets:
        All G-sets (unordered until scheduled).
    geometry:
        ``"linear"`` or ``"mesh"``.
    m:
        Number of array cells.
    shape:
        For a mesh, the ``(rows, cols)`` cell arrangement; for a linear
        array ``(1, m)``.
    """

    gg: GGraph
    gsets: list[GSet]
    geometry: str
    m: int
    shape: tuple[int, int]

    @property
    def set_of(self) -> dict[GNodeId, tuple]:
        """G-node id -> owning G-set id."""
        return {g: s.sid for s in self.gsets for g in s.gids}

    def full_sets(self) -> int:
        """Number of G-sets that occupy every cell."""
        return sum(1 for s in self.gsets if len(s) == self.m)

    def boundary_sets(self) -> int:
        """Number of ragged (partially filled) G-sets.

        The paper: "maximal utilization ... except when executing boundary
        sets ... that might not use all cells in the array".
        """
        return sum(1 for s in self.gsets if len(s) < self.m)


# ----------------------------------------------------------------------
# G-set selection
# ----------------------------------------------------------------------

def make_linear_gsets(gg: GGraph, m: int, aligned: bool = True) -> GSetPlan:
    """G-sets of ``m`` consecutive G-nodes from horizontal paths (Fig. 18).

    With ``aligned=True`` (the paper's scheme) block boundaries follow the
    inter-level skew of the G-graph: level ``k``'s blocks are cut at
    ``gamma = c + skew*k`` multiples of ``m``, so the blocks of successive
    levels stack into the *vertical paths* of the paper's drawing.  The
    resulting G-set dependences are only ``(k, B-1)`` and ``(k-1, B)``,
    which is what makes the Fig. 20a column-major schedule legal and
    spaces the input-consuming top G-sets a full vertical path apart
    (host bandwidth ``m/n``, Fig. 21).  The price is a ragged boundary
    set at the ends of *some* horizontal paths — exactly the paper's
    "boundary sets in some horizontal paths that might not use all cells".

    With ``aligned=False`` every row is packed into full blocks from its
    first column (no alignment): all sets are full whenever ``m`` divides
    the row length, but the diagonal dependence ``(k-1, B+1) -> (k, B)``
    then forces a wavefront schedule whose input G-sets bunch together at
    the start — higher host-bandwidth demand for the same throughput (an
    ablation the benchmarks quantify).
    """
    if m < 1:
        raise ScheduleError(f"need at least one cell, got m={m}")
    skew = infer_skew(gg) if aligned else 0
    row_index = {r: idx for idx, r in enumerate(gg.rows)}
    blocks: dict[tuple, list[tuple[GNodeId, int]]] = {}
    for gid in gg.gnodes:
        k, c = gid
        kr = row_index[k]
        gamma = c + skew * kr
        sid = (kr, gamma // m)
        blocks.setdefault(sid, []).append((gid, gamma % m))
    gsets: list[GSet] = []
    for sid in sorted(blocks):
        pairs = sorted(blocks[sid], key=lambda t: t[1])
        gsets.append(
            GSet(
                sid=sid,
                gids=tuple(p[0] for p in pairs),
                cells=tuple(p[1] for p in pairs),
            )
        )
    return GSetPlan(gg=gg, gsets=gsets, geometry="linear", m=m, shape=(1, m))


def infer_skew(gg: GGraph) -> int:
    """Per-row skew that makes all G-edge column deltas non-negative.

    The Fig. 17 G-graph has inter-level edges ``(k, c) -> (k+1, c-1)``:
    blocks cut on raw column boundaries would depend on each other both
    ways.  In the skewed coordinate ``gamma = c + skew * row_rank`` every
    edge points right and/or down, so rectangular blocks are legal — and
    the parallelogram outline of the skewed grid is what produces the
    paper's *triangular* boundary G-sets (Fig. 19a).
    """
    skew = 0
    for dr, dc in gg.edge_deltas():
        if dr == 0 and dc <= 0:
            raise ScheduleError(
                f"intra-row G-edge with non-positive column delta {dc}; "
                "this G-graph cannot be skew-blocked"
            )
        if dr > 0 and dc < 0:
            skew = max(skew, math.ceil(-dc / dr))
    return skew


def make_mesh_gsets(
    gg: GGraph,
    m: int,
    shape: tuple[int, int] | None = None,
    skew: int | None = None,
) -> GSetPlan:
    """Square-block G-sets for a two-dimensional array (Fig. 19).

    ``shape`` defaults to ``(sqrt(m), sqrt(m))`` (requires square ``m``).
    Blocks are cut in skewed coordinates (see :func:`infer_skew`); cell
    ``(pr, pc)`` of the mesh executes the G-node at relative position
    ``(pr, pc)`` inside its block.  Boundary blocks are ragged — the
    triangular/partial sets of Fig. 19a.
    """
    if shape is None:
        side = math.isqrt(m)
        if side * side != m:
            raise ScheduleError(
                f"m={m} is not a perfect square; pass an explicit shape"
            )
        shape = (side, side)
    sr, sc = shape
    if sr * sc != m:
        raise ScheduleError(f"shape {shape} does not have m={m} cells")
    if skew is None:
        skew = infer_skew(gg)
    rows = gg.rows
    row_index = {r: idx for idx, r in enumerate(rows)}
    gsets_members: dict[tuple, list[tuple[GNodeId, tuple[int, int]]]] = {}
    for gid in gg.gnodes:
        k, c = gid
        kr = row_index[k]
        gamma = c + skew * kr
        sid = (kr // sr, gamma // sc)
        cell = (kr % sr, gamma % sc)
        gsets_members.setdefault(sid, []).append((gid, cell))
    gsets = []
    for sid in sorted(gsets_members):
        pairs = sorted(gsets_members[sid], key=lambda t: t[1])
        gids = tuple(p[0] for p in pairs)
        cells = tuple(p[1] for p in pairs)
        gsets.append(GSet(sid=sid, gids=gids, cells=cells))
    return GSetPlan(gg=gg, gsets=gsets, geometry="mesh", m=m, shape=shape)


# ----------------------------------------------------------------------
# Scheduling
# ----------------------------------------------------------------------

def gset_dependences(plan: GSetPlan) -> nx.DiGraph:
    """Dependence DAG over G-sets, derived from the G-edges.

    There is an edge ``S1 -> S2`` when some G-node of ``S2`` consumes a
    value produced inside ``S1``.  Because cut-and-pile executes G-sets
    sequentially, this DAG is the *only* constraint scheduling must honour
    (Sec. 3: "scheduling needs to consider only the dependences between
    G-sets").
    """
    set_of = plan.set_of
    dag = nx.DiGraph()
    dag.add_nodes_from(s.sid for s in plan.gsets)
    for gu, gv in plan.gg.g.edges:
        su, sv = set_of[gu], set_of[gv]
        if su != sv:
            dag.add_edge(su, sv)
    if not nx.is_directed_acyclic_graph(dag):
        cycle = nx.find_cycle(dag)
        raise ScheduleError(f"G-set dependences are cyclic: {cycle[:4]}")
    return dag


#: Scheduling policies: priority key over G-set ids (lower = sooner among
#: ready sets).  ``vertical`` is the paper's choice (Fig. 20).
SCHEDULE_POLICIES: dict[str, Callable[[tuple], tuple]] = {
    "vertical": lambda sid: (sid[1], sid[0]),
    "horizontal": lambda sid: (sid[0], sid[1]),
    "wavefront": lambda sid: (sid[0] + sid[1], sid[0]),
}


def schedule_gsets(
    plan: GSetPlan,
    policy: "str | Callable[[tuple], tuple]" = "vertical",
) -> list[GSet]:
    """Order the G-sets legally under the given policy (list scheduling).

    Kahn's algorithm with a priority heap: among the G-sets whose
    dependences have all been issued, issue the one with the smallest
    policy key.  The result is always a legal sequential order; the policy
    only shapes *which* legal order (and thereby the host-I/O pattern,
    Fig. 21).
    """
    key = SCHEDULE_POLICIES[policy] if isinstance(policy, str) else policy
    dag = gset_dependences(plan)
    by_sid = {s.sid: s for s in plan.gsets}
    indeg = {sid: dag.in_degree(sid) for sid in dag.nodes}
    ready = [(key(sid), sid) for sid, d in indeg.items() if d == 0]
    heapq.heapify(ready)
    order: list[GSet] = []
    while ready:
        _, sid = heapq.heappop(ready)
        order.append(by_sid[sid])
        for succ in dag.successors(sid):
            indeg[succ] -= 1
            if indeg[succ] == 0:
                heapq.heappush(ready, (key(succ), succ))
    if len(order) != len(plan.gsets):
        raise ScheduleError("scheduling deadlock: dependence DAG not fully issued")
    return order


def verify_schedule(plan: GSetPlan, order: Sequence[GSet]) -> None:
    """Assert that ``order`` issues every G-set after its dependences."""
    dag = gset_dependences(plan)
    position = {s.sid: idx for idx, s in enumerate(order)}
    if len(position) != len(plan.gsets):
        raise ScheduleError("order does not cover every G-set exactly once")
    for su, sv in dag.edges:
        if position[su] >= position[sv]:
            raise ScheduleError(f"G-set {sv} issued before its dependence {su}")
