"""Dependence-graph analyses.

The transformations of Section 2 are *guided* by graph properties: the
presence of data broadcasting, bi-directional data flow, and irregular
communication patterns.  This module measures those properties so that

* the transformation pipeline can assert it actually removed them, and
* the benchmarks can print the before/after census (Figs. 10-16).

All geometric analyses read the ``pos`` attribute that algorithm front-ends
attach to nodes (for transitive closure: ``(level, row, col)``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from .graph import DependenceGraph, NodeId, NodeKind

__all__ = [
    "BroadcastReport",
    "FlowReport",
    "RegularityReport",
    "find_broadcasts",
    "flow_directions",
    "communication_patterns",
    "max_fanout",
    "is_pipelined",
    "long_edges",
]


@dataclass(frozen=True)
class BroadcastReport:
    """Census of data broadcasting in a graph.

    A *broadcast* is a produced value — identified by ``(producer node,
    output port)`` — consumed by more than ``fanout_threshold`` nodes: the
    property Fig. 4a's transformation removes by converting the fan-out
    into a pipeline chain.
    """

    sources: tuple[tuple[tuple[NodeId, str], int], ...]
    fanout_threshold: int

    @property
    def count(self) -> int:
        """Number of broadcast sources."""
        return len(self.sources)

    @property
    def total_fanout(self) -> int:
        """Total number of broadcast destination edges."""
        return sum(f for _, f in self.sources)

    @property
    def max_fanout(self) -> int:
        """Largest single fan-out (drives wire-length in an implementation)."""
        return max((f for _, f in self.sources), default=0)


def find_broadcasts(dg: DependenceGraph, fanout_threshold: int = 2) -> BroadcastReport:
    """Find every value broadcast to more than ``fanout_threshold`` consumers.

    Fan-out is counted per *output port* of the producer: a systolic cell
    that sends its result to one neighbour and forwards each operand to one
    other neighbour is fully pipelined, not broadcasting.  Output nodes do
    not count as consumers (reading a result is not a communication the
    array must realise).
    """
    consumers: dict[tuple, set] = {}
    for nid in dg.g.nodes:
        kind = dg.kind(nid)
        if kind is NodeKind.OUTPUT:
            continue
        for _, ref in dg.g.nodes[nid]["operands"].items():
            consumers.setdefault(ref, set()).add(nid)
    sources = [
        (src_port, len(nodes))
        for src_port, nodes in consumers.items()
        if len(nodes) > fanout_threshold
    ]
    sources.sort(key=lambda t: (-t[1], str(t[0])))
    return BroadcastReport(sources=tuple(sources), fanout_threshold=fanout_threshold)


def max_fanout(dg: DependenceGraph) -> int:
    """Largest non-output fan-out in the graph (1 == fully pipelined)."""
    report = find_broadcasts(dg, fanout_threshold=0)
    return report.max_fanout


@dataclass(frozen=True)
class FlowReport:
    """Census of data-flow directions along each position dimension.

    ``displacements[d]`` maps a signed direction (-1, 0, +1) to the number
    of edges whose position delta along dimension ``d`` has that sign.
    A dimension is *bi-directional* when both +1 and -1 occur — the
    property the flip transformations of Fig. 13 remove.
    """

    displacements: tuple[dict[int, int], ...]
    untagged_edges: int

    def bidirectional_dims(self) -> tuple[int, ...]:
        """Indices of position dimensions with flow in both directions."""
        dims = []
        for d, hist in enumerate(self.displacements):
            if hist.get(1, 0) > 0 and hist.get(-1, 0) > 0:
                dims.append(d)
        return tuple(dims)

    @property
    def is_unidirectional(self) -> bool:
        """True when no dimension carries flow in both directions."""
        return not self.bidirectional_dims()


def _sign(x: float) -> int:
    return (x > 0) - (x < 0)


def flow_directions(
    dg: DependenceGraph,
    kinds: tuple[NodeKind, ...] = (NodeKind.OP, NodeKind.PASS, NodeKind.DELAY),
    wrap: tuple[int | None, ...] | None = None,
    pos_attr: str = "pos",
) -> FlowReport:
    """Direction census over edges between positioned, slot-occupying nodes.

    Parameters
    ----------
    kinds:
        Node kinds considered (I/O edges are excluded by default: the host
        connection is not an intra-array communication).
    wrap:
        Optional per-dimension modulus: a displacement of ``-(M-1)`` on a
        dimension with modulus ``M`` is a wrap-around, counted as ``+1``
        (cyclic layouts appear transiently between flip steps).
    pos_attr:
        Node attribute holding the coordinates; use ``"draw"`` to measure
        directions in the paper's drawing embedding (algorithm front-ends
        attach one) instead of logical ``(level, row, col)`` space.
    """
    ndim = 0
    hists: list[Counter] = []
    untagged = 0
    want = set(kinds)
    for u, v in dg.g.edges:
        if dg.kind(u) not in want or dg.kind(v) not in want:
            continue
        pu = dg.g.nodes[u].get(pos_attr)
        pv = dg.g.nodes[v].get(pos_attr)
        if pu is None or pv is None:
            untagged += 1
            continue
        if len(pu) > ndim:
            for _ in range(len(pu) - ndim):
                hists.append(Counter())
            ndim = len(pu)
        for d in range(min(len(pu), len(pv))):
            delta = pv[d] - pu[d]
            if wrap is not None and d < len(wrap) and wrap[d]:
                m = wrap[d]
                delta = ((delta + m // 2) % m) - m // 2
            hists[d][_sign(delta)] += 1
    return FlowReport(
        displacements=tuple(dict(h) for h in hists), untagged_edges=untagged
    )


@dataclass(frozen=True)
class RegularityReport:
    """Census of per-node communication patterns.

    For each slot-occupying node we form its *stencil*: the sorted tuple of
    ``(role, position delta)`` pairs over its operand edges.  A graph is
    communication-regular (Fig. 16) when interior nodes share one stencil;
    the Fig. 15 irregularity shows up as several distinct stencils.
    """

    stencils: tuple[tuple[tuple, int], ...]  # (stencil, node count), desc by count

    @property
    def distinct(self) -> int:
        """Number of distinct stencils."""
        return len(self.stencils)

    @property
    def dominant_fraction(self) -> float:
        """Fraction of nodes using the most common stencil."""
        total = sum(c for _, c in self.stencils)
        if total == 0:
            return 1.0
        return self.stencils[0][1] / total


def communication_patterns(
    dg: DependenceGraph,
    kinds: tuple[NodeKind, ...] = (NodeKind.OP,),
    dims: tuple[int, ...] | None = None,
) -> RegularityReport:
    """Group nodes by their operand stencil (see :class:`RegularityReport`).

    ``dims`` restricts the delta to a subset of position dimensions (e.g.
    compare only intra-level geometry).
    """
    want = set(kinds)
    groups: Counter = Counter()
    for nid in dg.g.nodes:
        if dg.kind(nid) not in want:
            continue
        p = dg.pos(nid)
        if p is None:
            continue
        stencil = []
        for role, (src, _) in dg.operands(nid).items():
            ps = dg.pos(src)
            if ps is None:
                delta = ("?",)
            else:
                full = tuple(a - b for a, b in zip(p, ps))
                delta = tuple(full[i] for i in dims) if dims else full
            stencil.append((role, delta))
        groups[tuple(sorted(stencil))] += 1
    ordered = tuple(sorted(groups.items(), key=lambda kv: -kv[1]))
    return RegularityReport(stencils=ordered)


def is_pipelined(dg: DependenceGraph, fanout_threshold: int = 2) -> bool:
    """True when the graph has no broadcasting (Fig. 12 postcondition)."""
    return find_broadcasts(dg, fanout_threshold).count == 0


def long_edges(
    dg: DependenceGraph,
    max_len: int = 1,
    kinds: tuple[NodeKind, ...] = (NodeKind.OP, NodeKind.PASS, NodeKind.DELAY),
    dims: tuple[int, ...] | None = None,
    pos_attr: str = "pos",
) -> list[tuple[NodeId, NodeId, tuple]]:
    """Edges whose position delta exceeds ``max_len`` on some dimension.

    Long edges are the physical cost of the Fig. 15 irregularity: a
    consumer reading a producer that is not a nearest neighbour needs a
    wire spanning several cells.  The regularization transformation
    (Fig. 15c) replaces them with delay hops; this census quantifies the
    improvement.  ``dims`` restricts the check (e.g. to intra-level
    geometry); ``pos_attr`` selects the embedding, as in
    :func:`flow_directions` (neighbourhood is physical, so the drawing
    embedding is the right space when one is attached).
    """
    want = set(kinds)
    result = []
    for u, v in dg.g.edges:
        if dg.kind(u) not in want or dg.kind(v) not in want:
            continue
        pu = dg.g.nodes[u].get(pos_attr)
        pv = dg.g.nodes[v].get(pos_attr)
        if pu is None or pv is None:
            continue
        delta = tuple(b - a for a, b in zip(pu, pv))
        check = (delta[i] for i in dims) if dims else delta
        if any(abs(d) > max_len for d in check):
            result.append((u, v, delta))
    return result
