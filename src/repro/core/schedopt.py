"""Memory-aware G-set scheduling (an optimization beyond the paper).

The paper fixes the vertical-path policy and never asks how large the
external memories must be.  Cut-and-pile capacity is governed by the
schedule: a value sits in memory from the end of its producing G-set to
the end of its last consuming G-set, so issue order directly shapes the
pool's high-water mark.

:func:`schedule_gsets_memory_aware` is a greedy list scheduler over the
same dependence DAG that, among ready G-sets, issues the one with the
best immediate live-memory delta (words freed by completing last reads,
minus words newly written), tie-broken by the vertical-path key.  It
keeps every paper property that matters (legality, zero stalls, same
total time — set times don't change) while cutting the memory high-water
mark; the ablation benchmark quantifies the saving against the three
fixed policies.

:func:`memory_highwater` computes the exact pool occupancy of any
schedule at G-set granularity (it matches the cycle simulator's census
at the boundaries where both are defined).
"""

from __future__ import annotations

from typing import Sequence

from .gsets import GSet, GSetPlan, SCHEDULE_POLICIES, gset_dependences

__all__ = ["memory_highwater", "schedule_gsets_memory_aware"]


def _edge_words(plan: GSetPlan) -> tuple[dict, dict, dict]:
    """Per-set write words, and per-(producer set, consumer set) words.

    Returns ``(writes[sid], flows[(su, sv)], consumers[su])`` where
    ``writes[sid]`` is the number of distinct values set ``sid`` sends to
    *other* sets, ``flows`` the per-pair word counts, and
    ``consumers[su]`` the set ids reading from ``su``.
    """
    set_of = plan.set_of
    gg = plan.gg
    dg = gg.dg
    flows: dict[tuple, set] = {}
    for nid in dg.g.nodes:
        gdst = gg.node_of.get(nid)
        if gdst is None:
            continue
        sv = set_of[gdst]
        for ref in dg.operands(nid).values():
            gsrc = gg.node_of.get(ref[0])
            if gsrc is None:
                continue
            su = set_of[gsrc]
            if su != sv:
                flows.setdefault((su, sv), set()).add(ref)
    writes: dict[tuple, int] = {}
    consumers: dict[tuple, set] = {}
    flow_counts: dict[tuple, int] = {}
    for (su, sv), refs in flows.items():
        flow_counts[(su, sv)] = len(refs)
        writes[su] = writes.get(su, 0) + len(refs)
        consumers.setdefault(su, set()).add(sv)
    return writes, flow_counts, consumers


def memory_highwater(plan: GSetPlan, order: Sequence[GSet]) -> int:
    """Peak external-memory words over a G-set schedule.

    A producer set's outgoing words enter the pool when it finishes and
    leave when its *last* consumer in the order finishes (conservative:
    per-producer granularity, matching one parked buffer per set).
    """
    writes, flow_counts, consumers = _edge_words(plan)
    position = {s.sid: idx for idx, s in enumerate(order)}
    live_until: dict[tuple, int] = {}
    for su, readers in consumers.items():
        live_until[su] = max(position[sv] for sv in readers)
    # Pre-index releases by position for a linear sweep.
    release_at: dict[int, list[tuple]] = {}
    for su, until in live_until.items():
        release_at.setdefault(until, []).append(su)
    level = peak = 0
    for idx, s in enumerate(order):
        level += writes.get(s.sid, 0)
        peak = max(peak, level)
        for su in release_at.get(idx, ()):  # last reader just completed
            level -= writes.get(su, 0)
    return peak


def schedule_gsets_memory_aware(
    plan: GSetPlan, tie_break: str = "vertical"
) -> list[GSet]:
    """Greedy low-memory legal schedule (see module docstring)."""
    writes, flow_counts, consumers = _edge_words(plan)
    dag = gset_dependences(plan)
    by_sid = {s.sid: s for s in plan.gsets}
    indeg = {sid: dag.in_degree(sid) for sid in dag.nodes}
    tb = SCHEDULE_POLICIES[tie_break]

    # remaining reads per producer set: when it hits zero, its words free.
    pending_reads = {su: len(readers) for su, readers in consumers.items()}
    producers_of: dict[tuple, list] = {}
    for (su, sv), _ in flow_counts.items():
        producers_of.setdefault(sv, []).append(su)

    def delta(sid: tuple) -> int:
        freed = 0
        for su in producers_of.get(sid, []):
            if pending_reads.get(su, 0) == 1:
                freed += writes.get(su, 0)
        return writes.get(sid, 0) - freed

    ready = {sid for sid, d in indeg.items() if d == 0}
    order: list[GSet] = []
    while ready:
        sid = min(ready, key=lambda s: (delta(s), tb(s)))
        ready.remove(sid)
        order.append(by_sid[sid])
        for su in producers_of.get(sid, []):
            pending_reads[su] -= 1
        for succ in dag.successors(sid):
            indeg[succ] -= 1
            if indeg[succ] == 0:
                ready.add(succ)
    if len(order) != len(plan.gsets):
        raise RuntimeError("memory-aware scheduler failed to issue every set")
    return order
