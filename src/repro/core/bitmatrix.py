"""Bit-packed boolean matrices: 64 closure columns per machine word.

Over the boolean semiring a dense matrix row is a bitset, and Warshall's
update for one pivot ``k``

    x[i,j] <- x[i,j] OR (x[i,k] AND x[k,j])

collapses to a word-parallel row OR: every row ``i`` whose bit ``k`` is
set absorbs row ``k`` wholesale.  This is the "boolean array" trick of
the SSC2 single-source-closure algorithm (Yang & Zaniolo 2014), realised
NumPy-natively: rows are packed into ``uint64`` words (64 columns per
word, column ``j`` lives in bit ``j % 64`` of word ``j // 64``), and one
pivot step touches ``n/64`` words per selected row instead of ``n``
bools.

Two closure kernels are exposed:

* :func:`closure_words` — the *raw* recurrence, no diagonal forcing.
  It is bit-identical to evaluating the fully-parallel dependence graph
  (``tc_full``/``tc_regular``) on the same inputs, which is what the
  vector backend's bit-packed replay needs (see
  :mod:`repro.arrays.vector_compile`).
* :func:`closure_boolean` — diagonal preset to ``True`` first, matching
  :func:`repro.core.semiring.closure_reference` over ``BOOLEAN`` (the
  reflexive closure every dataset-level engine reports).

Packing relies on the native byte order being little-endian (every
platform this repo targets); :func:`pack_rows` asserts it once.
"""

from __future__ import annotations

import sys

import numpy as np

__all__ = [
    "WORD_BITS",
    "words_per_row",
    "pack_rows",
    "unpack_rows",
    "bit_column",
    "closure_words",
    "closure_boolean",
    "popcount_rows",
]

#: Columns packed into one machine word.
WORD_BITS = 64


def words_per_row(ncols: int) -> int:
    """Words needed to hold ``ncols`` boolean columns."""
    if ncols < 0:
        raise ValueError(f"negative column count {ncols}")
    return (ncols + WORD_BITS - 1) // WORD_BITS


def pack_rows(a: np.ndarray) -> np.ndarray:
    """Pack a 2-D boolean matrix into ``uint64`` words, row-major.

    Column ``j`` of the input becomes bit ``j % 64`` of word ``j // 64``
    in the same row; trailing pad bits are zero.  Returns an array of
    shape ``(rows, words_per_row(cols))``.
    """
    if sys.byteorder != "little":  # pragma: no cover - x86/arm are LE
        raise RuntimeError("bit-packed kernels require a little-endian host")
    m = np.ascontiguousarray(a, dtype=np.bool_)
    if m.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {m.shape}")
    rows, cols = m.shape
    nw = words_per_row(cols)
    packed = np.packbits(m, axis=1, bitorder="little")
    if packed.shape[1] < nw * 8:
        pad = np.zeros((rows, nw * 8 - packed.shape[1]), dtype=np.uint8)
        packed = np.concatenate([packed, pad], axis=1)
    return np.ascontiguousarray(packed).view(np.uint64)


def unpack_rows(words: np.ndarray, ncols: int) -> np.ndarray:
    """Inverse of :func:`pack_rows`: words back to an ``(rows, ncols)`` bool matrix."""
    w = np.ascontiguousarray(words, dtype=np.uint64)
    if w.ndim != 2:
        raise ValueError(f"expected a 2-D word array, got shape {w.shape}")
    if w.shape[1] != words_per_row(ncols):
        raise ValueError(
            f"word array has {w.shape[1]} words/row, "
            f"expected {words_per_row(ncols)} for {ncols} columns"
        )
    bits = np.unpackbits(w.view(np.uint8), axis=1, bitorder="little")
    return bits[:, :ncols].astype(np.bool_)


def bit_column(words: np.ndarray, k: int) -> np.ndarray:
    """Boolean column ``k`` extracted from a packed matrix."""
    w, b = divmod(k, WORD_BITS)
    return (words[:, w] >> np.uint64(b)) & np.uint64(1) != 0


def closure_words(words: np.ndarray, n: int) -> np.ndarray:
    """Warshall's closure on a packed matrix — the raw recurrence.

    For each pivot ``k`` the rows with bit ``k`` set absorb (OR in) row
    ``k``; row and column ``k`` are frozen per pivot exactly like
    :func:`~repro.core.semiring.closure_reference` freezes them, so the
    result is bit-identical to the unpacked kernel on the same input.
    The diagonal is *not* forced — callers wanting the reflexive closure
    preset it (or use :func:`closure_boolean`).
    """
    x = np.array(words, dtype=np.uint64, copy=True)
    if x.shape[0] != n or x.shape[1] != words_per_row(n):
        raise ValueError(
            f"packed matrix shape {x.shape} does not match n={n}"
        )
    for k in range(n):
        mask = bit_column(x, k)
        row = x[k].copy()
        x[mask] |= row
    return x


def closure_boolean(a: np.ndarray) -> np.ndarray:
    """Reflexive boolean closure of a dense matrix via the packed kernel.

    Bit-identical to ``closure_reference(a, BOOLEAN)`` — the diagonal is
    preset to ``True`` (Warshall's precondition) before the sweep.
    """
    m = np.array(a, dtype=np.bool_, copy=True)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {m.shape}")
    np.fill_diagonal(m, True)
    n = m.shape[0]
    return unpack_rows(closure_words(pack_rows(m), n), n)


def popcount_rows(words: np.ndarray) -> np.ndarray:
    """Per-row set-bit counts of a packed matrix (reach-set sizes)."""
    bytes_ = np.ascontiguousarray(words, dtype=np.uint64).view(np.uint8)
    return np.unpackbits(bytes_, axis=1).sum(axis=1, dtype=np.int64)
