"""Dependence graph of matrix multiplication ``C = A @ B``.

Matrix product is the canonical *uniform* matrix algorithm: every G-node
of its G-graph has the same computation time, so it partitions as cleanly
as transitive closure.  It is used here

* as the substrate of the Núñez-Torralba baseline (their transitive-
  closure partitioning decomposes into sequences of matrix
  multiplications, ref. [22]);
* as the workload of the Fig. 3 band-decomposition scheme (Navarro);
* as a second algorithm exercising the generic partitioning pipeline.

The generator emits the already-pipelined form (broadcasts of ``A`` rows
and ``B`` columns replaced by chains through the ``mac`` nodes' forwarding
ports), with positions ``(k, i, j)`` — accumulation level, row, column.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..core.graph import Axis, DependenceGraph, NodeId, port
from ..core.semiring import REAL
from ..core.evaluate import evaluate

__all__ = [
    "matmul_graph",
    "matmul_inputs",
    "read_matmul_output",
    "run_matmul",
    "matmul_group_by_columns",
    "matmul_ggraph",
]


def matmul_graph(n: int, p: int | None = None, q: int | None = None) -> DependenceGraph:
    """Pipelined FPDG of ``C[i,j] = sum_k A[i,k] * B[k,j]``.

    ``A`` is ``n x p``, ``B`` is ``p x q``; defaults give square ``n``.
    Node ``("op", k, i, j)`` performs ``acc + A[i,k]*B[k,j]``; the
    ``A[i,k]`` value is pipelined along row ``i`` (port ``b``), the
    ``B[k,j]`` value down column ``j`` (port ``c``), and the accumulator
    flows through levels (port ``a`` / ``out``).
    """
    p = n if p is None else p
    q = n if q is None else q
    if min(n, p, q) < 1:
        raise ValueError(f"matrix dimensions must be positive, got {(n, p, q)}")
    dg = DependenceGraph(f"matmul({n}x{p} @ {p}x{q})")
    for i in range(n):
        for k in range(p):
            dg.add_input(("a", i, k), pos=(-1, i, k))
    for k in range(p):
        for j in range(q):
            dg.add_input(("b", k, j), pos=(-1, k, j))
    for i in range(n):
        for j in range(q):
            dg.add_const(("zero", i, j), 0.0, pos=(-1, i, j))

    for k in range(p):
        for i in range(n):
            for j in range(q):
                acc = ("zero", i, j) if k == 0 else ("op", k - 1, i, j)
                b_src = ("a", i, k) if j == 0 else port(("op", k, i, j - 1), "b")
                c_src = ("b", k, j) if i == 0 else port(("op", k, i - 1, j), "c")
                dg.add_op(
                    ("op", k, i, j),
                    "mac",
                    {"a": acc, "b": b_src, "c": c_src},
                    pos=(k, i, j),
                    tag="compute",
                    axes={"a": Axis.LEVEL, "b": Axis.HORIZONTAL, "c": Axis.VERTICAL},
                )
    for i in range(n):
        for j in range(q):
            dg.add_output(("out", i, j), ("op", p - 1, i, j), pos=(p, i, j))
    return dg


def matmul_inputs(a: np.ndarray, b: np.ndarray) -> dict[NodeId, Any]:
    """Input environment for :func:`matmul_graph` from two matrices."""
    n, p = a.shape
    p2, q = b.shape
    if p != p2:
        raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
    env: dict[NodeId, Any] = {}
    for i in range(n):
        for k in range(p):
            env[("a", i, k)] = float(a[i, k])
    for k in range(p):
        for j in range(q):
            env[("b", k, j)] = float(b[k, j])
    return env


def read_matmul_output(outputs: Mapping[NodeId, Any], n: int, q: int) -> np.ndarray:
    """Assemble the product matrix from output values."""
    c = np.empty((n, q), dtype=np.float64)
    for i in range(n):
        for j in range(q):
            c[i, j] = outputs[("out", i, j)]
    return c


def run_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Evaluate the matmul dependence graph over (+, *) arithmetic."""
    n, _ = a.shape
    _, q = b.shape
    dg = matmul_graph(n, a.shape[1], q)
    outs = evaluate(dg, matmul_inputs(a, b), REAL)
    return read_matmul_output(outs, n, q)


def matmul_group_by_columns(dg, nid):
    """Column-per-level grouping: G-node ``(k, j)``, uniform time ``n``.

    Like transitive closure, matrix product groups into a uniform-time
    2-D G-graph (here with straight down verticals — no skew), so it
    partitions onto linear and mesh arrays with the same machinery; see
    ``tests/algorithms`` for the cycle-simulated proof.
    """
    if not dg.kind(nid).occupies_slot:
        return None
    k, _, j = dg.pos(nid)
    return (k, j)


def matmul_ggraph(n: int, p: int | None = None, q: int | None = None):
    """The G-graph of ``C = A @ B`` under column-per-level grouping."""
    from ..core.ggraph import GGraph

    return GGraph(matmul_graph(n, p, q), matmul_group_by_columns)
