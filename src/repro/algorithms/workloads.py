"""Synthetic graph workloads for the transitive-closure arrays.

The systems that motivated 1988 transitive-closure hardware — compiler
data-flow analysis, database reachability, routing — used production
graphs we cannot recover; these generators provide documented synthetic
stand-ins with the structural features that matter to the arrays (the
arrays are oblivious to sparsity — every workload costs the same cycles —
but the *results* differ, which is what the examples and tests exercise):

* :func:`ring_with_chords` — strongly-connected backbone plus shortcuts
  (road networks; closure is dense);
* :func:`layered_dag` — feed-forward layers (task graphs, data-flow
  analysis; closure is block upper-triangular);
* :func:`grid_maze` — 2-D lattice with walls (routing; closure reveals
  connected regions);
* :func:`random_tournament` — complete orientation (ranking problems;
  closure collapses to strongly-connected condensations);
* :func:`call_graph` — a module/function hierarchy with back edges
  (compiler reachability).

All return boolean adjacency matrices with a reflexive diagonal, ready
for :func:`repro.core.partitioner.PartitionedImplementation.run`.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ring_with_chords",
    "layered_dag",
    "grid_maze",
    "random_tournament",
    "call_graph",
    "WORKLOADS",
]


def _finish(a: np.ndarray) -> np.ndarray:
    np.fill_diagonal(a, True)
    return a


def ring_with_chords(n: int, chords: int | None = None, seed: int = 0) -> np.ndarray:
    """One-way ring plus ``chords`` random shortcuts (default ``n//2``)."""
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    rng = np.random.default_rng(seed)
    a = np.zeros((n, n), dtype=bool)
    for i in range(n):
        a[i, (i + 1) % n] = True
    chords = n // 2 if chords is None else chords
    for _ in range(chords):
        u, v = rng.integers(0, n, 2)
        if u != v:
            a[u, v] = True
    return _finish(a)


def layered_dag(
    layers: int, width: int, density: float = 0.5, seed: int = 0
) -> np.ndarray:
    """Feed-forward graph: ``layers`` layers of ``width`` nodes each.

    Edges only go from layer ``l`` to ``l+1``; the closure is the layer
    reachability relation (strictly upper block triangular plus diagonal).
    """
    if layers < 1 or width < 1:
        raise ValueError("layers and width must be positive")
    rng = np.random.default_rng(seed)
    n = layers * width
    a = np.zeros((n, n), dtype=bool)
    for layer in range(layers - 1):
        for u in range(width):
            for v in range(width):
                if rng.random() < density:
                    a[layer * width + u, (layer + 1) * width + v] = True
    return _finish(a)


def grid_maze(rows: int, cols: int, wall_prob: float = 0.25, seed: int = 0) -> np.ndarray:
    """2-D lattice with bidirectional corridors; some are walled off."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    rng = np.random.default_rng(seed)
    n = rows * cols
    a = np.zeros((n, n), dtype=bool)

    def idx(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            for dr, dc in ((0, 1), (1, 0)):
                r2, c2 = r + dr, c + dc
                if r2 < rows and c2 < cols and rng.random() >= wall_prob:
                    a[idx(r, c), idx(r2, c2)] = True
                    a[idx(r2, c2), idx(r, c)] = True
    return _finish(a)


def random_tournament(n: int, seed: int = 0) -> np.ndarray:
    """Every pair connected in exactly one direction."""
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    rng = np.random.default_rng(seed)
    a = np.zeros((n, n), dtype=bool)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < 0.5:
                a[i, j] = True
            else:
                a[j, i] = True
    return _finish(a)


def call_graph(n: int, fanout: int = 2, back_edge_prob: float = 0.15, seed: int = 0) -> np.ndarray:
    """A rooted call hierarchy (node i calls ~``fanout`` later nodes) with
    occasional back edges (recursion / callbacks)."""
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    rng = np.random.default_rng(seed)
    a = np.zeros((n, n), dtype=bool)
    for i in range(n - 1):
        callees = rng.integers(i + 1, n, size=min(fanout, n - 1 - i))
        for j in callees:
            a[i, j] = True
        if i > 0 and rng.random() < back_edge_prob:
            a[i, int(rng.integers(0, i))] = True
    return _finish(a)


#: name -> zero-argument thunk producing a default-size instance.
WORKLOADS = {
    "ring_with_chords": lambda: ring_with_chords(12, seed=1),
    "layered_dag": lambda: layered_dag(4, 3, seed=1),
    "grid_maze": lambda: grid_maze(3, 4, seed=1),
    "random_tournament": lambda: random_tournament(12, seed=1),
    "call_graph": lambda: call_graph(12, seed=1),
}
