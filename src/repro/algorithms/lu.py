"""Dependence graph of LU decomposition (Sec. 4.3 workload).

LU decomposition (without pivoting) is the paper's archetype of an
algorithm whose G-nodes *cannot* all have the same computation time: the
active submatrix shrinks by one row and column per elimination level, so
grouping along one direction gives uniform G-nodes within a path but
monotonically decreasing times across paths (Fig. 22a).  Consequently

* a linear array can pick its G-sets along the uniform paths and stay
  fully utilized (Fig. 22b), while
* any two-dimensional G-set necessarily mixes computation times and wastes
  the faster cells.

Graph structure, level ``k`` (``k = 0..n-2``):

* ``("div", k, i)`` for ``i > k``: the multiplier ``l[i,k] =
  a[i,k] / a[k,k]``; the pivot ``a[k,k]`` is pipelined down the column
  through the div nodes' ``b`` ports.
* ``("op", k, i, j)`` for ``i, j > k``: the update ``a[i,j] -= l[i,k] *
  a[k,j]`` (opcode ``msub``); ``l[i,k]`` is pipelined along row ``i``
  (port ``b``), the pivot-row element ``a[k,j]`` down column ``j``
  (port ``c``).

Outputs are the ``L`` multipliers and the ``U`` rows as they freeze.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.graph import Axis, DependenceGraph, NodeId, port
from ..core.evaluate import evaluate
from ..core.ggraph import GGraph, GNodeId

__all__ = ["lu_graph", "lu_inputs", "run_lu", "lu_group_by_columns", "lu_ggraph", "lu_reference"]


def lu_graph(n: int) -> DependenceGraph:
    """Pipelined FPDG of LU decomposition of an ``n x n`` matrix."""
    if n < 2:
        raise ValueError(f"LU decomposition needs n >= 2, got n={n}")
    dg = DependenceGraph(f"lu(n={n})")
    for i in range(n):
        for j in range(n):
            dg.add_input(("in", i, j), pos=(-1, i, j))

    def val(k: int, i: int, j: int) -> NodeId:
        """Value of a[i,j] after elimination level k (k = -1 for input)."""
        while k >= 0 and not (i > k and j > k):
            k -= 1
        return ("in", i, j) if k < 0 else ("op", k, i, j)

    for k in range(n - 1):
        for i in range(k + 1, n):
            pivot = val(k - 1, k, k) if i == k + 1 else port(("div", k, i - 1), "b")
            dg.add_op(
                ("div", k, i),
                "div",
                {"a": val(k - 1, i, k), "b": pivot},
                pos=(k, i, k),
                tag="compute",
                axes={"a": Axis.LEVEL, "b": Axis.VERTICAL},
            )
        for i in range(k + 1, n):
            for j in range(k + 1, n):
                b_src = ("div", k, i) if j == k + 1 else port(("op", k, i, j - 1), "b")
                c_src = (
                    val(k - 1, k, j) if i == k + 1 else port(("op", k, i - 1, j), "c")
                )
                dg.add_op(
                    ("op", k, i, j),
                    "msub",
                    {"a": val(k - 1, i, j), "b": b_src, "c": c_src},
                    pos=(k, i, j),
                    tag="compute",
                    axes={"a": Axis.LEVEL, "b": Axis.HORIZONTAL, "c": Axis.VERTICAL},
                )
    # Outputs: L (multipliers) and U (frozen rows).
    for i in range(n):
        for j in range(n):
            if i > j:
                dg.add_output(("L", i, j), ("div", j, i), pos=(n, i, j))
            else:
                dg.add_output(("U", i, j), val(i - 1, i, j), pos=(n, i, j))
    return dg


def lu_inputs(a: np.ndarray) -> dict[NodeId, Any]:
    """Input environment from a square matrix."""
    n = a.shape[0]
    return {("in", i, j): float(a[i, j]) for i in range(n) for j in range(n)}


def run_lu(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate the LU graph; return ``(L, U)`` with unit diagonal ``L``."""
    n = a.shape[0]
    dg = lu_graph(n)
    outs = evaluate(dg, lu_inputs(a))
    lo = np.eye(n)
    up = np.zeros((n, n))
    for i in range(n):
        for j in range(n):
            if i > j:
                lo[i, j] = outs[("L", i, j)]
            else:
                up[i, j] = outs[("U", i, j)]
    return lo, up


def lu_reference(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Doolittle LU without pivoting (numpy reference)."""
    a = np.array(a, dtype=np.float64, copy=True)
    n = a.shape[0]
    lo = np.eye(n)
    for k in range(n - 1):
        if a[k, k] == 0:
            raise ZeroDivisionError(f"zero pivot at k={k}; supply a matrix "
                                    "that needs no pivoting")
        for i in range(k + 1, n):
            lo[i, k] = a[i, k] / a[k, k]
            a[i, k + 1 :] -= lo[i, k] * a[k, k + 1 :]
            a[i, k] = 0.0
    return lo, np.triu(a)


def lu_group_by_columns(dg: DependenceGraph, nid: NodeId) -> GNodeId | None:
    """Fig. 22 grouping: G-node = one column of one elimination level.

    G-node ``(k, j)`` holds the level-``k`` nodes of column ``j`` (the
    div column for ``j == k``); its computation time is ``n - 1 - k`` —
    uniform along each horizontal G-path, decreasing down the levels.
    """
    if not dg.kind(nid).occupies_slot:
        return None
    p = dg.pos(nid)
    k, _, j = p
    return (k, j)


def lu_ggraph(n: int) -> GGraph:
    """The Fig. 22a G-graph of LU decomposition."""
    return GGraph(lu_graph(n), lu_group_by_columns)
