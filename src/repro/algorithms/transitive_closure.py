"""Dependence-graph pipeline for transitive closure (Section 3 / Figs. 10-17).

This module constructs, as explicit :class:`~repro.core.graph.DependenceGraph`
objects, every stage the paper draws for the transitive-closure algorithm:

=================  ==============================================
:func:`tc_full`            Fig. 10 — fully-parallel graph, ``n^3`` op nodes,
                           row and element broadcasting.
:func:`tc_pruned`          Fig. 11 — superfluous nodes removed;
                           ``n(n-1)(n-2)`` op nodes remain.
:func:`tc_pipelined`       Fig. 12 — broadcasting replaced by pipelined
                           chains; *bi-directional* data flow (chains grow
                           outward from the broadcast source in both
                           directions).
:func:`tc_unidirectional`  Fig. 13/14 — nodes flipped across the broadcast
                           sources (realised as the cyclic re-indexing
                           ``r=(i-k) mod n``, ``c=(j-k) mod n``); flow is
                           uni-directional but the inter-level communication
                           pattern is still irregular at strip boundaries
                           (Fig. 15).
:func:`tc_regular`         Fig. 16 — one delay column appended per level;
                           every interior node now has the same stencil.
                           Grouping its columns yields the Fig. 17 G-graph
                           (n horizontal paths x (n+1) G-nodes of
                           computation time n).
=================  ==============================================

Geometry of the regularized graph
---------------------------------
Level ``k`` (one outer-loop iteration) is an ``n x (n+1)`` grid in *local*
coordinates: row ``r`` holds matrix row ``i=(k+r) mod n``; column ``c``
(for ``c<n``) holds matrix column ``j=(k+c) mod n``; column ``c=n`` is the
delay column.  Every grid cell with ``c<n`` is a ``mac`` node computing

    out = a (+) (b (x) c)

where ``a`` comes from the previous level, ``b`` travels rightward along
the row (the element broadcast *within* each row of Fig. 10, pipelined),
and ``c`` travels downward along the column (the broadcast of matrix row
``k``, pipelined).  Boundary cells source their own chain: at ``c=0`` the
``b`` operand is the node's own ``a`` value (``x[i,k]``), at ``r=0`` the
``c`` operand is its own ``a`` value (``x[k,j]``); the ``mac`` result at
those cells — and on the main diagonal ``i=j`` — provably equals ``a``
(the paper's superfluous-node argument), so the cells act as transmitters
while keeping a perfectly uniform structure.

The chains also *deliver the wrap-around values*: row ``k``'s updated
values ride the ``c`` chains to the bottom row, and column ``k``'s values
ride the ``b`` chains to the delay column, which is exactly why the next
level can read all of its ``a`` operands from nearest neighbours — the
irregular strip-boundary communication of Fig. 15 disappears (this is the
transformation of Fig. 15c).

All stages are functionally equivalent: evaluating any of them on an
adjacency matrix yields the transitive closure (over any closed idempotent
semiring whose ``(x)``-identity sits on the diagonal; see
:mod:`repro.core.semiring`).
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..core.graph import Axis, DependenceGraph, NodeId, PortRef, port
from ..core.semiring import BOOLEAN, Semiring
from ..core.evaluate import evaluate

__all__ = [
    "tc_full",
    "tc_pruned",
    "tc_pipelined",
    "tc_unidirectional",
    "tc_regular",
    "tc_stage",
    "TC_STAGES",
    "make_inputs",
    "read_output_matrix",
    "run_graph",
    "is_computed",
    "expected_full_ops",
    "expected_computed_ops",
    "expected_regular_slots",
    "node_tag_census",
]


# ----------------------------------------------------------------------
# Bookkeeping helpers (Sec. 3.1 / Sec. 4.2 formulas)
# ----------------------------------------------------------------------

def is_computed(n: int, k: int, i: int, j: int) -> bool:
    """True when node ``(k,i,j)`` of the FPDG is *not* superfluous.

    Fig. 11: at level ``k`` the nodes of row ``k`` (``i==k``), of column
    ``k`` (``j==k``) and of the main diagonal (``i==j``) never change the
    value they would compute.
    """
    return i != k and j != k and i != j


def expected_full_ops(n: int) -> int:
    """Op-node count of the fully-parallel graph (Fig. 10): ``n^3``."""
    return n**3


def expected_computed_ops(n: int) -> int:
    """Nodes that must actually be computed (Fig. 11): ``n(n-1)(n-2)``."""
    return n * (n - 1) * (n - 2)


def expected_regular_slots(n: int) -> int:
    """Slot count of the regularized graph / G-graph: ``n^2 (n+1)``.

    ``n`` levels, each an ``n x (n+1)`` grid; this is the utilization
    denominator of Section 4.2.
    """
    return n * n * (n + 1)


# ----------------------------------------------------------------------
# Stage A -- Fig. 10: fully-parallel dependence graph
# ----------------------------------------------------------------------

def tc_full(n: int) -> DependenceGraph:
    """Fully-parallel dependence graph of Warshall's algorithm (Fig. 10).

    ``n^3`` op nodes; level ``k`` broadcasts matrix row ``k`` to all rows
    and element ``x[i,k]`` within each row ``i`` — the fan-outs the
    analysis in :mod:`repro.core.analysis` reports as broadcasts.
    """
    _check_n(n)
    dg = DependenceGraph(f"tc_full(n={n})")
    for i in range(n):
        for j in range(n):
            dg.add_input(("in", i, j), pos=(-1, i, j))

    def val(k: int, i: int, j: int) -> NodeId:
        return ("in", i, j) if k < 0 else ("op", k, i, j)

    for k in range(n):
        for i in range(n):
            for j in range(n):
                dg.add_op(
                    ("op", k, i, j),
                    "mac",
                    {
                        "a": val(k - 1, i, j),
                        "b": val(k - 1, i, k),
                        "c": val(k - 1, k, j),
                    },
                    pos=(k, i, j),
                    tag="compute",
                    axes={"a": Axis.LEVEL, "b": Axis.BROADCAST, "c": Axis.BROADCAST},
                )
    for i in range(n):
        for j in range(n):
            dg.add_output(("out", i, j), val(n - 1, i, j), pos=(n, i, j))
    _attach_drawing(dg, n, flipped=False)
    return dg


# ----------------------------------------------------------------------
# Stage B -- Fig. 11: superfluous nodes removed
# ----------------------------------------------------------------------

def tc_pruned(n: int) -> DependenceGraph:
    """Fig. 11: the FPDG with superfluous nodes removed.

    Exactly ``n(n-1)(n-2)`` op nodes remain; values of pruned positions
    are carried by the edge from their last actual producer (the data
    line simply stretches over the removed node).
    """
    _check_n(n)
    dg = DependenceGraph(f"tc_pruned(n={n})")
    for i in range(n):
        for j in range(n):
            dg.add_input(("in", i, j), pos=(-1, i, j))

    def val(k: int, i: int, j: int) -> NodeId:
        while k >= 0 and not is_computed(n, k, i, j):
            k -= 1
        return ("in", i, j) if k < 0 else ("op", k, i, j)

    for k in range(n):
        for i in range(n):
            for j in range(n):
                if not is_computed(n, k, i, j):
                    continue
                dg.add_op(
                    ("op", k, i, j),
                    "mac",
                    {
                        "a": val(k - 1, i, j),
                        "b": val(k - 1, i, k),
                        "c": val(k - 1, k, j),
                    },
                    pos=(k, i, j),
                    tag="compute",
                    axes={"a": Axis.LEVEL, "b": Axis.BROADCAST, "c": Axis.BROADCAST},
                )
    for i in range(n):
        for j in range(n):
            dg.add_output(("out", i, j), val(n - 1, i, j), pos=(n, i, j))
    _attach_drawing(dg, n, flipped=False)
    return dg


# ----------------------------------------------------------------------
# Stage C -- Fig. 12: broadcasting replaced by pipelining (bi-directional)
# ----------------------------------------------------------------------

def tc_pipelined(n: int) -> DependenceGraph:
    """Fig. 12: broadcasts serialized into chains through the consumers.

    Matrix row ``k``'s element ``x[k,j]`` now *flows* through the column-
    ``j`` nodes of level ``k`` (forwarded on each node's ``c`` port), and
    ``x[i,k]`` flows through the row-``i`` nodes (``b`` port).  The chains
    grow outward from the broadcast source in both directions — the
    bi-directional flow the flip transformations of Fig. 13 remove.
    Positions remain in global ``(k, i, j)`` coordinates.
    """
    _check_n(n)
    dg = DependenceGraph(f"tc_pipelined(n={n})")
    for i in range(n):
        for j in range(n):
            dg.add_input(("in", i, j), pos=(-1, i, j))

    def val(k: int, i: int, j: int) -> NodeId:
        while k >= 0 and not is_computed(n, k, i, j):
            k -= 1
        return ("in", i, j) if k < 0 else ("op", k, i, j)

    for k in range(n):
        # b-operand source for each consumer, threaded along the row.
        b_src: dict[tuple[int, int], NodeId | PortRef] = {}
        for i in range(n):
            if i == k:
                continue
            source = val(k - 1, i, k)
            for js in (range(k + 1, n), range(k - 1, -1, -1)):
                prev: NodeId | PortRef = source
                for j in js:
                    if not is_computed(n, k, i, j):
                        continue
                    b_src[(i, j)] = prev
                    prev = port(("op", k, i, j), "b")
        # c-operand source for each consumer, threaded down the column.
        c_src: dict[tuple[int, int], NodeId | PortRef] = {}
        for j in range(n):
            if j == k:
                continue
            source = val(k - 1, k, j)
            for is_ in (range(k + 1, n), range(k - 1, -1, -1)):
                prev = source
                for i in is_:
                    if not is_computed(n, k, i, j):
                        continue
                    c_src[(i, j)] = prev
                    prev = port(("op", k, i, j), "c")
        # Add nodes outward from the broadcast sources so every chain
        # predecessor exists before its consumer (chains run away from
        # row/column k in both directions).
        level_nodes = [
            (i, j)
            for i in range(n)
            for j in range(n)
            if is_computed(n, k, i, j)
        ]
        level_nodes.sort(key=lambda ij: abs(ij[0] - k) + abs(ij[1] - k))
        for i, j in level_nodes:
            dg.add_op(
                ("op", k, i, j),
                "mac",
                {"a": val(k - 1, i, j), "b": b_src[(i, j)], "c": c_src[(i, j)]},
                pos=(k, i, j),
                tag="compute",
                axes={"a": Axis.LEVEL, "b": Axis.DIAGONAL, "c": Axis.VERTICAL},
            )
    for i in range(n):
        for j in range(n):
            dg.add_output(("out", i, j), val(n - 1, i, j), pos=(n, i, j))
    _attach_drawing(dg, n, flipped=False)
    return dg


# ----------------------------------------------------------------------
# Stages D & E -- Figs. 13-16: flipped grids, then the delay column
# ----------------------------------------------------------------------

def _grid_graph(n: int, with_delay_column: bool, name: str) -> DependenceGraph:
    """Common constructor for the flipped level grids (stages D and E).

    Each level ``k`` is an ``n x n`` grid of ``mac`` nodes in local
    coordinates (plus, for stage E, the delay column ``c=n``).  See the
    module docstring for the full geometry.
    """
    _check_n(n)
    dg = DependenceGraph(name)
    for i in range(n):
        for j in range(n):
            dg.add_input(("in", i, j), pos=(-1, i, j))

    def a_source(k: int, r: int, c: int) -> NodeId | PortRef:
        """Producer of the previous-level value needed at local (r, c).

        ``k`` is the consuming level; the producer lives at level ``k-1``
        local position ``(r+1, c+1)`` (the strips shift by one in both
        local coordinates between levels).
        """
        if k == 0:
            i = (k + r) % n
            j = (k + c) % n
            return ("in", i, j)
        kp = k - 1
        if r <= n - 2 and c <= n - 2:
            return ("cell", kp, r + 1, c + 1)  # its out port
        if r == n - 1 and c <= n - 2:
            # Row k-1's value rides the c chain to the bottom row.
            return port(("cell", kp, n - 1, c + 1), "c")
        if c == n - 1 and r <= n - 2:
            # Column k-1's value rides the b chain to the right edge.
            if with_delay_column:
                return ("dly", kp, r + 1)
            return port(("cell", kp, r + 1, n - 1), "b")
        # Corner: x[k-1, k-1].
        if with_delay_column:
            return ("dly", kp, 0)
        return port(("cell", kp, n - 1, 0), "c")

    for k in range(n):
        for r in range(n):
            for c in range(n):
                a = a_source(k, r, c)
                b = port(("cell", k, r, c - 1), "b") if c > 0 else a
                cc = port(("cell", k, r - 1, c), "c") if r > 0 else a
                i = (k + r) % n
                j = (k + c) % n
                if r == 0:
                    tag = "transmit-row"
                elif c == 0:
                    tag = "transmit-col"
                elif i == j:
                    tag = "superfluous"
                else:
                    tag = "compute"
                dg.add_op(
                    ("cell", k, r, c),
                    "mac",
                    {"a": a, "b": b, "c": cc},
                    pos=(k, r, c),
                    tag=tag,
                    axes={"a": Axis.LEVEL, "b": Axis.HORIZONTAL, "c": Axis.VERTICAL},
                )
            if with_delay_column:
                dg.add_delay(
                    ("dly", k, r),
                    port(("cell", k, r, n - 1), "b"),
                    pos=(k, r, n),
                    axis=Axis.HORIZONTAL,
                    tag="delay",
                )

    # Outputs: read with the same stencil a hypothetical level n would use.
    for i in range(n):
        for j in range(n):
            r, c = i, j  # local coordinates at level n: (i - n) mod n = i
            kp = n - 1
            if r <= n - 2 and c <= n - 2:
                src: NodeId | PortRef = ("cell", kp, r + 1, c + 1)
            elif r == n - 1 and c <= n - 2:
                src = port(("cell", kp, n - 1, c + 1), "c")
            elif c == n - 1 and r <= n - 2:
                src = ("dly", kp, r + 1) if with_delay_column else port(
                    ("cell", kp, r + 1, n - 1), "b"
                )
            else:
                src = ("dly", kp, 0) if with_delay_column else port(
                    ("cell", kp, n - 1, 0), "c"
                )
            dg.add_output(("out", i, j), src, pos=(n, i, j))
    _attach_drawing(dg, n, flipped=True)
    return dg


def tc_unidirectional(n: int) -> DependenceGraph:
    """Figs. 13/14: flipped (cyclically re-indexed) grids, no delay column.

    Data flow is uni-directional (all intra-level chains run toward
    increasing local coordinates), but the inter-level pattern is
    irregular at strip boundaries (Fig. 15): right-edge consumers read a
    *forwarding port* of their diagonal neighbour instead of an output,
    and the corner reads across the whole strip — several distinct
    communication stencils coexist.
    """
    return _grid_graph(n, with_delay_column=False, name=f"tc_unidirectional(n={n})")


def tc_regular(n: int) -> DependenceGraph:
    """Fig. 16: the regularized graph (delay column appended per level).

    Every level is ``n x (n+1)``; all interior consumers share a single
    communication stencil, which is what makes the diagonal grouping into
    the Fig. 17 G-graph possible.  Total slot count is ``n^2 (n+1)``.
    """
    return _grid_graph(n, with_delay_column=True, name=f"tc_regular(n={n})")


#: Stage name -> constructor, in pipeline order.
TC_STAGES = {
    "full": tc_full,
    "pruned": tc_pruned,
    "pipelined": tc_pipelined,
    "unidirectional": tc_unidirectional,
    "regular": tc_regular,
}


def tc_stage(stage: str, n: int) -> DependenceGraph:
    """Construct the named pipeline stage for problem size ``n``."""
    try:
        ctor = TC_STAGES[stage]
    except KeyError:
        raise ValueError(
            f"unknown stage {stage!r}; choose from {tuple(TC_STAGES)}"
        ) from None
    return ctor(n)


# ----------------------------------------------------------------------
# I/O helpers
# ----------------------------------------------------------------------

def make_inputs(a: np.ndarray, semiring: Semiring = BOOLEAN) -> dict[NodeId, Any]:
    """Input environment for any TC stage from a matrix ``a``.

    The diagonal is forced to the semiring's diagonal element (Warshall's
    precondition).
    """
    m = semiring.matrix(a)
    n = m.shape[0]
    return {("in", i, j): m[i, j].item() for i in range(n) for j in range(n)}


def read_output_matrix(
    outputs: Mapping[NodeId, Any], n: int, semiring: Semiring = BOOLEAN
) -> np.ndarray:
    """Assemble the ``("out", i, j)`` values into a matrix."""
    m = np.empty((n, n), dtype=semiring.dtype)
    for i in range(n):
        for j in range(n):
            m[i, j] = outputs[("out", i, j)]
    return m


def run_graph(
    dg: DependenceGraph, a: np.ndarray, semiring: Semiring = BOOLEAN
) -> np.ndarray:
    """Functionally evaluate a TC stage on matrix ``a``; return the closure."""
    n = a.shape[0]
    outs = evaluate(dg, make_inputs(a, semiring), semiring)
    return read_output_matrix(outs, n, semiring)


def node_tag_census(dg: DependenceGraph) -> dict[str, int]:
    """Histogram of node tags (compute / transmit-* / superfluous / delay)."""
    census: dict[str, int] = {}
    for nid, d in dg.g.nodes(data=True):
        tag = d.get("tag")
        if tag is not None:
            census[tag] = census.get(tag, 0) + 1
    return census


def _attach_drawing(dg: DependenceGraph, n: int, flipped: bool) -> None:
    """Attach the paper's drawing embedding as the ``draw`` node attribute.

    Levels are stacked vertically (strip ``k`` occupies drawing rows
    ``[k*n, (k+1)*n)``).  For the flipped stages each strip is also
    shifted one position to the right (``x = k + c``), which is how the
    paper draws Figs. 14-16 — in that embedding every edge of the
    regularized graph points down and/or right (uni-directional flow),
    while the pre-flip stages mix both horizontal directions.
    """
    for nid, d in dg.g.nodes(data=True):
        p = d.get("pos")
        if p is None or len(p) != 3:
            continue
        k, a, b = p
        d["draw"] = (k * n + a, k + b) if flipped else (k * n + a, b)


def _check_n(n: int) -> None:
    if n < 3:
        raise ValueError(
            f"transitive-closure graphs need n >= 3 (got n={n}); "
            "below that every node is superfluous"
        )
