"""Dependence graph of QR triangularization by Givens rotations (Sec. 4.3).

At level ``k`` the subdiagonal of column ``k`` is annihilated by a chain
of plane rotations against row ``k``: rotation ``i`` (``i = k+1..n-1``)
is generated from the current ``(a[k,k], a[i,k])`` pair (``rotg``) and
applied to the trailing columns of rows ``k`` and ``i`` (``rota`` /
``rotb``).  The rotation coefficients are pipelined along the row pair
through the appliers' ``r`` ports — the same broadcast-removal idiom as
everywhere else.

Per-level work is ``(n-1-k)(2(n-1-k) + 1)`` — strongly decreasing, the
third member of the paper's Fig. 22 family ("triangularization by Givens
rotations").
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.graph import Axis, DependenceGraph, NodeId, port
from ..core.evaluate import evaluate
from ..core.ggraph import GGraph, GNodeId

__all__ = ["givens_graph", "givens_inputs", "run_givens", "givens_ggraph"]


def givens_graph(n: int) -> DependenceGraph:
    """Pipelined FPDG of Givens QR on an ``n x n`` matrix.

    Node ids: ``("rotg", k, i)`` generates the rotation annihilating
    ``a[i,k]``; ``("rk", k, i, j)`` (``rota``) updates row ``k``'s element
    ``j``; ``("ri", k, i, j)`` (``rotb``) updates row ``i``'s element.
    """
    if n < 2:
        raise ValueError(f"Givens QR needs n >= 2, got {n}")
    dg = DependenceGraph(f"givens(n={n})")
    for i in range(n):
        for j in range(n):
            dg.add_input(("in", i, j), pos=(-1, i, j))

    # row_val[(i, j)] tracks the current producer of a[i, j].
    row_val: dict[tuple[int, int], Any] = {
        (i, j): ("in", i, j) for i in range(n) for j in range(n)
    }
    for k in range(n - 1):
        for i in range(k + 1, n):
            rg = ("rotg", k, i)
            dg.add_op(
                rg,
                "rotg",
                {"a": row_val[(k, k)], "b": row_val[(i, k)]},
                pos=(k, i, k),
                tag="compute",
                axes={"a": Axis.VERTICAL, "b": Axis.LEVEL},
            )
            row_val[(k, k)] = None  # consumed; becomes the new r (set below)
            # After the rotation, a[k,k] := r = c*old_akk + s*a[i,k]; we
            # recompute it with an explicit rota node so the value flows.
            rkk = ("rk", k, i, k)
            dg.add_op(
                rkk,
                "rota",
                {"a": port(rg, "a"), "b": port(rg, "b"), "r": rg},
                pos=(k, i, k),
                tag="compute",
            )
            row_val[(k, k)] = rkk
            prev_rot = rg
            for j in range(k + 1, n):
                rk = ("rk", k, i, j)
                ri = ("ri", k, i, j)
                dg.add_op(
                    rk,
                    "rota",
                    {"a": row_val[(k, j)], "b": row_val[(i, j)], "r": prev_rot},
                    pos=(k, i, j),
                    tag="compute",
                    axes={"r": Axis.HORIZONTAL},
                )
                dg.add_op(
                    ri,
                    "rotb",
                    {"a": row_val[(k, j)], "b": row_val[(i, j)], "r": port(rk, "r")},
                    pos=(k, i, j),
                    tag="compute",
                )
                row_val[(k, j)] = rk
                row_val[(i, j)] = ri
                prev_rot = port(ri, "r")
    for i in range(n):
        for j in range(i, n):
            dg.add_output(("R", i, j), row_val[(i, j)], pos=(n, i, j))
    return dg


def givens_inputs(a: np.ndarray) -> dict[NodeId, Any]:
    """Input environment from a square matrix."""
    n = a.shape[0]
    return {("in", i, j): float(a[i, j]) for i in range(n) for j in range(n)}


def run_givens(a: np.ndarray) -> np.ndarray:
    """Evaluate the Givens graph; returns the upper-triangular ``R``.

    ``R`` satisfies ``R^T R == A^T A`` (it is the QR factor up to row
    signs; this construction keeps each pivot ``r_kk >= 0``).
    """
    n = a.shape[0]
    dg = givens_graph(n)
    outs = evaluate(dg, givens_inputs(a))
    r = np.zeros((n, n))
    for i in range(n):
        for j in range(i, n):
            r[i, j] = outs[("R", i, j)]
    return r


def _group_by_columns(dg: DependenceGraph, nid: NodeId) -> GNodeId | None:
    if not dg.kind(nid).occupies_slot:
        return None
    k, _, j = dg.pos(nid)
    return (k, j)


def givens_ggraph(n: int) -> GGraph:
    """Column-per-level G-graph with strongly decreasing times (Fig. 22)."""
    return GGraph(givens_graph(n), _group_by_columns)
