"""Dependence-graph front-ends for the matrix algorithms studied."""
