"""Reference implementations of transitive closure (the software oracle).

Everything else in the repository — every graph stage, every array
simulation, every baseline — is checked against these functions.

Three independent implementations are provided:

* :func:`warshall` — the literal triple loop of Section 3.1 (scalar);
* :func:`warshall_vectorized` — numpy outer-product formulation (fast path,
  used for large sweeps);
* :func:`transitive_closure_networkx` — delegation to
  :func:`networkx.transitive_closure` (a third-party cross-check).

All three agree on random inputs (see ``tests/algorithms``).
"""

from __future__ import annotations

import numpy as np

from ..core.semiring import BOOLEAN, Semiring, closure_reference

__all__ = [
    "warshall",
    "warshall_vectorized",
    "floyd_warshall_reference",
    "transitive_closure_networkx",
    "random_adjacency",
    "adjacency_from_edges",
]


def warshall(a: np.ndarray) -> np.ndarray:
    """Boolean transitive closure by the literal Warshall triple loop.

    ``a`` is an ``n x n`` 0/1 (or boolean) adjacency matrix; the diagonal
    is forced to 1 (a node is always adjacent to itself, Section 3.1).
    """
    x = np.array(a, dtype=np.bool_, copy=True)
    n = x.shape[0]
    if x.shape != (n, n):
        raise ValueError(f"adjacency matrix must be square, got {x.shape}")
    np.fill_diagonal(x, True)
    for k in range(n):
        for i in range(n):
            if x[i, k]:
                for j in range(n):
                    if x[k, j]:
                        x[i, j] = True
    return x


def warshall_vectorized(a: np.ndarray, semiring: Semiring = BOOLEAN) -> np.ndarray:
    """Closure via numpy outer products, generic over the semiring.

    One rank-1 semiring update per pivot ``k``; identical results to
    :func:`warshall` on the boolean semiring and to Floyd--Warshall on
    min-plus.
    """
    return closure_reference(a, semiring)


def floyd_warshall_reference(w: np.ndarray) -> np.ndarray:
    """All-pairs shortest paths (the min-plus instantiation).

    ``w[i, j]`` is the edge weight (``inf`` when absent); the diagonal is
    forced to 0.  This is the 'extension' workload: the same dependence
    graphs and arrays compute it by swapping the semiring.
    """
    x = np.array(w, dtype=np.float64, copy=True)
    n = x.shape[0]
    np.fill_diagonal(x, 0.0)
    for k in range(n):
        x = np.minimum(x, x[:, k][:, None] + x[k, :][None, :])
    return x


def transitive_closure_networkx(a: np.ndarray) -> np.ndarray:
    """Boolean closure via networkx (independent cross-check)."""
    import networkx as nx

    n = a.shape[0]
    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    for i in range(n):
        for j in range(n):
            if a[i, j] and i != j:
                g.add_edge(i, j)
    tc = nx.transitive_closure(g, reflexive=True)
    out = np.zeros((n, n), dtype=np.bool_)
    for i, j in tc.edges:
        out[i, j] = True
    np.fill_diagonal(out, True)
    return out


def random_adjacency(
    n: int, density: float = 0.3, seed: int | None = None
) -> np.ndarray:
    """Random boolean adjacency matrix with reflexive diagonal."""
    rng = np.random.default_rng(seed)
    a = (rng.random((n, n)) < density).astype(np.bool_)
    np.fill_diagonal(a, True)
    return a


def adjacency_from_edges(n: int, edges: list[tuple[int, int]]) -> np.ndarray:
    """Adjacency matrix for an explicit edge list (diagonal forced).

    Shares the one canonical edge semantics of
    :func:`repro.datasets.core.from_edges` — duplicates are dropped,
    self-loops are allowed (the diagonal is forced anyway), and
    out-of-range or malformed vertex ids raise a structured
    :class:`repro.datasets.DatasetError` (a ``ValueError`` subclass, so
    existing callers keep working).
    """
    from ..datasets.core import from_edges

    return from_edges("edges", edges, n=n).adjacency(diagonal=True)
