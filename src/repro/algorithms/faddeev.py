"""Dependence graph of the Faddeev algorithm (Sec. 4.3 workload).

The Faddeev algorithm computes ``D + C A^{-1} B`` by Gaussian elimination
on the compound matrix::

    [  A   B ]
    [ -C   D ]

annihilating the lower-left block with the rows of ``[A B]``; when the
first ``n`` columns are eliminated the lower-right block holds the result.
(The classics: with ``B = I, D = 0`` it inverts ``A``; with ``D = 0`` it
evaluates ``C A^{-1} B`` without ever forming the inverse.)

Like LU, the active region shrinks with the elimination level, so G-node
computation times decrease monotonically — the paper cites Faddeev
alongside LU as a Fig. 22 case (and devoted a companion paper [21] to it).

Structure, level ``k = 0..n-1``: rows ``i`` in ``{k+1..n-1}`` (remaining
``A|B`` rows) and ``{n..2n-1}`` (all ``-C|D`` rows) build a multiplier
``("div", k, i)`` against pivot row ``k`` and update columns
``j = k+1..2n-1`` with ``("op", k, i, j)`` (``msub``), with the same
pipelined chains as :mod:`repro.algorithms.lu`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.graph import Axis, DependenceGraph, NodeId, port
from ..core.evaluate import evaluate
from ..core.ggraph import GGraph, GNodeId

__all__ = ["faddeev_graph", "faddeev_inputs", "run_faddeev", "faddeev_ggraph"]


def _rows_at_level(n: int, k: int) -> list[int]:
    """Rows eliminated at level ``k`` (remaining A rows + all C rows)."""
    return list(range(k + 1, n)) + list(range(n, 2 * n))


def faddeev_graph(n: int) -> DependenceGraph:
    """Pipelined FPDG of the Faddeev algorithm on ``n x n`` blocks."""
    if n < 1:
        raise ValueError(f"Faddeev needs n >= 1, got {n}")
    rows, cols = 2 * n, 2 * n
    dg = DependenceGraph(f"faddeev(n={n})")
    for i in range(rows):
        for j in range(cols):
            dg.add_input(("in", i, j), pos=(-1, i, j))

    def active(k: int, i: int, j: int) -> bool:
        return i in set(_rows_at_level(n, k)) and j > k

    def val(k: int, i: int, j: int) -> NodeId:
        while k >= 0 and not active(k, i, j):
            k -= 1
        return ("in", i, j) if k < 0 else ("op", k, i, j)

    for k in range(n):
        level_rows = _rows_at_level(n, k)
        prev_ref = None
        for idx, i in enumerate(level_rows):
            pivot = val(k - 1, k, k) if idx == 0 else port(("div", k, level_rows[idx - 1]), "b")
            dg.add_op(
                ("div", k, i),
                "div",
                {"a": val(k - 1, i, k), "b": pivot},
                pos=(k, i, k),
                tag="compute",
                axes={"a": Axis.LEVEL, "b": Axis.VERTICAL},
            )
        for idx, i in enumerate(level_rows):
            for j in range(k + 1, cols):
                b_src = ("div", k, i) if j == k + 1 else port(("op", k, i, j - 1), "b")
                c_src = (
                    val(k - 1, k, j)
                    if idx == 0
                    else port(("op", k, level_rows[idx - 1], j), "c")
                )
                dg.add_op(
                    ("op", k, i, j),
                    "msub",
                    {"a": val(k - 1, i, j), "b": b_src, "c": c_src},
                    pos=(k, i, j),
                    tag="compute",
                    axes={"a": Axis.LEVEL, "b": Axis.HORIZONTAL, "c": Axis.VERTICAL},
                )
    # Result: the lower-right block after all n eliminations.
    for i in range(n, rows):
        for j in range(n, cols):
            dg.add_output(("out", i - n, j - n), val(n - 1, i, j), pos=(n, i, j))
    return dg


def faddeev_inputs(
    a: np.ndarray, b: np.ndarray, c: np.ndarray, d: np.ndarray
) -> dict[NodeId, Any]:
    """Input environment for the compound matrix ``[[A, B], [-C, D]]``."""
    n = a.shape[0]
    for name, mat in (("A", a), ("B", b), ("C", c), ("D", d)):
        if mat.shape != (n, n):
            raise ValueError(f"block {name} must be {n}x{n}, got {mat.shape}")
    top = np.hstack([a, b])
    bottom = np.hstack([-c, d])
    w = np.vstack([top, bottom])
    return {
        ("in", i, j): float(w[i, j]) for i in range(2 * n) for j in range(2 * n)
    }


def run_faddeev(
    a: np.ndarray, b: np.ndarray, c: np.ndarray, d: np.ndarray
) -> np.ndarray:
    """Evaluate the Faddeev graph; returns ``D + C A^{-1} B``."""
    n = a.shape[0]
    dg = faddeev_graph(n)
    outs = evaluate(dg, faddeev_inputs(a, b, c, d))
    r = np.empty((n, n))
    for i in range(n):
        for j in range(n):
            r[i, j] = outs[("out", i, j)]
    return r


def _group_by_columns(dg: DependenceGraph, nid: NodeId) -> GNodeId | None:
    if not dg.kind(nid).occupies_slot:
        return None
    k, _, j = dg.pos(nid)
    return (k, j)


def faddeev_ggraph(n: int) -> GGraph:
    """Column-per-level G-graph; times ``2n-1-k`` decrease with the level."""
    return GGraph(faddeev_graph(n), _group_by_columns)
