"""Dependence graph of upper-triangular matrix inversion (Sec. 4.3).

``V = U^{-1}`` by back-substitution, column by column::

    v[j,j] = 1 / u[j,j]
    v[i,j] = -( sum_{k=i+1..j} u[i,k] * v[k,j] ) / u[i,i]     (i < j)

Column ``j`` costs ``O(j^2)`` operations — the *increasing* counterpart
of LU's decreasing pattern; the paper lists "inverse of non-singular
upper triangular matrix" among the algorithms whose G-nodes cannot share
one computation time (Sec. 4.3).

Node ids: ``("vd", j)`` — the diagonal reciprocal; ``("acc", i, j, k)``
— accumulation step ``k`` of element ``(i, j)``; ``("neg", i, j)`` and
``("div", i, j)`` — the final negate-and-scale.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.graph import Axis, DependenceGraph, NodeId
from ..core.evaluate import evaluate
from ..core.ggraph import GGraph, GNodeId
from ..core.semiring import REAL

__all__ = [
    "triangular_inverse_graph",
    "triangular_inverse_inputs",
    "run_triangular_inverse",
    "triangular_inverse_ggraph",
]


def triangular_inverse_graph(n: int) -> DependenceGraph:
    """FPDG of the inversion of an ``n x n`` upper-triangular matrix."""
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    dg = DependenceGraph(f"triangular_inverse(n={n})")
    for i in range(n):
        for j in range(i, n):
            dg.add_input(("in", i, j), pos=(-1, i, j))
    dg.add_const(("zero",), 0.0)

    def v(i: int, j: int) -> NodeId:
        return ("vd", j) if i == j else ("div", i, j)

    for j in range(n):
        dg.add_op(
            ("vd", j),
            "recip",
            {"a": ("in", j, j)},
            pos=(j, j, j),
            tag="compute",
        )
        for i in range(j - 1, -1, -1):
            prev: NodeId = ("zero",)
            for k in range(i + 1, j + 1):
                acc = ("acc", i, j, k)
                dg.add_op(
                    acc,
                    "mac",
                    {"a": prev, "b": ("in", i, k), "c": v(k, j)},
                    pos=(j, i, k),
                    tag="compute",
                    axes={"a": Axis.HORIZONTAL, "c": Axis.VERTICAL},
                )
                prev = acc
            dg.add_op(("neg", i, j), "neg", {"a": prev}, pos=(j, i, j), tag="compute")
            dg.add_op(
                ("div", i, j),
                "mul",
                {"a": ("neg", i, j), "b": ("vd", i)},
                pos=(j, i, j),
                tag="compute",
            )
    for i in range(n):
        for j in range(i, n):
            dg.add_output(("out", i, j), v(i, j), pos=(n, i, j))
    return dg


def triangular_inverse_inputs(u: np.ndarray) -> dict[NodeId, Any]:
    """Input environment from an upper-triangular matrix."""
    n = u.shape[0]
    if not np.allclose(u, np.triu(u)):
        raise ValueError("matrix must be upper triangular")
    return {("in", i, j): float(u[i, j]) for i in range(n) for j in range(i, n)}


def run_triangular_inverse(u: np.ndarray) -> np.ndarray:
    """Evaluate the graph; returns ``U^{-1}`` (upper triangular)."""
    n = u.shape[0]
    dg = triangular_inverse_graph(n)
    outs = evaluate(dg, triangular_inverse_inputs(u), REAL)
    inv = np.zeros((n, n))
    for i in range(n):
        for j in range(i, n):
            inv[i, j] = outs[("out", i, j)]
    return inv


def _group_by_result_column(dg: DependenceGraph, nid: NodeId) -> GNodeId | None:
    if not dg.kind(nid).occupies_slot:
        return None
    j = dg.pos(nid)[0]
    return (0, j)


def triangular_inverse_ggraph(n: int) -> GGraph:
    """One G-node per result column; times grow quadratically with ``j``."""
    return GGraph(triangular_inverse_graph(n), _group_by_result_column)
