"""Canonical sparse-graph dataset container and edge semantics.

Every loader and generator in :mod:`repro.datasets` funnels through
:func:`from_edges`, which enforces one edge semantics for the whole
repo (the seam that :func:`repro.algorithms.warshall.adjacency_from_edges`
and the SSC baselines share):

* **duplicates are dropped** — an edge list is a *relation*, and the
  closure of a relation does not depend on multiplicity;
* **self-loops are allowed** (and kept) — transitive closure over the
  boolean semiring presets the diagonal anyway, so ``(v, v)`` edges are
  harmless and real SNAP exports contain them;
* **out-of-range or malformed vertex ids raise** a structured
  :class:`DatasetError` instead of silently wrapping or truncating.
  Loaders that read external id spaces pass ``remap=True`` to compact
  arbitrary non-negative ids into ``0..n-1`` deterministically
  (ascending id order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.bitmatrix import words_per_row

__all__ = ["DatasetError", "GraphDataset", "from_edges"]


class DatasetError(ValueError):
    """A malformed dataset, carrying structured context.

    Attributes
    ----------
    reason:
        Machine-readable category (``"vertex-out-of-range"``,
        ``"parse"``, ``"shape"``, ``"spec"`` ...).
    source:
        Where the offending data came from (a path or generator spec).
    line:
        1-based line number for file-backed datasets, else ``None``.
    """

    def __init__(
        self,
        reason: str,
        message: str,
        *,
        source: str | None = None,
        line: int | None = None,
    ) -> None:
        where = ""
        if source is not None:
            where = f" [{source}" + (f":{line}" if line is not None else "") + "]"
        super().__init__(f"{reason}: {message}{where}")
        self.reason = reason
        self.source = source
        self.line = line


@dataclass(frozen=True)
class GraphDataset:
    """A loaded directed graph: ``n`` vertices and a deduped edge array.

    ``edges`` is an ``(m, 2)`` int64 array of ``(src, dst)`` pairs,
    sorted lexicographically — a canonical form, so two datasets with
    the same edge *relation* compare equal regardless of input order.
    """

    name: str
    n: int
    edges: np.ndarray
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def m(self) -> int:
        """Distinct edge count."""
        return int(self.edges.shape[0])

    @property
    def self_loops(self) -> int:
        """Number of ``(v, v)`` edges present."""
        if not self.m:
            return 0
        return int(np.count_nonzero(self.edges[:, 0] == self.edges[:, 1]))

    def adjacency(self, *, diagonal: bool = False) -> np.ndarray:
        """Dense boolean adjacency matrix (``diagonal=True`` presets it)."""
        a = np.zeros((self.n, self.n), dtype=np.bool_)
        if self.m:
            a[self.edges[:, 0], self.edges[:, 1]] = True
        if diagonal:
            np.fill_diagonal(a, True)
        return a

    def packed_adjacency(self, *, diagonal: bool = False) -> np.ndarray:
        """Bit-packed adjacency rows (:mod:`repro.core.bitmatrix` layout).

        Built straight from the edge array — no dense ``n x n``
        intermediate — so it stays cheap at 10k+ vertices.
        """
        words = np.zeros((self.n, words_per_row(self.n)), dtype=np.uint64)
        if self.m:
            src, dst = self.edges[:, 0], self.edges[:, 1]
            np.bitwise_or.at(
                words,
                (src, dst >> 6),
                np.uint64(1) << (dst & 63).astype(np.uint64),
            )
        if diagonal and self.n:
            idx = np.arange(self.n)
            words[idx, idx >> 6] |= np.uint64(1) << (idx & 63).astype(np.uint64)
        return words

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex."""
        deg = np.zeros(self.n, dtype=np.int64)
        if self.m:
            np.add.at(deg, self.edges[:, 0], 1)
        return deg

    def describe(self) -> dict[str, Any]:
        """Summary row for tables, ledgers and the dashboard."""
        deg = self.out_degrees()
        return {
            "name": self.name,
            "n": self.n,
            "m": self.m,
            "self_loops": self.self_loops,
            "max_out_degree": int(deg.max()) if self.n else 0,
            "mean_out_degree": round(float(deg.mean()), 3) if self.n else 0.0,
            **{
                k: v
                for k, v in self.meta.items()
                if isinstance(v, (str, int, float, bool))
            },
        }


def from_edges(
    name: str,
    edges: Any,
    *,
    n: int | None = None,
    remap: bool = False,
    source: str | None = None,
    meta: dict[str, Any] | None = None,
) -> GraphDataset:
    """Build a :class:`GraphDataset`, enforcing the canonical semantics.

    ``edges`` is any ``(m, 2)``-shaped integer sequence.  With ``n``
    given, every id must lie in ``[0, n)``; without it, ``n`` becomes
    ``max id + 1``.  ``remap=True`` instead compacts the distinct ids to
    ``0..n-1`` (ascending), recording the mapping size in ``meta``.
    Duplicate edges are dropped; self-loops are kept.
    """
    try:
        arr = np.asarray(edges, dtype=np.int64)
    except (TypeError, ValueError, OverflowError) as exc:
        raise DatasetError(
            "parse", f"edge list is not integer-valued: {exc}", source=source
        ) from None
    if arr.size == 0:
        arr = arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise DatasetError(
            "shape",
            f"edge array must be (m, 2), got shape {arr.shape}",
            source=source,
        )
    raw_count = int(arr.shape[0])
    if raw_count and int(arr.min()) < 0:
        bad = int(np.argmax((arr < 0).any(axis=1)))
        raise DatasetError(
            "vertex-out-of-range",
            f"negative vertex id in edge {tuple(arr[bad])}",
            source=source,
        )
    remapped_from = None
    if remap:
        ids = np.unique(arr)
        remapped_from = int(ids[-1]) + 1 if ids.size else 0
        arr = np.searchsorted(ids, arr)
        inferred = int(ids.size)
        if n is not None and n < inferred:
            raise DatasetError(
                "vertex-out-of-range",
                f"{inferred} distinct ids exceed requested n={n}",
                source=source,
            )
        n = inferred if n is None else n
    else:
        top = int(arr.max()) + 1 if raw_count else 0
        if n is None:
            n = top
        elif top > n:
            bad = int(np.argmax((arr >= n).any(axis=1)))
            raise DatasetError(
                "vertex-out-of-range",
                f"edge {tuple(arr[bad])} exceeds n={n} "
                "(pass remap=True to compact external id spaces)",
                source=source,
            )
    if n < 0:
        raise DatasetError("shape", f"negative vertex count n={n}", source=source)
    arr = np.unique(arr.reshape(-1, 2), axis=0) if raw_count else arr
    info: dict[str, Any] = dict(meta or {})
    info.setdefault("duplicates_dropped", raw_count - int(arr.shape[0]))
    if remapped_from is not None:
        info.setdefault("remapped_from", remapped_from)
    if source is not None:
        info.setdefault("source", source)
    return GraphDataset(name=name, n=int(n), edges=arr, meta=info)
