"""Sparse graph workloads: loaders, generators and closure engines.

The paper's experiments stop at dense n<=24 matrices; this package is
the on-ramp for the real sparse workloads of ROADMAP item 2.  It
provides

* :mod:`~repro.datasets.core` — the canonical :class:`GraphDataset`
  container and the one edge semantics every entry point enforces
  (dedup, self-loops kept, structured errors on bad ids);
* :mod:`~repro.datasets.edgelist` — SNAP-style edge-list files
  (optionally gzipped);
* :mod:`~repro.datasets.kronecker` — deterministic seeded stochastic
  Kronecker (R-MAT) generation, the family the SSC reference
  implementations benchmark on;
* :mod:`~repro.datasets.closure` — host-level closure engines (dense
  unpacked reference, the bit-packed path, and the SSC baselines) over
  loaded datasets.

:func:`resolve_dataset` maps the CLI's ``--dataset`` spec strings to
datasets: a path loads an edge-list file; ``kron:scale=S,edges=E,seed=K``
generates a Kronecker graph.
"""

from __future__ import annotations

from .closure import (
    CLOSURE_ENGINES,
    DENSE_CUTOFF,
    ClosureResult,
    compute_closure,
)
from .core import DatasetError, GraphDataset, from_edges
from .edgelist import load_edgelist, save_edgelist
from .kronecker import DEFAULT_INITIATOR, kronecker

__all__ = [
    "CLOSURE_ENGINES",
    "DENSE_CUTOFF",
    "DEFAULT_INITIATOR",
    "ClosureResult",
    "DatasetError",
    "GraphDataset",
    "compute_closure",
    "from_edges",
    "kronecker",
    "load_edgelist",
    "resolve_dataset",
    "save_edgelist",
]

_KRON_KEYS = {"scale", "edges", "seed"}


def resolve_dataset(
    spec: str, *, n: int | None = None, remap: bool = False
) -> GraphDataset:
    """Resolve a ``--dataset`` spec string to a loaded dataset.

    ``kron:scale=S[,edges=E][,seed=K]`` generates; anything else is a
    path to a (possibly gzipped) SNAP-style edge list.
    """
    if spec.startswith("kron:"):
        params: dict[str, int] = {}
        body = spec[len("kron:"):]
        for part in filter(None, body.split(",")):
            key, sep, value = part.partition("=")
            if not sep or key not in _KRON_KEYS:
                raise DatasetError(
                    "spec",
                    f"bad kron parameter {part!r} "
                    f"(expected {sorted(_KRON_KEYS)})",
                    source=spec,
                )
            try:
                params[key] = int(value)
            except ValueError:
                raise DatasetError(
                    "spec", f"non-integer value in {part!r}", source=spec
                ) from None
        if "scale" not in params:
            raise DatasetError("spec", "kron spec needs scale=<int>", source=spec)
        return kronecker(
            params["scale"],
            params.get("edges", 8),
            seed=params.get("seed", 0),
        )
    return load_edgelist(spec, n=n, remap=remap)
