"""Deterministic stochastic-Kronecker (R-MAT) graph generator.

The SSC reference implementations benchmark on Kronecker graphs produced
by SNAP's ``krongen``; this is the same family generated in-process so
the sparse-workload benchmarks need no binary fixtures.  Each of the
``edge_factor * 2**scale`` edge samples descends ``scale`` levels of the
2x2 initiator matrix (the Graph500 R-MAT probabilities by default),
choosing one quadrant per level — a vectorised NumPy walk driven by
``np.random.default_rng(seed)``, so a ``(scale, edge_factor, seed,
initiator)`` tuple always yields the same graph on every platform.

Duplicate samples are dropped and self-loops kept by the shared
:func:`repro.datasets.core.from_edges` semantics, so ``m`` is the
*distinct* edge count (slightly below ``edge_factor * n``, as with real
R-MAT exports).
"""

from __future__ import annotations

import numpy as np

from .core import DatasetError, GraphDataset, from_edges

__all__ = ["DEFAULT_INITIATOR", "kronecker"]

#: Graph500 R-MAT initiator probabilities (a, b, c, d).
DEFAULT_INITIATOR: tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05)


def kronecker(
    scale: int,
    edge_factor: int = 8,
    *,
    seed: int = 0,
    initiator: tuple[float, float, float, float] = DEFAULT_INITIATOR,
    name: str | None = None,
) -> GraphDataset:
    """Generate a ``2**scale``-vertex stochastic Kronecker graph.

    ``edge_factor`` edge samples are drawn per vertex; after dedup the
    dataset carries the surviving distinct edges.  Deterministic in all
    parameters.
    """
    spec = f"kron:scale={scale},edges={edge_factor},seed={seed}"
    if scale < 0 or scale > 30:
        raise DatasetError("spec", f"scale must be in [0, 30], got {scale}", source=spec)
    if edge_factor < 0:
        raise DatasetError(
            "spec", f"edge_factor must be >= 0, got {edge_factor}", source=spec
        )
    probs = np.asarray(initiator, dtype=np.float64)
    if probs.shape != (4,) or (probs < 0).any():
        raise DatasetError(
            "spec", f"initiator must be 4 non-negative weights, got {initiator!r}",
            source=spec,
        )
    total = float(probs.sum())
    if total <= 0:
        raise DatasetError("spec", "initiator weights sum to zero", source=spec)
    probs = probs / total
    n = 1 << scale
    m_samples = edge_factor * n
    rng = np.random.default_rng(seed)
    src = np.zeros(m_samples, dtype=np.int64)
    dst = np.zeros(m_samples, dtype=np.int64)
    # Quadrant thresholds: a | b | c | d over [0, 1).
    t_ab = probs[0] + probs[1]
    t_abc = t_ab + probs[2]
    for _level in range(scale):
        u = rng.random(m_samples)
        right = (u >= probs[0]) & (u < t_ab) | (u >= t_abc)  # quadrants b, d
        lower = u >= t_ab  # quadrants c, d
        src = (src << 1) | lower.astype(np.int64)
        dst = (dst << 1) | right.astype(np.int64)
    edges = np.stack([src, dst], axis=1)
    return from_edges(
        name or spec,
        edges,
        n=n,
        source=spec,
        meta={
            "format": "kronecker",
            "scale": scale,
            "edge_factor": edge_factor,
            "seed": seed,
            "initiator": tuple(round(float(p), 6) for p in probs),
            "samples": int(m_samples),
        },
    )
