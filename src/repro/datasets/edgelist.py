"""SNAP-style edge-list loader (plain text, optionally gzipped).

The format is the one SNAP exports and the SSC reference implementations
consume: one ``FromNodeId<whitespace>ToNodeId`` pair per line, with
``#``-prefixed comment/header lines.  Tabs and spaces both separate
(SNAP uses tabs; hand-written fixtures often use spaces).  A trailing
``.gz`` suffix selects transparent gzip decompression.

Vertex-id semantics follow :func:`repro.datasets.core.from_edges`:
duplicates dropped, self-loops kept, malformed or out-of-range ids raise
a structured :class:`~repro.datasets.core.DatasetError` carrying the
line number.  External id spaces (non-contiguous SNAP exports) load with
``remap=True``.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO, Iterator

from .core import DatasetError, GraphDataset, from_edges

__all__ = ["load_edgelist", "save_edgelist"]


def _open_text(path: Path) -> IO[str]:
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, encoding="utf-8")


def _parse_lines(
    lines: Iterator[str], source: str, comment: str
) -> list[tuple[int, int]]:
    edges: list[tuple[int, int]] = []
    for lineno, line in enumerate(lines, start=1):
        text = line.strip()
        if not text or (comment and text.startswith(comment)):
            continue
        parts = text.split()
        if len(parts) != 2:
            raise DatasetError(
                "parse",
                f"expected 'src dst', got {text!r}",
                source=source,
                line=lineno,
            )
        try:
            edges.append((int(parts[0]), int(parts[1])))
        except ValueError:
            raise DatasetError(
                "parse",
                f"non-integer vertex id in {text!r}",
                source=source,
                line=lineno,
            ) from None
    return edges


def load_edgelist(
    path: str | Path,
    *,
    n: int | None = None,
    remap: bool = False,
    comment: str = "#",
    name: str | None = None,
) -> GraphDataset:
    """Load a SNAP-style edge list into a :class:`GraphDataset`.

    ``n`` bounds the id space (ids must be ``< n``); without it the
    vertex count is inferred as ``max id + 1`` (or the distinct-id count
    under ``remap=True``).
    """
    p = Path(path)
    source = str(p)
    try:
        with _open_text(p) as fh:
            pairs = _parse_lines(iter(fh), source, comment)
    except OSError as exc:
        raise DatasetError("io", str(exc), source=source) from None
    ds = from_edges(
        name or p.name.removesuffix(".gz").removesuffix(".txt"),
        pairs,
        n=n,
        remap=remap,
        source=source,
        meta={"format": "edgelist", "lines": len(pairs)},
    )
    return ds


def save_edgelist(ds: GraphDataset, path: str | Path) -> Path:
    """Write a dataset back out in the SNAP tab-separated format."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    opener = gzip.open if p.suffix == ".gz" else open
    with opener(p, "wt", encoding="utf-8") as fh:  # type: ignore[operator]
        fh.write(f"# Directed graph: {ds.name}\n")
        fh.write(f"# Nodes: {ds.n} Edges: {ds.m}\n")
        fh.write("# FromNodeId\tToNodeId\n")
        for src, dst in ds.edges.tolist():
            fh.write(f"{src}\t{dst}\n")
    return p
