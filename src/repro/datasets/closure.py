"""Host-level closure engines over loaded datasets.

This is the scalable end of the closure story: the partitioned-array
simulator executes the paper's systolic schedules exactly (and tops out
around the graph sizes an FPDG can physically be built for), while these
engines compute the same closure relation on 10k+-vertex datasets:

``reference``
    Dense unpacked Warshall (:func:`repro.core.semiring.closure_reference`
    over ``BOOLEAN``) — the oracle, and the "unpacked vector path" the
    F20-BIT benchmark measures against.
``bitpack``
    The bit-packed boolean path.  Dense graphs (``n <= dense_cutoff``)
    run the packed Warshall sweep of
    :func:`repro.core.bitmatrix.closure_words`; larger graphs condense
    strongly-connected components first and union packed reach rows in
    reverse topological order, so the cost scales with the condensation
    DAG instead of ``n^3/64``.
``ssc1`` / ``ssc2`` / ``ssc12``
    The per-source baselines of :mod:`repro.baselines.ssc`.

All engines return the same canonical artefact — reflexive bit-packed
reach rows — so any two results for the same sources compare with
``np.array_equal``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..baselines.ssc import SSC_ALPHA, SSC_BETA, ssc1, ssc2, ssc12
from ..core.bitmatrix import (
    closure_words,
    pack_rows,
    popcount_rows,
    words_per_row,
)
from ..core.semiring import BOOLEAN, closure_reference
from .core import DatasetError, GraphDataset

__all__ = [
    "CLOSURE_ENGINES",
    "DENSE_CUTOFF",
    "ClosureResult",
    "compute_closure",
]

#: Engine names accepted by :func:`compute_closure` (CLI ``--engine``).
CLOSURE_ENGINES: tuple[str, ...] = (
    "bitpack",
    "reference",
    "ssc1",
    "ssc2",
    "ssc12",
)

#: Above this vertex count the ``bitpack`` engine switches from the
#: dense packed Warshall sweep to the SCC-condensation kernel.
DENSE_CUTOFF = 2048


@dataclass(frozen=True)
class ClosureResult:
    """Closure rows for a set of sources, in canonical packed form."""

    engine: str
    kernel: str
    n: int
    #: vertex ids the rows belong to (``arange(n)`` for full closures)
    sources: np.ndarray
    #: ``(len(sources), words_per_row(n))`` reflexive reach rows
    words: np.ndarray

    @property
    def reach_counts(self) -> np.ndarray:
        """Reach-set size per source (popcount of each row)."""
        return popcount_rows(self.words)

    @property
    def closure_edges(self) -> int:
        """Total pairs in the computed rows (incl. the reflexive ones)."""
        return int(self.reach_counts.sum())

    def agrees_with(self, other: "ClosureResult") -> bool:
        """Bit-for-bit agreement on the same source set."""
        return (
            self.n == other.n
            and np.array_equal(self.sources, other.sources)
            and np.array_equal(self.words, other.words)
        )


def _toposort_dag(n_nodes: int, heads: np.ndarray, tails: np.ndarray) -> np.ndarray:
    """Kahn's algorithm over a DAG given as parallel edge arrays."""
    indeg = np.bincount(tails, minlength=n_nodes)
    order = np.argsort(heads, kind="stable")
    heads_s, tails_s = heads[order], tails[order]
    indptr = np.searchsorted(heads_s, np.arange(n_nodes + 1))
    ready = [int(v) for v in np.flatnonzero(indeg == 0)]
    topo = np.empty(n_nodes, dtype=np.int64)
    filled = 0
    while ready:
        u = ready.pop()
        topo[filled] = u
        filled += 1
        for v in tails_s[indptr[u] : indptr[u + 1]].tolist():
            indeg[v] -= 1
            if indeg[v] == 0:
                ready.append(v)
    if filled != n_nodes:  # pragma: no cover - condensations are acyclic
        raise DatasetError("shape", "condensation graph has a cycle")
    return topo


def _closure_scc_packed(ds: GraphDataset) -> np.ndarray:
    """Full reflexive closure via SCC condensation + packed row unions."""
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import connected_components

    n = ds.n
    nw = words_per_row(n)
    if not ds.m:
        words = np.zeros((n, nw), dtype=np.uint64)
        if n:
            idx = np.arange(n)
            words[idx, idx >> 6] |= np.uint64(1) << (idx & 63).astype(np.uint64)
        return words
    src, dst = ds.edges[:, 0], ds.edges[:, 1]
    graph = csr_matrix(
        (np.ones(ds.m, dtype=np.int8), (src, dst)), shape=(n, n)
    )
    ncomp, labels = connected_components(
        graph, directed=True, connection="strong"
    )
    # Membership bitmask of every component, in vertex space.
    members = np.zeros((ncomp, nw), dtype=np.uint64)
    verts = np.arange(n)
    np.bitwise_or.at(
        members,
        (labels, verts >> 6),
        np.uint64(1) << (verts & 63).astype(np.uint64),
    )
    # Condensation DAG (distinct cross-component edges).
    cu, cv = labels[src], labels[dst]
    cross = cu != cv
    if cross.any():
        cedges = np.unique(
            np.stack([cu[cross], cv[cross]], axis=1), axis=0
        )
        topo = _toposort_dag(ncomp, cedges[:, 0], cedges[:, 1])
        order = np.argsort(cedges[:, 0], kind="stable")
        heads, tails = cedges[order, 0], cedges[order, 1]
        indptr = np.searchsorted(heads, np.arange(ncomp + 1))
    else:
        topo = np.arange(ncomp, dtype=np.int64)
        tails = np.empty(0, dtype=np.int64)
        indptr = np.zeros(ncomp + 1, dtype=np.int64)
    reach = members.copy()
    for c in topo[::-1].tolist():
        succ = tails[indptr[c] : indptr[c + 1]]
        if succ.size:
            reach[c] |= np.bitwise_or.reduce(reach[succ], axis=0)
    return reach[labels]


def compute_closure(
    ds: GraphDataset,
    engine: str = "bitpack",
    *,
    sources: Sequence[int] | None = None,
    dense_cutoff: int = DENSE_CUTOFF,
    alpha: float = SSC_ALPHA,
    beta: float = SSC_BETA,
) -> ClosureResult:
    """Compute (reflexive) closure rows of ``ds`` with the named engine.

    ``sources`` restricts the computation to those vertices where the
    engine supports it (the SSC family); full-matrix engines compute
    everything and slice.
    """
    if engine not in CLOSURE_ENGINES:
        raise DatasetError(
            "spec",
            f"unknown closure engine {engine!r}; "
            f"choose from {CLOSURE_ENGINES}",
        )
    src_ids = (
        np.arange(ds.n, dtype=np.int64)
        if sources is None
        else np.asarray(sources, dtype=np.int64)
    )
    if src_ids.size and (src_ids.min() < 0 or src_ids.max() >= ds.n):
        raise DatasetError(
            "vertex-out-of-range", f"closure sources outside [0, {ds.n})"
        )
    kernel = engine
    if engine == "reference":
        full = pack_rows(closure_reference(ds.adjacency(), BOOLEAN))
        words = full if sources is None else full[src_ids]
    elif engine == "bitpack":
        if ds.n <= dense_cutoff:
            kernel = "bitpack-dense"
            full = closure_words(ds.packed_adjacency(diagonal=True), ds.n)
        else:
            kernel = "bitpack-scc"
            full = _closure_scc_packed(ds)
        words = full if sources is None else full[src_ids]
    else:
        fn = {"ssc1": ssc1, "ssc2": ssc2, "ssc12": ssc12}[engine]
        if engine == "ssc12":
            words = ssc12(ds, src_ids, alpha=alpha, beta=beta)
        else:
            words = fn(ds, src_ids)
    return ClosureResult(
        engine=engine, kernel=kernel, n=ds.n, sources=src_ids, words=words
    )
