"""A-POL (ablation): what the G-set issue order actually trades.

Vertical wins host bandwidth (>=2x better than horizontal) but pays ~3x
the memory high-water of a wavefront order; the greedy memory-aware
scheduler lands near the memory optimum.  Throughput is identical
everywhere.  Builder: :func:`repro.experiments.ablations.policy_ablation`.
"""

from repro.experiments.ablations import policy_ablation
from repro.viz import format_table

from _common import save_table


def test_ablation_schedule_policies(benchmark):
    n, m = 16, 4
    rows = benchmark(policy_ablation, n, m)
    by = {r["policy"]: r for r in rows}
    assert max(r["makespan"] for r in rows) - min(r["makespan"] for r in rows) <= m
    assert all(r["violations"] == 0 and r["stalls"] == 0 for r in rows)
    assert (
        by["vertical"]["req_hostBW(preload=nm)"]
        <= by["wavefront"]["req_hostBW(preload=nm)"]
        <= by["horizontal"]["req_hostBW(preload=nm)"]
    )
    assert by["horizontal"]["req_hostBW(preload=nm)"] > 2 * by["vertical"][
        "req_hostBW(preload=nm)"
    ]
    assert by["vertical"]["mem_highwater"] > 2 * by["wavefront"]["mem_highwater"]
    assert by["memory-aware"]["mem_highwater"] <= 1.2 * by["wavefront"]["mem_highwater"]
    save_table(
        "A-POL", "schedule-policy ablation: host bandwidth vs memory capacity",
        format_table(rows),
    )
