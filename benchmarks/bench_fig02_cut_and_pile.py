"""F02 (Fig. 2): cut-and-pile / LPGS — the scheme the paper adopts.

Reproduced claims: zero partitioning overhead (no stalls in the m << n
regime); intermediate results move through external memories; per-cell
storage stays O(1).  Builder:
:func:`repro.experiments.schemes.cut_and_pile_census`.
"""

from repro.experiments.schemes import cut_and_pile_census
from repro.viz import format_table

from _common import save_table


def test_fig02_cut_and_pile(benchmark):
    rows = benchmark(cut_and_pile_census)
    for r in rows:
        assert r["stalls"] == 0  # zero overhead due to partitioning
        assert r["overhead"] == 0
        assert r["external_words"] > 0  # data piles through memory
    save_table("F02", "cut-and-pile (LPGS) execution census", format_table(rows))
