"""F18 (Fig. 18 / Sec. 4.2): the partitioned linear array, cycle-measured.

T = m/(n^2(n+1)) and U = (n-1)(n-2)/(n(n+1)) exactly when m | n+1; zero
stalls; m+1 memory ports; the computed matrix equals the software
closure.  Builder: :func:`repro.experiments.arrays.linear_sweep`.

The companion ``F18-VEC`` table times the same design at n=24 on both
simulator backends: the compiled vector replay must be at least 5x
faster than the reference interpreter while staying bit-identical.
"""

from repro.experiments.arrays import backend_timing, linear_sweep
from repro.viz import format_table

from _common import save_table


def test_fig18_linear_partitioned(benchmark):
    rows = benchmark(linear_sweep)
    for r in rows:
        assert r["closure_ok"] and r["violations"] == 0
        assert r["stalls"] == 0
        assert r["mem_ports"] == r["m"] + 1
        if (r["n"] + 1) % r["m"] == 0:  # paper's divisibility assumption
            assert r["T_measured"] == r["T_paper"]
            assert abs(r["U_measured"] - r["U_paper"]) < 1e-12
    largest = rows[-1]
    save_table(
        "F18", "linear partitioned array: measured vs Sec. 4.2 formulas",
        format_table(rows), rows=rows, n=largest["n"], m=largest["m"],
        perf_metrics={
            "stall_cycles_total": sum(r["stalls"] for r in rows),
            "violations_total": sum(r["violations"] for r in rows),
        },
    )


def test_fig18_vector_backend_speedup():
    rows = backend_timing(configs=((24, 4, "linear"),))
    r = rows[0]
    assert r["identical"], "vector replay diverged from the reference"
    assert r["speedup"] >= 5.0, rows
    save_table(
        "F18-VEC",
        "linear array at n=24: reference interpreter vs vector replay",
        format_table(rows), rows=rows, n=24, m=4,
        perf_metrics={
            "wall_reference_sim_s": r["wall_reference_s"],
            "wall_vector_replay_s": r["wall_vector_s"],
            "wall_vector_compile_s": r["wall_compile_s"],
            "wall_speedup_factor": r["speedup"],
        },
    )
