"""Benchmark-harness pytest hooks.

Adds ``--bench-quiet`` (short: ``-Q`` is taken by pytest, so spell it
out) which silences the stderr table echo in :mod:`_common` — CI perf
runs keep their timing output clean while the artefacts under
``benchmarks/out/`` are still written.  Locally, echoing stays the
default; ``REPRO_BENCH_QUIET=1`` in the environment works too (useful
outside pytest).
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--bench-quiet",
        action="store_true",
        default=False,
        help="suppress the benchmark table echo on stderr "
             "(tables are still saved under benchmarks/out/)",
    )


def pytest_configure(config: pytest.Config) -> None:
    if config.getoption("--bench-quiet"):
        import _common

        _common.set_quiet(True)


@pytest.fixture(autouse=True, scope="session")
def _bench_run_ledger():
    """One run-ledger scope around the whole harness session.

    Every ``history.jsonl`` record a benchmark appends carries this
    run's ID (see :func:`repro.obs.perf.make_record`), so a perfcheck
    regression links back to the ledger of the harness run that
    produced it.
    """
    from repro.obs import runlog

    with runlog.run_scope("bench-harness", {"suite": "benchmarks"}):
        yield
