"""T-FT (Sec. 5): fault tolerance — linear arrays degrade gracefully.

A bypassed cell leaves an (m-1)-cell chain; a mesh fault retires a whole
row.  Builder: :func:`repro.experiments.tradeoffs.fault_sweep`.
"""

from repro.experiments.tradeoffs import fault_sweep
from repro.viz import format_table

from _common import save_table


def test_fault_tolerance_linear_vs_mesh(benchmark):
    rows = benchmark(fault_sweep)
    by_cfg = {}
    for r in rows:
        by_cfg.setdefault((r["n"], r["m"], r["failures"]), {})[r["geometry"]] = r
    for cfg, pair in by_cfg.items():
        assert pair["linear"]["cells_lost"] < pair["mesh"]["cells_lost"]
        assert (
            pair["linear"]["throughput_retention"]
            > pair["mesh"]["throughput_retention"]
        )
    save_table("T-FT", "throughput retention under cell failures", format_table(rows))
