"""F12/F15 (Figs. 12-16): the transformation pipeline, stage by stage.

Per stage: pipelining kills the O(n) fan-out (Fig. 12) but flow is
bi-directional; the flips make it uni-directional (Fig. 14); the delay
column collapses the stencil variety and makes the diagonal grouping
nearest-neighbour (Fig. 16).  Every stage still computes the closure.
Builder: :func:`repro.experiments.pipeline.stage_census`.
"""

from repro.algorithms.transitive_closure import tc_regular
from repro.core.ggraph import GGraph, group_by_columns
from repro.experiments.pipeline import stage_census
from repro.viz import format_table

from _common import N_DEFAULT, save_table


def test_fig12_16_transformation_pipeline(benchmark):
    rows = benchmark(stage_census, N_DEFAULT)
    by = {r["stage"]: r for r in rows}
    assert all(r["closure_ok"] for r in rows)
    assert by["full"]["max_fanout"] >= N_DEFAULT
    assert by["pipelined"]["max_fanout"] <= 5
    assert not by["pipelined"]["unidirectional"]
    assert by["unidirectional"]["unidirectional"]
    assert by["regular"]["unidirectional"]
    assert by["regular"]["stencils"] < by["unidirectional"]["stencils"]
    assert GGraph(tc_regular(N_DEFAULT), group_by_columns).is_nearest_neighbour()
    save_table("F12-F16", "transformation pipeline property census",
               format_table(rows), rows=rows, n=N_DEFAULT)
