"""F04 (Fig. 4): the graph rewrites remove broadcasts and add delays.

Reproduced claims: broadcast -> pipeline (Fig. 4a) drops the maximum
fan-out from O(n) to 1 while preserving the computed function.  Builder:
:func:`repro.experiments.pipeline.transform_census`.
"""

from repro.experiments.pipeline import transform_census
from repro.viz import format_table

from _common import save_table


def test_fig04_transform_rewrites(benchmark):
    rows = benchmark(transform_census, (4, 6, 8, 10))
    for r in rows:
        assert r["semantics_preserved"]
        assert r["fanout_pipelined"] == 1
        assert r["fanout_before"] >= 2 * r["n"] - 3  # O(n) broadcast fan-out
    save_table("F04", "broadcast removal: max fan-out O(n) -> 1", format_table(rows))
