"""F17 (Fig. 17): the fixed-size arrays derived from the G-graph.

Ours: throughput 1/n, transfers overlapped, no external memory; Kung's
[23]: initiation 2n with n^2 pure-load cycles; the linear collapse:
throughput 1/(n(n+1)) fully utilized.  Builder:
:func:`repro.experiments.arrays.fixed_array_census`.
"""

from repro.experiments.arrays import fixed_array_census
from repro.viz import format_table

from _common import save_table


def test_fig17_fixed_size_arrays(benchmark):
    rows = benchmark(fixed_array_census, (5, 8, 11))
    for r in rows:
        assert r["ours_ok"] and r["kung_ok"] and r["linear_ok"]
        assert r["ours_II"] == r["n"]  # throughput 1/n
        assert r["kung_II"] == 2 * r["n"]  # load not overlapped: half speed
        assert r["ours_mem_words"] == 0  # single path, no parking
        assert r["linear_II"] == r["n(n+1)"]  # throughput 1/(n(n+1))
    save_table(
        "F17", "fixed-size arrays: ours vs Kung [23]; linear collapse",
        format_table(rows),
    )
