"""F20-BIT: bit-packed boolean closure vs the unpacked Warshall oracle.

The uint64 bit-packing trick (64 columns per word-op, the SSC2
``bitarray`` idea) turns the rank-1 boolean update into ``n`` masked
row-unions.  This benchmark sweeps seeded Kronecker graphs, checks
bit-for-bit agreement per row, and gates on the headline claim: at
``n >= 1024`` the packed kernel wins by at least 5x.  DS-AGREE rides
along: every closure engine against the dense reference.
"""

from __future__ import annotations

from repro.core.bitmatrix import closure_words, pack_rows
from repro.experiments.datasets import bitpack_speedup, engine_agreement
from repro.datasets import kronecker
from repro.viz import format_table

from _common import save_table

#: The CI gate: minimum packed-over-unpacked speedup at n >= 1024.
GATE_N = 1024
GATE_SPEEDUP = 5.0


def test_bitpack_speedup(benchmark):
    rows = bitpack_speedup()
    assert all(r["agree"] for r in rows), rows
    gated = [r for r in rows if r["n"] >= GATE_N]
    assert gated, "sweep must include at least one gated size"
    for r in gated:
        assert r["speedup"] >= GATE_SPEEDUP, r

    # Regression-time the packed kernel itself at the largest size.
    ds = kronecker(max(r["n"] for r in rows).bit_length() - 1, 8, seed=0)
    words = pack_rows(ds.adjacency(diagonal=True))
    benchmark(closure_words, words, ds.n)

    save_table(
        "F20-BIT", "bit-packed boolean closure vs unpacked Warshall",
        format_table(rows), rows=rows,
        perf_metrics={
            "bitpack_speedup_n1024": next(
                r["speedup"] for r in rows if r["n"] == GATE_N
            ),
            "bitpack_t_s": rows[-1]["t_bitpack_s"],
        },
    )


def test_engine_agreement(benchmark):
    rows = benchmark.pedantic(engine_agreement, rounds=1, iterations=1)
    assert all(r["agree"] for r in rows), rows
    engines = {r["engine"] for r in rows}
    assert engines == {"bitpack", "ssc1", "ssc2", "ssc12"}
    save_table(
        "DS-AGREE", "closure-engine agreement on Kronecker graphs",
        format_table(rows), rows=rows,
    )
