"""F10/F11 (Figs. 10/11): FPDG size and superfluous-node pruning.

n^3 op nodes with O(n) fan-out; exactly n(n-1)(n-2) = n^3 - 3n^2 + 2n
computations remain after pruning.  Builder:
:func:`repro.experiments.pipeline.count_census`.
"""

from repro.experiments.pipeline import count_census
from repro.viz import format_table

from _common import save_table


def test_fig10_11_node_counts(benchmark):
    rows = benchmark(count_census, (4, 6, 8, 10, 12))
    for r in rows:
        assert r["full_ops"] == r["n^3"]
        assert r["pruned_ops"] == r["n(n-1)(n-2)"]
        assert r["superfluous"] == 3 * r["n"] ** 2 - 2 * r["n"]
        assert r["max_fanout"] >= r["n"]  # broadcasting is O(n)
    save_table("F10-F11", "FPDG size and superfluous-node pruning", format_table(rows))
