"""F20 (Fig. 20): G-set scheduling by vertical paths.

All policies produce legal pipelined orders with zero stalls; ASAP tags
increase along G-rows and G-columns exactly as the figure draws them.
Builder: :func:`repro.experiments.arrays.schedule_census`.
"""

from repro.algorithms.transitive_closure import tc_regular
from repro.core.ggraph import GGraph, group_by_columns
from repro.core.gsets import make_linear_gsets, schedule_gsets
from repro.experiments.arrays import schedule_census
from repro.viz import format_table, render_schedule

from _common import M_DEFAULT, N_DEFAULT, save_table


def test_fig20_scheduling(benchmark):
    rows = benchmark(schedule_census, N_DEFAULT, M_DEFAULT)
    for r in rows:
        assert r["violations"] == 0 and r["stalls"] == 0
    gg = GGraph(tc_regular(N_DEFAULT), group_by_columns)
    asap = gg.asap_times()
    for (k, c), t in asap.items():
        if (k, c + 1) in asap:
            assert asap[(k, c + 1)] > t
        if (k + 1, c - 1) in asap:
            assert asap[(k + 1, c - 1)] > t
    plan = make_linear_gsets(gg, M_DEFAULT)
    vertical = schedule_gsets(plan, "vertical")
    body = format_table(rows) + "\n\nvertical-path order:\n" + render_schedule(
        vertical[:24]
    )
    save_table("F20", "G-set scheduling policies (all legal, zero stalls)", body)
