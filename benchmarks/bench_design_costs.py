"""A-COST: structural cost of every array design, side by side.

The fixed array needs n(n+1)/m times the cells of the partitioned
designs (the motivation for partitioning); linear wiring is the
sparsest.  Builder: :func:`repro.experiments.ablations.cost_census`.
"""

from repro.experiments.ablations import cost_census
from repro.viz import format_table

from _common import save_table


def test_design_cost_comparison(benchmark):
    n, m = 16, 4
    rows = benchmark(cost_census, n, m)
    lin, mesh, fixed = rows
    assert fixed["cells"] == n * (n + 1)
    assert fixed["cells"] / lin["cells"] == n * (n + 1) / m
    assert lin["links"] < mesh["links"] < fixed["links"]
    assert fixed["mem_ports"] == 0
    assert lin["mem_ports"] == m + 1 and mesh["mem_ports"] == 2 * int(m**0.5)
    save_table("A-COST", "structural cost per design", format_table(rows))
