"""A-EXT (extension): one array design, a family of path problems.

The identical partitioned linear array computes reachability, shortest
paths and bottleneck paths by swapping the semiring; the non-idempotent
counting semiring is correctly rejected by the pruning precondition.
Builder: :func:`repro.experiments.ablations.semiring_sweep`.
"""

from repro.experiments.ablations import semiring_sweep
from repro.viz import format_table

from _common import save_table


def test_extension_semiring_family(benchmark):
    rows = benchmark(semiring_sweep, 10, 4)
    for r in rows[:3]:
        assert r["correct"] is True
        assert r["pruning_sound"]
        assert r["violations"] == 0
    assert rows[3]["pruning_sound"] is False
    save_table("A-EXT", "one array, three path problems (semiring swap)", format_table(rows))
