"""A-ALN (ablation): skew-aligned vs packed linear G-set blocks.

Packed blocks win throughput (exact Sec. 4.2 when m | n+1); aligned
blocks win host bandwidth (the paper's m/n scheme); the utilization gap
closes as m/n -> 0.  Builder:
:func:`repro.experiments.ablations.alignment_ablation`.
"""

from repro.experiments.ablations import alignment_ablation
from repro.viz import format_table

from _common import save_table


def test_ablation_block_alignment(benchmark):
    rows = benchmark(alignment_ablation, [(11, 4), (15, 4), (19, 4)])
    pairs = {}
    for r in rows:
        pairs.setdefault((r["n"], r["m"]), {})[r["blocks"]] = r
    for (n, m), pair in pairs.items():
        aligned, packed = pair["aligned"], pair["packed"]
        assert packed["total_time"] == n * n * (n + 1) // m
        assert packed["total_time"] <= aligned["total_time"]
        assert aligned["req_hostBW"] < packed["req_hostBW"]
    gaps = [
        pairs[key]["aligned"]["U"] / pairs[key]["packed"]["U"] for key in sorted(pairs)
    ]
    assert gaps == sorted(gaps)  # ratio -> 1 with growing n
    save_table("A-ALN", "aligned vs packed linear blocks", format_table(rows))
