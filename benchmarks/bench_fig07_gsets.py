"""F07 (Figs. 7/8/9): G-set mapping; per-set uniformity suffices.

Fig. 8's point measured: every linear G-set is internally uniform even on
LU's globally non-uniform G-graph; Fig. 9: many more G-nodes than cells.
Builder: :func:`repro.experiments.pipeline.gset_census`.
"""

from repro.experiments.pipeline import gset_census
from repro.viz import format_table

from _common import M_DEFAULT, N_DEFAULT, save_table


def test_fig07_gset_mapping(benchmark):
    rows = benchmark(gset_census, N_DEFAULT, M_DEFAULT)
    for r in rows:
        assert r["gnodes"] > 5 * r["cells"]  # Fig. 9
        assert r["uniform_gsets"] == r["gsets"]  # Fig. 8
    assert not rows[1]["globally_uniform"]  # ... even on LU
    save_table("F07", "G-set selection: per-set uniformity suffices", format_table(rows))
