"""F19 (Fig. 19 / Sec. 4.2): the partitioned two-dimensional array.

Same throughput class as the linear array (the triangular boundary sets
of Fig. 19a cost 7-13%), 2*sqrt(m) memory connections, zero stalls,
correct closures.  Builder: :func:`repro.experiments.arrays.mesh_sweep`.
"""

from repro.experiments.arrays import mesh_sweep
from repro.viz import format_table

from _common import save_table


def test_fig19_mesh_partitioned(benchmark):
    rows = benchmark(mesh_sweep)
    for r in rows:
        assert r["closure_ok"]
        assert r["stalls"] == 0
        side = int(r["m"] ** 0.5)
        assert r["mem_ports"] == 2 * side
        assert 0.6 < r["T_ratio"] <= 1.0
        assert r["boundary_sets"] > 0  # Fig. 19a's triangular sets exist
    save_table("F19", "2-D partitioned array: measured vs Sec. 4.2", format_table(rows))
