"""F19 (Fig. 19 / Sec. 4.2): the partitioned two-dimensional array.

Same throughput class as the linear array (the triangular boundary sets
of Fig. 19a cost 7-13%), 2*sqrt(m) memory connections, zero stalls,
correct closures.  Builder: :func:`repro.experiments.arrays.mesh_sweep`.

The companion ``F19-VEC`` table times a 4x4 mesh at n=24 on both
simulator backends: the compiled vector replay must be at least 5x
faster than the reference interpreter while staying bit-identical.
"""

from repro.experiments.arrays import backend_timing, mesh_sweep
from repro.viz import format_table

from _common import save_table


def test_fig19_mesh_partitioned(benchmark):
    rows = benchmark(mesh_sweep)
    for r in rows:
        assert r["closure_ok"]
        assert r["stalls"] == 0
        side = int(r["m"] ** 0.5)
        assert r["mem_ports"] == 2 * side
        assert 0.6 < r["T_ratio"] <= 1.0
        assert r["boundary_sets"] > 0  # Fig. 19a's triangular sets exist
    save_table("F19", "2-D partitioned array: measured vs Sec. 4.2", format_table(rows))


def test_fig19_vector_backend_speedup():
    rows = backend_timing(configs=((24, 16, "mesh"),))
    r = rows[0]
    assert r["identical"], "vector replay diverged from the reference"
    assert r["speedup"] >= 5.0, rows
    save_table(
        "F19-VEC",
        "4x4 mesh at n=24: reference interpreter vs vector replay",
        format_table(rows), rows=rows, n=24, m=16,
        perf_metrics={
            "wall_reference_sim_s": r["wall_reference_s"],
            "wall_vector_replay_s": r["wall_vector_s"],
            "wall_vector_compile_s": r["wall_compile_s"],
            "wall_speedup_factor": r["speedup"],
        },
    )
