"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment from DESIGN.md's index: it
builds the paper artefact (graph / array / schedule), checks the *shape*
claims (who wins, by what factor), prints the reproduction table, and
saves it under ``benchmarks/out/<exp_id>.txt`` so EXPERIMENTS.md can refer
to concrete artefacts.  The ``benchmark`` fixture times the dominant
computation so ``pytest benchmarks/ --benchmark-only`` doubles as a
performance regression harness for the library itself.

Tables are additionally routed through a :class:`repro.obs.MetricsRegistry`
(:data:`REGISTRY`), so every experiment also lands as machine-readable
``benchmarks/out/<exp_id>.json`` — experiment id, title, structured rows
when the caller passes them, and the registry snapshot of the run.  Every
JSON artefact carries a schema ``version`` field
(:data:`repro.obs.perf.SCHEMA_VERSION`).

On top of that, :func:`save_table` feeds the **benchmark history store**
(:mod:`repro.obs.perf`): each experiment appends one record — wall time,
problem size, git commit, caller-supplied perf metrics — to
``benchmarks/out/history.jsonl`` and rolls the trajectory up into the
repo-root ``BENCH_PERF.json``.  ``python -m repro perfcheck`` gates on
those records; ``python -m repro dashboard`` charts them.

Quiet mode: set ``REPRO_BENCH_QUIET=1`` (or pass ``--bench-quiet`` to
pytest, see ``benchmarks/conftest.py``) to suppress the table echo on
stderr — CI perf runs keep their timing output clean; echoing stays the
default locally.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Mapping, Sequence

from repro.obs import MetricsRegistry
from repro.obs import perf
from repro.obs import runlog

OUT_DIR = Path(__file__).parent / "out"

#: Benchmark history (JSONL, append-only) and the repo-root trajectory
#: roll-up every run refreshes.
HISTORY_PATH = OUT_DIR / "history.jsonl"
TRAJECTORY_PATH = Path(__file__).parent.parent / "BENCH_PERF.json"

# Default problem sizes: large enough for the asymptotic claims to show,
# small enough that the whole harness runs in a couple of minutes.
N_DEFAULT = 12
M_DEFAULT = 4

#: One registry per harness run; every saved table is counted and sized
#: here, and each ``<exp_id>.json`` embeds the snapshot taken at save time.
REGISTRY = MetricsRegistry()

#: When true, :func:`save_table` skips the stderr echo (tables are still
#: written to ``benchmarks/out/``).  Seeded from the environment so the
#: flag works under plain ``python bench_x.py`` too; ``--bench-quiet``
#: flips it via :func:`set_quiet`.
QUIET = os.environ.get("REPRO_BENCH_QUIET", "").lower() in ("1", "true", "yes")

_COMMIT = perf.current_commit(Path(__file__).parent)
_LAST_SAVE_T = time.perf_counter()


def set_quiet(flag: bool) -> None:
    """Enable/disable the stderr table echo (used by ``--bench-quiet``)."""
    global QUIET
    QUIET = bool(flag)


def record_run(
    exp_id: str,
    title: str = "",
    wall_time_s: float | None = None,
    n: int | None = None,
    m: int | None = None,
    perf_metrics: Mapping[str, float] | None = None,
) -> dict:
    """Append one experiment's perf record to the history store.

    The record's metrics are the experiment's wall time, any registry
    series labelled with this ``exp_id`` (table bytes/rows), and the
    caller's ``perf_metrics`` (simulated cycles, memory traffic, host
    bandwidth, ...).  Also refreshes the ``BENCH_PERF.json`` trajectory
    at the repo root.  Returns the record.
    """
    metrics: dict[str, float] = {}
    if wall_time_s is not None:
        metrics["wall_time_s"] = round(wall_time_s, 6)
    for metric in REGISTRY:
        for series in metric.to_json()["series"]:
            if series["labels"].get("exp") == exp_id:
                value = series.get("value", series.get("sum", 0))
                metrics[metric.name] = float(value)
    if perf_metrics:
        metrics.update(
            {k: float(v) for k, v in perf_metrics.items()}
        )
    record = perf.make_record(
        exp_id, metrics, title=title, n=n, m=m, commit=_COMMIT,
        run_id=runlog.current_run_id(),
    )
    perf.append_history(HISTORY_PATH, record)
    perf.write_trajectory(TRAJECTORY_PATH, perf.load_history(HISTORY_PATH))
    return record


def _infer_dim(rows: Sequence[Mapping], key: str) -> int | None:
    """Largest numeric ``rows[*][key]`` — the problem size the run peaked at."""
    vals = [
        r[key]
        for r in rows
        if isinstance(r.get(key), (int, float)) and not isinstance(r.get(key), bool)
    ]
    return int(max(vals)) if vals else None


def save_table(
    exp_id: str,
    title: str,
    body: str,
    rows: Sequence[Mapping] | None = None,
    n: int | None = None,
    m: int | None = None,
    perf_metrics: Mapping[str, float] | None = None,
) -> str:
    """Persist one experiment's table; echo it to stdout; return the text.

    Always writes both ``<exp_id>.txt`` (human-readable) and
    ``<exp_id>.json`` (machine-readable, schema-versioned) — with or
    without ``rows``.  Pass ``rows`` — the list of dicts most benchmarks
    already format — to make the JSON carry the actual data, not just
    the rendered text; pass ``n``/``m``/``perf_metrics`` to enrich the
    history record (see :func:`record_run`).  When ``n``/``m`` are not
    given they are inferred from the rows' own ``"n"``/``"m"`` columns
    (largest value), so history records carry dimensions whenever the
    table knows them.
    """
    global _LAST_SAVE_T
    if rows:
        # History records must always carry dimensions when they are
        # knowable: benchmarks that format per-size rows but never pass
        # n/m explicitly (A-ALN and friends) used to land as
        # ``"n": null`` and break sweep plots downstream.
        n = _infer_dim(rows, "n") if n is None else n
        m = _infer_dim(rows, "m") if m is None else m
    OUT_DIR.mkdir(exist_ok=True)
    text = f"== {exp_id}: {title} ==\n{body}\n"
    (OUT_DIR / f"{exp_id}.txt").write_text(text)

    REGISTRY.counter(
        "repro_benchmark_tables_total", "tables saved by the harness"
    ).inc()
    REGISTRY.gauge(
        "repro_benchmark_table_bytes", "rendered size of each table"
    ).set(len(text), exp=exp_id)
    if rows is not None:
        REGISTRY.gauge(
            "repro_benchmark_table_rows", "structured rows of each table"
        ).set(len(rows), exp=exp_id)
    payload = {
        "version": perf.SCHEMA_VERSION,
        "exp_id": exp_id,
        "title": title,
        "rows": [dict(r) for r in rows] if rows is not None else None,
        "body": body,
        "metrics": REGISTRY.to_json(),
    }
    (OUT_DIR / f"{exp_id}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=repr)
    )

    now = time.perf_counter()
    wall = now - _LAST_SAVE_T
    _LAST_SAVE_T = now
    record_run(
        exp_id, title=title, wall_time_s=wall, n=n, m=m,
        perf_metrics=perf_metrics,
    )

    if not QUIET:
        print(f"\n{text}", file=sys.stderr)
    return text
