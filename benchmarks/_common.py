"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment from DESIGN.md's index: it
builds the paper artefact (graph / array / schedule), checks the *shape*
claims (who wins, by what factor), prints the reproduction table, and
saves it under ``benchmarks/out/<exp_id>.txt`` so EXPERIMENTS.md can refer
to concrete artefacts.  The ``benchmark`` fixture times the dominant
computation so ``pytest benchmarks/ --benchmark-only`` doubles as a
performance regression harness for the library itself.
"""

from __future__ import annotations

import sys
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"

# Default problem sizes: large enough for the asymptotic claims to show,
# small enough that the whole harness runs in a couple of minutes.
N_DEFAULT = 12
M_DEFAULT = 4


def save_table(exp_id: str, title: str, body: str) -> str:
    """Persist one experiment's table; echo it to stdout; return the text."""
    OUT_DIR.mkdir(exist_ok=True)
    text = f"== {exp_id}: {title} ==\n{body}\n"
    (OUT_DIR / f"{exp_id}.txt").write_text(text)
    print(f"\n{text}", file=sys.stderr)
    return text
