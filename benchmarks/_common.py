"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment from DESIGN.md's index: it
builds the paper artefact (graph / array / schedule), checks the *shape*
claims (who wins, by what factor), prints the reproduction table, and
saves it under ``benchmarks/out/<exp_id>.txt`` so EXPERIMENTS.md can refer
to concrete artefacts.  The ``benchmark`` fixture times the dominant
computation so ``pytest benchmarks/ --benchmark-only`` doubles as a
performance regression harness for the library itself.

Tables are additionally routed through a :class:`repro.obs.MetricsRegistry`
(:data:`REGISTRY`), so every experiment also lands as machine-readable
``benchmarks/out/<exp_id>.json`` — experiment id, title, structured rows
when the caller passes them, and the registry snapshot of the run.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Mapping, Sequence

from repro.obs import MetricsRegistry

OUT_DIR = Path(__file__).parent / "out"

# Default problem sizes: large enough for the asymptotic claims to show,
# small enough that the whole harness runs in a couple of minutes.
N_DEFAULT = 12
M_DEFAULT = 4

#: One registry per harness run; every saved table is counted and sized
#: here, and each ``<exp_id>.json`` embeds the snapshot taken at save time.
REGISTRY = MetricsRegistry()


def save_table(
    exp_id: str,
    title: str,
    body: str,
    rows: Sequence[Mapping] | None = None,
) -> str:
    """Persist one experiment's table; echo it to stdout; return the text.

    Writes ``<exp_id>.txt`` (human-readable, as always) and
    ``<exp_id>.json`` (machine-readable).  Pass ``rows`` — the list of
    dicts most benchmarks already format — to make the JSON carry the
    actual data, not just the rendered text.
    """
    OUT_DIR.mkdir(exist_ok=True)
    text = f"== {exp_id}: {title} ==\n{body}\n"
    (OUT_DIR / f"{exp_id}.txt").write_text(text)

    REGISTRY.counter(
        "repro_benchmark_tables_total", "tables saved by the harness"
    ).inc()
    REGISTRY.gauge(
        "repro_benchmark_table_bytes", "rendered size of each table"
    ).set(len(text), exp=exp_id)
    if rows is not None:
        REGISTRY.gauge(
            "repro_benchmark_table_rows", "structured rows of each table"
        ).set(len(rows), exp=exp_id)
    payload = {
        "exp_id": exp_id,
        "title": title,
        "rows": [dict(r) for r in rows] if rows is not None else None,
        "body": body,
        "metrics": REGISTRY.to_json(),
    }
    (OUT_DIR / f"{exp_id}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=repr)
    )

    print(f"\n{text}", file=sys.stderr)
    return text
