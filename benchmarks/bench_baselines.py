"""T-BASE: comparison against the Núñez-Torralba block partitioning [22].

(n/s)^3 chained kernels with per-kernel control versus one steady
cut-and-pile schedule; ~2.6x slower at equal cell count; both correct.
Builder: :func:`repro.experiments.tradeoffs.baseline_sweep`.
"""

from repro.experiments.tradeoffs import baseline_sweep
from repro.viz import format_table

from _common import save_table


def test_baseline_nunez_torralba(benchmark):
    rows = benchmark(baseline_sweep)
    for r in rows:
        q = -(-r["n"] // int(r["cells"] ** 0.5))
        assert r["NT_kernels"] == q**3
        assert r["NT_control_steps"] > 1
        assert r["speedup"] > 1.0
    save_table(
        "T-BASE", "vs Núñez-Torralba block partitioning (same cell count)",
        format_table(rows),
    )
