"""F01 (Fig. 1): coalescing / LSGP and its local-storage cost.

Paper claim: coalescing is simple "but requires local storage within each
cell [that] might be large (O(n) or O(n^2))".  Coalescing the transitive-
closure G-graph onto m cells shows the per-cell live-value high-water
mark growing ~ n^2/m words, while cut-and-pile needs only external
memory.  Builder: :func:`repro.experiments.schemes.coalescing_storage`.
"""

from repro.experiments.schemes import coalescing_storage
from repro.viz import format_table

from _common import save_table

NS = (6, 9, 12, 15)


def test_fig01_coalescing_storage(benchmark):
    rows = benchmark(coalescing_storage, NS, 4)
    storages = [r["lsgp_storage_per_cell"] for r in rows]
    assert storages == sorted(storages)
    assert storages[-1] > storages[0] * (NS[-1] / NS[0])  # super-linear
    for r in rows:
        assert 0.2 * r["n^2/m"] <= r["lsgp_storage_per_cell"] <= 5 * r["n^2/m"]
    save_table(
        "F01",
        "coalescing (LSGP) per-cell storage vs cut-and-pile (LPGS)",
        format_table(rows),
    )
