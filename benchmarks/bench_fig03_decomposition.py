"""F03 (Fig. 3): decomposition into band sub-algorithms (Navarro et al.).

Reproduced claims: a dense product becomes ceil(n/w) band passes; the
accumulating result is re-read and re-written every pass (the scheme's
signature external traffic).  Builder:
:func:`repro.experiments.schemes.band_decomposition`.
"""

from repro.experiments.schemes import band_decomposition
from repro.viz import format_table

from _common import save_table


def test_fig03_band_decomposition(benchmark):
    n = 24
    rows = benchmark(band_decomposition, n, (2, 4, 8, 12, 24))
    passes = [r["passes"] for r in rows]
    assert passes == sorted(passes, reverse=True)
    assert rows[-1]["passes"] == 1
    assert rows[-1]["C_traffic_words"] == n * n
    assert rows[0]["C_traffic_words"] > 10 * n * n
    save_table("F03", "band decomposition of dense matmul", format_table(rows))
