"""F21 (Fig. 21): host I/O bandwidth and the R-block decoupling chain.

Aggregate demand ~ m/(n+1) <= m/n; a chain fed at exactly m/n words/cycle
meets every delivery deadline with a modest preload and per-column R
memory.  Builder: :func:`repro.experiments.arrays.io_census`.
"""

from repro.experiments.arrays import io_census
from repro.viz import format_table

from _common import save_table


def test_fig21_io_bandwidth(benchmark):
    rows = benchmark(io_census)
    for r in rows:
        assert r["chain@m/n_ok"]  # a host at m/n words/cycle suffices
        assert r["avg_D_IO"] <= r["paper_m/n"]
        assert r["avg_D_IO"] > 0.5 * r["paper_m/n"]
        assert r["words"] == r["n"] ** 2
    largest = rows[-1]
    save_table("F21", "host bandwidth m/n with the R-block chain",
               format_table(rows), rows=rows,
               n=largest["n"], m=largest["m"],
               perf_metrics={
                   "input_words_total": sum(r["words"] for r in rows),
                   "max_avg_d_io": max(r["avg_D_IO"] for r in rows),
                   "max_r_memory_words": max(r["max_R_memory"] for r in rows),
               })
