"""A-PERF: performance of the software oracles themselves.

The harness leans on the Warshall references for every cross-check, so
their speed bounds the sizes the reproduction can sweep.  Following the
scientific-python optimization guidance (measure, then vectorise), the
rank-1-update formulation `warshall_vectorized` replaces the scalar
triple loop's O(n^3) Python iterations with n numpy outer products — a
two-orders-of-magnitude speedup that the benchmark tracks as a
regression guard.
"""

from __future__ import annotations

import time

import numpy as np

from repro.algorithms.warshall import (
    random_adjacency,
    warshall,
    warshall_vectorized,
)
from repro.viz import format_table

from _common import save_table


def compare_references(n):
    a = random_adjacency(n, 0.3, seed=0)
    t0 = time.perf_counter()
    plain = warshall(a)
    t_plain = time.perf_counter() - t0
    t0 = time.perf_counter()
    vec = warshall_vectorized(a)
    t_vec = time.perf_counter() - t0
    assert np.array_equal(plain, vec)
    return {
        "n": n,
        "scalar_ms": round(t_plain * 1e3, 2),
        "vectorized_ms": round(t_vec * 1e3, 3),
        "speedup": round(t_plain / max(t_vec, 1e-9), 1),
    }


def test_reference_vectorization(benchmark):
    rows = [compare_references(n) for n in (32, 64, 128)]
    # Time the vectorised oracle at the largest size (regression guard).
    a = random_adjacency(128, 0.3, seed=0)
    benchmark(warshall_vectorized, a)
    # The vectorised form must win by a wide, growing margin.
    speedups = [r["speedup"] for r in rows]
    assert speedups[-1] > 10
    assert speedups == sorted(speedups)
    save_table(
        "A-PERF", "software-oracle vectorization (guide-driven)",
        format_table(rows), rows=rows, n=rows[-1]["n"],
        perf_metrics={"oracle_vectorized_ms": rows[-1]["vectorized_ms"]},
    )
