"""A-GRP (ablation, Fig. 9): few complex G-nodes vs many simple ones.

Coarser G-nodes cut cross-set memory traffic and scheduling freedom
monotonically; the paper's diagonal-path (column) grouping is the
total-time optimum.  Builder:
:func:`repro.experiments.ablations.grouping_ablation`.
"""

from repro.experiments.ablations import grouping_ablation
from repro.viz import format_table

from _common import save_table


def test_ablation_grouping_granularity(benchmark):
    rows = benchmark(grouping_ablation, 12, 4)
    gnodes = [r["gnodes"] for r in rows]
    mems = [r["mem_words"] for r in rows]
    assert gnodes == sorted(gnodes, reverse=True)  # fine -> coarse
    assert mems == sorted(mems, reverse=True)
    assert rows[-1]["gnodes/cell"] < rows[0]["gnodes/cell"]
    columns = next(r for r in rows if "paper" in r["grouping"])
    assert columns["total_time"] == min(r["total_time"] for r in rows)
    save_table("A-GRP", "G-node granularity ablation (Fig. 9 trade-off)", format_table(rows))
