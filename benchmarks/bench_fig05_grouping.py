"""F05 (Figs. 5/6): grouping alternatives and their G-graph properties.

The diagonal-path (column) grouping gives nearest-neighbour G-edges with
one communication path and uniform times (the Fig. 17 winner); rows leave
long wrap edges; cyclic anti-diagonal classes are rejected outright.
Builder: :func:`repro.experiments.pipeline.grouping_census`.
"""

from repro.experiments.pipeline import grouping_census
from repro.viz import format_table

from _common import N_DEFAULT, save_table


def test_fig05_grouping_alternatives(benchmark):
    rows = benchmark(grouping_census, N_DEFAULT)
    by_name = {r["grouping"]: r for r in rows}
    winner = by_name["diagonal-paths (cols)"]
    assert winner["uniform_time"] and winner["nearest_neighbour"]
    assert winner["distinct_edge_dirs"] == 2  # right + down-left only
    assert not by_name["horizontal-paths (rows)"]["nearest_neighbour"]
    assert by_name["cyclic anti-diagonals"]["max_time"].startswith("REJECTED")
    save_table("F05", "grouping alternatives (Fig. 6)", format_table(rows))
