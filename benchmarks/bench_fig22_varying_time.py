"""F22 (Fig. 22 / Sec. 4.3): G-nodes with different computation times.

Linear G-sets along the uniform paths never mix times (loss exactly 0,
Fig. 22b); 2-D blocks necessarily do (Fig. 22a); occupancy decomposes as
1 = occ + mixing + boundary.  Builder:
:func:`repro.experiments.tradeoffs.varying_time_census`.
"""

from repro.experiments.tradeoffs import varying_time_census
from repro.viz import format_table

from _common import save_table


def test_fig22_varying_computation_time(benchmark):
    rows = benchmark(varying_time_census, 12, 4)
    for r in rows:
        assert r["linear_mixing_loss"] == 0.0  # Fig. 22b
        assert r["mesh_mixing_loss"] > 0.02  # Fig. 22a
        assert abs(
            r["linear_occ"] + r["linear_mixing_loss"] + r["linear_boundary"] - 1
        ) < 1e-12
        assert abs(
            r["mesh_occ"] + r["mesh_mixing_loss"] + r["mesh_boundary"] - 1
        ) < 1e-12
    save_table(
        "F22", "varying G-node times: mixing loss (linear 0 vs mesh > 0)",
        format_table(rows),
    )
