"""A-CHAIN: chained problem instances on the fixed-size array (Fig. 17).

k overlapped instances co-simulated: no double-booking, all closures
correct, makespan slope exactly n (measured throughput 1/n).  Builder:
:func:`repro.experiments.ablations.chained_census`.
"""

from repro.experiments.ablations import chained_census
from repro.viz import format_table

from _common import save_table


def test_chained_instances_throughput(benchmark):
    rows = benchmark(chained_census, 8, (1, 2, 4, 6))
    for r in rows:
        assert r["all_correct"] and r["violations"] == 0
        assert r["makespan"] == r["expected"]  # slope == n exactly
    occs = [r["occupancy"] for r in rows]
    assert occs == sorted(occs)
    save_table(
        "A-CHAIN", "fixed array: k chained instances, makespan slope = n",
        format_table(rows), rows=rows, n=rows[-1]["n"],
        perf_metrics={
            "chained_makespan_cycles": rows[-1]["makespan"],
            "initiation_interval_cycles": rows[-1]["delta"],
        },
    )
