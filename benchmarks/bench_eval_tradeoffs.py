"""T-EVAL (Sec. 4.2): the linear vs two-dimensional trade-off table.

Same cell count -> same throughput/utilization formulas; measured values
differ only by boundary sets; m+1 vs 2*sqrt(m) memory ports; zero
overhead both.  Builder: :func:`repro.experiments.tradeoffs.tradeoff_sweep`.
"""

from repro.experiments.tradeoffs import tradeoff_sweep
from repro.viz import format_table

from _common import save_table


def test_eval_linear_vs_mesh_tradeoffs(benchmark):
    rows = benchmark(tradeoff_sweep)
    by_cfg = {}
    for r in rows:
        by_cfg.setdefault((r["n"], r["m"]), {})[r["geometry"]] = r
    for (n, m), pair in by_cfg.items():
        lin, mesh = pair["linear"], pair["mesh"]
        assert 0.6 < lin["T_measured"] / mesh["T_measured"] < 1.7
        assert lin["T_measured"] >= mesh["T_measured"]
        assert lin["overhead"] == mesh["overhead"] == 0
        assert lin["mem_ports"] == m + 1
        assert mesh["mem_ports"] == 2 * int(m**0.5)
    save_table("T-EVAL", "Sec. 4.2 trade-off table, linear vs mesh", format_table(rows))
