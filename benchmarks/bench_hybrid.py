"""A-HYB: the hybrid scheme the paper conjectures (Sec. 2).

"Cut-and-pile performed first ... and then coalescing applied over the
partitions would help reducing the memory requirements of applying
coalescing alone."  Measured: per-cell storage falls monotonically with
the pile count while external traffic rises toward pure cut-and-pile.
Builder: :func:`repro.experiments.ablations.hybrid_census`.
"""

from repro.experiments.ablations import hybrid_census
from repro.viz import format_table

from _common import save_table


def test_hybrid_spectrum(benchmark):
    rows = benchmark(hybrid_census, 16, 4)
    storages = [r["local_storage"] for r in rows]
    externals = [r["external_words"] for r in rows]
    # The paper's claim: storage falls as piling increases...
    assert storages == sorted(storages, reverse=True)
    assert storages[0] > 2 * storages[-2] > 0  # hybrid cuts LSGP storage
    assert storages[-1] == 0  # ... down to pure LPGS
    # ... while external traffic climbs between the two extremes.
    assert externals == sorted(externals)
    assert externals[0] == 0
    save_table(
        "A-HYB", "hybrid cut-and-pile + coalescing spectrum", format_table(rows)
    )
