"""Repo-level pytest configuration: make ``src/`` importable everywhere."""

import sys
from pathlib import Path

SRC = Path(__file__).parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
