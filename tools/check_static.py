#!/usr/bin/env python
"""Offline static self-check: the subset of the ruff gate that needs no
third-party tools.

CI's ``static`` job runs ruff and mypy (installed on the runner); this
script covers the highest-signal checks with the standard library only,
so a contributor without those tools still catches the common breakage
before pushing:

* files must parse (``ast.parse``);
* no unused imports (ruff F401);
* no duplicate imports of one name in one module (ruff F811, import form);
* no lines over the configured limit (ruff E501);
* in ``repro.core`` and ``repro.lint`` (the strictly-typed packages,
  see ``mypy.ini``): every function def annotates its parameters and
  return type.

Exit status 1 when any finding is reported.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

LINE_LIMIT = 100
STRICT_PACKAGES = ("src/repro/core", "src/repro/lint")

#: Names whose import is a registration/re-export side effect, not a use.
USED_IMPLICITLY = {"annotations"}


def _imported_names(
    tree: ast.Module,
) -> list[tuple[str, str, int, bool]]:
    """``(bound, reported, lineno, top_level)`` per import binding.

    ``top_level`` distinguishes module-scope imports from the
    function-local lazy-import idiom (the latter legitimately rebinds
    one name in several functions).
    """
    top = {id(n) for n in tree.body}
    out = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                out.append((bound, alias.name, node.lineno, id(node) in top))
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                out.append((bound, alias.name, node.lineno, id(node) in top))
    return out


def _used_names(tree: ast.Module) -> set[str]:
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            base = node
            while isinstance(base, ast.Attribute):
                base = base.value
            if isinstance(base, ast.Name):
                used.add(base.id)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # String annotations / docstrings referencing names keep them
            # alive (the TYPE_CHECKING idiom).
            text = node.value
            for ch in ".[]":
                text = text.replace(ch, " ")
            for word in text.split():
                used.add(word.strip("\"'`,:()| "))
    return used


def _exported(tree: ast.Module) -> set[str]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for t in node.targets:
                if isinstance(t, ast.Name) and t.id == "__all__":
                    try:
                        return set(ast.literal_eval(node.value))
                    except ValueError:
                        return set()
    return set()


def check_file(path: Path, strict_types: bool) -> list[str]:
    src = path.read_text()
    problems: list[str] = []
    try:
        tree = ast.parse(src, filename=str(path))
    except SyntaxError as exc:
        return [f"{path}:{exc.lineno}: syntax error: {exc.msg}"]

    for i, line in enumerate(src.splitlines(), 1):
        if len(line) > LINE_LIMIT:
            problems.append(
                f"{path}:{i}: line too long ({len(line)} > {LINE_LIMIT})"
            )

    lines = src.splitlines()

    def _noqa(lineno: int) -> bool:
        return "noqa" in lines[lineno - 1]

    used = _used_names(tree) | _exported(tree)
    is_package_init = path.name == "__init__.py"
    seen: dict[str, int] = {}
    for bound, reported, lineno, top_level in _imported_names(tree):
        if _noqa(lineno):
            continue
        if top_level:
            if bound in seen and seen[bound] != lineno:
                problems.append(
                    f"{path}:{lineno}: redefinition of imported {bound!r} "
                    f"(first at line {seen[bound]})"
                )
            seen[bound] = lineno
        if is_package_init or bound in USED_IMPLICITLY:
            continue  # __init__ re-exports; __future__ flags
        if bound not in used:
            problems.append(f"{path}:{lineno}: unused import {reported!r}")

    if strict_types:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("__") and node.name.endswith("__"):
                continue
            args = node.args
            params = (
                args.posonlyargs + args.args + args.kwonlyargs
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            )
            missing = [
                a.arg
                for a in params
                if a.annotation is None and a.arg not in ("self", "cls")
            ]
            if missing:
                problems.append(
                    f"{path}:{node.lineno}: {node.name}() has unannotated "
                    f"parameter(s): {', '.join(missing)}"
                )
            if node.returns is None:
                problems.append(
                    f"{path}:{node.lineno}: {node.name}() has no return "
                    "annotation"
                )
    return problems


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(".")
    problems: list[str] = []
    for path in sorted((root / "src").rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        strict = any(rel.startswith(p) for p in STRICT_PACKAGES)
        problems.extend(check_file(path, strict_types=strict))
    for line in problems:
        print(line)
    n_files = len(list((root / "src").rglob("*.py")))
    print(
        f"check_static: {n_files} file(s), {len(problems)} problem(s)",
        file=sys.stderr,
    )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
