"""Setup script (kept PEP-517-free so `pip install -e .` works offline)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Graph-based partitioning of matrix algorithms for systolic arrays "
        "(Moreno & Lang, 1988) - full reproduction"
    ),
    python_requires=">=3.10",
    install_requires=["numpy", "networkx", "scipy"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
