"""Tests for the comparator models (Kung [23], Núñez-Torralba [22])."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.transitive_closure import tc_regular
from repro.algorithms.warshall import random_adjacency, warshall
from repro.baselines.kung_fixed import run_kung_fixed
from repro.baselines.nunez_torralba import run_nunez_torralba
from repro.core.ggraph import GGraph, group_by_columns
from repro.core.metrics import tc_utilization
from repro.arrays.plan import fixed_array_plan, min_initiation_interval


class TestKungFixed:
    @given(n=st.integers(3, 10), seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_computes_closure(self, n, seed) -> None:
        a = random_adjacency(n, 0.35, seed=seed)
        model = run_kung_fixed(a)
        assert np.array_equal(model.result, warshall(a))

    def test_throughput_half_of_ours(self) -> None:
        """Fig. 17 comparison: load/reuse doubles the initiation interval."""
        n = 8
        a = random_adjacency(n, seed=0)
        model = run_kung_fixed(a)
        assert model.throughput == Fraction(1, 2 * n)
        ours = min_initiation_interval(
            fixed_array_plan(GGraph(tc_regular(n), group_by_columns))
        )
        assert model.throughput == Fraction(1, 2) * Fraction(1, ours)

    def test_utilization_below_ours(self) -> None:
        n = 10
        model = run_kung_fixed(random_adjacency(n, seed=1))
        assert float(model.utilization()) < float(tc_utilization(n))
        assert float(model.utilization()) < 0.55

    def test_overhead_is_the_load_phase(self) -> None:
        n = 6
        model = run_kung_fixed(random_adjacency(n, seed=2))
        assert model.overhead == n * n
        assert model.total_cycles == 2 * n * n

    def test_control_and_paths(self) -> None:
        """The qualitative comparison: 2 control states and 2 comm paths
        versus the Fig. 17 array's overlapped, single-path operation."""
        model = run_kung_fixed(random_adjacency(5, seed=3))
        assert model.control_states == 2
        assert model.comm_paths == 2


class TestNunezTorralba:
    @given(
        n=st.integers(3, 12),
        block=st.integers(1, 12),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=20, deadline=None)
    def test_blocked_closure_correct(self, n, block, seed) -> None:
        block = min(block, n)
        a = random_adjacency(n, 0.3, seed=seed)
        model = run_nunez_torralba(a, block)
        assert np.array_equal(model.result, warshall(a))

    def test_kernel_count_is_q_cubed(self) -> None:
        """q pivot blocks x q^2 kernels each."""
        a = random_adjacency(12, seed=4)
        model = run_nunez_torralba(a, 4)
        q = 3
        assert model.kernels == q**3
        assert model.closure_kernels == q
        assert model.multiply_kernels == q**3 - q

    def test_control_complexity_versus_ours(self) -> None:
        """The paper: 'their algorithm requires rather complex control to
        chain the different sub-problems' — one mode switch per kernel,
        versus a single steady schedule for cut-and-pile."""
        n, m = 12, 16
        a = random_adjacency(n, seed=5)
        model = run_nunez_torralba(a, 4)
        assert model.control_steps == model.kernels
        assert model.control_steps > n  # grows as (n/s)^3

    def test_throughput_worse_than_cut_and_pile(self) -> None:
        """Same cell count: the blocked scheme pays kernel fill/drain."""
        from repro.core.gsets import make_mesh_gsets, schedule_gsets
        from repro.core.metrics import evaluate_schedule

        n, s = 12, 4  # m = 16 cells each
        a = random_adjacency(n, seed=6)
        theirs = run_nunez_torralba(a, s)
        gg = GGraph(tc_regular(n), group_by_columns)
        plan = make_mesh_gsets(gg, s * s)
        ours = evaluate_schedule(plan, schedule_gsets(plan))
        assert theirs.total_cycles > ours.total_time

    def test_validation(self) -> None:
        a = random_adjacency(6, seed=7)
        with pytest.raises(ValueError, match="block"):
            run_nunez_torralba(a, 0)
        with pytest.raises(ValueError, match="block"):
            run_nunez_torralba(a, 7)
