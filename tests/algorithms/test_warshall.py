"""Tests for the software oracles (three-way agreement)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.warshall import (
    adjacency_from_edges,
    floyd_warshall_reference,
    random_adjacency,
    transitive_closure_networkx,
    warshall,
    warshall_vectorized,
)
from repro.core.semiring import MIN_PLUS


@given(n=st.integers(1, 10), seed=st.integers(0, 1000), density=st.floats(0.0, 1.0))
@settings(max_examples=40, deadline=None)
def test_three_implementations_agree(n: int, seed: int, density: float) -> None:
    a = random_adjacency(n, density, seed=seed)
    plain = warshall(a)
    vec = warshall_vectorized(a)
    nxc = transitive_closure_networkx(a)
    assert np.array_equal(plain, vec)
    assert np.array_equal(plain, nxc)


def test_known_path_graph() -> None:
    a = adjacency_from_edges(4, [(0, 1), (1, 2), (2, 3)])
    c = warshall(a)
    assert c[0, 3] and c[0, 2] and c[1, 3]
    assert not c[3, 0]


def test_cycle_closes_fully() -> None:
    a = adjacency_from_edges(3, [(0, 1), (1, 2), (2, 0)])
    assert warshall(a).all()


def test_diagonal_always_set() -> None:
    a = np.zeros((5, 5), dtype=bool)
    assert np.all(np.diag(warshall(a)))


def test_warshall_rejects_non_square() -> None:
    with pytest.raises(ValueError, match="square"):
        warshall(np.zeros((2, 3), dtype=bool))


def test_adjacency_from_edges_bounds() -> None:
    with pytest.raises(ValueError, match="vertex-out-of-range"):
        adjacency_from_edges(3, [(0, 5)])


def test_floyd_warshall_matches_scipy() -> None:
    from scipy.sparse.csgraph import floyd_warshall as scipy_fw

    rng = np.random.default_rng(7)
    n = 8
    w = np.where(rng.random((n, n)) < 0.4,
                 rng.integers(1, 9, (n, n)).astype(float), np.inf)
    ours = floyd_warshall_reference(w)
    w0 = w.copy()
    np.fill_diagonal(w0, 0.0)
    theirs = scipy_fw(np.where(np.isinf(w0), 0, w0), directed=True)
    assert np.allclose(ours, theirs)


def test_floyd_warshall_equals_minplus_closure() -> None:
    rng = np.random.default_rng(8)
    n = 6
    w = np.where(rng.random((n, n)) < 0.5,
                 rng.integers(1, 9, (n, n)).astype(float), np.inf)
    assert np.array_equal(
        floyd_warshall_reference(w), warshall_vectorized(w, MIN_PLUS)
    )


def test_random_adjacency_deterministic() -> None:
    a = random_adjacency(6, 0.3, seed=42)
    b = random_adjacency(6, 0.3, seed=42)
    assert np.array_equal(a, b)
