"""Tests for the synthetic workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro import partition_transitive_closure
from repro.algorithms.warshall import warshall
from repro.algorithms.workloads import (
    WORKLOADS,
    call_graph,
    grid_maze,
    layered_dag,
    random_tournament,
    ring_with_chords,
)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_shape_and_diagonal(name: str) -> None:
    a = WORKLOADS[name]()
    assert a.dtype == np.bool_
    assert a.shape[0] == a.shape[1]
    assert np.all(np.diag(a))


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workloads_run_on_the_array(name: str) -> None:
    a = WORKLOADS[name]()
    n = a.shape[0]
    impl = partition_transitive_closure(n=n, m=4)
    assert np.array_equal(impl.run(a), warshall(a))


def test_ring_is_strongly_connected_without_cut() -> None:
    a = ring_with_chords(8, chords=0)
    assert warshall(a).all()  # a full one-way ring reaches everything


def test_layered_dag_closure_is_feed_forward() -> None:
    layers, width = 4, 3
    a = layered_dag(layers, width, density=1.0)
    c = warshall(a)
    # No node reaches an earlier layer.
    for u in range(a.shape[0]):
        for v in range(a.shape[0]):
            if c[u, v] and u != v:
                assert v // width > u // width


def test_grid_maze_symmetric_reachability() -> None:
    a = grid_maze(3, 3, wall_prob=0.3, seed=2)
    c = warshall(a)
    assert np.array_equal(c, c.T)  # corridors are bidirectional


def test_tournament_has_dominant_node_reach() -> None:
    a = random_tournament(10, seed=3)
    c = warshall(a)
    # In a tournament some node reaches every other (a king exists along
    # reachability).
    assert (c.sum(axis=1) == 10).any()


def test_call_graph_root_reaches_downward() -> None:
    a = call_graph(15, seed=1)
    c = warshall(a)
    # The root reaches a sizeable subtree, and at least as much as any
    # leaf-ward node (calls point forward except for rare back edges).
    assert c[0].sum() > 7
    assert c[0].sum() >= c[14].sum()


@pytest.mark.parametrize(
    "fn,args",
    [
        (ring_with_chords, (1,)),
        (layered_dag, (0, 3)),
        (grid_maze, (0, 3)),
        (random_tournament, (0,)),
        (call_graph, (0,)),
    ],
)
def test_generators_validate_inputs(fn, args) -> None:
    with pytest.raises(ValueError):
        fn(*args)
