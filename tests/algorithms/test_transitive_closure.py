"""Tests for the transitive-closure graph pipeline (Figs. 10-17)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.transitive_closure import (
    TC_STAGES,
    expected_computed_ops,
    expected_full_ops,
    expected_regular_slots,
    is_computed,
    make_inputs,
    node_tag_census,
    read_output_matrix,
    run_graph,
    tc_full,
    tc_pipelined,
    tc_pruned,
    tc_regular,
    tc_stage,
    tc_unidirectional,
)
from repro.algorithms.warshall import (
    floyd_warshall_reference,
    random_adjacency,
    warshall,
)
from repro.core.analysis import (
    communication_patterns,
    find_broadcasts,
    flow_directions,
    long_edges,
    max_fanout,
)
from repro.core.evaluate import evaluate
from repro.core.graph import NodeKind, node_counts
from repro.core.semiring import BOOLEAN, COUNTING, MAX_MIN, MIN_PLUS


STAGES = sorted(TC_STAGES)


@pytest.mark.parametrize("stage", STAGES)
@given(n=st.integers(3, 7), seed=st.integers(0, 200))
@settings(max_examples=8, deadline=None)
def test_every_stage_computes_the_closure(stage: str, n: int, seed: int) -> None:
    """Semantic equivalence: the heart of the transformational method."""
    a = random_adjacency(n, 0.35, seed=seed)
    dg = tc_stage(stage, n)
    assert np.array_equal(run_graph(dg, a), warshall(a))


@pytest.mark.parametrize("stage", STAGES)
def test_every_stage_validates(stage: str, tc_stage_graphs) -> None:
    tc_stage_graphs[stage].validate()


class TestNodeCounts:
    def test_full_graph_has_n_cubed_ops(self) -> None:
        for n in (3, 5, 8):
            assert node_counts(tc_full(n))[NodeKind.OP] == expected_full_ops(n)

    def test_pruned_graph_count(self) -> None:
        for n in (3, 5, 8):
            assert node_counts(tc_pruned(n))[NodeKind.OP] == expected_computed_ops(n)

    def test_regular_graph_slot_count(self) -> None:
        for n in (3, 6):
            c = node_counts(tc_regular(n))
            assert c[NodeKind.OP] + c[NodeKind.DELAY] == expected_regular_slots(n)

    def test_is_computed_predicate(self) -> None:
        n = 5
        count = sum(
            is_computed(n, k, i, j)
            for k in range(n)
            for i in range(n)
            for j in range(n)
        )
        assert count == expected_computed_ops(n)

    def test_tag_census_regular(self) -> None:
        n = 6
        census = node_tag_census(tc_regular(n))
        assert census["compute"] == expected_computed_ops(n)
        assert census["delay"] == n * n
        assert census["transmit-row"] == n * n
        assert census["transmit-col"] == n * (n - 1)
        assert census["superfluous"] == n * (n - 1)


class TestBroadcastRemoval:
    """Figs. 10 -> 12: fan-out collapses from O(n) to O(1)."""

    def test_full_graph_broadcasts_grow_with_n(self) -> None:
        assert max_fanout(tc_full(8)) > max_fanout(tc_full(4))

    def test_pipelined_fanout_bounded(self) -> None:
        assert max_fanout(tc_pipelined(5)) <= 5
        assert max_fanout(tc_pipelined(9)) <= 5  # constant, not O(n)

    def test_flipped_stages_fully_pipelined(self) -> None:
        for n in (4, 7):
            assert max_fanout(tc_unidirectional(n)) == 1
            assert max_fanout(tc_regular(n)) == 1
            assert find_broadcasts(tc_regular(n), fanout_threshold=1).count == 0


class TestFlowDirections:
    """Figs. 12 -> 14: the flips make the drawing uni-directional."""

    def test_pipelined_is_bidirectional(self) -> None:
        rep = flow_directions(tc_pipelined(6), pos_attr="draw")
        assert not rep.is_unidirectional

    def test_flipped_stages_unidirectional(self) -> None:
        for ctor in (tc_unidirectional, tc_regular):
            rep = flow_directions(ctor(6), pos_attr="draw")
            assert rep.is_unidirectional


class TestRegularity:
    """Figs. 15 -> 16: the delay column removes the irregular boundary."""

    def test_stencil_count_constant_in_n(self) -> None:
        assert (
            communication_patterns(tc_regular(5)).distinct
            == communication_patterns(tc_regular(9)).distinct
        )

    def test_regular_has_fewer_stencils(self) -> None:
        assert (
            communication_patterns(tc_regular(7)).distinct
            < communication_patterns(tc_unidirectional(7)).distinct
        )

    def test_corner_is_the_only_long_wire(self) -> None:
        """One special (corner) edge per level transition in both stages."""
        n = 7
        for ctor in (tc_unidirectional, tc_regular):
            assert len(long_edges(ctor(n), max_len=1, dims=(1, 2))) == n - 1

    def test_delay_column_regularizes_the_ggraph(self) -> None:
        """Fig. 15c's point: only the regularized graph groups into a
        nearest-neighbour G-graph; without the delay column the boundary
        communication surfaces as long G-edges."""
        from repro.core.ggraph import GGraph, group_by_columns

        n = 7
        irregular = GGraph(tc_unidirectional(n), group_by_columns)
        regular = GGraph(tc_regular(n), group_by_columns)
        assert set(regular.edge_deltas()) == {(0, 1), (1, -1)}
        assert regular.is_nearest_neighbour()
        assert not irregular.is_nearest_neighbour()
        assert len(set(irregular.edge_deltas())) > 2

    def test_interior_stencil_dominates_regular(self) -> None:
        rep = communication_patterns(tc_regular(9))
        assert rep.dominant_fraction > 0.5


class TestSemiringGenerality:
    def test_min_plus_all_stages(self) -> None:
        n = 5
        rng = np.random.default_rng(11)
        w = np.where(rng.random((n, n)) < 0.4,
                     rng.integers(1, 9, (n, n)).astype(float), np.inf)
        expected = floyd_warshall_reference(w)
        for stage in STAGES:
            got = run_graph(tc_stage(stage, n), w, MIN_PLUS)
            assert np.array_equal(got, expected), stage

    def test_max_min_bottleneck_paths(self) -> None:
        n = 5
        rng = np.random.default_rng(12)
        w = MAX_MIN.random_matrix(n, rng)
        from repro.core.semiring import closure_reference

        expected = closure_reference(w, MAX_MIN)
        got = run_graph(tc_regular(n), w, MAX_MIN)
        assert np.array_equal(got, expected)

    def test_counting_valid_on_full_graph_only(self) -> None:
        """Superfluous pruning is unsound on non-idempotent semirings."""
        n = 4
        rng = np.random.default_rng(13)
        a = COUNTING.random_matrix(n, rng, density=0.5)
        from repro.core.semiring import closure_reference

        expected = closure_reference(a, COUNTING)
        full = run_graph(tc_full(n), a, COUNTING)
        assert np.array_equal(full, expected)
        assert not COUNTING.supports_superfluous_pruning()


class TestIOHelpers:
    def test_make_inputs_forces_diagonal(self) -> None:
        a = np.zeros((4, 4), dtype=bool)
        env = make_inputs(a)
        assert env[("in", 2, 2)] is True or env[("in", 2, 2)] == True  # noqa: E712

    def test_read_output_matrix_roundtrip(self) -> None:
        n = 4
        a = random_adjacency(n, seed=1)
        outs = evaluate(tc_pruned(n), make_inputs(a), BOOLEAN)
        m = read_output_matrix(outs, n)
        assert np.array_equal(m, warshall(a))

    def test_stage_lookup_errors(self) -> None:
        with pytest.raises(ValueError, match="unknown stage"):
            tc_stage("bogus", 5)

    def test_n_too_small(self) -> None:
        with pytest.raises(ValueError, match="n >= 3"):
            tc_full(2)


def test_critical_path_scales_linearly() -> None:
    """The pipelined graph's delay is O(n), not O(n^2)."""
    d5 = tc_regular(5).critical_path_length()
    d8 = tc_regular(8).critical_path_length()
    assert d5 < d8 <= 5 * 8
