"""Tests for the Sec. 4.3 algorithm front-ends (matmul, LU, Faddeev,
Givens, triangular inverse)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.faddeev import faddeev_ggraph, faddeev_graph, run_faddeev
from repro.algorithms.givens import givens_ggraph, run_givens
from repro.algorithms.lu import lu_ggraph, lu_reference, run_lu
from repro.algorithms.matmul import matmul_graph, run_matmul
from repro.algorithms.triangular_inverse import (
    run_triangular_inverse,
    triangular_inverse_ggraph,
    triangular_inverse_inputs,
)
from repro.core.analysis import max_fanout
from repro.core.ggraph import GGraph, group_by_columns


def well_conditioned(rng: np.random.Generator, n: int) -> np.ndarray:
    """Random matrix safe for pivot-free elimination."""
    return rng.random((n, n)) + n * np.eye(n)


class TestMatmul:
    @given(
        n=st.integers(1, 5), p=st.integers(1, 5), q=st.integers(1, 5),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=15, deadline=None)
    def test_rectangular_products(self, n, p, q, seed) -> None:
        rng = np.random.default_rng(seed)
        a, b = rng.random((n, p)), rng.random((p, q))
        assert np.allclose(run_matmul(a, b), a @ b)

    def test_pipelined_no_broadcast(self) -> None:
        assert max_fanout(matmul_graph(5)) == 1

    def test_uniform_ggraph(self) -> None:
        gg = GGraph(matmul_graph(5), group_by_columns)
        assert gg.is_uniform_time()
        assert gg.grid_shape() == (5, 5)

    def test_shape_mismatch(self) -> None:
        from repro.algorithms.matmul import matmul_inputs

        with pytest.raises(ValueError, match="mismatch"):
            matmul_inputs(np.zeros((2, 3)), np.zeros((4, 2)))

    def test_bad_dims(self) -> None:
        with pytest.raises(ValueError, match="positive"):
            matmul_graph(0)


class TestLU:
    @given(n=st.integers(2, 7), seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_factors_reconstruct(self, n, seed) -> None:
        a = well_conditioned(np.random.default_rng(seed), n)
        lo, up = run_lu(a)
        assert np.allclose(lo @ up, a)
        assert np.allclose(lo, np.tril(lo))
        assert np.allclose(up, np.triu(up))
        assert np.allclose(np.diag(lo), 1.0)

    def test_matches_reference(self) -> None:
        a = well_conditioned(np.random.default_rng(0), 6)
        lo, up = run_lu(a)
        lr, ur = lu_reference(a)
        assert np.allclose(lo, lr) and np.allclose(up, ur)

    def test_reference_rejects_zero_pivot(self) -> None:
        with pytest.raises(ZeroDivisionError, match="pivot"):
            lu_reference(np.zeros((3, 3)))

    def test_fig22_time_pattern(self) -> None:
        gg = lu_ggraph(8)
        assert not gg.is_uniform_time()
        for k in gg.rows:
            row = gg.row_times(k)
            assert len(set(row)) == 1
            assert row[0] == 8 - 1 - k

    def test_nearest_neighbour_ggraph(self) -> None:
        gg = lu_ggraph(6)
        assert set(gg.edge_deltas()) <= {(0, 1), (1, 0), (1, 1)}

    def test_n_too_small(self) -> None:
        from repro.algorithms.lu import lu_graph

        with pytest.raises(ValueError, match="n >= 2"):
            lu_graph(1)


class TestFaddeev:
    @given(n=st.integers(1, 5), seed=st.integers(0, 100))
    @settings(max_examples=12, deadline=None)
    def test_schur_result(self, n, seed) -> None:
        rng = np.random.default_rng(seed)
        A = well_conditioned(rng, n)
        B, C, D = rng.random((n, n)), rng.random((n, n)), rng.random((n, n))
        got = run_faddeev(A, B, C, D)
        assert np.allclose(got, D + C @ np.linalg.inv(A) @ B)

    def test_inverse_special_case(self) -> None:
        """B = I, D = 0, C = I gives the matrix inverse."""
        rng = np.random.default_rng(4)
        A = well_conditioned(rng, 4)
        eye, zero = np.eye(4), np.zeros((4, 4))
        assert np.allclose(run_faddeev(A, eye, eye, zero), np.linalg.inv(A))

    def test_decreasing_times(self) -> None:
        gg = faddeev_ggraph(5)
        firsts = [gg.row_times(k)[0] for k in gg.rows]
        assert firsts == sorted(firsts, reverse=True)

    def test_block_shape_check(self) -> None:
        from repro.algorithms.faddeev import faddeev_inputs

        with pytest.raises(ValueError, match="block B"):
            faddeev_inputs(np.eye(3), np.eye(2), np.eye(3), np.eye(3))

    def test_no_broadcast(self) -> None:
        assert max_fanout(faddeev_graph(4)) <= 3


class TestGivens:
    @given(n=st.integers(2, 6), seed=st.integers(0, 100))
    @settings(max_examples=12, deadline=None)
    def test_r_factor_properties(self, n, seed) -> None:
        a = np.random.default_rng(seed).random((n, n)) + np.eye(n)
        r = run_givens(a)
        assert np.allclose(r, np.triu(r))
        assert np.allclose(r.T @ r, a.T @ a)

    def test_matches_numpy_qr_up_to_signs(self) -> None:
        a = np.random.default_rng(1).random((5, 5))
        r_ours = run_givens(a)
        r_np = np.linalg.qr(a).R if hasattr(np.linalg.qr(a), "R") else np.linalg.qr(a)[1]
        assert np.allclose(np.abs(r_ours), np.abs(r_np))

    def test_strongly_decreasing_times(self) -> None:
        gg = givens_ggraph(7)
        firsts = [gg.row_times(k)[0] for k in gg.rows]
        assert firsts == sorted(firsts, reverse=True)
        assert firsts[0] > 2 * firsts[-1]

    def test_n_too_small(self) -> None:
        from repro.algorithms.givens import givens_graph

        with pytest.raises(ValueError, match="n >= 2"):
            givens_graph(1)


class TestTriangularInverse:
    @given(n=st.integers(1, 7), seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_inverse_correct(self, n, seed) -> None:
        u = np.triu(np.random.default_rng(seed).random((n, n)) + 1.0)
        inv = run_triangular_inverse(u)
        assert np.allclose(inv, np.linalg.inv(u))
        assert np.allclose(u @ inv, np.eye(n), atol=1e-9)

    def test_increasing_column_times(self) -> None:
        gg = triangular_inverse_ggraph(7)
        times = gg.row_times(0)
        assert list(times) == sorted(times)
        assert times[-1] > times[0]

    def test_rejects_non_triangular(self) -> None:
        with pytest.raises(ValueError, match="upper triangular"):
            triangular_inverse_inputs(np.ones((3, 3)))


class TestPartitionedMatmul:
    """Matrix product through the *whole* pipeline: second application."""

    def test_ggraph_structure(self) -> None:
        from repro.algorithms.matmul import matmul_ggraph

        gg = matmul_ggraph(6)
        assert gg.is_uniform_time()
        assert gg.grid_shape() == (6, 6)
        assert set(gg.edge_deltas()) == {(0, 1), (1, 0)}  # no skew

    @given(
        n=st.integers(3, 6),
        m=st.integers(1, 4),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=10, deadline=None)
    def test_linear_array_computes_product(self, n, m, seed) -> None:
        from repro.algorithms.matmul import matmul_graph, matmul_inputs, matmul_group_by_columns
        from repro.core.ggraph import GGraph
        from repro.core.gsets import make_linear_gsets, schedule_gsets
        from repro.core.semiring import REAL
        from repro.arrays.cycle_sim import simulate
        from repro.arrays.plan import partitioned_plan

        rng = np.random.default_rng(seed)
        a, b = rng.random((n, n)), rng.random((n, n))
        dg = matmul_graph(n)
        gg = GGraph(dg, matmul_group_by_columns)
        plan = make_linear_gsets(gg, m)
        ep = partitioned_plan(plan, schedule_gsets(plan))
        res = simulate(ep, dg, matmul_inputs(a, b), REAL)
        assert res.ok
        got = np.array(
            [[res.outputs[("out", i, j)] for j in range(n)] for i in range(n)]
        )
        assert np.allclose(got, a @ b)

    def test_mesh_array_computes_product(self) -> None:
        from repro.algorithms.matmul import matmul_graph, matmul_inputs, matmul_group_by_columns
        from repro.core.ggraph import GGraph
        from repro.core.gsets import make_mesh_gsets, schedule_gsets
        from repro.core.semiring import REAL
        from repro.arrays.cycle_sim import simulate
        from repro.arrays.plan import partitioned_plan

        n = 6
        rng = np.random.default_rng(3)
        a, b = rng.random((n, n)), rng.random((n, n))
        dg = matmul_graph(n)
        gg = GGraph(dg, matmul_group_by_columns)
        plan = make_mesh_gsets(gg, 4)
        ep = partitioned_plan(plan, schedule_gsets(plan))
        res = simulate(ep, dg, matmul_inputs(a, b), REAL)
        assert res.ok and ep.stall_cycles == 0
        got = np.array(
            [[res.outputs[("out", i, j)] for j in range(n)] for i in range(n)]
        )
        assert np.allclose(got, a @ b)

    def test_boolean_semiring_matmul_on_array(self) -> None:
        """The same graph computes boolean reachability products."""
        from repro.algorithms.matmul import matmul_graph
        from repro.core.evaluate import evaluate
        from repro.core.semiring import BOOLEAN

        n = 4
        rng = np.random.default_rng(5)
        a = rng.random((n, n)) < 0.5
        b = rng.random((n, n)) < 0.5
        dg = matmul_graph(n)
        env = {}
        for i in range(n):
            for k in range(n):
                env[("a", i, k)] = bool(a[i, k])
        for k in range(n):
            for j in range(n):
                env[("b", k, j)] = bool(b[k, j])
        # Boolean semiring: zero = False (the const feeds the accumulator).
        for i in range(n):
            for j in range(n):
                dg.g.nodes[("zero", i, j)]["value"] = False
        outs = evaluate(dg, env, BOOLEAN)
        got = np.array([[outs[("out", i, j)] for j in range(n)] for i in range(n)])
        expected = (a.astype(int) @ b.astype(int)) > 0
        assert np.array_equal(got, expected)
