"""Mutation tests: the oracles must catch wrong constructions.

A reproduction whose checks cannot fail proves nothing.  These tests
sabotage the graphs and plans in targeted ways and assert the test
machinery (functional oracle, cycle simulator, structural validators)
rejects each mutant.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.transitive_closure import (
    make_inputs,
    run_graph,
    tc_pruned,
    tc_regular,
)
from repro.algorithms.warshall import random_adjacency, warshall
from repro.core.ggraph import GGraph, group_by_columns
from repro.core.graph import GraphError, PortRef
from repro.core.gsets import make_linear_gsets, schedule_gsets
from repro.arrays.cycle_sim import simulate
from repro.arrays.plan import partitioned_plan


def _some_false_instance(n: int) -> np.ndarray:
    """An adjacency matrix whose closure is not all-ones."""
    a = np.zeros((n, n), dtype=bool)
    a[0, 1] = True
    np.fill_diagonal(a, True)
    return a


def test_swapped_chain_operands_change_the_function() -> None:
    """Swapping the b and c chains transposes the update: caught."""
    n = 6
    dg = tc_regular(n)
    mutated = 0
    for nid in list(dg.g.nodes):
        if not (isinstance(nid, tuple) and nid[0] == "cell"):
            continue
        d = dg.g.nodes[nid]
        if d.get("tag") != "compute":
            continue
        ops = d["operands"]
        ops["b"], ops["c"] = ops["c"], ops["b"]
        mutated += 1
    assert mutated > 0
    # Try a few seeds: at least one asymmetric instance must expose it.
    exposed = False
    for seed in range(6):
        a = random_adjacency(n, 0.25, seed=seed)
        if not np.array_equal(run_graph(dg, a), warshall(a)):
            exposed = True
            break
    assert exposed


def test_dropped_level_changes_the_function() -> None:
    """Wiring outputs from level n-2 instead of n-1 loses closure steps."""
    n = 6
    dg = tc_pruned(n)
    # Rewire every output one level earlier where possible.
    for i in range(n):
        for j in range(n):
            src, _ = dg.operands(("out", i, j))["a"]
            if isinstance(src, tuple) and src[0] == "op" and src[1] > 0:
                k = src[1] - 1
                while k >= 0 and ("op", k, i, j) not in dg:
                    k -= 1
                if k >= 0:
                    dg.rewire(("out", i, j), "a", ("op", k, i, j))
    exposed = False
    for seed in range(8):
        a = random_adjacency(n, 0.2, seed=seed)
        if not np.array_equal(run_graph(dg, a), warshall(a)):
            exposed = True
            break
    assert exposed


def test_self_loop_mutation_is_structurally_rejected() -> None:
    n = 5
    dg = tc_regular(n)
    victim = ("cell", 1, 1, 1)
    dg.g.nodes[victim]["operands"]["b"] = (victim, "c")
    dg.g.add_edge(victim, victim)
    with pytest.raises(GraphError, match="cycle"):
        dg.topological_order()


def test_wrong_cell_assignment_is_caught_by_the_simulator() -> None:
    """Teleporting one firing to a far cell breaks locality: reported."""
    n, m = 8, 4
    dg = tc_regular(n)
    gg = GGraph(dg, group_by_columns)
    plan = make_linear_gsets(gg, m)
    ep = partitioned_plan(plan, schedule_gsets(plan))
    # Move one mid-chain firing to the far end of the array, keeping its
    # time: its chained operand now comes from a non-neighbour *in the
    # same set*, which costs the memory round trip it never scheduled.
    victim = next(
        nid for nid, (cell, t) in ep.fires.items()
        if cell == 1 and dg.g.nodes[nid].get("tag") == "compute"
    )
    _, t = ep.fires[victim]
    # Find a free slot on cell 3 at the same cycle? Force double-booking
    # instead: the plan validator must catch it.
    ep.fires[victim] = (3, t)
    from repro.arrays.plan import PlanError

    with pytest.raises(PlanError, match="double-booked"):
        ep.validate_exclusive()


def test_skipping_a_gset_is_caught_by_verify_schedule() -> None:
    from repro.core.gsets import ScheduleError, verify_schedule

    gg = GGraph(tc_regular(6), group_by_columns)
    plan = make_linear_gsets(gg, 3)
    order = schedule_gsets(plan)
    with pytest.raises(ScheduleError):
        verify_schedule(plan, order[1:])


def test_correct_graph_passes_all_instances() -> None:
    """Sanity companion to the mutants: the unmutated graph never fails."""
    n = 6
    dg = tc_regular(n)
    for seed in range(6):
        a = random_adjacency(n, 0.25, seed=seed)
        assert np.array_equal(run_graph(dg, a), warshall(a))
    assert np.array_equal(
        run_graph(dg, _some_false_instance(n)), warshall(_some_false_instance(n))
    )
