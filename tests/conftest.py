"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.algorithms.transitive_closure import TC_STAGES, tc_regular
from repro.core.ggraph import GGraph, group_by_columns


@pytest.fixture(autouse=True, scope="session")
def _runlog_sandbox(tmp_path_factory: pytest.TempPathFactory):
    """Keep run ledgers written by tests out of the repo's ``runs/`` dir."""
    if "REPRO_RUNLOG_DIR" not in os.environ:
        d = tmp_path_factory.mktemp("runlog")
        os.environ["REPRO_RUNLOG_DIR"] = str(d)
        yield
        os.environ.pop("REPRO_RUNLOG_DIR", None)
    else:
        yield


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Deterministic RNG for the whole session."""
    return np.random.default_rng(20260705)


@pytest.fixture(scope="session")
def tc_stage_graphs():
    """All five transitive-closure pipeline stages at n=5 (built once)."""
    return {name: ctor(5) for name, ctor in TC_STAGES.items()}


@pytest.fixture(scope="session")
def tc_gg8():
    """The Fig. 17 G-graph at n=8 (built once; reused by many tests)."""
    return GGraph(tc_regular(8), group_by_columns)
