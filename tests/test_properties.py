"""Cross-cutting property-based tests (hypothesis).

These check the invariants the whole reproduction leans on, over
randomised inputs: algebraic properties of the closure, structural
invariants of groupings and plans, legality of randomised schedules, and
generic semantics preservation of the rewrites on synthetic graphs.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.transitive_closure import make_inputs, tc_regular
from repro.algorithms.warshall import random_adjacency, warshall
from repro.core.analysis import max_fanout
from repro.core.evaluate import evaluate
from repro.core.ggraph import GGraph, group_by_columns
from repro.core.graph import DependenceGraph
from repro.core.gsets import (
    make_linear_gsets,
    make_mesh_gsets,
    schedule_gsets,
    verify_schedule,
)
from repro.core.semiring import MIN_PLUS
from repro.core.transform import pipeline_broadcasts
from repro.arrays.cycle_sim import simulate
from repro.arrays.plan import partitioned_plan


# ----------------------------------------------------------------------
# Closure algebra
# ----------------------------------------------------------------------

@given(n=st.integers(2, 10), seed=st.integers(0, 300))
@settings(max_examples=30, deadline=None)
def test_closure_monotone_in_edges(n: int, seed: int) -> None:
    """Adding an edge never removes reachability."""
    rng = np.random.default_rng(seed)
    a = random_adjacency(n, 0.25, seed=seed)
    c1 = warshall(a)
    i, j = rng.integers(0, n, size=2)
    b = a.copy()
    b[i, j] = True
    c2 = warshall(b)
    assert np.all(c2 | ~c1)  # c1 => c2


@given(n=st.integers(2, 9), seed=st.integers(0, 300))
@settings(max_examples=25, deadline=None)
def test_closure_transitive(n: int, seed: int) -> None:
    """i->k and k->j in the closure imply i->j."""
    c = warshall(random_adjacency(n, 0.3, seed=seed))
    ci = c.astype(int)
    assert np.all(((ci @ ci) > 0) <= c)


@given(n=st.integers(2, 8), seed=st.integers(0, 200))
@settings(max_examples=20, deadline=None)
def test_min_plus_triangle_inequality(n: int, seed: int) -> None:
    rng = np.random.default_rng(seed)
    w = np.where(rng.random((n, n)) < 0.5,
                 rng.integers(1, 9, (n, n)).astype(float), np.inf)
    from repro.algorithms.warshall import floyd_warshall_reference

    d = floyd_warshall_reference(w)
    for k in range(n):
        assert np.all(d <= d[:, k][:, None] + d[k, :][None, :] + 1e-9)


# ----------------------------------------------------------------------
# Grouping / plan structural invariants
# ----------------------------------------------------------------------

@given(n=st.integers(3, 9))
@settings(max_examples=10, deadline=None)
def test_ggraph_partitions_slot_nodes(n: int) -> None:
    dg = tc_regular(n)
    gg = GGraph(dg, group_by_columns)
    members = [nid for gn in gg.gnodes.values() for nid in gn.members]
    assert len(members) == len(set(members))
    slot_nodes = [x for x in dg.g.nodes if dg.kind(x).occupies_slot]
    assert sorted(map(str, members)) == sorted(map(str, slot_nodes))
    # Edge weights account for every crossing primitive dependence.
    crossing = sum(
        1
        for u, v in dg.g.edges
        if gg.node_of.get(u) is not None
        and gg.node_of.get(v) is not None
        and gg.node_of[u] != gg.node_of[v]
    )
    assert sum(d["weight"] for _, _, d in gg.g.edges(data=True)) == crossing


@given(
    n=st.integers(4, 9),
    m=st.integers(1, 6),
    aligned=st.booleans(),
)
@settings(max_examples=20, deadline=None)
def test_linear_gsets_cover_exactly_once(n: int, m: int, aligned: bool) -> None:
    gg = GGraph(tc_regular(n), group_by_columns)
    plan = make_linear_gsets(gg, m, aligned=aligned)
    seen = [g for s in plan.gsets for g in s.gids]
    assert sorted(seen) == sorted(gg.gnodes)
    for s in plan.gsets:
        assert 1 <= len(s) <= m
        assert len(set(s.cells)) == len(s.cells)
        assert all(0 <= c < m for c in s.cells)


@given(n=st.integers(4, 9), side=st.integers(1, 3))
@settings(max_examples=15, deadline=None)
def test_mesh_gsets_cover_exactly_once(n: int, side: int) -> None:
    gg = GGraph(tc_regular(n), group_by_columns)
    plan = make_mesh_gsets(gg, side * side)
    seen = [g for s in plan.gsets for g in s.gids]
    assert sorted(seen) == sorted(gg.gnodes)


@given(
    n=st.integers(4, 8),
    m=st.integers(1, 5),
    key_seed=st.integers(0, 10**6),
)
@settings(max_examples=20, deadline=None)
def test_random_priority_schedules_are_legal(n, m, key_seed) -> None:
    """Any priority function yields a legal order (Kahn guarantees it)."""

    def random_key(sid):
        return (hash((sid, key_seed)) % 997,)

    gg = GGraph(tc_regular(n), group_by_columns)
    plan = make_linear_gsets(gg, m)
    order = schedule_gsets(plan, policy=random_key)
    verify_schedule(plan, order)


# ----------------------------------------------------------------------
# Simulator invariants
# ----------------------------------------------------------------------

@given(n=st.integers(4, 8), m=st.integers(2, 4), seed=st.integers(0, 100))
@settings(max_examples=10, deadline=None)
def test_simulation_deterministic(n, m, seed) -> None:
    dg = tc_regular(n)
    gg = GGraph(dg, group_by_columns)
    plan = make_linear_gsets(gg, m)
    ep = partitioned_plan(plan, schedule_gsets(plan))
    env = make_inputs(random_adjacency(n, seed=seed))
    r1 = simulate(ep, dg, env)
    r2 = simulate(ep, dg, env)
    assert r1.outputs == r2.outputs
    assert r1.makespan == r2.makespan
    assert r1.memory_words == r2.memory_words


@given(n=st.integers(4, 8), m=st.integers(1, 4))
@settings(max_examples=10, deadline=None)
def test_makespan_bounds(n, m) -> None:
    """Makespan is bounded below by work/m and the critical path."""
    dg = tc_regular(n)
    gg = GGraph(dg, group_by_columns)
    plan = make_linear_gsets(gg, m)
    ep = partitioned_plan(plan, schedule_gsets(plan))
    env = make_inputs(random_adjacency(n, seed=0))
    res = simulate(ep, dg, env)
    assert res.makespan >= res.busy / m
    assert res.makespan >= dg.critical_path_length()
    assert res.busy == ep.busy_cycles()


@given(n=st.integers(4, 7), seed=st.integers(0, 100))
@settings(max_examples=8, deadline=None)
def test_min_plus_on_array_matches_reference(n, seed) -> None:
    rng = np.random.default_rng(seed)
    w = np.where(rng.random((n, n)) < 0.4,
                 rng.integers(1, 9, (n, n)).astype(float), np.inf)
    dg = tc_regular(n)
    gg = GGraph(dg, group_by_columns)
    plan = make_linear_gsets(gg, 3)
    ep = partitioned_plan(plan, schedule_gsets(plan))
    res = simulate(ep, dg, make_inputs(w, MIN_PLUS), MIN_PLUS)
    from repro.algorithms.warshall import floyd_warshall_reference

    assert np.array_equal(res.output_matrix(n, MIN_PLUS), floyd_warshall_reference(w))


# ----------------------------------------------------------------------
# Generic rewrites on synthetic broadcast graphs
# ----------------------------------------------------------------------

@st.composite
def broadcast_graphs(draw):
    """A random two-layer graph with one value broadcast to many macs."""
    n_inputs = draw(st.integers(2, 5))
    n_consumers = draw(st.integers(3, 8))
    dg = DependenceGraph("synthetic")
    for i in range(n_inputs):
        dg.add_input(("in", i), pos=(0, i))
    src = ("in", 0)
    for c in range(n_consumers):
        a = ("in", draw(st.integers(0, n_inputs - 1)))
        b = ("in", draw(st.integers(0, n_inputs - 1)))
        dg.add_op(("op", c), "mac", {"a": a, "b": b, "c": src}, pos=(1, c))
        dg.add_output(("out", c), ("op", c), pos=(2, c))
    return dg, n_inputs, n_consumers


@given(data=broadcast_graphs(), seed=st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_pipeline_broadcasts_generic(data, seed) -> None:
    dg, n_inputs, n_consumers = data
    rng = np.random.default_rng(seed)
    env = {("in", i): bool(rng.integers(0, 2)) for i in range(n_inputs)}
    before = evaluate(dg, env)
    piped = pipeline_broadcasts(dg, fanout_threshold=1)
    piped.validate()
    after = evaluate(piped, env)
    assert before == after
    assert max_fanout(piped) <= max(1, max_fanout(dg) and 1)


@st.composite
def layered_graphs(draw):
    """Random multi-layer graphs with broadcasts at every layer."""
    layers = draw(st.integers(2, 4))
    width = draw(st.integers(2, 5))
    dg = DependenceGraph("layered")
    prev = []
    for i in range(width):
        nid = ("in", i)
        dg.add_input(nid, pos=(0, i))
        prev.append(nid)
    for layer in range(1, layers + 1):
        # one broadcast source per layer: the first value of the previous
        # layer feeds role c of every node here.
        src = prev[0]
        new = []
        for i in range(width):
            a = prev[draw(st.integers(0, width - 1))]
            b = prev[draw(st.integers(0, width - 1))]
            nid = ("op", layer, i)
            dg.add_op(nid, "mac", {"a": a, "b": b, "c": src}, pos=(layer, i))
            new.append(nid)
        prev = new
    for i, nid in enumerate(prev):
        dg.add_output(("out", i), nid, pos=(layers + 1, i))
    return dg, width


@given(data=layered_graphs(), seed=st.integers(0, 200))
@settings(max_examples=25, deadline=None)
def test_pipeline_broadcasts_multilayer(data, seed) -> None:
    """Generic rewrite on deep graphs: same function, fan-out gone."""
    dg, width = data
    rng = np.random.default_rng(seed)
    env = {("in", i): bool(rng.integers(0, 2)) for i in range(width)}
    before = evaluate(dg, env)
    piped = pipeline_broadcasts(dg, fanout_threshold=1)
    piped.validate()
    assert evaluate(piped, env) == before
    assert max_fanout(piped) <= 1


@given(
    n=st.integers(5, 10),
    m=st.integers(2, 4),
    rate_denom=st.integers(1, 12),
)
@settings(max_examples=12, deadline=None)
def test_rblock_chain_feasible_at_any_rate_with_preload(n, m, rate_denom) -> None:
    """With a free start time, every positive rate <= 1 is feasible."""
    from fractions import Fraction

    from repro.arrays.host import simulate_rblock_chain

    dg = tc_regular(n)
    gg = GGraph(dg, group_by_columns)
    plan = make_linear_gsets(gg, m)
    ep = partitioned_plan(plan, schedule_gsets(plan))
    res = simulate(ep, dg, make_inputs(random_adjacency(n, seed=0)))
    rep = simulate_rblock_chain(res, Fraction(1, rate_denom))
    assert rep.feasible
    assert rep.words == n * n


@given(n=st.integers(5, 9), m=st.integers(2, 4))
@settings(max_examples=10, deadline=None)
def test_rblock_preload_monotone_in_rate(n, m) -> None:
    """Slower hosts must start earlier (preload grows as rate drops)."""
    from fractions import Fraction

    from repro.arrays.host import simulate_rblock_chain

    dg = tc_regular(n)
    gg = GGraph(dg, group_by_columns)
    plan = make_linear_gsets(gg, m)
    ep = partitioned_plan(plan, schedule_gsets(plan))
    res = simulate(ep, dg, make_inputs(random_adjacency(n, seed=1)))
    starts = [
        simulate_rblock_chain(res, Fraction(1, d)).start_time for d in (1, 2, 4)
    ]
    assert starts == sorted(starts, reverse=True)
