"""Static Sec. 5 fault analysis vs. the measured resilient runtime.

``repro.arrays.faults`` *predicts* degraded throughput by re-partitioning
and evaluating schedules; ``repro.resilience`` *measures* it by actually
executing faults.  The two must agree: a fault-free resilient run on the
healthy / degraded partitions reproduces the static analysis' clocks
exactly, and a real fault-driven run can only be slower (it pays
detection, retries and the re-partition on top).
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.algorithms.transitive_closure import make_inputs, tc_regular
from repro.arrays.faults import degraded_linear, degraded_mesh
from repro.core.ggraph import GGraph, group_by_columns
from repro.core.gsets import make_linear_gsets, schedule_gsets
from repro.core.partitioner import partition_transitive_closure
from repro.core.semiring import BOOLEAN
from repro.resilience import (
    FaultKind,
    FaultSpec,
    run_resilient,
    run_resilient_closure,
)

N, M, F = 9, 3, 1


@pytest.fixture(scope="module")
def gg():
    return GGraph(tc_regular(N), group_by_columns)


@pytest.fixture(scope="module")
def matrix():
    rng = np.random.default_rng(3)
    return (rng.random((N, N)) < 0.4).astype(np.int64)


def _measured_clock(gg, m, matrix) -> int:
    """Fault-free resilient run on an ``m``-cell linear partition."""
    plan = make_linear_gsets(gg, m)
    order = schedule_gsets(plan, "vertical")
    result = run_resilient(
        gg.dg, gg, plan, order, make_inputs(matrix, BOOLEAN),
        record_metrics=False,
    )
    assert result.oracle_ok
    return result.total_cycles


def test_static_clocks_match_measured_fault_free_runs(gg, matrix) -> None:
    report = degraded_linear(gg, M, F)
    assert _measured_clock(gg, M, matrix) == report.healthy_time
    assert _measured_clock(gg, M - F, matrix) == report.degraded_time


def test_static_retention_equals_measured_throughput_ratio(gg, matrix) -> None:
    report = degraded_linear(gg, M, F)
    healthy = _measured_clock(gg, M, matrix)
    degraded = _measured_clock(gg, M - F, matrix)
    assert Fraction(healthy, degraded) == report.retention
    assert report.retention <= 1
    assert report.slowdown == 1 / report.retention


def test_fault_driven_run_is_bounded_by_the_static_prediction(
    gg, matrix
) -> None:
    """A real permanent fault pays recovery overhead on top of the
    degraded schedule, so its measured throughput is at most the static
    retention and its clock at least the static degraded time."""
    report = degraded_linear(gg, M, F)
    impl = partition_transitive_closure(n=N, m=M)
    spec = FaultSpec(kind=FaultKind.PERMANENT, cell=1, onset=0)
    result = run_resilient_closure(
        impl, matrix, faults=[spec], record_metrics=False
    )
    assert result.oracle_ok and result.repartitions == 1
    assert result.healthy_cycles == report.healthy_time
    assert result.total_cycles >= report.degraded_time
    assert result.degraded_throughput <= report.retention


def test_mesh_static_report_is_consistent() -> None:
    gg8 = GGraph(tc_regular(8), group_by_columns)
    report = degraded_mesh(gg8, 4, 1)
    assert report.cells_lost == 2  # one fault retires a whole 1x2 row
    assert report.retention <= 1
    assert report.retention * report.slowdown == 1
