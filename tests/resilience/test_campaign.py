"""Seeded campaigns: determinism, the CI gate shape, and fault planning."""

from __future__ import annotations

import json
import random

import pytest

from repro.resilience import (
    CAMPAIGN_CONFIGS,
    FaultKind,
    build_design,
    campaign_config,
    plan_fault,
    run_campaign,
)


def test_campaign_is_deterministic_across_replays() -> None:
    kw = dict(seed=3, configs=["linear-n9-m3"], record_metrics=False)
    first = run_campaign(**kw)
    second = run_campaign(**kw)
    assert first.to_dict() == second.to_dict()


def test_campaign_subset_gate() -> None:
    result = run_campaign(
        seed=0, configs=["linear-n9-m3", "mesh-n8-m4"], record_metrics=False
    )
    assert len(result.runs) == 2 * len(FaultKind)
    assert result.ok, result.to_text()
    for r in result.runs:
        assert r.injected and r.detected and r.recovered and r.oracle_ok


def test_kinds_filter_and_string_coercion() -> None:
    result = run_campaign(
        seed=1, configs=["linear-n9-m3"], kinds=["transient"],
        record_metrics=False,
    )
    assert [r.kind for r in result.runs] == ["transient"]
    assert result.ok


def test_permanent_runs_repartition() -> None:
    result = run_campaign(
        seed=0, configs=["linear-n12-m4"], kinds=[FaultKind.PERMANENT],
        record_metrics=False,
    )
    (r,) = result.runs
    assert r.repartitions == 1
    assert r.overhead_cycles > 0
    assert 0 < r.degraded_throughput < 1


def test_result_renders_as_text_and_json() -> None:
    result = run_campaign(
        seed=0, configs=["linear-n9-m3"], kinds=["dropped_word"],
        record_metrics=False,
    )
    text = result.to_text()
    assert "linear-n9-m3" in text and "runs ok" in text
    doc = json.loads(json.dumps(result.to_dict()))
    assert doc["ok"] is True and doc["seed"] == 0
    assert doc["runs"][0]["kind"] == "dropped_word"


def test_unknown_config_raises_with_available_names() -> None:
    with pytest.raises(KeyError, match="available"):
        campaign_config("nope")


def test_shipped_configs_cover_both_geometries_and_all_policies() -> None:
    names = {c.name for c in CAMPAIGN_CONFIGS}
    assert len(names) == len(CAMPAIGN_CONFIGS) == 7
    assert any(c.geometry == "mesh" for c in CAMPAIGN_CONFIGS)
    assert any(not c.aligned for c in CAMPAIGN_CONFIGS)
    assert any(c.memory_aware for c in CAMPAIGN_CONFIGS)
    assert any(c.policy == "horizontal" for c in CAMPAIGN_CONFIGS)


def test_plan_fault_targets_are_guaranteed_to_fire() -> None:
    design = build_design(campaign_config("linear-n9-m3"))
    for kind in FaultKind:
        spec = plan_fault(design, kind, random.Random(f"t:{kind.value}"))
        assert spec.kind is kind
        if kind is FaultKind.PERMANENT:
            assert spec.cell is not None
        else:
            assert spec.node is not None and spec.node in design.dg


def test_campaign_records_per_run_verdict_metric() -> None:
    from repro.obs.metrics import get_registry

    counter = get_registry().counter("repro_fault_campaign_runs_total")
    before = counter.value(config="linear-n9-m3", kind="transient", ok=True)
    run_campaign(seed=2, configs=["linear-n9-m3"], kinds=["transient"])
    after = counter.value(config="linear-n9-m3", kind="transient", ok=True)
    assert after == before + 1
