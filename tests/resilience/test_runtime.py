"""The resilient executor: fault-free fidelity, recovery paths, metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.warshall import warshall
from repro.arrays.plan import partitioned_plan
from repro.core.partitioner import partition_transitive_closure
from repro.resilience import (
    FaultKind,
    FaultSpec,
    run_resilient,
    run_resilient_closure,
)


@pytest.fixture(scope="module")
def impl():
    return partition_transitive_closure(n=9, m=3)


@pytest.fixture(scope="module")
def matrix():
    rng = np.random.default_rng(11)
    return (rng.random((9, 9)) < 0.4).astype(np.int64)


def run(impl, a, **kw):
    kw.setdefault("record_metrics", False)
    return run_resilient_closure(impl, a, **kw)


# ----------------------------------------------------------------------
# Fault-free fidelity: the resilient runtime IS the partitioned plan
# ----------------------------------------------------------------------
def test_fault_free_run_matches_partitioned_plan_exactly(impl, matrix) -> None:
    result = run(impl, matrix)
    ep = partitioned_plan(impl.plan, impl.order)
    assert result.fire_cycles == {
        nid: t for nid, (_cell, t) in ep.fires.items()
    }
    assert result.total_cycles == result.healthy_cycles
    assert result.overhead_cycles == 0
    assert result.degraded_throughput == 1


def test_fault_free_run_is_oracle_correct(impl, matrix) -> None:
    result = run(impl, matrix)
    assert result.oracle_ok
    np.testing.assert_array_equal(
        result.output_matrix(9), warshall(matrix)
    )


def test_fault_free_timeline_is_all_commits(impl, matrix) -> None:
    result = run(impl, matrix)
    assert result.timeline
    assert {ev.kind for ev in result.timeline} == {"gset"}
    assert not result.detections
    assert result.retries == 0 and result.repartitions == 0
    assert result.retired_cells == frozenset()
    assert result.final_m == 3
    assert result.words_parked > 0


# ----------------------------------------------------------------------
# The three recovery paths
# ----------------------------------------------------------------------
def test_transient_fault_is_retried_once(impl, matrix) -> None:
    node = next(
        nid for nid in impl.dg.topological_order()
        if impl.dg.kind(nid).occupies_slot
    )
    spec = FaultSpec(kind=FaultKind.TRANSIENT, node=node)
    result = run(impl, matrix, faults=[spec])
    assert spec.triggered
    assert [d.reason for d in result.detections] == ["signature_mismatch"]
    assert result.retries == 1
    assert result.repartitions == 0
    assert result.recovered and result.oracle_ok
    assert result.overhead_cycles > 0
    assert result.degraded_throughput < 1


def test_dropped_word_is_caught_by_the_watchdog(impl, matrix) -> None:
    node = next(nid for nid in impl.dg.inputs if impl.dg.consumers(nid))
    spec = FaultSpec(kind=FaultKind.DROPPED_WORD, node=node)
    result = run(impl, matrix, faults=[spec])
    assert spec.triggered
    assert [d.reason for d in result.detections] == ["dropped_word"]
    assert result.detections[0].cells == ()  # channel fault, no cell
    assert result.retries == 1 and result.repartitions == 0
    assert result.recovered and result.oracle_ok


def test_permanent_fault_retires_the_cell_and_repartitions(impl, matrix) -> None:
    spec = FaultSpec(kind=FaultKind.PERMANENT, cell=1, onset=40)
    result = run(impl, matrix, faults=[spec])
    assert spec.triggered
    assert result.repartitions == 1
    assert result.retired_cells == frozenset({1})
    assert result.final_m == 2
    assert result.recovered and result.oracle_ok
    kinds = [ev.kind for ev in result.timeline]
    assert "repartition" in kinds and "retry" in kinds
    np.testing.assert_array_equal(
        result.output_matrix(9), warshall(matrix)
    )


def test_mesh_permanent_fault_retires_a_row() -> None:
    impl = partition_transitive_closure(n=8, m=4, geometry="mesh")
    rng = np.random.default_rng(5)
    a = (rng.random((8, 8)) < 0.4).astype(np.int64)
    spec = FaultSpec(kind=FaultKind.PERMANENT, cell=(0, 1), onset=0)
    result = run(impl, a, faults=[spec])
    assert result.repartitions == 1
    assert result.final_m == 2  # 2x2 mesh -> one surviving 1x2 row
    assert result.recovered and result.oracle_ok


# ----------------------------------------------------------------------
# run_resilient (the raw entry point) and metrics
# ----------------------------------------------------------------------
def test_run_resilient_raw_entry_point(impl, matrix) -> None:
    from repro.algorithms.transitive_closure import make_inputs

    inputs = make_inputs(matrix, impl.semiring)
    result = run_resilient(
        impl.dg, impl.gg, impl.plan, list(impl.order), inputs,
        semiring=impl.semiring, record_metrics=False,
    )
    assert result.oracle_ok
    assert result.total_cycles == result.healthy_cycles


def test_metrics_are_recorded(impl, matrix) -> None:
    from repro.obs.metrics import get_registry

    reg = get_registry()
    design = {"design": "runtime-metrics-test"}
    injected = reg.counter("repro_fault_injected_total")
    detected = reg.counter("repro_fault_detected_total")
    recovered = reg.counter("repro_fault_recovered_total")
    before = (
        injected.value(kind="transient", **design),
        detected.value(**design),
        recovered.value(**design),
    )

    node = next(
        nid for nid in impl.dg.topological_order()
        if impl.dg.kind(nid).occupies_slot
    )
    spec = FaultSpec(kind=FaultKind.TRANSIENT, node=node)
    run(
        impl, matrix, faults=[spec], record_metrics=True,
        description="runtime-metrics-test",
    )

    assert injected.value(kind="transient", **design) == before[0] + 1
    assert detected.value(**design) == before[1] + 1
    assert recovered.value(**design) == before[2] + 1
    assert reg.gauge("repro_fault_degraded_throughput").value(**design) < 1


def test_recovery_trace_events_are_schema_valid(impl, matrix) -> None:
    from repro.resilience import timeline_chrome_events
    from repro.resilience.report import RESILIENCE_PID

    spec = FaultSpec(kind=FaultKind.PERMANENT, cell=0, onset=0)
    result = run(impl, matrix, faults=[spec])
    events = timeline_chrome_events(result)
    assert any(e["ph"] == "M" for e in events)
    xs = [e for e in events if e["ph"] == "X"]
    assert xs and all(e["dur"] >= 1 and e["pid"] == RESILIENCE_PID for e in xs)
    cats = {e["cat"] for e in xs}
    assert "resilience.repartition" in cats and "resilience.gset" in cats
    marks = [e for e in events if e["ph"] == "i"]
    assert len(marks) == len(result.detections)
