"""Failure regimes: deterministic plans, the escalation ladder, and the
graceful-degradation tier.

Covers the tentpole contracts:

* same seed => byte-identical :class:`FaultPlan` renderings and
  campaign run dicts, sequential vs ``--jobs 2``, reference vs vector;
* the issue's edge cases — a transient burst straddling a G-set
  boundary, a correlated cluster containing an entire mesh row, and a
  quarantine triggered on the final G-set;
* zero ``RecoveryExhausted`` escapes from seed-0 regime campaigns: every
  cell recovers on-array or completes via the host-side degradation
  tier with oracle-verified output.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.partitioner import partition_transitive_closure
from repro.resilience import (
    ADAPTIVE_POLICY,
    FaultKind,
    FaultSpec,
    RecoveryPolicy,
    REGIME_NAMES,
    BurstyRegime,
    CorrelatedRegime,
    HammerRegime,
    make_regime,
    run_campaign,
    run_resilient_closure,
)
from repro.resilience.campaign import build_design, campaign_config


@pytest.fixture(scope="module")
def linear_design():
    return build_design(campaign_config("linear-n9-m3"))


@pytest.fixture(scope="module")
def mesh_design():
    return build_design(campaign_config("mesh-n12-m9"))


# ----------------------------------------------------------------------
# Plan determinism and structure
# ----------------------------------------------------------------------

@pytest.mark.parametrize("name", REGIME_NAMES)
def test_plans_are_seed_deterministic(linear_design, name) -> None:
    regime = make_regime(name)
    one = regime.plan(linear_design, random.Random(f"0:linear-n9-m3:{name}"))
    two = regime.plan(linear_design, random.Random(f"0:linear-n9-m3:{name}"))
    assert one.to_dict() == two.to_dict()
    other = regime.plan(linear_design, random.Random(f"1:linear-n9-m3:{name}"))
    assert one.to_dict() != other.to_dict() or one.faults == other.faults


@pytest.mark.parametrize("name", REGIME_NAMES)
def test_plans_are_never_empty(linear_design, mesh_design, name) -> None:
    for design in (linear_design, mesh_design):
        plan = make_regime(name).plan(design, random.Random(f"7:{name}"))
        assert plan.faults
        assert plan.regime == name


def test_correlated_cluster_is_within_radius(mesh_design) -> None:
    regime = CorrelatedRegime(radius=1)
    plan = regime.plan(mesh_design, random.Random("0:corr"))
    cells = [f.cell for f in plan.faults]
    assert all(f.kind is FaultKind.PERMANENT for f in plan.faults)
    epicenter = next(
        c for c in cells
        if repr(c) == dict(plan.params)["epicenter"]
    )
    for (r, c) in cells:
        assert abs(r - epicenter[0]) + abs(c - epicenter[1]) <= 1


def test_correlated_cluster_covers_a_whole_mesh_row(mesh_design) -> None:
    """Edge case: with a big enough radius the cluster contains at least
    one entire 3-cell mesh row — the retirement unit of the mesh
    recovery path."""
    regime = CorrelatedRegime(radius=2)
    plan = regime.plan(mesh_design, random.Random("0:corr-row"))
    cells = {f.cell for f in plan.faults}
    rows = {r for (r, _c) in cells}
    full_rows = [
        r for r in rows if all((r, c) in cells for c in range(3))
    ]
    assert full_rows, f"no complete row in cluster {sorted(cells)}"


def test_bursty_walks_the_gilbert_elliott_chain(linear_design) -> None:
    regime = BurstyRegime(p_enter=1.0, p_exit=0.0, p_corrupt=1.0, max_faults=4)
    plan = regime.plan(linear_design, random.Random("0:burst"))
    assert len(plan.faults) == 4
    assert all(f.kind is FaultKind.TRANSIENT for f in plan.faults)


def test_hammer_targets_one_cell_across_distinct_gsets(linear_design) -> None:
    regime = HammerRegime(strikes=3)
    plan = regime.plan(linear_design, random.Random("0:hammer"))
    assert len(plan.faults) == 3
    fires = {
        nid: cell
        for nid, (cell, _t) in __import__(
            "repro.arrays.plan", fromlist=["partitioned_plan"]
        ).partitioned_plan(linear_design.plan, linear_design.order).fires.items()
    }
    struck = {fires[f.node] for f in plan.faults}
    assert len(struck) == 1, "hammer must stay on one physical cell"


def test_make_regime_rejects_unknown_names() -> None:
    with pytest.raises(KeyError, match="unknown failure regime"):
        make_regime("meteor")


def test_make_regime_filters_irrelevant_knobs() -> None:
    regime = make_regime("hammer", strikes=6, radius=3, p_enter=None)
    assert isinstance(regime, HammerRegime)
    assert regime.strikes == 6


def test_plan_specs_are_fresh_copies(linear_design) -> None:
    plan = make_regime("bursty").plan(linear_design, random.Random("s"))
    first = plan.specs()
    first[0].triggered = True
    assert not plan.faults[0].triggered
    assert not plan.specs()[0].triggered


# ----------------------------------------------------------------------
# Escalation ladder, degradation tier, provenance
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def impl():
    return partition_transitive_closure(n=9, m=3)


@pytest.fixture(scope="module")
def matrix():
    rng = np.random.default_rng(23)
    return (rng.random((9, 9)) < 0.4).astype(np.int64)


def _members_by_cell(impl, s) -> dict:
    by_cell: dict = {}
    for gid, cell in zip(s.gids, s.cells):
        by_cell.setdefault(cell, []).extend(impl.gg.gnodes[gid].members)
    return by_cell


def test_quarantine_escalates_before_budget_burns(impl, matrix) -> None:
    """Repeated transients on one cell: no single detection looks
    permanent, but the cumulative strike count trips the ladder — the
    cell is quarantined and re-partitioned around, not retried forever."""
    policy = RecoveryPolicy(
        max_retries=4, permanent_threshold=99, quarantine_strikes=2,
    )
    cell = 1
    specs = []
    for s in impl.order:
        by_cell = _members_by_cell(impl, s)
        if cell in by_cell and len(specs) < 2:
            specs.append(
                FaultSpec(kind=FaultKind.TRANSIENT, node=by_cell[cell][0])
            )
    assert len(specs) == 2
    result = run_resilient_closure(
        impl, matrix, faults=specs, policy=policy, record_metrics=False
    )
    assert result.recovered and result.oracle_ok
    assert len(result.escalations) == 1
    esc = result.escalations[0]
    assert esc.provenance == "escalated"
    assert esc.cell == cell
    assert ", escalated" in esc.describe()
    assert result.retired_cells == frozenset({cell})
    assert result.scoreboard[cell].state == "quarantined"
    assert result.scoreboard[cell].strikes == 2


def test_quarantine_on_final_gset(impl, matrix) -> None:
    """Edge case: the ladder trips on the very last G-set — the
    re-partition still lands before the outputs are read."""
    policy = RecoveryPolicy(permanent_threshold=99, quarantine_strikes=1)
    last = impl.order[-1]
    by_cell = _members_by_cell(impl, last)
    cell = sorted(by_cell, key=repr)[0]
    spec = FaultSpec(kind=FaultKind.TRANSIENT, node=by_cell[cell][0])
    result = run_resilient_closure(
        impl, matrix, faults=[spec], policy=policy, record_metrics=False
    )
    assert result.recovered and result.oracle_ok
    assert [d.sid for d in result.detections] == [last.sid]
    assert len(result.escalations) == 1
    assert result.escalations[0].cell == cell
    assert result.repartitions == 1


def test_burst_spanning_gset_boundary(impl, matrix) -> None:
    """Edge case: one burst corrupts firings in two consecutive G-sets —
    each set detects and retries independently, and both recover."""
    first, second = impl.order[0], impl.order[1]
    specs = [
        FaultSpec(
            kind=FaultKind.TRANSIENT,
            node=next(iter(_members_by_cell(impl, first).values()))[0],
        ),
        FaultSpec(
            kind=FaultKind.TRANSIENT,
            node=next(iter(_members_by_cell(impl, second).values()))[0],
        ),
    ]
    result = run_resilient_closure(
        impl, matrix, faults=specs, record_metrics=False
    )
    assert result.recovered and result.oracle_ok
    assert [d.sid for d in result.detections] == [first.sid, second.sid]
    assert result.retries == 2


def test_degradation_on_retry_exhaustion(impl, matrix) -> None:
    """With diagnosis disabled and the budget gone, ``degrade=True``
    retires the set to the host instead of raising RecoveryExhausted."""
    policy = RecoveryPolicy(
        max_retries=1, permanent_threshold=99, degrade=True,
    )
    spec = FaultSpec(kind=FaultKind.PERMANENT, cell=0, onset=0)
    result = run_resilient_closure(
        impl, matrix, faults=[spec], policy=policy, record_metrics=False
    )
    assert result.oracle_ok
    assert result.degraded
    assert result.degraded_nodes > 0
    assert any(ev.kind == "degrade" for ev in result.timeline)
    assert result.mttr_cycles is not None and result.mttr_cycles > 0


def test_host_only_mode_when_no_cells_survive(matrix) -> None:
    """A cluster killing every cell: the re-partition is impossible, the
    array is written off, and every remaining set completes host-side."""
    impl2 = partition_transitive_closure(n=6, m=2)
    a = (np.random.default_rng(5).random((6, 6)) < 0.4).astype(np.int64)
    specs = [
        FaultSpec(kind=FaultKind.PERMANENT, cell=0, onset=0),
        FaultSpec(kind=FaultKind.PERMANENT, cell=1, onset=0),
    ]
    policy = RecoveryPolicy(permanent_threshold=2, degrade=True)
    result = run_resilient_closure(
        impl2, a, faults=specs, policy=policy, record_metrics=False
    )
    assert result.oracle_ok
    assert result.degraded
    assert result.retired_cells == frozenset({0, 1})
    reasons = {
        ev.detail.split(":")[0]
        for ev in result.timeline if ev.kind == "degrade"
    }
    assert "no_survivors" in reasons
    assert float(result.availability) < 1.0


def test_degrade_false_still_raises(impl, matrix) -> None:
    """The legacy contract is untouched: without the tier the budget
    exhaustion is still a structured RecoveryExhausted."""
    from repro.resilience import RecoveryExhausted

    policy = RecoveryPolicy(max_retries=1, permanent_threshold=99)
    spec = FaultSpec(kind=FaultKind.PERMANENT, cell=0, onset=0)
    with pytest.raises(RecoveryExhausted):
        run_resilient_closure(
            impl, matrix, faults=[spec], policy=policy, record_metrics=False
        )


def test_injected_provenance_is_quiet_in_describe() -> None:
    spec = FaultSpec(kind=FaultKind.TRANSIENT, node="x")
    assert spec.provenance == "injected"
    assert "injected" not in spec.describe()


def test_fault_free_run_has_clean_scoreboard(impl, matrix) -> None:
    result = run_resilient_closure(impl, matrix, record_metrics=False)
    assert not result.degraded
    assert result.mttr_cycles is None
    assert float(result.availability) == 1.0
    assert all(h.state == "healthy" for h in result.scoreboard.values())
    assert float(result.slowdown) == 1.0


# ----------------------------------------------------------------------
# Regime campaigns: the CI gate's contract
# ----------------------------------------------------------------------

CONFIGS = ["linear-n9-m3", "mesh-n8-m4"]


@pytest.mark.parametrize("name", REGIME_NAMES)
def test_seed0_regime_campaign_recovers_or_degrades(name) -> None:
    result = run_campaign(
        seed=0, configs=CONFIGS, regime=name, record_metrics=False
    )
    assert result.ok, [r.to_dict() for r in result.runs if not r.ok]
    for r in result.runs:
        assert r.error is None, "zero RecoveryExhausted escapes"
        assert r.injected and r.detected and r.oracle_ok
        assert r.recovered or r.degraded
        assert r.regime == name


def test_regime_campaign_deterministic_across_jobs_and_backends() -> None:
    kw = dict(seed=0, configs=CONFIGS, regime="hammer", record_metrics=False)
    seq = run_campaign(**kw)
    par = run_campaign(jobs=2, **kw)
    vec = run_campaign(backend="vector", **kw)
    as_dicts = lambda res: [r.to_dict() for r in res.runs]  # noqa: E731
    assert as_dicts(seq) == as_dicts(par)
    assert as_dicts(seq) == as_dicts(vec)


def test_regime_campaign_uses_adaptive_policy_by_default() -> None:
    """Hammer under the default (non-adaptive) policy would just retry;
    under ADAPTIVE_POLICY the ladder quarantines."""
    result = run_campaign(
        seed=0, configs=["linear-n9-m3"], regime="hammer",
        record_metrics=False,
    )
    (run,) = result.runs
    assert run.quarantined >= 1
    assert ADAPTIVE_POLICY.quarantine_strikes > 0


def test_regime_summary_aggregates(monkeypatch) -> None:
    result = run_campaign(
        seed=0, configs=CONFIGS, regime=list(REGIME_NAMES),
        record_metrics=False,
    )
    summary = result.regime_summary()
    assert set(summary["regimes"]) == set(REGIME_NAMES)
    for name, g in summary["regimes"].items():
        assert g["runs"] == len(CONFIGS)
        assert g["ok"] == g["runs"]
        assert g["recovered"] + g["degraded"] >= 1
    assert summary["ok"] is True


def test_classic_campaign_runs_have_no_regime_fields() -> None:
    result = run_campaign(
        seed=0, configs=["linear-n9-m3"], kinds=["transient"],
        record_metrics=False,
    )
    (run,) = result.runs
    assert run.regime is None
    assert "regime" not in run.to_dict()
