"""Resilience edge cases: boundary faults, fault pairs, exhausted budgets,
and the static fault model's validation errors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.transitive_closure import tc_regular
from repro.arrays.faults import degraded_linear, degraded_mesh
from repro.core.ggraph import GGraph, group_by_columns
from repro.core.partitioner import partition_transitive_closure
from repro.resilience import (
    FaultKind,
    FaultSpec,
    RecoveryExhausted,
    RecoveryPolicy,
    run_resilient_closure,
)


@pytest.fixture(scope="module")
def impl():
    return partition_transitive_closure(n=9, m=3)


@pytest.fixture(scope="module")
def matrix():
    rng = np.random.default_rng(13)
    return (rng.random((9, 9)) < 0.4).astype(np.int64)


def _members_by_cell(impl, s) -> dict:
    """Uncommitted slot nodes of G-set ``s``, keyed by executing cell."""
    by_cell: dict = {}
    for gid, cell in zip(s.gids, s.cells):
        by_cell.setdefault(cell, []).extend(impl.gg.gnodes[gid].members)
    return by_cell


def test_fault_at_cycle_zero(impl, matrix) -> None:
    """A cell dead before the very first firing: detected on the first
    G-set, retired, and the whole run completes on the survivors."""
    spec = FaultSpec(kind=FaultKind.PERMANENT, cell=0, onset=0)
    result = run_resilient_closure(
        impl, matrix, faults=[spec], record_metrics=False
    )
    assert result.detections[0].sid == impl.order[0].sid
    assert result.repartitions == 1
    assert result.retired_cells == frozenset({0})
    assert result.recovered and result.oracle_ok


def test_fault_in_final_gset(impl, matrix) -> None:
    """Nothing left to hide behind: the last set's retry still lands
    before the outputs are read, and the oracle still passes."""
    last = impl.order[-1]
    node = next(iter(_members_by_cell(impl, last).values()))[0]
    spec = FaultSpec(kind=FaultKind.TRANSIENT, node=node)
    result = run_resilient_closure(
        impl, matrix, faults=[spec], record_metrics=False
    )
    assert [d.sid for d in result.detections] == [last.sid]
    assert result.retries == 1
    assert result.recovered and result.oracle_ok


def test_two_faults_in_same_gset_isolates_the_permanent(impl, matrix) -> None:
    """A transient and a permanent hitting the same G-set: the first
    detection implicates both cells, the retry re-triggers only the
    permanent — the diagnosis intersection retires exactly the dead
    cell, not the transiently-hit one."""
    first = impl.order[0]
    by_cell = _members_by_cell(impl, first)
    transient_cell = next(c for c in sorted(by_cell, key=repr) if c != 1)
    specs = [
        FaultSpec(kind=FaultKind.TRANSIENT, node=by_cell[transient_cell][0]),
        FaultSpec(kind=FaultKind.PERMANENT, cell=1, onset=0),
    ]
    result = run_resilient_closure(
        impl, matrix, faults=specs, record_metrics=False
    )
    assert all(f.triggered for f in specs)
    assert result.detected_fault_count == 2
    assert result.retired_cells == frozenset({1})
    assert result.repartitions == 1
    assert result.recovered and result.oracle_ok


def test_retry_budget_exhausted_is_structured(impl, matrix) -> None:
    """With diagnosis disabled a permanent fault burns the retry budget;
    the structured error names the set, the attempts, and the last
    detection."""
    policy = RecoveryPolicy(max_retries=1, permanent_threshold=99)
    spec = FaultSpec(kind=FaultKind.PERMANENT, cell=0, onset=0)
    with pytest.raises(RecoveryExhausted) as ei:
        run_resilient_closure(
            impl, matrix, faults=[spec], policy=policy, record_metrics=False
        )
    err = ei.value
    assert err.sid == impl.order[0].sid
    assert err.attempts == policy.max_retries + 1
    assert err.last_detection is not None
    assert err.last_detection.reason == "signature_mismatch"
    assert "retry budget" in str(err)


def test_degraded_mesh_rejects_non_square_m() -> None:
    gg = GGraph(tc_regular(8), group_by_columns)
    with pytest.raises(ValueError, match="square"):
        degraded_mesh(gg, 8)


def test_degraded_mesh_rejects_too_many_failures() -> None:
    gg = GGraph(tc_regular(9), group_by_columns)
    with pytest.raises(ValueError, match="failures"):
        degraded_mesh(gg, 9, failures=3)  # 3x3 mesh: < 3 row losses only
    with pytest.raises(ValueError, match="failures"):
        degraded_mesh(gg, 9, failures=-1)


def test_degraded_linear_rejects_failures_out_of_range() -> None:
    gg = GGraph(tc_regular(9), group_by_columns)
    with pytest.raises(ValueError, match="failures"):
        degraded_linear(gg, 3, failures=3)
