"""CheckpointStore semantics: commits park words, mark nodes, keep clocks."""

from __future__ import annotations

import pytest

from repro.resilience import CheckpointStore


def test_commit_parks_and_marks() -> None:
    store = CheckpointStore()
    assert not store.has("a")
    store.commit(
        (0,), ["a", "b"], {("a", "out"): 1, ("b", "fwd"): 0},
        {"a": 3, "b": 4},
    )
    assert store.has("a") and store.has("b")
    assert store.read("a", "out") == 1
    assert store.read("b", "fwd") == 0
    assert store.fire_cycle == {"a": 3, "b": 4}
    assert store.committed_sids == [(0,)]
    assert store.words_written == 2


def test_words_written_accumulates_across_commits() -> None:
    store = CheckpointStore()
    store.commit((0,), ["a"], {("a", "out"): 1}, {"a": 0})
    store.commit((1,), ["b"], {("b", "out"): 1, ("b", "fwd"): 1}, {"b": 5})
    assert store.words_written == 3
    assert store.committed_sids == [(0,), (1,)]
    assert store.committed_nodes == {"a", "b"}


def test_read_unparked_word_raises() -> None:
    store = CheckpointStore()
    store.commit((0,), ["a"], {("a", "out"): 1}, {"a": 0})
    with pytest.raises(KeyError):
        store.read("a", "fwd")
    with pytest.raises(KeyError):
        store.read("b", "out")
