"""Parallel campaigns: worker processes must change nothing observable."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry, get_registry, set_registry
from repro.resilience import run_campaign


@pytest.fixture()
def fresh_registry():
    previous = get_registry()
    reg = MetricsRegistry()
    set_registry(reg)
    yield reg
    set_registry(previous)


def _campaign_metrics(reg: MetricsRegistry) -> dict:
    return reg.to_json()


def test_parallel_runs_and_metrics_match_sequential(fresh_registry) -> None:
    configs = ["linear-n9-m3", "mesh-n8-m4"]
    seq = run_campaign(seed=1, configs=configs)
    seq_metrics = _campaign_metrics(fresh_registry)

    reg2 = MetricsRegistry()
    set_registry(reg2)
    par = run_campaign(seed=1, configs=configs, jobs=2)
    par_metrics = _campaign_metrics(reg2)

    assert par.to_dict() == seq.to_dict()
    assert par_metrics == seq_metrics


def test_parallel_result_order_follows_config_order() -> None:
    configs = ["mesh-n8-m4", "linear-n9-m3"]
    result = run_campaign(
        seed=0, configs=configs, jobs=2, record_metrics=False
    )
    seen = []
    for run in result.runs:
        if run.config not in seen:
            seen.append(run.config)
    assert seen == configs


def test_vector_backend_campaign_matches_reference() -> None:
    kw = dict(seed=0, configs=["linear-n9-m3"], record_metrics=False)
    ref = run_campaign(backend="reference", **kw)
    vec = run_campaign(backend="vector", **kw)
    assert vec.to_dict() == ref.to_dict()
    assert vec.ok
