"""Satellite: a ``--jobs 2`` campaign ledger must match the sequential one.

Event content and order must be byte-identical modulo the wall-clock
fields (``ts`` / ``dur_s`` / ``compile_s``), the two runs must share one
run ID (parallelism degree is not part of the run's identity), and
``repro obs verify`` must find both ledgers clean.
"""

from __future__ import annotations

import pytest

from repro.obs import runlog
from repro.obs.metrics import MetricsRegistry, get_registry, set_registry
from repro.resilience import run_campaign

CONFIGS = ["linear-n9-m3", "mesh-n8-m4"]


@pytest.fixture()
def _quiet_registry():
    previous = get_registry()
    set_registry(MetricsRegistry())
    yield
    set_registry(previous)


def _campaign_ledger(tmp_path, monkeypatch, name: str, jobs):
    d = tmp_path / name
    monkeypatch.setenv("REPRO_RUNLOG_DIR", str(d))
    result = run_campaign(
        seed=0, configs=CONFIGS, jobs=jobs, record_metrics=False
    )
    assert result.ok
    paths = sorted(d.glob("*.jsonl"))
    assert len(paths) == 1, "one campaign -> one ledger file"
    events, problems = runlog.read_ledger(paths[0])
    assert problems == []
    return paths[0], events


def test_parallel_ledger_matches_sequential(
    tmp_path, monkeypatch, _quiet_registry
) -> None:
    seq_path, seq = _campaign_ledger(tmp_path, monkeypatch, "seq", None)
    par_path, par = _campaign_ledger(tmp_path, monkeypatch, "par", 2)

    # Same semantic parameters -> same run ID, jobs notwithstanding.
    assert seq_path.name == par_path.name

    # Integrity-clean on both sides (the `repro obs verify` check).
    assert runlog.verify_ledger(seq) == []
    assert runlog.verify_ledger(par) == []

    # Content-identical modulo wall-clock fields — same events, same
    # order, same task attribution, same payloads.
    assert runlog.strip_nondeterministic(par) == (
        runlog.strip_nondeterministic(seq)
    )


def test_campaign_ledger_covers_pipeline_events(
    tmp_path, monkeypatch, _quiet_registry
) -> None:
    _, events = _campaign_ledger(tmp_path, monkeypatch, "cov", 2)
    kinds = {ev["event"] for ev in events}
    assert {
        "run_start", "run_end", "stage_start", "stage_end", "lint",
        "plan_cache", "backend", "fault_inject", "fault_detect",
        "fault_recover", "checkpoint", "repartition", "oracle",
    } <= kinds
    # Every worker's events landed under the one campaign run ID.
    run_ids = {ev["run"] for ev in events}
    assert len(run_ids) == 1
    tasks = {ev["task"] for ev in events if ev["task"] is not None}
    assert tasks == set(CONFIGS)


def _regime_ledger(tmp_path, monkeypatch, name: str, jobs):
    d = tmp_path / name
    monkeypatch.setenv("REPRO_RUNLOG_DIR", str(d))
    result = run_campaign(
        seed=0, configs=CONFIGS, regime=["correlated", "hammer"],
        jobs=jobs, record_metrics=False,
    )
    assert result.ok
    paths = sorted(d.glob("*.jsonl"))
    assert len(paths) == 1
    events, problems = runlog.read_ledger(paths[0])
    assert problems == []
    return paths[0], events


def test_regime_campaign_ledger_parity(
    tmp_path, monkeypatch, _quiet_registry
) -> None:
    """The regime matrix keeps the same ledger guarantees as the classic
    kind matrix: one file, jobs-independent run ID, deterministic
    content, and the new ladder events present and attributed."""
    seq_path, seq = _regime_ledger(tmp_path, monkeypatch, "rseq", None)
    par_path, par = _regime_ledger(tmp_path, monkeypatch, "rpar", 2)

    assert seq_path.name == par_path.name
    assert runlog.verify_ledger(seq) == []
    assert runlog.strip_nondeterministic(par) == (
        runlog.strip_nondeterministic(seq)
    )

    kinds = {ev["event"] for ev in seq}
    assert {"fault_regime", "quarantine"} <= kinds
    regimes = {
        ev["regime"] for ev in seq if ev["event"] == "fault_regime"
    }
    assert regimes == {"correlated", "hammer"}


def test_regime_campaign_has_distinct_run_id(
    tmp_path, monkeypatch, _quiet_registry
) -> None:
    """Regime parameters are part of the run's identity — a regime
    campaign must not collide with a classic one, and the classic run ID
    must be unchanged by the regime machinery's existence."""
    classic_path, _ = _campaign_ledger(tmp_path, monkeypatch, "classic", None)
    regime_path, _ = _regime_ledger(tmp_path, monkeypatch, "regime", None)
    assert classic_path.name != regime_path.name
